#!/usr/bin/env python
"""Writing your own PIM-model algorithm against the machine API.

The simulator is a general substrate, not just the skip list's: this
example implements a *PIM-balanced histogram* from scratch -- the
"scatter by hash, aggregate locally, reduce on the CPU" pattern -- and
measures whether it meets the paper's PIM-balance definition
(PIM time = O(W/P), IO time = O(I/P)).

It also shows the model's sharp edge: the same histogram computed with
*range-partitioned* buckets (contiguous bucket blocks per module)
collapses under a skewed input, exactly like §2.2's range-partitioning
argument.

Run:  python examples/custom_pim_algorithm.py
"""

import random
from collections import Counter

from repro import PIMMachine
from repro.balls.hashing import KeyLevelHash

P = 16
BUCKETS = 512


def build_histogram(machine, placement, records):
    """Scatter `records` to modules by `placement(bucket)`, count locally,
    gather per-module partial counts."""

    def h_count(ctx, bucket, tag=None):
        counts = ctx.module.state.setdefault("hist", Counter())
        counts[bucket] += 1
        ctx.charge(1)

    def h_collect(ctx, tag=None):
        counts = ctx.module.state.get("hist", Counter())
        ctx.charge(len(counts) + 1)
        ctx.reply(dict(counts), size=max(1, len(counts)))

    machine.register("hist_count", h_count)
    machine.register("hist_collect", h_collect)

    # Scatter: one message per record to its bucket's module.
    for bucket in records:
        machine.send(placement(bucket), "hist_count", (bucket,))
    machine.drain()

    # Gather: every module returns its partial histogram.
    machine.broadcast("hist_collect", ())
    total = Counter()
    for r in machine.drain():
        total.update(r.payload)
    machine.cpu.charge(sum(len(r) for r in [total]) + BUCKETS, 16)
    return total


def run(workload_name, records):
    print(f"== workload: {workload_name} ({len(records)} records) ==")
    # Placement A: buckets spread by a seeded hash.
    m_hash = PIMMachine(num_modules=P, seed=5)
    hasher = KeyLevelHash(P, seed=99)
    before = m_hash.snapshot()
    h1 = build_histogram(m_hash, lambda b: hasher.module_of(b), records)
    d1 = m_hash.delta_since(before)

    # Placement B: contiguous bucket blocks per module (range style).
    m_block = PIMMachine(num_modules=P, seed=5)
    per = BUCKETS // P
    before = m_block.snapshot()
    h2 = build_histogram(m_block, lambda b: min(b // per, P - 1), records)
    d2 = m_block.delta_since(before)

    assert h1 == h2  # same histogram either way
    for name, d in (("hashed buckets", d1), ("block buckets", d2)):
        w, i = d.pim_work_total, d.messages
        print(f"  {name:<15} io={d.io_time:7.0f} (I/P={i / P:7.0f})  "
              f"pim={d.pim_time:7.0f} (W/P={w / P:7.0f})  "
              f"balance={d.pim_balance_ratio:5.2f}")
    print()


def main():
    rng = random.Random(0)
    uniform = [rng.randrange(BUCKETS) for _ in range(4000)]
    # Skewed: 90% of records fall in one block of 32 buckets.
    skewed = [
        rng.randrange(32) if rng.random() < 0.9 else rng.randrange(BUCKETS)
        for _ in range(4000)
    ]
    run("uniform", uniform)
    run("skewed (hot block)", skewed)
    print("PIM-balance (paper SS2.1): an algorithm is PIM-balanced when")
    print("PIM time ~ W/P and IO time ~ I/P -- the hashed placement stays")
    print("balanced under skew; the block placement does not.")


if __name__ == "__main__":
    main()
