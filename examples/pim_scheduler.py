#!/usr/bin/env python
"""A PIM-resident job scheduler: priority queue + dependency graph.

Composes the extension structures into a recognizable system:

- jobs carry priorities and dependencies (a DAG);
- the DAG lives in a :class:`PIMGraph` (vertices hashed across modules);
- ready jobs wait in a :class:`PIMPriorityQueue` (hot-spot-free even
  when many jobs share a priority);
- the scheduler loop extracts a batch of the highest-priority ready
  jobs, "runs" them, and releases their dependents.

Every phase prints its model costs.  The point: once the machine and
the balanced placement idioms exist, building *systems* on the PIM
model is ordinary code.

Run:  python examples/pim_scheduler.py
"""

import random

from repro import PIMMachine
from repro.algorithms import PIMGraph
from repro.structures import PIMPriorityQueue

P = 8
NUM_JOBS = 400


def main():
    rng = random.Random(42)
    machine = PIMMachine(num_modules=P, seed=42)

    # --- build a random DAG of jobs (edges point dep -> dependent) ----
    edges = []
    indegree = {j: 0 for j in range(NUM_JOBS)}
    dependents = {j: [] for j in range(NUM_JOBS)}
    for j in range(1, NUM_JOBS):
        for _ in range(rng.randrange(0, 3)):
            dep = rng.randrange(j)
            edges.append((dep, j))
            indegree[j] += 1
            dependents[dep].append(j)
    dag = PIMGraph(machine, edges, directed=True, name="dag")
    priority = {j: rng.randrange(10) for j in range(NUM_JOBS)}
    print(f"DAG with {NUM_JOBS} jobs, {len(edges)} dependencies, "
          f"distributed over P={P} modules")

    # --- the ready queue ------------------------------------------------
    ready = PIMPriorityQueue(machine, name="readyq")
    roots = [(priority[j], j) for j in range(NUM_JOBS) if indegree[j] == 0]
    ready.insert_batch(roots)
    print(f"{len(roots)} root jobs enqueued\n")

    completed = []
    waves = 0
    while len(ready):
        waves += 1
        before = machine.snapshot()
        batch = ready.extract_min_batch(max(8, P * 2))
        d_extract = machine.delta_since(before)

        # "run" the jobs; release dependents whose last dep completed
        newly_ready = []
        for prio, job in batch:
            completed.append(job)
            for dep in dependents[job]:
                indegree[dep] -= 1
                if indegree[dep] == 0:
                    newly_ready.append((priority[dep], dep))
        before = machine.snapshot()
        if newly_ready:
            ready.insert_batch(newly_ready)
        d_insert = machine.delta_since(before)

        print(f"wave {waves:>3}: ran {len(batch):>3} jobs "
              f"(min prio {batch[0][0]}, max {batch[-1][0]})  "
              f"extract io={d_extract.io_time:5.0f} "
              f"insert io={d_insert.io_time:5.0f} "
              f"released {len(newly_ready)}")

    assert sorted(completed) == list(range(NUM_JOBS))
    print(f"\nall {NUM_JOBS} jobs completed in {waves} waves")

    # --- post-mortem analytics on the DAG itself ----------------------
    before = machine.snapshot()
    depth = dag.bfs(0)
    d = machine.delta_since(before)
    print(f"dependency depth from job 0: {max(depth.values())} "
          f"(BFS over the PIM-resident DAG: io={d.io_time:.0f}, "
          f"rounds={d.rounds})")


if __name__ == "__main__":
    main()
