#!/usr/bin/env python
"""A PIM-resident ordered event store: ingestion, analytics, retention.

A realistic session for the batch-parallel API: an append-mostly event
store keyed by timestamp, serving

- *ingestion*: batched upserts of new events (mostly increasing keys --
  Algorithm 1's contiguous-run machinery does the heavy lifting);
- *point reads* of known event ids (hash shortcut);
- *windowed analytics*: per-window counts and scans, small windows via
  the tree execution, full-table sweeps via broadcast;
- *retention*: deleting whole prefixes of old events (the list-
  contraction splice path).

Every phase prints its measured model costs, so you can see which
operations dominate a workload like this on a PIM system.

Run:  python examples/event_store.py
"""

import random

from repro import PIMMachine, PIMSkipList

P = 16
DAY = 86_400


def show(label, machine, before, extra=""):
    d = machine.delta_since(before)
    print(f"{label:<34} io={d.io_time:8.0f} pim={d.pim_time:8.0f} "
          f"rounds={d.rounds:5d} balance={d.pim_balance_ratio:5.2f} {extra}")


def main():
    machine = PIMMachine(num_modules=P, seed=3)
    store = PIMSkipList(machine, name="events")
    rng = random.Random(3)

    # Day 0: bootstrap with a day of events (one every ~10s).
    t = 0
    initial = []
    while t < DAY:
        t += rng.randrange(5, 15)
        initial.append((t, {"type": rng.choice("abc"), "ts": t}))
    store.build(initial)
    print(f"bootstrapped {store.size} events over day 0 (P={P})\n")

    # Days 1..3: ingest in batches, analyze, retire old data.
    horizon = DAY
    for day in range(1, 4):
        print(f"--- day {day} ---")
        # Ingestion: four batches of new (increasing) timestamps.
        for _ in range(4):
            batch = []
            t = horizon
            while t < horizon + DAY // 4:
                t += rng.randrange(5, 15)
                batch.append((t, {"type": rng.choice("abc"), "ts": t}))
            horizon = t
            before = machine.snapshot()
            stats = store.batch_upsert(batch)
            show(f"ingest {len(batch)} events", machine, before,
                 f"(+{stats.inserted})")

        # Point reads: check on a sample of known events.
        sample = rng.sample(range(0, horizon, 7), 64)
        before = machine.snapshot()
        found = store.batch_get(sample)
        hits = sum(1 for v in found if v is not None)
        show(f"point reads x{len(sample)}", machine, before,
             f"({hits} hits)")

        # Windowed analytics: 32 five-minute windows (tree execution).
        windows = []
        for _ in range(32):
            start = rng.randrange(horizon - 300)
            windows.append((start, start + 300))
        before = machine.snapshot()
        counts = store.batch_range(windows, func="count")
        show("5-min window counts x32", machine, before,
             f"(avg {sum(r.count for r in counts) / 32:.1f} events)")

        # Full-day sweep: one broadcast range op (Theorem 5.1's regime).
        before = machine.snapshot()
        sweep = store.range_broadcast(horizon - DAY, horizon, func="count")
        show("full-day sweep (broadcast)", machine, before,
             f"({sweep.count} events)")

        # Retention: drop everything older than two days.
        cutoff = horizon - 2 * DAY
        if cutoff > 0:
            old = store.range_broadcast(0, cutoff, func="read")
            before = machine.snapshot()
            stats = store.batch_delete([k for k, _ in old.values])
            show(f"retention: drop {stats.deleted} old", machine, before)
        store.check_integrity()
        print(f"store size: {store.size}\n")

    print("final integrity check passed;", store.size, "events resident")


if __name__ == "__main__":
    main()
