#!/usr/bin/env python
"""The paper's motivating scenario: adversary-controlled batches.

An adversary who knows the data structure's layout (but not its random
choices) picks batches that break naive designs:

- *same-successor* batches serialize the pivot-free batched search
  (every query funnels through one path);
- *single-range* batches serialize range-partitioned structures (the
  whole batch lands in one partition).

This example runs both adversaries against the PIM-balanced skip list,
the naive batching on the same structure, and the range-partitioned
baseline -- and prints the measured IO time and PIM balance, reproducing
the paper's §2.2/§4.2 arguments as numbers.

Run:  python examples/adversarial_workload.py
"""

import random

from repro import PIMMachine, PIMSkipList
from repro.baselines import RangePartitionedSkipList, naive_batch_successor
from repro.workloads import build_items, same_successor_batch, single_range_batch

P = 32
N = 2048


def measure(machine, fn):
    before = machine.snapshot()
    fn()
    return machine.delta_since(before)


def main():
    items = build_items(N, stride=10_000)
    keys = [k for k, _ in items]
    rng = random.Random(1)

    machine = PIMMachine(num_modules=P, seed=1, trace_accesses=True)
    ours = PIMSkipList(machine)
    ours.build(items)

    machine_rp = PIMMachine(num_modules=P, seed=1)
    rp = RangePartitionedSkipList(machine_rp)
    rp.build(items)

    # ------------------------------------------------------------------
    print("=" * 72)
    print("Adversary 1: same-successor Successor batch "
          f"(B = P log^2 P = {P * 25})")
    print("=" * 72)
    batch = same_successor_batch(keys, P * 25, rng)

    r0 = machine.tracer.access.num_rounds
    d_naive = measure(machine,
                      lambda: naive_batch_successor(ours.struct, batch))
    c_naive = machine.tracer.access.max_contention(r0)

    r1 = machine.tracer.access.num_rounds
    d_pivot = measure(machine, lambda: ours.batch_successor(batch))
    c_pivot = machine.tracer.access.max_contention(r1)

    print(f"naive batching : io={d_naive.io_time:8.0f}  "
          f"max node contention={c_naive:5d}  (serialized: one module "
          "handles the whole batch)")
    print(f"pivot algorithm: io={d_pivot.io_time:8.0f}  "
          f"max node contention={c_pivot:5d}  (Lemma 4.2 caps stage-1 "
          "contention at 3)")
    print(f"-> IO speedup {d_naive.io_time / d_pivot.io_time:.0f}x\n")

    # ------------------------------------------------------------------
    print("=" * 72)
    print("Adversary 2: single-range Get batch against range partitioning")
    print("=" * 72)
    adv = single_range_batch(P * 10, lo=10_000, hi=400_000, rng=rng)

    d_rp = measure(machine_rp, lambda: rp.batch_get(adv))
    d_ours = measure(machine, lambda: ours.batch_get(adv))

    print(f"range-partitioned: io={d_rp.io_time:8.0f}  "
          f"PIM balance={d_rp.pim_balance_ratio:6.1f}  "
          "(= P: one partition does everything)")
    print(f"hashed lower part: io={d_ours.io_time:8.0f}  "
          f"PIM balance={d_ours.pim_balance_ratio:6.1f}  "
          "(keys spread by the seeded hash)")
    print(f"-> IO advantage {d_rp.io_time / d_ours.io_time:.0f}x\n")

    # ------------------------------------------------------------------
    print("=" * 72)
    print("And the price of PIM-balance is zero when the workload is nice:")
    print("=" * 72)
    uni = [rng.randrange(N * 10_000) for _ in range(P * 10)]
    d_rp_u = measure(machine_rp, lambda: rp.batch_get(uni))
    d_ours_u = measure(machine, lambda: ours.batch_get(uni))
    print(f"uniform Gets -- range-partitioned io={d_rp_u.io_time:.0f}, "
          f"ours io={d_ours_u.io_time:.0f} (comparable)")


if __name__ == "__main__":
    main()
