#!/usr/bin/env python
"""Anatomy of a batched search: watch the rounds happen.

Runs one adversarial batched Successor with access tracing on and prints
the round-by-round timeline (h-relation bars), the hotspot rounds, and
the per-phase story: stage-1 pivot phases, stage-2 fan-out, and the
squeeze-derivation shortcut that makes the adversary cheap.  Then runs
the naive execution of the *same batch* so the serialization is visible
as a wall of tall bars.

Run:  python examples/anatomy_of_a_search.py
"""

import random

from repro import PIMMachine, PIMSkipList
from repro.analysis import hotspot_rounds, render_timeline, summarize
from repro.baselines import naive_batch_successor
from repro.workloads import build_items, same_successor_batch

P = 16


def section(title):
    print("\n" + "=" * 72)
    print(title)
    print("=" * 72)


def main():
    machine = PIMMachine(num_modules=P, seed=11, trace_accesses=True)
    sl = PIMSkipList(machine)
    items = build_items(800, stride=10 ** 6)
    sl.build(items)
    batch = same_successor_batch([k for k, _ in items], P * 16,
                                 random.Random(11))
    print(f"P={P}, n=800, adversarial batch of {len(batch)} distinct keys "
          "that share one successor")

    section("pivot algorithm (the paper's §4.2)")
    r0 = len(machine.tracer.rounds)
    before = machine.snapshot()
    sl.batch_successor(batch)
    d = machine.delta_since(before)
    rounds = machine.tracer.rounds[r0:]
    print(render_timeline(rounds, width=44, max_rows=24))
    print("\nsummary:", summarize(rounds))
    print("max per-node contention:",
          machine.tracer.access.max_contention(r0),
          "(Lemma 4.2 caps stage-1 phases at 3)")
    print(f"model costs: io={d.io_time:.0f} pim={d.pim_time:.0f} "
          f"cpu_work={d.cpu_work:.0f}")

    section("naive execution of the identical batch (no pivots)")
    r1 = len(machine.tracer.rounds)
    before = machine.snapshot()
    naive_batch_successor(sl.struct, batch)
    d_naive = machine.delta_since(before)
    rounds_naive = machine.tracer.rounds[r1:]
    print(render_timeline(rounds_naive, width=44, max_rows=24))
    print("\nsummary:", summarize(rounds_naive))
    print("max per-node contention:",
          machine.tracer.access.max_contention(r1), f"(~B = {len(batch)})")
    print(f"model costs: io={d_naive.io_time:.0f} "
          f"pim={d_naive.pim_time:.0f}")

    section("hotspots of the naive run")
    for r in hotspot_rounds(rounds_naive, top=3):
        print(f"  round {r.index}: h={r.h} with {r.tasks_executed} tasks "
              "-- one module funnels the whole batch")

    print(f"\nIO speedup of the pivot algorithm: "
          f"{d_naive.io_time / max(1, d.io_time):.0f}x")


if __name__ == "__main__":
    main()
