#!/usr/bin/env python
"""Quickstart: the PIM machine and the PIM-balanced skip list.

Builds a 16-module PIM machine, loads a skip list, runs one batch of each
operation type, and prints the model cost metrics (CPU work/depth, PIM
time, IO time, rounds) the paper analyzes -- measured, not derived.

Run:  python examples/quickstart.py
"""

import random

from repro import PIMMachine, PIMSkipList


def show(label, machine, before):
    d = machine.delta_since(before)
    print(f"{label:<28} io={d.io_time:7.0f}  pim={d.pim_time:7.0f}  "
          f"cpu_work={d.cpu_work:8.0f}  depth={d.cpu_depth:6.0f}  "
          f"rounds={d.rounds:4d}  balance={d.pim_balance_ratio:5.2f}")


def main():
    # A machine with P=16 PIM modules and the default M = 8 P log^2 P
    # words of CPU-side shared memory.
    machine = PIMMachine(num_modules=16, seed=7)
    sl = PIMSkipList(machine)

    # Initial data: the model assumes the input starts resident on the
    # PIM side, so bulk construction is not charged as network traffic.
    sl.build((k, k * 10) for k in range(0, 100_000, 10))
    print(f"built skip list with {sl.size} keys on P={machine.num_modules}")
    print()

    rng = random.Random(0)
    stored = list(range(0, 100_000, 10))

    # --- batched point lookups (Theorem 4.1) -------------------------
    before = machine.snapshot()
    values = sl.batch_get([rng.choice(stored) for _ in range(64)])
    show("batch_get (64 keys)", machine, before)
    assert all(v is not None for v in values)

    # --- batched ordered queries (Theorem 4.3) -----------------------
    before = machine.snapshot()
    succs = sl.batch_successor([rng.randrange(100_000) for _ in range(256)])
    show("batch_successor (256 keys)", machine, before)

    # --- batched upsert: updates + inserts (Theorem 4.4) -------------
    before = machine.snapshot()
    stats = sl.batch_upsert(
        [(rng.choice(stored), -1) for _ in range(128)]
        + [(rng.randrange(100_000) * 10 + 5, 0) for _ in range(128)]
    )
    show("batch_upsert (256 pairs)", machine, before)
    print(f"    -> updated={stats.updated} inserted={stats.inserted}")

    # --- batched delete (Theorem 4.5) --------------------------------
    before = machine.snapshot()
    sl.batch_delete(rng.sample(stored, 256))
    show("batch_delete (256 keys)", machine, before)

    # --- range operations (Theorems 5.1 & 5.2) -----------------------
    before = machine.snapshot()
    big = sl.range_broadcast(10_000, 60_000, func="count")
    show("range_broadcast (K~5000)", machine, before)
    print(f"    -> counted {big.count} pairs in [10k, 60k]")

    before = machine.snapshot()
    small = sl.batch_range([(100, 400), (5_000, 5_300), (70_000, 70_200)])
    show("batch_range (3 small ops)", machine, before)
    print(f"    -> sizes {[r.count for r in small]}")

    # The structure can verify all its invariants at any time.
    sl.check_integrity()
    print("\nintegrity check passed; final size =", sl.size)


if __name__ == "__main__":
    main()
