"""Batched Delete (paper §4.4): shortcut marking + list-contraction splice.

Because a deleted key must exist, Delete skips the predecessor search
entirely: the operation is sent to the module owning the key's leaf (hash
shortcut), which looks the leaf up in its local hash table and -- using
the up-chain addresses recorded at insert time -- marks the whole tower
without any search:

1. The leaf's module removes the leaf from its local leaf list and hash
   table (repairing its next-leaf pointers), marks it deleted, and
   forwards one marking task to each lower tower node's owner; each
   marker replies with the node and its (left, right) neighbors.
2. Towers that reach the upper part have their replicated upper nodes
   deleted by broadcast: every module charges its replica's work/space,
   and the (idempotent) unlink splices the shared upper levels locally.
3. Splicing the lower horizontal lists is the hard part: up to the whole
   batch may be *consecutive* nodes of one list.  The CPU copies the
   marked nodes (plus each run's flanking unmarked boundary nodes) into
   shared memory, runs randomized parallel list contraction
   (:mod:`repro.cpuside.list_contraction`), and RemoteWrites only the
   adjacencies that changed -- each spliced pointer is written once.

Bounds (Theorem 4.5): ``O(log^2 P)`` IO time, ``O(log^2 P)`` PIM time,
``O(P log^2 P)`` expected CPU work, ``O(log P)`` CPU depth, and
``Theta(P log^2 P)`` shared memory, whp, for batches of ``P log^2 P``.

The three stages above are the route stages of one
:class:`~repro.ops.BatchOp`; the contraction runs on the CPU side while
building stage 3's RemoteWrite messages.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Dict, Hashable, List, Optional, Sequence, Tuple

from repro.core.node import Node
from repro.core.ops_write import write_message
from repro.core.structure import SkipListStructure
from repro.cpuside.list_contraction import ContractionList
from repro.cpuside.semisort import group_by
from repro.ops import BatchOp, Broadcast, cached_handlers, run_batch
from repro.sim.cpu import WorkDepth


@dataclass
class DeleteStats:
    """What a batched Delete did."""

    deleted: int
    not_found: int


def make_handlers(sl: SkipListStructure) -> Dict[str, Any]:
    def h_delete_mark(ctx, key, tag=None):
        ml = sl.mlocal(ctx.mid)
        leaf = ml.table.lookup(key)
        ctx.charge(1)
        if leaf is None:
            ctx.reply(("notfound", key), tag=tag)
            return
        ctx.touch(leaf.nid)
        sl.local_remove_leaf(ctx.mid, leaf, ctx.charge)
        leaf.deleted = True
        sl.account_lower_free(leaf)
        if sl.storage.mirrors:
            sl.storage.free(leaf)
        chain = leaf.up_chain or []
        # If the tower tops out below the upper part, the top chain node's
        # marker must return nothing extra; if it reaches the upper part,
        # the top *lower* node's marker returns its up pointer so the CPU
        # can broadcast the upper-tower deletion.
        if leaf.has_upper and not chain:
            up_ref = leaf.up  # h_low == 1: the leaf itself is the top
        else:
            up_ref = None
        ctx.reply(("marked", key, leaf, leaf.left, leaf.right, up_ref),
                  size=1, tag=tag)
        fn_mark_node = f"{sl.name}:del_mark_node"
        for i, node in enumerate(chain):
            is_top = leaf.has_upper and (i == len(chain) - 1)
            ctx.forward(node.owner, fn_mark_node, (node, is_top), tag=tag)

    def h_mark_node(ctx, node, is_top, tag=None):
        ctx.charge(1)
        ctx.touch(node.nid)
        node.deleted = True
        sl.account_lower_free(node)
        if sl.storage.mirrors:
            sl.storage.free(node)
        up_ref = node.up if is_top else None
        ctx.reply(("marked_node", node, node.left, node.right, up_ref),
                  size=1, tag=tag)

    def h_delete_upper_tower(ctx, upper_leaf, tag=None):
        u: Optional[Node] = upper_leaf
        while u is not None:
            ctx.charge(1)
            sl.account_upper_free_on(ctx.mid, u)
            u.deleted = True
            sl.unlink_upper_node(u, ctx.charge)
            u = u.up
        ctx.reply(("ack",), tag=tag)

    return {
        f"{sl.name}:del_mark": h_delete_mark,
        f"{sl.name}:del_mark_node": h_mark_node,
        f"{sl.name}:del_upper": h_delete_upper_tower,
    }


def handlers_for(sl: SkipListStructure) -> Dict[str, Any]:
    """The delete handler dict, created once per structure."""
    return cached_handlers(sl, "delete", lambda: make_handlers(sl))


class _BatchDeleteOp(BatchOp):
    def __init__(self, sl: SkipListStructure,
                 keys: Sequence[Hashable]) -> None:
        self.sl = sl
        self.keys = keys
        self.name = f"{sl.name}:batch_delete"

    def handlers(self):
        return handlers_for(self.sl)

    def route(self, machine, plan):
        sl, keys = self.sl, self.keys
        cpu = machine.cpu
        n = len(keys)
        if n == 0:
            return DeleteStats(deleted=0, not_found=0)

        shared_words = n
        cpu.alloc(shared_words)
        try:
            # -- stage 1: shortcut marking -------------------------------
            groups = group_by(cpu, list(keys), key=lambda k: k)
            fn_mark = f"{sl.name}:del_mark"
            replies = yield ((sl.leaf_owner(key), fn_mark, (key,), None)
                             for key in groups)
            marked: List[Tuple[Node, Optional[Node], Optional[Node]]] = []
            upper_leaves: List[Node] = []
            not_found = 0
            deleted = 0
            for r in replies:
                payload = r.payload
                if payload[0] == "notfound":
                    not_found += 1
                elif payload[0] == "marked":
                    _, _key, leaf, left, right, up_ref = payload
                    marked.append((leaf, left, right))
                    deleted += 1
                    if up_ref is not None:
                        upper_leaves.append(up_ref)
                else:  # marked_node
                    _, node, left, right, up_ref = payload
                    marked.append((node, left, right))
                    if up_ref is not None:
                        upper_leaves.append(up_ref)

            # -- stage 2a: replicated upper towers, by broadcast ---------
            if upper_leaves:
                fn_upper = f"{sl.name}:del_upper"
                yield [Broadcast(fn_upper, (u,)) for u in upper_leaves]

            # -- stage 2b: lower splice via parallel list contraction ----
            if marked:
                yield _splice_lower(sl, marked)

            sl.num_keys -= deleted
            return DeleteStats(deleted=deleted, not_found=not_found)
        finally:
            cpu.free(shared_words)


def batch_delete(sl: SkipListStructure,
                 keys: Sequence[Hashable]) -> DeleteStats:
    """Execute a batch of Delete operations (duplicates collapse; missing
    keys are ignored, each counted in ``not_found``)."""
    return run_batch(sl.machine, _BatchDeleteOp(sl, keys))


def _splice_lower(sl: SkipListStructure,
                  marked: List[Tuple[Node, Optional[Node], Optional[Node]]],
                  ) -> list:
    """Contract the marked lower nodes out of their horizontal lists and
    build RemoteWrite messages for only the changed adjacencies."""
    cpu = sl.machine.cpu
    by_nid: Dict[int, Node] = {}
    clist = ContractionList()
    original_right: Dict[int, Optional[int]] = {}

    entries: List[Tuple[int, Optional[int], Optional[int]]] = []
    for node, left, right in marked:
        by_nid[node.nid] = node
        if left is not None:
            by_nid.setdefault(left.nid, left)
        if right is not None:
            by_nid.setdefault(right.nid, right)
        entries.append((node.nid, left.nid if left else None,
                        right.nid if right else None))
        original_right[node.nid] = right.nid if right else None
        if left is not None:
            original_right.setdefault(left.nid, node.nid)

    clist.add_adjacency(entries)
    words = 4 * len(by_nid)
    with cpu.region(words):
        stats = clist.contract(sl.machine.spawn_rng(0x11C7))
        links = clist.links()
    total = len(by_nid)
    logt = max(1.0, math.log2(total + 1))
    cpu.charge_wd(WorkDepth(max(total, stats.work), stats.rounds + logt))

    msgs: list = []
    writes = 0
    for a_nid, b_nid in links:
        if original_right.get(a_nid, b_nid) == b_nid:
            continue  # adjacency unchanged; no write needed
        a = by_nid[a_nid]
        b = by_nid[b_nid] if b_nid is not None else None
        msgs.append(write_message(sl, a, "right", b))
        if b is not None:
            msgs.append(write_message(sl, b, "left", a))
        writes += 1
    cpu.charge_wd(WorkDepth(writes + 1, logt))
    return msgs
