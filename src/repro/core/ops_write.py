"""RemoteWrite and sentinel-growth handlers shared by Upsert and Delete.

A ``RemoteWrite`` is performed by sending a write task to the module that
owns the target node (paper §3.2).  Writes to replicated nodes (sentinels,
upper-part nodes) are broadcast to every module; the handler's mutation is
idempotent (it stores a fixed value), so replaying it per replica is safe
and each replica's work is charged on its own module.

Writers build their messages with :func:`write_message` and yield them in
a :class:`~repro.ops.BatchOp` route stage; :func:`remote_write` wraps a
single write in its own one-stage op for callers (tests, diagnostics)
that want the write applied immediately.
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Union

from repro.core.node import NODE_WORDS, Node, UPPER
from repro.core.structure import SkipListStructure
from repro.ops import BatchOp, Broadcast, cached_handlers, run_batch

_FIELDS = ("left", "right", "up", "down", "local_left", "local_right")


def make_handlers(sl: SkipListStructure) -> Dict[str, Any]:
    def h_write_ptr(ctx, node, field, value, tag=None):
        if field not in _FIELDS:
            raise ValueError(f"bad pointer field {field!r}")
        ctx.charge(1)
        ctx.touch(node.nid)
        setattr(node, field, value)
        if sl.storage.mirrors and field in ("right", "up", "down"):
            sl.storage.link(node, field, value)
        ctx.reply(("ack",), tag=tag)

    def h_grow(ctx, target_level, added_levels, tag=None):
        # Idempotent shared mutation; every module charges its replica's
        # share of the new sentinel storage.
        sl.grow_to_level(target_level, ctx.charge)
        ctx.module.alloc_words(added_levels * NODE_WORDS)
        ctx.reply(("ack",), tag=tag)

    return {
        f"{sl.name}:write_ptr": h_write_ptr,
        f"{sl.name}:grow": h_grow,
    }


def handlers_for(sl: SkipListStructure) -> Dict[str, Any]:
    """The write/grow handler dict, created once per structure."""
    return cached_handlers(sl, "write", lambda: make_handlers(sl))


def write_message(sl: SkipListStructure, node: Node, field: str,
                  value: Optional[Node]) -> Union[tuple, Broadcast]:
    """Build the RemoteWrite of ``node.field = value`` as a stage element.

    Owned nodes get one message to their owner; replicated nodes get a
    broadcast (one message per module, an h=1 relation contribution each).
    """
    fn = f"{sl.name}:write_ptr"
    if node.owner == UPPER:
        return Broadcast(fn, (node, field, value))
    return (node.owner, fn, (node, field, value), None)


class _RemoteWriteOp(BatchOp):
    def __init__(self, sl: SkipListStructure) -> None:
        self.sl = sl
        self.name = f"{sl.name}:remote_write"

    def handlers(self):
        return handlers_for(self.sl)

    def route(self, machine, plan):
        node, field, value = plan
        yield [write_message(self.sl, node, field, value)]


def remote_write(sl: SkipListStructure, node: Node, field: str,
                 value: Optional[Node]) -> None:
    """Apply one RemoteWrite of ``node.field = value`` (issue + drain)."""
    run_batch(sl.machine, _RemoteWriteOp(sl), (node, field, value))
