"""RemoteWrite and sentinel-growth handlers shared by Upsert and Delete.

A ``RemoteWrite`` is performed by sending a write task to the module that
owns the target node (paper §3.2).  Writes to replicated nodes (sentinels,
upper-part nodes) are broadcast to every module; the handler's mutation is
idempotent (it stores a fixed value), so replaying it per replica is safe
and each replica's work is charged on its own module.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from repro.core.node import NODE_WORDS, Node, UPPER
from repro.core.structure import SkipListStructure

_FIELDS = ("left", "right", "up", "down", "local_left", "local_right")


def make_handlers(sl: SkipListStructure) -> Dict[str, Any]:
    def h_write_ptr(ctx, node, field, value, tag=None):
        if field not in _FIELDS:
            raise ValueError(f"bad pointer field {field!r}")
        ctx.charge(1)
        ctx.touch(node.nid)
        setattr(node, field, value)
        ctx.reply(("ack",), tag=tag)

    def h_grow(ctx, target_level, added_levels, tag=None):
        # Idempotent shared mutation; every module charges its replica's
        # share of the new sentinel storage.
        sl.grow_to_level(target_level, ctx.charge)
        ctx.module.alloc_words(added_levels * NODE_WORDS)
        ctx.reply(("ack",), tag=tag)

    return {
        f"{sl.name}:write_ptr": h_write_ptr,
        f"{sl.name}:grow": h_grow,
    }


def remote_write(sl: SkipListStructure, node: Node, field: str,
                 value: Optional[Node]) -> None:
    """Queue a RemoteWrite of ``node.field = value``.

    Owned nodes get one message to their owner; replicated nodes get a
    broadcast (one message per module, an h=1 relation contribution each).
    """
    machine = sl.machine
    fn = f"{sl.name}:write_ptr"
    if node.owner == UPPER:
        machine.broadcast(fn, (node, field, value))
    else:
        machine.send(node.owner, fn, (node, field, value))
