"""De-amortized cuckoo hash table (one per PIM module).

Paper §4.1: "within a PIM module, we use a de-amortized hash table
supporting O(1) whp work operations [Goodrich et al.].  The table supports
the O(n/P) keys stored in this PIM node in O(1) whp PIM work per Get,
Update, Delete, and Insert operation."  The table maps keys to the
module's level-0 (leaf) nodes so point operations can shortcut straight to
the leaf without touching the pointer structure.

Implementation: classic two-table cuckoo hashing with a small stash, plus
a pending-placement queue processed a constant number of steps per public
operation (the de-amortization of Goodrich et al.: evictions triggered by
an insert are not chased to completion immediately but drained at O(1)
steps per subsequent operation).  Lookups probe T1[h1(k)], T2[h2(k)], the
stash, and the pending queue -- all O(1).  When the stash or load factor
overflows, the table rebuilds with fresh hash seeds and doubled capacity;
rebuild work is charged for real (it amortizes to O(1) per insert and the
whp-O(1) claim is checked empirically in the tests).

Work accounting: the table charges a caller-provided ``charge`` callable
one unit per probe/move, so when embedded in a PIM module the cost lands
in that module's local-work counter.
"""

from __future__ import annotations

import random
from collections import OrderedDict
from typing import Any, Callable, Hashable, Iterator, List, Optional, Tuple

from repro.balls.hashing import mix64, stable_hash

_ABSENT = object()


class CuckooHashTable:
    """A de-amortized cuckoo hash table with stash and pending queue.

    Parameters
    ----------
    rng:
        Source of hash seeds (rebuilds draw fresh seeds from it).
    charge:
        Optional ``charge(units)`` callable; every probe, move, and
        rebuild step charges through it (defaults to a no-op for
        standalone use).
    initial_capacity:
        Starting size of *each* of the two tables.
    stash_limit:
        Maximum stash size before a rebuild is triggered.
    moves_per_op:
        De-amortization constant: pending-eviction steps executed per
        public operation.
    """

    MAX_LOAD = 0.45  # per-table load factor triggering growth

    def __init__(self, rng: random.Random,
                 charge: Optional[Callable[[float], None]] = None,
                 initial_capacity: int = 8, stash_limit: int = 8,
                 moves_per_op: int = 4) -> None:
        self._rng = rng
        self._charge = charge if charge is not None else (lambda w: None)
        self._capacity = max(4, initial_capacity)
        self._stash_limit = stash_limit
        self._moves_per_op = moves_per_op
        self._count = 0
        self._new_seeds()
        self._t1: List[Optional[Tuple[Hashable, Any]]] = [None] * self._capacity
        self._t2: List[Optional[Tuple[Hashable, Any]]] = [None] * self._capacity
        self._stash: "OrderedDict[Hashable, Any]" = OrderedDict()
        self._pending: "OrderedDict[Hashable, Any]" = OrderedDict()

    # -- internals -----------------------------------------------------

    def _new_seeds(self) -> None:
        self._seed1 = self._rng.getrandbits(63)
        self._seed2 = self._rng.getrandbits(63)

    def _h1(self, key: Hashable) -> int:
        return stable_hash(key, seed=self._seed1) % self._capacity

    def _h2(self, key: Hashable) -> int:
        return stable_hash(key, seed=self._seed2) % self._capacity

    def _max_chase(self) -> int:
        """Eviction-chain cutoff before an item is stashed (cycle break)."""
        return max(8, 2 * self._capacity.bit_length())

    def _drain_pending(self, steps: int) -> None:
        """Run up to ``steps`` cuckoo placement moves from the queue.

        Queue entries carry the table the item should try next, so a
        chase interrupted by the step budget resumes where it left off
        (losing the alternation state would ping-pong forever at small
        ``moves_per_op``).
        """
        max_chase = self._max_chase()
        while steps > 0 and self._pending:
            key, (value, use_t1) = self._pending.popitem(last=False)
            item: Optional[Tuple[Hashable, Any]] = (key, value)
            chase = 0
            # Chase evictions within both the op budget and the cycle cutoff.
            while item is not None and steps > 0 and chase < max_chase:
                steps -= 1
                chase += 1
                self._charge(1)
                k, v = item
                idx = self._h1(k) if use_t1 else self._h2(k)
                table = self._t1 if use_t1 else self._t2
                evicted = table[idx]
                table[idx] = (k, v)
                item = evicted
                use_t1 = not use_t1
            if item is not None:
                if chase >= max_chase:
                    # Suspected eviction cycle: park it in the stash.
                    self._stash[item[0]] = item[1]
                else:
                    # Step budget exhausted mid-chase: requeue at the front,
                    # remembering which table the displaced item tries next.
                    self._pending[item[0]] = (item[1], use_t1)
                    self._pending.move_to_end(item[0], last=False)
        if len(self._stash) > self._stash_limit:
            self._rebuild(self._capacity * 2)

    def _rebuild(self, new_capacity: int) -> None:
        """Rehash everything with fresh seeds; grow until the stash fits."""
        items = list(self.items())
        capacity = max(4, new_capacity)
        while True:
            self._capacity = capacity
            self._new_seeds()
            self._t1 = [None] * self._capacity
            self._t2 = [None] * self._capacity
            self._stash = OrderedDict()
            self._pending = OrderedDict()
            self._charge(len(items) + 1)
            for k, v in items:
                self._place_eager(k, v)
            if len(self._stash) <= self._stash_limit:
                break
            capacity *= 2
        self._count = len(items)

    def _place_eager(self, key: Hashable, value: Any) -> None:
        """Eager cuckoo placement used during rebuilds (overflow -> stash)."""
        item: Optional[Tuple[Hashable, Any]] = (key, value)
        use_t1 = True
        for _ in range(self._max_chase()):
            if item is None:
                return
            self._charge(1)
            k, v = item
            idx = self._h1(k) if use_t1 else self._h2(k)
            table = self._t1 if use_t1 else self._t2
            evicted = table[idx]
            table[idx] = (k, v)
            item = evicted
            use_t1 = not use_t1
        if item is not None:
            self._stash[item[0]] = item[1]

    # -- public API ---------------------------------------------------------

    def lookup(self, key: Hashable, default: Any = None) -> Any:
        """Return the value for ``key`` or ``default``.  O(1) probes.

        Like every public operation, a lookup also advances the pending
        placement queue by O(1) moves (the de-amortization schedule).
        """
        self._drain_pending(self._moves_per_op)
        self._charge(1)
        slot = self._t1[self._h1(key)]
        if slot is not None and slot[0] == key:
            return slot[1]
        self._charge(1)
        slot = self._t2[self._h2(key)]
        if slot is not None and slot[0] == key:
            return slot[1]
        if key in self._stash:
            self._charge(1)
            return self._stash[key]
        if key in self._pending:
            self._charge(1)
            return self._pending[key][0]
        return default

    def __contains__(self, key: Hashable) -> bool:
        return self.lookup(key, _ABSENT) is not _ABSENT

    def insert(self, key: Hashable, value: Any) -> None:
        """Insert or overwrite ``key``.  O(1) de-amortized moves."""
        if self._update_in_place(key, value):
            self._drain_pending(self._moves_per_op)
            return
        self._pending[key] = (value, True)
        self._count += 1
        self._charge(1)
        if self._count > 2 * self.MAX_LOAD * self._capacity:
            self._rebuild(self._capacity * 2)
        self._drain_pending(self._moves_per_op)

    def _update_in_place(self, key: Hashable, value: Any) -> bool:
        self._charge(1)
        i1 = self._h1(key)
        slot = self._t1[i1]
        if slot is not None and slot[0] == key:
            self._t1[i1] = (key, value)
            return True
        self._charge(1)
        i2 = self._h2(key)
        slot = self._t2[i2]
        if slot is not None and slot[0] == key:
            self._t2[i2] = (key, value)
            return True
        if key in self._stash:
            self._stash[key] = value
            return True
        if key in self._pending:
            self._pending[key] = (value, self._pending[key][1])
            return True
        return False

    def delete(self, key: Hashable) -> bool:
        """Remove ``key``; returns whether it was present.  O(1) probes."""
        removed = False
        self._charge(1)
        i1 = self._h1(key)
        slot = self._t1[i1]
        if slot is not None and slot[0] == key:
            self._t1[i1] = None
            removed = True
        if not removed:
            self._charge(1)
            i2 = self._h2(key)
            slot = self._t2[i2]
            if slot is not None and slot[0] == key:
                self._t2[i2] = None
                removed = True
        if not removed and key in self._stash:
            del self._stash[key]
            self._charge(1)
            removed = True
        if not removed and key in self._pending:
            del self._pending[key]
            self._charge(1)
            removed = True
        if removed:
            self._count -= 1
        self._drain_pending(self._moves_per_op)
        return removed

    def __len__(self) -> int:
        return self._count

    def items(self) -> Iterator[Tuple[Hashable, Any]]:
        """All (key, value) pairs, in no particular order."""
        for slot in self._t1:
            if slot is not None:
                yield slot
        for slot in self._t2:
            if slot is not None:
                yield slot
        yield from self._stash.items()
        for k, (v, _) in self._pending.items():
            yield (k, v)

    @property
    def capacity(self) -> int:
        """Current size of each of the two tables."""
        return self._capacity

    @property
    def stash_size(self) -> int:
        return len(self._stash)

    @property
    def pending_size(self) -> int:
        return len(self._pending)
