"""Range operations (paper §5): by broadcast (§5.1) and by tree (§5.2).

``RangeOperation(LKey, RKey, Func)`` applies ``Func`` to the value of
every key in ``[LKey, RKey]``.  Functions are a small PIM-side registry
(``read``, ``count``, ``set``, ``fetch_and_add``); richer functions are
modeled, as the paper suggests, by a ``read`` + CPU-side application + a
write-back.

Broadcast execution (Theorem 5.1)
---------------------------------
The task is broadcast to all ``P`` modules (an h=1 relation).  Each module
searches its *replica* of the upper part to the rightmost upper-part leaf
at or before LKey, takes that leaf's per-module ``next-leaf`` pointer into
its own local leaf list, walks to its local successor of LKey (``O(log P)``
whp steps), and then applies Func along its local leaf list until RKey.
With ``K = Omega(P log P)`` covered pairs every module holds ``Theta(K/P)``
of them whp (Lemma 2.1): ``O(1)`` IO time + ``O(K/P)`` whp for returned
values, ``O(K/P + log n)`` whp PIM time, O(1) rounds.

Tree execution (Theorem 5.2)
----------------------------
For small or batched ranges, broadcasting is wasteful; instead the
operation walks the *search area* -- every node that may have a child in
the range, ``O(K + log n)`` nodes whp.  The traversal is a fan-out over
the (conceptual) search tree: a *boundary* descent along LKey's
predecessor path spawns, at each lower level, the *chain* of in-range
nodes hanging between that level's predecessor and the next tower; chain
nodes recursively spawn their down-chains.  Two more passes over the same
tree edges aggregate subtree counts (leaf-to-root) and distribute prefix
offsets (root-to-leaf), so every marked leaf learns its index within the
range and the CPU learns the total -- exactly the paper's prefix-sum
scheme.

The batched version splits the batch into disjoint ascending subranges,
obtains every subrange's boundary predecessors through the pivot-protected
batched search of §4.2 (no contention), launches one traversal per
subrange, and streams results to the CPU in shared-memory-sized groups.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Dict, Hashable, List, Optional, Sequence, Tuple

from repro.core.node import Node, UPPER
from repro.core.ops_successor import batch_search
from repro.core.structure import SkipListStructure
from repro.cpuside.sort import parallel_sort
from repro.ops import BatchOp, Broadcast, cached_handlers, run_batch
from repro.sim.cpu import WorkDepth

# ---------------------------------------------------------------------------
# ordered "just below k" search keys (for inclusive left bounds)
# ---------------------------------------------------------------------------


class JustBelow:
    """A virtual key sitting immediately below ``key`` in the order.

    Searching the predecessor of ``JustBelow(k)`` yields the largest key
    strictly less than ``k`` -- which makes in-range chains start *at*
    ``k`` (inclusive left bound) instead of after it.
    """

    __slots__ = ("key",)

    def __init__(self, key: Hashable) -> None:
        self.key = key

    def __lt__(self, other: Any) -> bool:
        if isinstance(other, JustBelow):
            return self.key < other.key
        return self.key <= other

    def __le__(self, other: Any) -> bool:
        if isinstance(other, JustBelow):
            return self.key <= other.key
        return self.key <= other

    def __gt__(self, other: Any) -> bool:
        if isinstance(other, JustBelow):
            return self.key > other.key
        return self.key > other

    def __ge__(self, other: Any) -> bool:
        if isinstance(other, JustBelow):
            return self.key >= other.key
        return self.key > other

    def __eq__(self, other: Any) -> bool:
        return isinstance(other, JustBelow) and self.key == other.key

    def __hash__(self) -> int:
        return hash(("JustBelow", self.key))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"JustBelow({self.key!r})"


@dataclass(frozen=True)
class Bound:
    """Right bound of a (sub)range: key plus inclusivity."""

    key: Hashable
    inclusive: bool = True

    def admits(self, key: Hashable) -> bool:
        return key <= self.key if self.inclusive else key < self.key


FUNCS = ("read", "count", "set", "fetch_and_add")


def _apply_func(sl: SkipListStructure, leaf: Node, func: str,
                farg: Any) -> Optional[Any]:
    """Apply a registry function to a leaf; returns the reply value."""
    if func == "read":
        return leaf.value
    if func == "count":
        return None
    if func == "set":
        leaf.value = farg
        sl.storage.set_value(leaf, farg)
        return None
    if func == "fetch_and_add":
        old = leaf.value
        leaf.value = old + farg
        sl.storage.set_value(leaf, leaf.value)
        return old
    raise ValueError(f"unknown range function {func!r}")


# ---------------------------------------------------------------------------
# §5.1 broadcast execution
# ---------------------------------------------------------------------------


@dataclass
class RangeResult:
    """Result of one range operation."""

    count: int
    values: List[Tuple[Hashable, Any]] = field(default_factory=list)


def make_handlers(sl: SkipListStructure) -> Dict[str, Any]:
    handlers = {
        f"{sl.name}:rng_bcast": _make_bcast(sl),
        f"{sl.name}:rng_root": _make_root(sl),
        f"{sl.name}:rng_boundary": _make_boundary(sl),
        f"{sl.name}:rng_chain": _make_chain(sl),
        f"{sl.name}:rng_count": _make_count(sl),
        f"{sl.name}:rng_offset": _make_offset(sl),
        f"{sl.name}:rng_go": _make_go(sl),
    }
    return handlers


def handlers_for(sl: SkipListStructure) -> Dict[str, Any]:
    """The range-op handler dict, created once per structure."""
    return cached_handlers(sl, "range", lambda: make_handlers(sl))


def _make_bcast(sl: SkipListStructure):
    def h_range_bcast(ctx, lkey, bound, func, farg, opid, tag=None):
        u = sl.upper_descend(lkey, ctx.charge)
        cur = u.next_leaf[ctx.mid] if u.next_leaf is not None else None
        while cur is not None and cur.key <= lkey:
            # local successor search: first local leaf strictly past lkey
            # (lkey is a JustBelow for inclusive bounds, so `<=` is the
            # "not yet in range" test in both cases).
            cur = cur.local_right
            ctx.charge(1)
        hits = 0
        values = []
        while cur is not None and bound.admits(cur.key):
            ctx.charge(1)
            ctx.touch(cur.nid)
            out = _apply_func(sl, cur, func, farg)
            if out is not None:
                values.append((cur.key, out))
            hits += 1
            cur = cur.local_right
        ctx.reply(("bcast", opid, ctx.mid, hits, values),
                  size=max(1, len(values)), tag=tag)

    return h_range_bcast


class _RangeBroadcastOp(BatchOp):
    def __init__(self, sl: SkipListStructure, lkey: Hashable, rkey: Hashable,
                 func: str, farg: Any, inclusive: Tuple[bool, bool]) -> None:
        self.sl = sl
        self.lkey, self.rkey = lkey, rkey
        self.func, self.farg = func, farg
        self.inclusive = inclusive
        self.name = f"{sl.name}:range_broadcast"

    def handlers(self):
        return handlers_for(self.sl)

    def route(self, machine, plan):
        sl = self.sl
        cpu = machine.cpu
        lq = JustBelow(self.lkey) if self.inclusive[0] else self.lkey
        bound = Bound(self.rkey, self.inclusive[1])
        replies = yield [Broadcast(f"{sl.name}:rng_bcast",
                                   (lq, bound, self.func, self.farg, 0))]
        total = 0
        values: List[Tuple[Hashable, Any]] = []
        for r in replies:
            _, _, _, hits, vals = r.payload
            total += hits
            values.extend(vals)
        if values:
            values = parallel_sort(cpu, values, key=lambda kv: kv[0])
            cpu.alloc(len(values))
            cpu.free(len(values))
        return RangeResult(count=total, values=values)


def range_broadcast(sl: SkipListStructure, lkey: Hashable, rkey: Hashable,
                    func: str = "read", farg: Any = None,
                    inclusive: Tuple[bool, bool] = (True, True),
                    ) -> RangeResult:
    """Execute one range operation by broadcasting (Theorem 5.1)."""
    return run_batch(sl.machine,
                     _RangeBroadcastOp(sl, lkey, rkey, func, farg, inclusive))


# ---------------------------------------------------------------------------
# §5.2 tree execution: the three-pass fan-out traversal
# ---------------------------------------------------------------------------
#
# Per-(opid, token) traversal state lives in the owning module's
# ``ModuleLocal.range_ctx``.  Tokens: a tree node's token is its ``nid``;
# the per-operation root aggregator's token is the string "root".
#
# Tree shape: the root has one slot per lower level's boundary side chain
# plus one slot per in-range upper leaf's down chain (in ascending key
# order).  A chain node's children are its down chain ("d") and its
# sibling continuation ("s").


@dataclass
class _NodeCtx:
    node: Node
    parent_mid: int
    parent_token: Any
    parent_tag: Any
    func: str
    farg: Any
    pending: int = 0
    count_d: int = 0
    count_s: int = 0
    self_count: int = 0
    child_d: Optional[Node] = None
    child_s: Optional[Node] = None


@dataclass
class _RootCtx:
    func: str
    farg: Any
    pending: int = 0
    slots: List[Optional[Node]] = field(default_factory=list)
    counts: List[int] = field(default_factory=list)
    want_offsets: bool = True
    # Single-operation mode dispatches offsets as soon as counts settle;
    # batched mode waits for the CPU's per-group "go" (paper §5.2 step 4:
    # groups of Theta(P log^2 P) results execute in ascending order so
    # each fits the shared memory).
    auto_offsets: bool = True


def _owner_or_here(ctx, node: Node) -> int:
    return node.owner if node.owner != UPPER else ctx.mid


def _spawn_chain(ctx, sl: SkipListStructure, node: Node, opid: Any,
                 parent_mid: int, parent_token: Any, parent_tag: Any,
                 bound: Bound, func: str, farg: Any) -> None:
    ctx.forward(_owner_or_here(ctx, node), f"{sl.name}:rng_chain",
                (node, opid, parent_mid, parent_token, parent_tag, bound,
                 func, farg))


def _make_root(sl: SkipListStructure):
    def h_rng_root(ctx, opid, lq, bound, func, farg, sides, tag=None):
        """Per-operation root aggregator.

        ``sides``: precomputed boundary side-chain heads (batched mode,
        one per lower level, possibly None), or None for single-operation
        mode where a boundary descent is spawned instead.
        """
        ml = sl.mlocal(ctx.mid)
        root = _RootCtx(func=func, farg=farg, auto_offsets=sides is None)
        # Upper region: walk the replicated upper-leaf level for in-range
        # upper leaves; each spawns its down chain.
        u0 = sl.upper_descend(lq, ctx.charge)
        uppers: List[Node] = []
        u = u0.right
        while u is not None and bound.admits(u.key):
            ctx.charge(1)
            uppers.append(u)
            u = u.right
        nslots = sl.h_low + len(uppers)
        root.slots = [None] * nslots
        root.counts = [0] * nslots
        root.pending = nslots
        root.want_offsets = func != "count"
        ml.range_ctx[(opid, "root")] = root

        if sides is None:
            # Single-operation mode: spawn the boundary descent; it will
            # report one count (possibly via a spawned chain) per level.
            x = u0.down
            ctx.forward(_owner_or_here(ctx, x), f"{sl.name}:rng_boundary",
                        (x, opid, ctx.mid, lq, bound, func, farg))
        else:
            for lvl, node in enumerate(sides):
                if node is None:
                    root.pending -= 1
                else:
                    root.slots[lvl] = node
                    _spawn_chain(ctx, sl, node, opid, ctx.mid, "root",
                                 ("slot", lvl), bound, func, farg)
        for j, un in enumerate(uppers):
            slot = sl.h_low + j
            root.slots[slot] = un.down
            _spawn_chain(ctx, sl, un.down, opid, ctx.mid, "root",
                         ("slot", slot), bound, func, farg)
        if root.pending == 0:
            # Empty search area: nothing was spawned at all.
            ctx.reply(("total", opid, 0), tag=tag)
            if root.auto_offsets or not root.want_offsets:
                del ml.range_ctx[(opid, "root")]
            # else: held (empty) until the CPU's per-group "go"

    return h_rng_root


def _make_boundary(sl: SkipListStructure):
    def h_rng_boundary(ctx, node, opid, root_mid, lq, bound, func, farg,
                       tag=None):
        """Boundary descent: walk to pred(lq) at this level, hand the side
        chain to the root's slot for this level, continue down."""
        x = node
        while True:
            ctx.charge(1)
            ctx.touch(x.nid)
            if x.right is not None and x.right.key <= lq:
                nxt = x.right
                if nxt.owner == UPPER or nxt.owner == ctx.mid:
                    x = nxt
                    continue
                ctx.forward(nxt.owner, f"{sl.name}:rng_boundary",
                            (nxt, opid, root_mid, lq, bound, func, farg))
                return
            break
        # x = pred(lq) at x.level; its side chain starts at x.right.
        s = x.right
        lvl = x.level
        if (s is not None and bound.admits(s.key)
                and s.up is None):
            _spawn_chain(ctx, sl, s, opid, root_mid, "root", ("slot", lvl),
                         bound, func, farg)
        else:
            # No chain at this level (either nothing in range here, or the
            # first in-range node has a tower and is covered above).
            ctx.forward(root_mid, f"{sl.name}:rng_count",
                        (opid, "root", ("slot", lvl), 0))
        if lvl > 0:
            d = x.down
            if d.owner == UPPER or d.owner == ctx.mid:
                # continue locally by re-entering the handler logic
                ctx.forward(ctx.mid, f"{sl.name}:rng_boundary",
                            (d, opid, root_mid, lq, bound, func, farg))
            else:
                ctx.forward(d.owner, f"{sl.name}:rng_boundary",
                            (d, opid, root_mid, lq, bound, func, farg))

    return h_rng_boundary


def _make_chain(sl: SkipListStructure):
    def h_rng_chain(ctx, node, opid, parent_mid, parent_token, parent_tag,
                    bound, func, farg, tag=None):
        ml = sl.mlocal(ctx.mid)
        ctx.charge(1)
        ctx.touch(node.nid)
        if (opid, node.nid) in ml.range_ctx:
            # Duplicate spawn: a boundary side chain whose head's tower
            # reaches the upper part is also spawned as that upper leaf's
            # down chain.  The two candidate positions are adjacent in the
            # traversal order, so the first registration keeps the subtree
            # and the duplicate's slot reports zero.
            ctx.forward(parent_mid, f"{sl.name}:rng_count",
                        (opid, parent_token, parent_tag, 0))
            return
        nctx = _NodeCtx(node=node, parent_mid=parent_mid,
                        parent_token=parent_token, parent_tag=parent_tag,
                        func=func, farg=farg)
        if node.level == 0:
            nctx.self_count = 1
        else:
            nctx.child_d = node.down
            nctx.pending += 1
        s = node.right
        if s is not None and bound.admits(s.key) and s.up is None:
            nctx.child_s = s
            nctx.pending += 1
        ml.range_ctx[(opid, node.nid)] = nctx
        if nctx.child_d is not None:
            _spawn_chain(ctx, sl, nctx.child_d, opid, ctx.mid, node.nid,
                         "d", bound, func, farg)
        if nctx.child_s is not None:
            _spawn_chain(ctx, sl, nctx.child_s, opid, ctx.mid, node.nid,
                         "s", bound, func, farg)
        if nctx.pending == 0:
            total = _report_count(ctx, sl, opid, nctx)
            if func == "count" or total == 0:
                # count mode never runs the offset pass; a zero-count
                # subtree never receives an offset either -- release the
                # state now or it would leak into later operations.
                del ml.range_ctx[(opid, node.nid)]

    return h_rng_chain


def _report_count(ctx, sl: SkipListStructure, opid: Any, nctx: _NodeCtx,
                  ) -> int:
    total = nctx.self_count + nctx.count_d + nctx.count_s
    # The chain head rides along so the root learns where to send the
    # slot's offset (single-operation mode spawns boundary chains without
    # the root knowing their heads in advance).
    ctx.forward(nctx.parent_mid, f"{sl.name}:rng_count",
                (opid, nctx.parent_token, nctx.parent_tag, total, nctx.node))
    return total


def _make_count(sl: SkipListStructure):
    def h_rng_count(ctx, opid, token, tag_slot, count, head=None, tag=None):
        ml = sl.mlocal(ctx.mid)
        ctx.charge(1)
        if token == "root":
            root: _RootCtx = ml.range_ctx[(opid, "root")]
            _, slot = tag_slot
            root.counts[slot] = count
            if head is not None and root.slots[slot] is None:
                root.slots[slot] = head
            root.pending -= 1
            if root.pending == 0:
                total = sum(root.counts)
                ctx.reply(("total", opid, total), size=1)
                if not root.want_offsets:
                    del ml.range_ctx[(opid, "root")]
                elif root.auto_offsets:
                    _dispatch_offsets(ctx, sl, opid, root)
                    del ml.range_ctx[(opid, "root")]
                # else: hold the root until the CPU's per-group "go"
        else:
            nctx: _NodeCtx = ml.range_ctx[(opid, token)]
            if tag_slot == "d":
                nctx.count_d = count
            else:
                nctx.count_s = count
            nctx.pending -= 1
            if nctx.pending == 0:
                total = _report_count(ctx, sl, opid, nctx)
                if nctx.func == "count" or total == 0:
                    # no offset pass will come; free the state now
                    del ml.range_ctx[(opid, token)]

    return h_rng_count


def _dispatch_offsets(ctx, sl: SkipListStructure, opid: Any,
                      root: _RootCtx) -> None:
    offset = 0
    for slot, node in enumerate(root.slots):
        if node is not None and root.counts[slot] > 0:
            ctx.forward(_owner_or_here(ctx, node), f"{sl.name}:rng_offset",
                        (opid, node.nid, offset))
        offset += root.counts[slot]


def _make_go(sl: SkipListStructure):
    def h_rng_go(ctx, opid, tag=None):
        """Per-group trigger: release one held root's offset pass."""
        ml = sl.mlocal(ctx.mid)
        ctx.charge(1)
        root: _RootCtx = ml.range_ctx.pop((opid, "root"))
        _dispatch_offsets(ctx, sl, opid, root)

    return h_rng_go


def _make_offset(sl: SkipListStructure):
    def h_rng_offset(ctx, opid, token, offset, tag=None):
        ml = sl.mlocal(ctx.mid)
        ctx.charge(1)
        nctx: _NodeCtx = ml.range_ctx.pop((opid, token))
        node = nctx.node
        after_self = offset
        if nctx.self_count:
            value = _apply_func(sl, node, nctx.func, nctx.farg)
            if nctx.func in ("read", "fetch_and_add"):
                ctx.reply(("item", opid, node.key, value, offset), size=1)
            after_self = offset + 1
        if nctx.child_d is not None and nctx.count_d > 0:
            ctx.forward(_owner_or_here(ctx, nctx.child_d),
                        f"{sl.name}:rng_offset",
                        (opid, nctx.child_d.nid, after_self))
        if nctx.child_s is not None and nctx.count_s > 0:
            ctx.forward(_owner_or_here(ctx, nctx.child_s),
                        f"{sl.name}:rng_offset",
                        (opid, nctx.child_s.nid,
                         after_self + nctx.count_d))

    return h_rng_offset


# ---------------------------------------------------------------------------
# general CPU-side functions (§5's "more complicated operations")
# ---------------------------------------------------------------------------


def apply_range_cpu(sl: SkipListStructure, lkey: Hashable, rkey: Hashable,
                    fn, use_broadcast: Optional[bool] = None,
                    ) -> RangeResult:
    """RangeOperation with an arbitrary CPU-side function.

    The paper: "More complicated operations can be split into a range
    query returning the values, a function applied on the CPU side, and
    a range update that writes back the results."  This helper performs
    exactly that split: one range read (broadcast for large ranges, tree
    otherwise -- or forced via ``use_broadcast``), a CPU application of
    ``fn(key, value) -> new_value`` (charged O(1) work per pair, O(log K)
    depth), and one batched Update writing the results back through the
    hash shortcut.

    Returns the *old* values (like ``fetch_and_add`` does).
    """
    from repro.core import ops_point

    machine = sl.machine
    p = sl.num_modules
    log_p = max(1, int(math.log2(p))) if p > 1 else 1
    if use_broadcast is None:
        probe = range_broadcast(sl, lkey, rkey, func="count")
        use_broadcast = probe.count > p * log_p
    if use_broadcast:
        res = range_broadcast(sl, lkey, rkey, func="read")
    else:
        res = range_tree_single(sl, lkey, rkey, func="read")
    k = len(res.values)
    with machine.cpu.region(2 * k):
        updates = [(key, fn(key, value)) for key, value in res.values]
        machine.cpu.charge(k, max(1.0, math.log2(k + 1)))
        if updates:
            ops_point.batch_update(sl, updates)
    return res


# ---------------------------------------------------------------------------
# hybrid routing (§5.2's closing remark)
# ---------------------------------------------------------------------------


def batch_range_auto(sl: SkipListStructure,
                     ops: Sequence[Tuple[Hashable, Hashable]],
                     func: str = "read", farg: Any = None,
                     large_threshold: Optional[int] = None,
                     ) -> List[RangeResult]:
    """Route each range op to its cheaper execution.

    The paper's §5.2 notes that instead of splitting very large
    subranges across shared-memory groups, "we could apply the algorithm
    from §5.1 [broadcast] to all large ranges."  This wrapper does that
    per *operation*: ops expected to cover more than ``large_threshold``
    pairs run as broadcasts (O(1) IO + O(K/P) returns), the rest run
    through the batched tree execution.

    The expected size of each op is estimated with one cheap counting
    pass (a count-mode tree batch costs no value traffic); the threshold
    defaults to the measured tree-vs-broadcast crossover ``~P·log P``.
    """
    machine = sl.machine
    n = len(ops)
    if n == 0:
        return []
    if func in ("set", "fetch_and_add"):
        spans = sorted(ops)
        for (l1, r1), (l2, r2) in zip(spans, spans[1:]):
            if l2 <= r1:
                raise ValueError(
                    "batched mutating range operations must be disjoint"
                )
    p = sl.num_modules
    log_p = max(1, int(math.log2(p))) if p > 1 else 1
    threshold = large_threshold if large_threshold is not None \
        else p * log_p
    counts = batch_range_tree(sl, ops, func="count")
    large_idx = [i for i, c in enumerate(counts) if c.count > threshold]
    small_idx = [i for i, c in enumerate(counts) if c.count <= threshold]
    results: List[Optional[RangeResult]] = [None] * n
    if func == "count":
        return counts
    if small_idx:
        small_ops = [ops[i] for i in small_idx]
        for i, res in zip(small_idx, batch_range_tree(sl, small_ops,
                                                      func, farg)):
            results[i] = res
    for i in large_idx:
        l, r = ops[i]
        results[i] = range_broadcast(sl, l, r, func, farg)
    return results  # type: ignore[return-value]


# ---------------------------------------------------------------------------
# public tree-mode entry points
# ---------------------------------------------------------------------------


def _next_opids(sl: SkipListStructure, count: int) -> int:
    """Reserve ``count`` structure-unique operation ids.

    Traversal state is keyed (opid, node id) in the modules; reusing
    opids across batches would make a later spawn look like a duplicate
    of a finished one.
    """
    base = getattr(sl, "_range_op_seq", 0)
    sl._range_op_seq = base + count
    return base


class _RangeTreeSingleOp(BatchOp):
    def __init__(self, sl: SkipListStructure, lkey: Hashable, rkey: Hashable,
                 func: str, farg: Any, inclusive: Tuple[bool, bool]) -> None:
        self.sl = sl
        self.lkey, self.rkey = lkey, rkey
        self.func, self.farg = func, farg
        self.inclusive = inclusive
        self.name = f"{sl.name}:range_tree_single"

    def handlers(self):
        return handlers_for(self.sl)

    def route(self, machine, plan):
        sl = self.sl
        lq = JustBelow(self.lkey) if self.inclusive[0] else self.lkey
        bound = Bound(self.rkey, self.inclusive[1])
        opid = _next_opids(sl, 1)
        replies = yield [(machine.random_module(), f"{sl.name}:rng_root",
                          (opid, lq, bound, self.func, self.farg, None),
                          None)]
        return _collect_one(sl, replies, opid=opid)


def range_tree_single(sl: SkipListStructure, lkey: Hashable, rkey: Hashable,
                      func: str = "read", farg: Any = None,
                      inclusive: Tuple[bool, bool] = (True, True),
                      ) -> RangeResult:
    """One range operation by the naive tree search (paper §5.2)."""
    return run_batch(sl.machine,
                     _RangeTreeSingleOp(sl, lkey, rkey, func, farg,
                                        inclusive))


def _collect_one(sl: SkipListStructure, replies, opid: Any) -> RangeResult:
    cpu = sl.machine.cpu
    total = 0
    items: List[Tuple[int, Hashable, Any]] = []
    for r in replies:
        payload = r.payload
        if payload[0] == "total" and payload[1] == opid:
            total = payload[2]
        elif payload[0] == "item" and payload[1] == opid:
            _, _, key, value, idx = payload
            items.append((idx, key, value))
    items.sort()
    cpu.charge(len(items) + 1, max(1.0, math.log2(len(items) + 2)))
    return RangeResult(count=total,
                       values=[(k, v) for _, k, v in items])


class _BatchRangeTreeOp(BatchOp):
    def __init__(self, sl: SkipListStructure,
                 ops: Sequence[Tuple[Hashable, Hashable]],
                 func: str, farg: Any) -> None:
        self.sl = sl
        self.ops = ops
        self.func, self.farg = func, farg
        self.name = f"{sl.name}:batch_range_tree"

    def handlers(self):
        return handlers_for(self.sl)

    def route(self, machine, plan):
        sl, ops = self.sl, self.ops
        func, farg = self.func, self.farg
        cpu = machine.cpu
        n = len(ops)
        if n == 0:
            return []
        for l, r in ops:
            if r < l:
                raise ValueError("range with rkey < lkey")
        if func in ("set", "fetch_and_add"):
            # Mutating functions are applied once per covered key;
            # overlapping ops in one batch would make the multiplicity
            # (and, for set, the ordering) ill-defined, so require
            # disjoint ranges.
            spans = sorted(ops)
            for (l1, r1), (l2, r2) in zip(spans, spans[1:]):
                if l2 <= r1:
                    raise ValueError(
                        "batched mutating range operations must be disjoint"
                    )

        # -- split into disjoint elementary subranges --------------------
        # Elementary pieces over the sorted endpoints: the point [e, e]
        # for each endpoint contained in some op, and the open gap
        # (e, e') for each consecutive endpoint pair fully contained in
        # some op.  Pieces never straddle an endpoint, so containment
        # tests are whole-piece.
        endpoints = sorted({e for op in ops for e in op})
        subranges: List[Tuple[Any, Bound]] = []  # (search lq, right bound)
        sub_meta: List[Tuple[Hashable, Hashable]] = []  # (lo, hi) hull
        cpu.charge_wd(WorkDepth(2 * n * max(1, int(math.log2(n + 1))),
                                max(1.0, math.log2(n + 1))))
        for i, e in enumerate(endpoints):
            if any(l <= e <= r for l, r in ops):
                subranges.append((JustBelow(e), Bound(e, True)))
                sub_meta.append((e, e))
            if i + 1 < len(endpoints):
                a, b = e, endpoints[i + 1]
                if any(l <= a and b <= r for l, r in ops):
                    subranges.append((a, Bound(b, False)))
                    sub_meta.append((a, b))

        # -- boundary predecessors via the pivot-protected search --------
        lqs = [lq for lq, _ in subranges]
        h_cap = [sl.h_low - 1] * len(lqs)
        outcomes = batch_search(sl, lqs, record_all=True,
                                record_levels=h_cap)

        # -- launch one traversal per subrange ---------------------------
        # sides[lvl] is the level's in-range side-chain head (the recorded
        # predecessor's right neighbor).  When that node's tower continues
        # upward it is also reachable as a down-child from the level
        # above; the snapshot test below skips those, and the one case
        # snapshots cannot see (a tower reaching the upper part) is
        # resolved by the chain handler's duplicate-registration guard --
        # the two candidate positions are adjacent in the traversal order,
        # so either is valid.
        base = _next_opids(sl, len(subranges))
        root_module: Dict[int, int] = {}
        launch_msgs: List[tuple] = []
        for sid, ((lq, bound), outcome) in enumerate(zip(subranges,
                                                         outcomes)):
            sides: List[Optional[Node]] = [None] * sl.h_low
            by_level = outcome.by_level or {}
            for lvl in range(sl.h_low):
                entry = by_level.get(lvl)
                if entry is None:
                    continue
                _, right = entry
                if right is None or not bound.admits(right.key):
                    continue
                above = by_level.get(lvl + 1)
                if above is not None and above[1] is not None \
                        and above[1].key == right.key:
                    continue  # covered by the level above (same tower)
                sides[lvl] = right
            dest = machine.random_module()
            root_module[sid] = dest
            launch_msgs.append(
                (dest, f"{sl.name}:rng_root",
                 (base + sid, lq, bound, func, farg, sides), None,
                 max(1, sum(1 for s in sides if s is not None))))
        cpu.charge_wd(WorkDepth(len(subranges) * sl.h_low,
                                max(1.0, math.log2(len(subranges) + 1))))

        # -- count pass: traversal + subtree counts, no result traffic ---
        totals: Dict[int, int] = {}
        items: Dict[int, List[Tuple[int, Hashable, Any]]] = {}
        replies = yield launch_msgs
        for r in replies:
            payload = r.payload
            if payload[0] == "total":
                totals[payload[1] - base] = payload[2]

        # -- fetch pass, in shared-memory groups (paper §5.2 step 4) -----
        # Subranges are ascending; the prefix sums of their sizes
        # partition them into groups of at most half of M result words
        # (the other half is headroom for the batch's standing
        # allocations).  Each group's offset passes are released
        # together, its results consumed, and its footprint freed before
        # the next group starts.
        if func != "count":
            group_words = max(1, machine.cpu.shared_memory_words // 2)
            group: List[int] = []
            group_mass = 0

            def run_group(g: List[int], mass: int):
                msgs = [(root_module[sid], f"{sl.name}:rng_go",
                         (base + sid,), None) for sid in g]
                with cpu.region(max(1, mass)):
                    group_replies = yield msgs
                    for r in group_replies:
                        payload = r.payload
                        if payload[0] == "item":
                            _, opid, key, value, idx = payload
                            items.setdefault(opid - base, []).append(
                                (idx, key, value))

            for sid in range(len(subranges)):
                mass = totals.get(sid, 0)
                if group and group_mass + mass > group_words:
                    yield from run_group(group, group_mass)
                    group, group_mass = [], 0
                group.append(sid)
                group_mass += mass
            if group:
                yield from run_group(group, group_mass)

        # -- assemble per-op results -------------------------------------
        # A piece belongs to op [l, r] iff its closed hull is inside
        # [l, r] (pieces never straddle an op endpoint).  Pieces are in
        # ascending key order, so concatenation preserves range order.
        sorted_items = {sid: sorted(got) for sid, got in items.items()}
        results: List[RangeResult] = []
        work = 0
        for l, r in ops:
            total = 0
            vals: List[Tuple[Hashable, Any]] = []
            for sid, (lo, hi) in enumerate(sub_meta):
                if not (l <= lo and hi <= r):
                    continue
                total += totals.get(sid, 0)
                got = sorted_items.get(sid, ())
                vals.extend((k, v) for _, k, v in got)
                work += len(got) + 1
            results.append(RangeResult(count=total, values=vals))
        cpu.charge_wd(WorkDepth(work + n, max(1.0, math.log2(work + n + 1))))
        return results


def batch_range_tree(sl: SkipListStructure,
                     ops: Sequence[Tuple[Hashable, Hashable]],
                     func: str = "read", farg: Any = None,
                     ) -> List[RangeResult]:
    """Batched tree-structured range operations (Theorem 5.2).

    ``ops`` are inclusive ``[lkey, rkey]`` pairs; results align with the
    input.  The batch is split into disjoint ascending subranges, subrange
    boundary predecessors come from one pivot-protected batched search,
    and each subrange runs the fan-out traversal; results are assembled
    per operation on the CPU side in shared-memory-sized groups.
    """
    return run_batch(sl.machine, _BatchRangeTreeOp(sl, ops, func, farg))
