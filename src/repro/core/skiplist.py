"""Public API: the PIM-balanced batch-parallel skip list.

See the package docstring (:mod:`repro.core`) for the operation summary
and the paper mapping.  All batch methods return results aligned with
their input sequence and charge the model's costs to the machine they
were constructed on; measure an operation with::

    before = machine.snapshot()
    sl.batch_get(keys)
    cost = machine.delta_since(before)
"""

from __future__ import annotations

import math
from typing import Any, Hashable, Iterable, List, Optional, Sequence, Tuple

from repro.core import ops_delete, ops_point, ops_search, ops_successor, ops_upsert, ops_write
from repro.core.structure import SkipListStructure
from repro.sim.errors import InvalidBatchError
from repro.sim.machine import PIMMachine


class PIMSkipList:
    """A batch-parallel ordered map over a :class:`PIMMachine`.

    Parameters
    ----------
    machine:
        The PIM machine to live on.
    name:
        Handler-namespace prefix; two structures on one machine need
        distinct names.
    enforce_batch_size:
        When true, batches below the paper's minimum sizes
        (``P log P`` for Get/Update, ``P log^2 P`` for the rest) raise
        :class:`~repro.sim.errors.InvalidBatchError`.  Default off so
        small-scale tests and ablations can run; the complexity
        guarantees only hold at or above the minimums.
    storage:
        Structure-storage backend: ``"object"`` (the plain linked node
        graph), ``"arena"`` (node graph + flat index-addressed arrays
        enabling the vectorized search walk; see
        :mod:`repro.core.storage`), or ``None`` to consult the
        ``REPRO_STRUCT_STORAGE`` environment variable (default
        ``"object"``).  Model metrics are certified bit-identical
        across storages by ``repro.verify.differ``; only wall-clock
        behaviour differs.
    """

    def __init__(self, machine: PIMMachine, name: str = "skiplist",
                 enforce_batch_size: bool = False,
                 h_low_override: Optional[int] = None,
                 storage: Optional[str] = None) -> None:
        self.machine = machine
        self.struct = SkipListStructure(machine, name=name,
                                        h_low_override=h_low_override,
                                        storage=storage)
        self.enforce_batch_size = enforce_batch_size
        # Register eagerly (direct sends in tests and the single-op path
        # rely on it); the op-pipeline driver re-registers the same cached
        # dicts as a no-op on every run_batch.
        machine.register_all(ops_point.handlers_for(self.struct))
        machine.register_all(ops_search.handlers_for(self.struct))
        machine.register_all(ops_write.handlers_for(self.struct))
        machine.register_all(ops_upsert.handlers_for(self.struct))
        machine.register_all(ops_delete.handlers_for(self.struct))
        from repro.core import ops_range, ops_select
        machine.register_all(ops_range.handlers_for(self.struct))
        machine.register_all(ops_select.handlers_for(self.struct))

    # -- batch-size policy ---------------------------------------------------

    def _log_p(self) -> int:
        return max(1, int(round(math.log2(self.machine.num_modules)))
                   if self.machine.num_modules > 1 else 1)

    @property
    def min_point_batch(self) -> int:
        """Paper minimum for Get/Update batches: ``P log P``."""
        return self.machine.num_modules * self._log_p()

    @property
    def min_search_batch(self) -> int:
        """Paper minimum for Successor/Upsert/Delete/Range: ``P log^2 P``."""
        return self.machine.num_modules * self._log_p() ** 2

    def _check_batch(self, size: int, minimum: int, op: str) -> None:
        if self.enforce_batch_size and 0 < size < minimum:
            raise InvalidBatchError(
                f"{op}: batch of {size} below the minimum {minimum} "
                f"(P log P / P log^2 P) required for the stated bounds"
            )

    # -- construction ---------------------------------------------------------

    def build(self, items: Iterable[Tuple[Hashable, Any]]) -> None:
        """Initialize from sorted unique (key, value) pairs (see
        :meth:`SkipListStructure.bulk_build`)."""
        self.struct.bulk_build(items)

    # -- point operations -----------------------------------------------------

    def batch_get(self, keys: Sequence[Hashable]) -> List[Optional[Any]]:
        """Get(k) for each key; ``None`` for missing keys (Theorem 4.1)."""
        self._check_batch(len(keys), self.min_point_batch, "Get")
        return ops_point.batch_get(self.struct, keys)

    def batch_update(self, pairs: Sequence[Tuple[Hashable, Any]]) -> int:
        """Update(k, v) for each pair; missing keys ignored.  Returns the
        number of keys found (Theorem 4.1)."""
        self._check_batch(len(pairs), self.min_point_batch, "Update")
        return ops_point.batch_update(self.struct, pairs)

    # -- ordered queries -------------------------------------------------------

    def batch_successor(self, keys: Sequence[Hashable],
                        ) -> List[Optional[Tuple[Hashable, Any]]]:
        """Successor(k): smallest (key, value) with key >= k (Thm 4.3)."""
        self._check_batch(len(keys), self.min_search_batch, "Successor")
        return ops_successor.batch_successor(self.struct, keys)

    def batch_predecessor(self, keys: Sequence[Hashable],
                          ) -> List[Optional[Tuple[Hashable, Any]]]:
        """Predecessor(k): largest (key, value) with key <= k (Thm 4.3)."""
        self._check_batch(len(keys), self.min_search_batch, "Predecessor")
        return ops_successor.batch_predecessor(self.struct, keys)

    # -- updates ----------------------------------------------------------------

    def batch_upsert(self, pairs: Sequence[Tuple[Hashable, Any]],
                     ) -> ops_upsert.UpsertStats:
        """Upsert(k, v): update if present, insert otherwise (Thm 4.4)."""
        self._check_batch(len(pairs), self.min_search_batch, "Upsert")
        return ops_upsert.batch_upsert(self.struct, pairs)

    def batch_delete(self, keys: Sequence[Hashable]) -> ops_delete.DeleteStats:
        """Delete(k); missing keys are ignored (Theorem 4.5)."""
        self._check_batch(len(keys), self.min_search_batch, "Delete")
        return ops_delete.batch_delete(self.struct, keys)

    # -- range operations ---------------------------------------------------------

    def range_broadcast(self, lkey: Hashable, rkey: Hashable,
                        func: str = "read", func_arg: Any = None):
        """One range operation by broadcast (paper §5.1, Theorem 5.1)."""
        from repro.core import ops_range
        return ops_range.range_broadcast(self.struct, lkey, rkey, func,
                                         func_arg)

    def batch_range(self, ops: Sequence[Tuple[Hashable, Hashable]],
                    func: str = "read", func_arg: Any = None):
        """Batched range operations by tree structure (§5.2, Thm 5.2)."""
        self._check_batch(len(ops), self.min_search_batch, "RangeOperation")
        from repro.core import ops_range
        return ops_range.batch_range_tree(self.struct, ops, func, func_arg)

    def batch_range_auto(self, ops: Sequence[Tuple[Hashable, Hashable]],
                         func: str = "read", func_arg: Any = None,
                         large_threshold: Optional[int] = None):
        """Batched ranges with per-op routing: large ops broadcast (§5.1),
        small ops run through the tree execution (§5.2's closing remark)."""
        self._check_batch(len(ops), self.min_search_batch, "RangeOperation")
        from repro.core import ops_range
        return ops_range.batch_range_auto(self.struct, ops, func, func_arg,
                                          large_threshold)

    def apply_range(self, lkey: Hashable, rkey: Hashable, fn,
                    use_broadcast: Optional[bool] = None):
        """Range operation with an arbitrary CPU-side function
        ``fn(key, value) -> new_value`` (the paper's read / CPU-apply /
        write-back split); returns the old values."""
        from repro.core import ops_range
        return ops_range.apply_range_cpu(self.struct, lkey, rkey, fn,
                                         use_broadcast)

    # -- single operations (paper §4's warm-up executions) ----------------

    def get(self, key: Hashable) -> Optional[Any]:
        """Get one key via the hash shortcut (2 messages)."""
        from repro.core import single_ops
        return single_ops.get_one(self.struct, key)

    def update(self, key: Hashable, value: Any) -> bool:
        """Update one key; returns whether it existed."""
        from repro.core import single_ops
        return single_ops.update_one(self.struct, key, value)

    def successor(self, key: Hashable) -> Optional[Tuple[Hashable, Any]]:
        """Successor of one key (naive single search)."""
        from repro.core import single_ops
        return single_ops.successor_one(self.struct, key)

    def predecessor(self, key: Hashable) -> Optional[Tuple[Hashable, Any]]:
        """Predecessor of one key (naive single search)."""
        from repro.core import single_ops
        return single_ops.predecessor_one(self.struct, key)

    def upsert(self, key: Hashable, value: Any) -> bool:
        """Upsert one pair; returns True when a new key was inserted."""
        from repro.core import single_ops
        return single_ops.upsert_one(self.struct, key, value)

    def delete(self, key: Hashable) -> bool:
        """Delete one key; returns whether it existed."""
        from repro.core import single_ops
        return single_ops.delete_one(self.struct, key)

    def batch_contains(self, keys: Sequence[Hashable]) -> List[bool]:
        """Membership per key (distinguishes stored-None from missing)."""
        from repro.core import ops_point
        return ops_point.batch_contains(self.struct, keys)

    # -- differential-verification conformance surface ----------------------

    #: Batch ops this structure can replay through :meth:`apply_batch`.
    BATCH_CAPS = frozenset({"get", "successor", "upsert", "delete", "range"})

    def apply_batch(self, op: str, payload: Sequence) -> Optional[list]:
        """Uniform batch dispatch for the differential verifier.

        The conformance contract, shared by the baselines, the LSM store
        and :mod:`repro.verify`: ``get`` returns a list of values
        (``None`` for missing keys), ``successor`` a list of ``(key,
        value)`` pairs or ``None``, ``range`` one inclusive
        ``[(key, value), ...]`` result list per ``(lo, hi)`` op;
        ``upsert`` and ``delete`` return ``None`` -- mutations are
        verified through subsequent reads and final-state comparison.
        """
        if op == "get":
            return self.batch_get(list(payload))
        if op == "successor":
            return self.batch_successor(list(payload))
        if op == "upsert":
            if payload:
                self.batch_upsert(list(payload))
            return None
        if op == "delete":
            if payload:
                self.batch_delete(list(payload))
            return None
        if op == "range":
            if not payload:
                return []
            return [list(r.values) for r in self.batch_range(list(payload))]
        raise ValueError(f"apply_batch: unknown op {op!r}")

    # -- bulk structure surgery (compositions; costs = the moved data) ----

    def union_into(self, other: "PIMSkipList") -> int:
        """Absorb every pair from ``other`` (other is left unchanged);
        returns the number of keys inserted or updated.

        A composition: one broadcast scan of ``other`` (O(1) rounds,
        O(n_other/P) IO) + one batched Upsert into ``self``.
        """
        items = other.scan_all()
        if not items:
            return 0
        stats = self.batch_upsert(items)
        return stats.updated + stats.inserted

    def split(self, key: Hashable) -> "PIMSkipList":
        """Move every pair with key >= ``key`` into a new structure.

        Returns the new :class:`PIMSkipList` (on the same machine, with
        a derived name).  A composition: one broadcast range read, one
        batched Delete from ``self``, one bulk build of the new
        structure -- O(moved/P) IO plus Delete's Theorem 4.5 costs.
        """
        from repro.core import ops_range
        from repro.core.probes import ABOVE_ALL
        seq = getattr(self, "_split_seq", 0)
        self._split_seq = seq + 1
        moved = ops_range.range_broadcast(
            self.struct, key, ABOVE_ALL, func="read",
            inclusive=(True, False)).values
        if moved:
            self.batch_delete([k for k, _ in moved])
        out = PIMSkipList(self.machine,
                          name=f"{self.struct.name}:split{seq}",
                          enforce_batch_size=self.enforce_batch_size,
                          storage=self.storage)
        out.build(moved)
        return out

    # -- order statistics ---------------------------------------------------

    def rank(self, key: Hashable) -> int:
        """Number of stored keys strictly below ``key`` (one broadcast
        count: O(1) IO, O(1) rounds)."""
        from repro.core import ops_select
        return ops_select.rank(self.struct, key)

    def select(self, index: int) -> Hashable:
        """The 0-indexed ``index``-th smallest key, by distributed
        weighted-median selection (O(log n) whp rounds of O(P) probes)."""
        from repro.core import ops_select
        return ops_select.select(self.struct, index)

    # -- whole-structure queries --------------------------------------------

    def min_item(self) -> Optional[Tuple[Hashable, Any]]:
        """The smallest (key, value), or None when empty (one search)."""
        from repro.core.probes import BELOW_ALL
        return self.successor(BELOW_ALL)

    def max_item(self) -> Optional[Tuple[Hashable, Any]]:
        """The largest (key, value), or None when empty (one search)."""
        from repro.core.probes import ABOVE_ALL
        return self.predecessor(ABOVE_ALL)

    def scan_all(self) -> List[Tuple[Hashable, Any]]:
        """Every (key, value) in order, via one broadcast range (§5.1):
        O(1) rounds, O(n/P) whp IO for the returned values."""
        if self.size == 0:
            return []
        from repro.core.probes import ABOVE_ALL, BELOW_ALL
        from repro.core import ops_range
        res = ops_range.range_broadcast(
            self.struct, BELOW_ALL, ABOVE_ALL, func="read",
            inclusive=(False, False))
        return res.values

    # -- introspection ---------------------------------------------------------

    @property
    def size(self) -> int:
        """Number of keys currently stored."""
        return self.struct.num_keys

    @property
    def storage(self) -> str:
        """The resolved structure-storage backend ("object" / "arena")."""
        return self.struct.storage_kind

    def check_integrity(self) -> None:
        """Assert all structural invariants (test/diagnostic)."""
        self.struct.check_integrity()

    def to_dict(self) -> dict:
        """All key/value pairs (diagnostic; not cost-accounted)."""
        return {n.key: n.value for n in self.struct.iter_level(0)}
