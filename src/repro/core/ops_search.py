"""The skip-list search walk (shared by Successor/Predecessor/Upsert).

A search for key ``k`` finds the leaf holding the largest key <= ``k``
(the predecessor leaf; the successor is that leaf or its right neighbor).
The upper part is replicated, so the descent from the root to the
upper-part leaf is local on whatever module executes it (``search_entry``)
and costs ``O(log n)`` whp local work.  Entering the lower part, every hop
to a node owned by a different module is a ``TaskSend`` continuation --
one message, one round -- realizing the paper's "push each query one node
further per step" execution; runs of same-module (or replicated sentinel)
nodes are walked locally.

When ``record`` is set, every visited lower-part node is streamed back to
shared memory (one constant-size message per node), which is how stage 1
of the batched Successor saves the pivots' lower-part search paths.

Vectorized wavefront (arena storage + columnar engine)
------------------------------------------------------
With the arena storage backend (:mod:`repro.core.storage`) the structure
is additionally held as flat index-addressed arrays, and the per-round
batch kernels below advance the *whole* frontier of in-flight searches
with numpy gathers instead of per-task Python pointer chasing: one
``right[cur]`` / ``key_i64[right]`` gather and one compare per wavefront
step replaces one Python loop iteration per task.  Searches that cross
to another module are re-staged as *column* chunks
(``BatchRound.stage_cols``) -- arena row index, int64 target and integer
opid -- so an in-flight search stays array-shaped from round to round
and only touches Python when it finishes (one ``done`` reply per op).

Rows that cannot vectorize (path recording, non-int64 keys or opids,
nodes not arena-resident) fall back to the scalar per-row loop;
accounting (work, message counts, rounds) is charged identically on both
paths, so the columnar metric streams stay bit-identical across storages
-- certified by ``repro.verify.differ``'s cross-storage replay.
"""

from __future__ import annotations

from typing import Any, Dict, Hashable, Optional

from repro.core.node import Node, UPPER
from repro.core.probes import ABOVE_ALL, AboveAll, BELOW_ALL, BelowAll
from repro.core.storage import I64_MAX, I64_MIN
from repro.core.structure import SkipListStructure
from repro.ops import cached_handlers
from repro.sim.fastpath import COLS
from repro.sim.task import Reply

try:
    import numpy as _np
except ImportError:  # pragma: no cover - numpy is an optional accelerator
    _np = None

VEC_MIN = 16
"""Minimum vector-eligible rows per round before the numpy path engages
(below this the per-row Python loop wins on setup cost)."""


def _target_i64(key: Any) -> Optional[int]:
    """Map a search target onto the arena's int64 key order, or None.

    Plain ints strictly inside the int64 range compare identically in
    either representation.  ``BELOW_ALL`` maps to int64-min: no stored
    non-sentinel key compares <= it, and sentinels never appear as
    right-targets.  ``ABOVE_ALL`` maps to int64-max: every stored key
    compares <= it (stored keys are strictly inside the range, else the
    arena reports ``vector_ok == False``).  Everything else -- JustBelow
    probes, tuples, strings -- walks the scalar path.
    """
    if type(key) is int and I64_MIN < key < I64_MAX:
        return key
    if isinstance(key, BelowAll):
        return I64_MIN
    if isinstance(key, AboveAll):
        return I64_MAX
    return None


def _key_from_i64(t: int) -> Any:
    """Invert :func:`_target_i64` (column rows falling back to scalar)."""
    if t == I64_MIN:
        return BELOW_ALL
    if t == I64_MAX:
        return ABOVE_ALL
    return t


def make_handlers(sl: SkipListStructure) -> Dict[str, Any]:
    """PIM-side handlers for the search walk on ``sl``.

    ``lower_walk`` is registered directly as the ``search_step`` handler
    (the hottest function in the whole simulator): it walks the run of
    locally-available nodes (this module's, plus replicated sentinels),
    then either forwards to the next owner or replies
    ``("done", opid, pred_leaf, pred_right)``.  Work is charged once per
    run (same total as per-node charging) and per-node touches are
    skipped entirely when neither tracing nor qrqw needs them.
    """
    fn_step = sl.fn_search_step

    def lower_walk(ctx, x, key, opid, record, tag=None):
        hops = 0
        tracing = ctx.tracing
        while True:
            hops += 1
            if tracing:
                ctx.touch(x.nid)
            if record:
                ctx.reply(("path", opid, x, x.level, x.right), size=1)
            r = x.right
            if r is not None and r.key <= key:
                nxt = r
            elif x.level > 0:
                nxt = x.down
            else:
                module = ctx.module
                module.work += hops
                module.round_work += hops
                # Inlined ctx.reply: the "done" reply ends every search.
                ctx._replies.append(Reply(("done", opid, x, r),
                                          None, ctx.mid))
                ctx._sent_size += 1
                return
            owner = nxt.owner
            if owner == UPPER or owner == ctx.mid:
                x = nxt
            else:
                module = ctx.module
                module.work += hops
                module.round_work += hops
                # Equivalent to ctx.forward(owner, fn_step, ...), staged
                # directly: the continuation handler is this function and
                # the destination comes from the placement hash, so the
                # per-hop registry lookup and bounds check are skipped.
                staged = ctx.machine._staged
                entry = (lower_walk, (nxt, key, opid, record), None, fn_step)
                slot = staged.get(owner)
                if slot is None:
                    staged[owner] = [1, [], [entry]]
                else:
                    slot[0] += 1
                    slot[2].append(entry)
                ctx._sent_size += 1
                return

    def h_search_entry(ctx, key, opid, record, tag=None):
        # Upper-part descent is local: all touched nodes are replicated.
        u = sl.upper_descend(key, ctx.charge)
        x = u.down  # first lower-part node on the path
        if x.owner == UPPER or x.owner == ctx.mid:
            lower_walk(ctx, x, key, opid, record)
        else:
            ctx.forward(x.owner, fn_step, (x, key, opid, record))

    # -- batch variants (columnar backend) --------------------------------
    #
    # One call per round over all of the round's search tasks, mirroring
    # the scalar handlers' charges/replies/forwards exactly.  The walk is
    # read-only over the shared structure, order-insensitive and draws no
    # RNG, so it satisfies the columnar execution contract (certified
    # bit-identical by repro.verify.differ).  Inert on the object engine.

    def _walk_batch(bct, mid, x, key, opid, record, hops):
        """Walk one task from ``x``; returns a forward row or None.

        ``hops`` pre-counts nodes already attributed (0 for a step task).
        Work/sent/reply accounting mirrors ``lower_walk`` exactly.
        """
        replies = bct.replies
        work = bct.work
        sent = bct.sent
        while True:
            hops += 1
            if record:
                replies.append(Reply(("path", opid, x, x.level, x.right),
                                     None, mid))
                sent[mid] += 1
            r = x.right
            if r is not None and r.key <= key:
                nxt = r
            elif x.level > 0:
                nxt = x.down
            else:
                work[mid] += hops
                replies.append(Reply(("done", opid, x, r), None, mid))
                sent[mid] += 1
                return None
            owner = nxt.owner
            if owner == UPPER or owner == mid:
                x = nxt
            else:
                work[mid] += hops
                sent[mid] += 1
                return (owner, (nxt, key, opid, record), None, 1)

    def _scalar_step_rows(bct, rows, out_append):
        """The per-row walk over a list of step rows (object-path hot
        loop, and the fallback for rows the vector walk cannot take)."""
        work = bct.work
        sent = bct.sent
        rep_append = bct.replies.append
        for mid, args, _tag, _size in rows:
            x, key, opid, record = args
            if record:
                fwd = _walk_batch(bct, mid, x, key, opid, record, 0)
                if fwd is not None:
                    out_append(fwd)
                continue
            # Hot path: the recording-free walk, inlined per task.
            hops = 0
            while True:
                hops += 1
                r = x.right
                if r is not None and r.key <= key:
                    nxt = r
                elif x.level > 0:
                    nxt = x.down
                else:
                    work[mid] += hops
                    rep_append(Reply(("done", opid, x, r), None, mid))
                    sent[mid] += 1
                    break
                owner = nxt.owner
                if owner == UPPER or owner == mid:
                    x = nxt
                else:
                    work[mid] += hops
                    out_append((owner, (nxt, key, opid, record), None, 1))
                    sent[mid] += 1
                    break

    def _cols_to_rows(arena, ch):
        """Reconstruct scalar step rows from one of our column chunks
        (fallback when a round is too small to vectorize)."""
        nodes = arena.nodes
        return [(mid, (nodes[aid], _key_from_i64(tgt), opid, False),
                 None, 1)
                for mid, aid, tgt, opid in zip(ch.dests.tolist(),
                                               ch.cols[0].tolist(),
                                               ch.cols[1].tolist(),
                                               ch.cols[2].tolist())]

    def _vector_lower(bct, arena, work_acc, sent_acc, fwd_parts,
                      mids, aids, tgts, opids):
        """Advance a whole wavefront of recording-free lower walks.

        Arrays are parallel per in-flight row: ``mids`` the executing
        module, ``aids`` the current arena row, ``tgts`` the int64
        search target, ``opids`` the integer opid.  Each loop iteration
        is one synchronized step of every row: gather the
        right-successor, compare against the target, go right / go down
        / finish -- exactly the per-row scalar automaton, so per-module
        work and message counts land identically.  Every row enters
        with zero hops and all rows advance in lockstep, so the per-row
        hop count is one uniform scalar.  Rows crossing to another
        module accumulate into ``fwd_parts`` (staged as one column chunk
        by the caller); only finished rows touch Python.
        """
        rep_append = bct.replies.append
        nodes = arena.nodes
        right = arena.right
        down = arena.down
        level = arena.level
        owner = arena.owner
        key_i64 = arena.key_i64
        where = _np.where
        bincount = _np.bincount
        P = bct.num_modules
        hops = 0
        while mids.size:
            hops += 1
            r = right[aids]
            # Absent successors are -1: the wrapped gather reads a valid
            # row, and every lane it feeds is masked off by ``r >= 0``
            # (or by ``~done`` for the owner gather below).
            go = (r >= 0) & (key_i64[r] <= tgts)
            done = ~go & (level[aids] == 0)
            nxt = where(go, r, down[aids])
            own = owner[nxt]
            cross = ~done & (own != UPPER) & (own != mids)
            fin = done | cross
            if fin.any():
                cnt = bincount(mids[fin], minlength=P)
                work_acc += cnt * float(hops)
                sent_acc += cnt
                if done.any():
                    for m, o, a, ri in zip(mids[done].tolist(),
                                           opids[done].tolist(),
                                           aids[done].tolist(),
                                           r[done].tolist()):
                        rep_append(Reply(
                            ("done", o, nodes[a],
                             nodes[ri] if ri >= 0 else None), None, m))
                if cross.any():
                    fwd_parts.append((own[cross], nxt[cross], tgts[cross],
                                      opids[cross]))
                keep = ~fin
                aids = nxt[keep]
                mids = mids[keep]
                tgts = tgts[keep]
                opids = opids[keep]
            else:
                aids = nxt

    def _stage_fwd_parts(bct, fwd_parts):
        if not fwd_parts:
            return
        if len(fwd_parts) == 1:
            d, a, t, o = fwd_parts[0]
        else:
            d = _np.concatenate([p[0] for p in fwd_parts])
            a = _np.concatenate([p[1] for p in fwd_parts])
            t = _np.concatenate([p[2] for p in fwd_parts])
            o = _np.concatenate([p[3] for p in fwd_parts])
        bct.stage_cols(fn_step, d, (a, t, o), 1)

    def batch_search_step(bct, chunks):
        out: list = []
        out_append = out.append
        arena = sl.storage.arena
        vec_ready = (_np is not None and arena is not None
                     and arena.vector_ok)
        col_parts: list = []   # (dests, aids, tgts, opids) from COLS chunks
        scal: list = []
        vec: list = []
        vtgt: list = []
        for ch in chunks:
            if ch.kind == COLS:
                # One of our own column chunks from the previous round.
                if vec_ready:
                    col_parts.append((ch.dests, ch.cols[0], ch.cols[1],
                                      ch.cols[2]))
                else:  # pragma: no cover - storage cannot change mid-op
                    scal.extend(_cols_to_rows(arena, ch))
                continue
            rows = ch.rows if ch.rows is not None \
                else list(bct.machine._iter_chunk(ch))
            if not vec_ready:
                scal.extend(rows)
                continue
            for row in rows:
                x, key, opid, record = row[1]
                t = None
                if not record and x.aid >= 0 and type(opid) is int:
                    t = _target_i64(key)
                if t is None:
                    scal.append(row)
                else:
                    vec.append(row)
                    vtgt.append(t)
        if not col_parts and len(vec) < VEC_MIN:
            scal.extend(vec)
            vec = []
        if scal:
            _scalar_step_rows(bct, scal, out_append)
        if vec or col_parts:
            if vec:
                n = len(vec)
                col_parts.append((
                    _np.fromiter((r[0] for r in vec), _np.int64, n),
                    _np.fromiter((r[1][0].aid for r in vec), _np.int64, n),
                    _np.array(vtgt, _np.int64),
                    _np.fromiter((r[1][2] for r in vec), _np.int64, n)))
            if len(col_parts) == 1:
                mids, aids, tgts, opids = col_parts[0]
            else:
                mids = _np.concatenate([p[0] for p in col_parts])
                aids = _np.concatenate([p[1] for p in col_parts])
                tgts = _np.concatenate([p[2] for p in col_parts])
                opids = _np.concatenate([p[3] for p in col_parts])
            work_acc = _np.zeros(bct.num_modules, _np.float64)
            sent_acc = _np.zeros(bct.num_modules, _np.int64)
            fwd_parts: list = []
            _vector_lower(bct, arena, work_acc, sent_acc, fwd_parts,
                          mids, aids, tgts, opids)
            bct.add_work_array(work_acc)
            bct.add_sent_array(sent_acc)
            _stage_fwd_parts(bct, fwd_parts)
        if out:
            bct.stage_rows(fn_step, out)

    class _ChargeCell:
        """Counts ``upper_descend`` charges without a per-node closure."""

        __slots__ = ("v",)

        def __init__(self) -> None:
            self.v = 0.0

        def add(self, w: float = 1.0) -> None:
            self.v += w

    def _scalar_entry_rows(bct, rows, out_append):
        work = bct.work
        sent = bct.sent
        cell = _ChargeCell()
        add = cell.add
        for mid, args, _tag, _size in rows:
            key, opid, record = args
            cell.v = 0.0
            u = sl.upper_descend(key, add)
            work[mid] += cell.v
            x = u.down
            if x.owner == UPPER or x.owner == mid:
                fwd = _walk_batch(bct, mid, x, key, opid, record, 0)
                if fwd is not None:
                    out_append(fwd)
            else:
                sent[mid] += 1
                out_append((x.owner, (x, key, opid, record), None, 1))

    def batch_search_entry(bct, chunks):
        out: list = []
        out_append = out.append
        arena = sl.storage.arena
        root = sl.root
        use_vec = (_np is not None and arena is not None
                   and arena.vector_ok and sl.h_low >= 1 and root.aid >= 0)
        scal: list = []
        vec: list = []
        vtgt: list = []
        for ch in chunks:
            rows = ch.rows if ch.rows is not None \
                else list(bct.machine._iter_chunk(ch))
            if not use_vec:
                scal.extend(rows)
                continue
            for row in rows:
                key, opid, record = row[1]
                t = None
                if not record and type(opid) is int:
                    t = _target_i64(key)
                if t is None:
                    scal.append(row)
                else:
                    vec.append(row)
                    vtgt.append(t)
        if len(vec) < VEC_MIN:
            scal.extend(vec)
            vec = []
        if scal:
            _scalar_entry_rows(bct, scal, out_append)
        if vec:
            n = len(vec)
            right = arena.right
            down = arena.down
            level = arena.level
            owner = arena.owner
            key_i64 = arena.key_i64
            where = _np.where
            bincount = _np.bincount
            P = bct.num_modules
            h_low = sl.h_low
            mids = _np.fromiter((r[0] for r in vec), _np.int64, n)
            tgts = _np.array(vtgt, _np.int64)
            opids = _np.fromiter((r[1][1] for r in vec), _np.int64, n)
            cur = _np.full(n, root.aid, _np.int64)
            # The descent's initial charge; right/down steps add 1 each,
            # the h_low exit is free -- exactly upper_descend's charges.
            # Every row starts at the root and steps in lockstep, so the
            # accumulated charge is one uniform scalar.
            wch = 1.0
            work_acc = _np.zeros(P, _np.float64)
            sent_acc = _np.zeros(P, _np.int64)
            fwd_parts: list = []
            low_parts: list = []
            while cur.size:
                r = right[cur]
                # -1 gathers wrap to a valid row; masked off by r >= 0.
                go = (r >= 0) & (key_i64[r] <= tgts)
                exit_ = ~go & (level[cur] == h_low)
                nxt = where(go, r, down[cur])
                if exit_.any():
                    em = mids[exit_]
                    work_acc += bincount(em, minlength=P) * wch
                    xd = nxt[exit_]  # the upper leaf's down pointer
                    xt = tgts[exit_]
                    xi = opids[exit_]
                    xo = owner[xd]
                    local = (xo == UPPER) | (xo == em)
                    if local.any():
                        low_parts.append((em[local], xd[local],
                                          xt[local], xi[local]))
                    if not local.all():
                        rem = ~local
                        sent_acc += bincount(em[rem], minlength=P)
                        fwd_parts.append((xo[rem], xd[rem],
                                          xt[rem], xi[rem]))
                    keep = ~exit_
                    cur = nxt[keep]
                    mids = mids[keep]
                    tgts = tgts[keep]
                    opids = opids[keep]
                else:
                    cur = nxt
                wch += 1.0
            if low_parts:
                if len(low_parts) == 1:
                    lm, la, lt, lo = low_parts[0]
                else:
                    lm = _np.concatenate([p[0] for p in low_parts])
                    la = _np.concatenate([p[1] for p in low_parts])
                    lt = _np.concatenate([p[2] for p in low_parts])
                    lo = _np.concatenate([p[3] for p in low_parts])
                _vector_lower(bct, arena, work_acc, sent_acc, fwd_parts,
                              lm, la, lt, lo)
            bct.add_work_array(work_acc)
            bct.add_sent_array(sent_acc)
            _stage_fwd_parts(bct, fwd_parts)
        if out:
            bct.stage_rows(fn_step, out)

    machine = sl.machine
    machine.register_batch(fn_step, batch_search_step)
    machine.register_batch(sl.fn_search_entry, batch_search_entry)

    return {
        sl.fn_search_entry: h_search_entry,
        fn_step: lower_walk,
    }


def handlers_for(sl: SkipListStructure) -> Dict[str, Any]:
    """The search-walk handler dict, created once per structure."""
    return cached_handlers(sl, "search", lambda: make_handlers(sl))


def search_message(sl: SkipListStructure, key: Hashable, opid: Any,
                   record: bool = False,
                   start: Optional[Node] = None) -> tuple:
    """Build the message that launches one search: from ``start`` (a
    lower-part hint node) if given, else from the root on a random
    module.

    The destination draw consumes the machine's seeded RNG stream at
    *build* time, so callers must construct messages in launch order.
    The returned tuple is ``send_all`` format, ready to be yielded in a
    :class:`~repro.ops.BatchOp` route stage.
    """
    machine = sl.machine
    if start is not None:
        dest = start.owner if start.owner != UPPER else machine.random_module()
        return (dest, sl.fn_search_step, (start, key, opid, record), None)
    return (machine.random_module(), sl.fn_search_entry,
            (key, opid, record), None)
