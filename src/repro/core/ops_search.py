"""The skip-list search walk (shared by Successor/Predecessor/Upsert).

A search for key ``k`` finds the leaf holding the largest key <= ``k``
(the predecessor leaf; the successor is that leaf or its right neighbor).
The upper part is replicated, so the descent from the root to the
upper-part leaf is local on whatever module executes it (``search_entry``)
and costs ``O(log n)`` whp local work.  Entering the lower part, every hop
to a node owned by a different module is a ``TaskSend`` continuation --
one message, one round -- realizing the paper's "push each query one node
further per step" execution; runs of same-module (or replicated sentinel)
nodes are walked locally.

When ``record`` is set, every visited lower-part node is streamed back to
shared memory (one constant-size message per node), which is how stage 1
of the batched Successor saves the pivots' lower-part search paths.
"""

from __future__ import annotations

from typing import Any, Dict, Hashable, Optional

from repro.core.node import Node, UPPER
from repro.core.structure import SkipListStructure
from repro.ops import cached_handlers
from repro.sim.task import Reply


def make_handlers(sl: SkipListStructure) -> Dict[str, Any]:
    """PIM-side handlers for the search walk on ``sl``.

    ``lower_walk`` is registered directly as the ``search_step`` handler
    (the hottest function in the whole simulator): it walks the run of
    locally-available nodes (this module's, plus replicated sentinels),
    then either forwards to the next owner or replies
    ``("done", opid, pred_leaf, pred_right)``.  Work is charged once per
    run (same total as per-node charging) and per-node touches are
    skipped entirely when neither tracing nor qrqw needs them.
    """
    fn_step = sl.fn_search_step

    def lower_walk(ctx, x, key, opid, record, tag=None):
        hops = 0
        tracing = ctx.tracing
        while True:
            hops += 1
            if tracing:
                ctx.touch(x.nid)
            if record:
                ctx.reply(("path", opid, x, x.level, x.right), size=1)
            r = x.right
            if r is not None and r.key <= key:
                nxt = r
            elif x.level > 0:
                nxt = x.down
            else:
                module = ctx.module
                module.work += hops
                module.round_work += hops
                # Inlined ctx.reply: the "done" reply ends every search.
                ctx._replies.append(Reply(("done", opid, x, r),
                                          None, ctx.mid))
                ctx._sent_size += 1
                return
            owner = nxt.owner
            if owner == UPPER or owner == ctx.mid:
                x = nxt
            else:
                module = ctx.module
                module.work += hops
                module.round_work += hops
                # Equivalent to ctx.forward(owner, fn_step, ...), staged
                # directly: the continuation handler is this function and
                # the destination comes from the placement hash, so the
                # per-hop registry lookup and bounds check are skipped.
                staged = ctx.machine._staged
                entry = (lower_walk, (nxt, key, opid, record), None, fn_step)
                slot = staged.get(owner)
                if slot is None:
                    staged[owner] = [1, [], [entry]]
                else:
                    slot[0] += 1
                    slot[2].append(entry)
                ctx._sent_size += 1
                return

    def h_search_entry(ctx, key, opid, record, tag=None):
        # Upper-part descent is local: all touched nodes are replicated.
        u = sl.upper_descend(key, ctx.charge)
        x = u.down  # first lower-part node on the path
        if x.owner == UPPER or x.owner == ctx.mid:
            lower_walk(ctx, x, key, opid, record)
        else:
            ctx.forward(x.owner, fn_step, (x, key, opid, record))

    return {
        sl.fn_search_entry: h_search_entry,
        fn_step: lower_walk,
    }


def handlers_for(sl: SkipListStructure) -> Dict[str, Any]:
    """The search-walk handler dict, created once per structure."""
    return cached_handlers(sl, "search", lambda: make_handlers(sl))


def search_message(sl: SkipListStructure, key: Hashable, opid: Any,
                   record: bool = False,
                   start: Optional[Node] = None) -> tuple:
    """Build the message that launches one search: from ``start`` (a
    lower-part hint node) if given, else from the root on a random
    module.

    The destination draw consumes the machine's seeded RNG stream at
    *build* time, so callers must construct messages in launch order.
    The returned tuple is ``send_all`` format, ready to be yielded in a
    :class:`~repro.ops.BatchOp` route stage.
    """
    machine = sl.machine
    if start is not None:
        dest = start.owner if start.owner != UPPER else machine.random_module()
        return (dest, sl.fn_search_step, (start, key, opid, record), None)
    return (machine.random_module(), sl.fn_search_entry,
            (key, opid, record), None)
