"""The skip-list search walk (shared by Successor/Predecessor/Upsert).

A search for key ``k`` finds the leaf holding the largest key <= ``k``
(the predecessor leaf; the successor is that leaf or its right neighbor).
The upper part is replicated, so the descent from the root to the
upper-part leaf is local on whatever module executes it (``search_entry``)
and costs ``O(log n)`` whp local work.  Entering the lower part, every hop
to a node owned by a different module is a ``TaskSend`` continuation --
one message, one round -- realizing the paper's "push each query one node
further per step" execution; runs of same-module (or replicated sentinel)
nodes are walked locally.

When ``record`` is set, every visited lower-part node is streamed back to
shared memory (one constant-size message per node), which is how stage 1
of the batched Successor saves the pivots' lower-part search paths.
"""

from __future__ import annotations

from typing import Any, Dict, Hashable, Optional

from repro.core.node import Node, UPPER
from repro.core.structure import SkipListStructure


def lower_walk(ctx, sl: SkipListStructure, x: Node, key: Hashable,
               opid: Any, record: bool) -> None:
    """Walk the lower part from ``x`` toward ``key``'s predecessor leaf.

    Processes the run of locally-available nodes (this module's, plus
    replicated sentinels), then either forwards to the next owner or
    replies ``("done", opid, pred_leaf, pred_right)``.
    """
    name = sl.name
    while True:
        ctx.charge(1)
        ctx.touch(x.nid)
        if record:
            ctx.reply(("path", opid, x, x.level, x.right), size=1)
        if x.right is not None and x.right.key <= key:
            nxt = x.right
        elif x.level > 0:
            nxt = x.down
        else:
            ctx.reply(("done", opid, x, x.right), size=1)
            return
        if nxt.owner == UPPER or nxt.owner == ctx.mid:
            x = nxt
        else:
            ctx.forward(nxt.owner, f"{name}:search_step",
                        (nxt, key, opid, record))
            return


def make_handlers(sl: SkipListStructure) -> Dict[str, Any]:
    """PIM-side handlers for the search walk on ``sl``."""

    def h_search_entry(ctx, key, opid, record, tag=None):
        # Upper-part descent is local: all touched nodes are replicated.
        u = sl.upper_descend(key, ctx.charge)
        x = u.down  # first lower-part node on the path
        if x.owner == UPPER or x.owner == ctx.mid:
            lower_walk(ctx, sl, x, key, opid, record)
        else:
            ctx.forward(x.owner, f"{sl.name}:search_step",
                        (x, key, opid, record))

    def h_search_step(ctx, node, key, opid, record, tag=None):
        lower_walk(ctx, sl, node, key, opid, record)

    return {
        f"{sl.name}:search_entry": h_search_entry,
        f"{sl.name}:search_step": h_search_step,
    }


def launch_search(sl: SkipListStructure, key: Hashable, opid: Any,
                  record: bool = False,
                  start: Optional[Node] = None) -> None:
    """Queue one search: from ``start`` (a lower-part hint node) if given,
    else from the root on a random module."""
    machine = sl.machine
    if start is not None:
        dest = start.owner if start.owner != UPPER else machine.random_module()
        machine.send(dest, f"{sl.name}:search_step", (start, key, opid, record))
    else:
        machine.send(machine.random_module(), f"{sl.name}:search_entry",
                     (key, opid, record))
