"""The skip-list search walk (shared by Successor/Predecessor/Upsert).

A search for key ``k`` finds the leaf holding the largest key <= ``k``
(the predecessor leaf; the successor is that leaf or its right neighbor).
The upper part is replicated, so the descent from the root to the
upper-part leaf is local on whatever module executes it (``search_entry``)
and costs ``O(log n)`` whp local work.  Entering the lower part, every hop
to a node owned by a different module is a ``TaskSend`` continuation --
one message, one round -- realizing the paper's "push each query one node
further per step" execution; runs of same-module (or replicated sentinel)
nodes are walked locally.

When ``record`` is set, every visited lower-part node is streamed back to
shared memory (one constant-size message per node), which is how stage 1
of the batched Successor saves the pivots' lower-part search paths.
"""

from __future__ import annotations

from typing import Any, Dict, Hashable, Optional

from repro.core.node import Node, UPPER
from repro.core.structure import SkipListStructure
from repro.ops import cached_handlers
from repro.sim.task import Reply


def make_handlers(sl: SkipListStructure) -> Dict[str, Any]:
    """PIM-side handlers for the search walk on ``sl``.

    ``lower_walk`` is registered directly as the ``search_step`` handler
    (the hottest function in the whole simulator): it walks the run of
    locally-available nodes (this module's, plus replicated sentinels),
    then either forwards to the next owner or replies
    ``("done", opid, pred_leaf, pred_right)``.  Work is charged once per
    run (same total as per-node charging) and per-node touches are
    skipped entirely when neither tracing nor qrqw needs them.
    """
    fn_step = sl.fn_search_step

    def lower_walk(ctx, x, key, opid, record, tag=None):
        hops = 0
        tracing = ctx.tracing
        while True:
            hops += 1
            if tracing:
                ctx.touch(x.nid)
            if record:
                ctx.reply(("path", opid, x, x.level, x.right), size=1)
            r = x.right
            if r is not None and r.key <= key:
                nxt = r
            elif x.level > 0:
                nxt = x.down
            else:
                module = ctx.module
                module.work += hops
                module.round_work += hops
                # Inlined ctx.reply: the "done" reply ends every search.
                ctx._replies.append(Reply(("done", opid, x, r),
                                          None, ctx.mid))
                ctx._sent_size += 1
                return
            owner = nxt.owner
            if owner == UPPER or owner == ctx.mid:
                x = nxt
            else:
                module = ctx.module
                module.work += hops
                module.round_work += hops
                # Equivalent to ctx.forward(owner, fn_step, ...), staged
                # directly: the continuation handler is this function and
                # the destination comes from the placement hash, so the
                # per-hop registry lookup and bounds check are skipped.
                staged = ctx.machine._staged
                entry = (lower_walk, (nxt, key, opid, record), None, fn_step)
                slot = staged.get(owner)
                if slot is None:
                    staged[owner] = [1, [], [entry]]
                else:
                    slot[0] += 1
                    slot[2].append(entry)
                ctx._sent_size += 1
                return

    def h_search_entry(ctx, key, opid, record, tag=None):
        # Upper-part descent is local: all touched nodes are replicated.
        u = sl.upper_descend(key, ctx.charge)
        x = u.down  # first lower-part node on the path
        if x.owner == UPPER or x.owner == ctx.mid:
            lower_walk(ctx, x, key, opid, record)
        else:
            ctx.forward(x.owner, fn_step, (x, key, opid, record))

    # -- batch variants (columnar backend) --------------------------------
    #
    # One call per round over all of the round's search tasks, mirroring
    # the scalar handlers' charges/replies/forwards exactly.  The walk is
    # read-only over the shared structure, order-insensitive and draws no
    # RNG, so it satisfies the columnar execution contract (certified
    # bit-identical by repro.verify.differ).  Inert on the object engine.

    def _walk_batch(bct, mid, x, key, opid, record, hops):
        """Walk one task from ``x``; returns a forward row or None.

        ``hops`` pre-counts nodes already attributed (0 for a step task).
        Work/sent/reply accounting mirrors ``lower_walk`` exactly.
        """
        replies = bct.replies
        work = bct.work
        sent = bct.sent
        while True:
            hops += 1
            if record:
                replies.append(Reply(("path", opid, x, x.level, x.right),
                                     None, mid))
                sent[mid] += 1
            r = x.right
            if r is not None and r.key <= key:
                nxt = r
            elif x.level > 0:
                nxt = x.down
            else:
                work[mid] += hops
                replies.append(Reply(("done", opid, x, r), None, mid))
                sent[mid] += 1
                return None
            owner = nxt.owner
            if owner == UPPER or owner == mid:
                x = nxt
            else:
                work[mid] += hops
                sent[mid] += 1
                return (owner, (nxt, key, opid, record), None, 1)

    def batch_search_step(bct, chunks):
        replies = bct.replies
        work = bct.work
        sent = bct.sent
        out: list = []
        out_append = out.append
        rep_append = replies.append
        for ch in chunks:
            rows = ch.rows if ch.rows is not None \
                else list(bct.machine._iter_chunk(ch))
            for mid, args, _tag, _size in rows:
                x, key, opid, record = args
                if record:
                    fwd = _walk_batch(bct, mid, x, key, opid, record, 0)
                    if fwd is not None:
                        out_append(fwd)
                    continue
                # Hot path: the recording-free walk, inlined per task.
                hops = 0
                while True:
                    hops += 1
                    r = x.right
                    if r is not None and r.key <= key:
                        nxt = r
                    elif x.level > 0:
                        nxt = x.down
                    else:
                        work[mid] += hops
                        rep_append(Reply(("done", opid, x, r), None, mid))
                        sent[mid] += 1
                        break
                    owner = nxt.owner
                    if owner == UPPER or owner == mid:
                        x = nxt
                    else:
                        work[mid] += hops
                        out_append((owner, (nxt, key, opid, record), None, 1))
                        sent[mid] += 1
                        break
        if out:
            bct.stage_rows(fn_step, out)

    class _ChargeCell:
        """Counts ``upper_descend`` charges without a per-node closure."""

        __slots__ = ("v",)

        def __init__(self) -> None:
            self.v = 0.0

        def add(self, w: float = 1.0) -> None:
            self.v += w

    def batch_search_entry(bct, chunks):
        work = bct.work
        sent = bct.sent
        cell = _ChargeCell()
        add = cell.add
        out: list = []
        for ch in chunks:
            rows = ch.rows if ch.rows is not None \
                else list(bct.machine._iter_chunk(ch))
            for mid, args, _tag, _size in rows:
                key, opid, record = args
                cell.v = 0.0
                u = sl.upper_descend(key, add)
                work[mid] += cell.v
                x = u.down
                if x.owner == UPPER or x.owner == mid:
                    fwd = _walk_batch(bct, mid, x, key, opid, record, 0)
                    if fwd is not None:
                        out.append(fwd)
                else:
                    sent[mid] += 1
                    out.append((x.owner, (x, key, opid, record), None, 1))
        if out:
            bct.stage_rows(fn_step, out)

    machine = sl.machine
    machine.register_batch(fn_step, batch_search_step)
    machine.register_batch(sl.fn_search_entry, batch_search_entry)

    return {
        sl.fn_search_entry: h_search_entry,
        fn_step: lower_walk,
    }


def handlers_for(sl: SkipListStructure) -> Dict[str, Any]:
    """The search-walk handler dict, created once per structure."""
    return cached_handlers(sl, "search", lambda: make_handlers(sl))


def search_message(sl: SkipListStructure, key: Hashable, opid: Any,
                   record: bool = False,
                   start: Optional[Node] = None) -> tuple:
    """Build the message that launches one search: from ``start`` (a
    lower-part hint node) if given, else from the root on a random
    module.

    The destination draw consumes the machine's seeded RNG stream at
    *build* time, so callers must construct messages in launch order.
    The returned tuple is ``send_all`` format, ready to be yielded in a
    :class:`~repro.ops.BatchOp` route stage.
    """
    machine = sl.machine
    if start is not None:
        dest = start.owner if start.owner != UPPER else machine.random_module()
        return (dest, sl.fn_search_step, (start, key, opid, record), None)
    return (machine.random_module(), sl.fn_search_entry,
            (key, opid, record), None)
