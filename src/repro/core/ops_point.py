"""Batched Get and Update (paper §4.1).

A Get/Update shortcuts straight to the module owning the key's leaf: the
lower part is placed by a hash on (key, level), so the CPU can compute the
leaf's module without touching the pointer structure, and the module
resolves the key through its local de-amortized hash table in O(1) whp
work.

PIM-balance (Theorem 4.1): the batch (size ``P log P``) is first
semisorted on the CPU side to remove duplicate keys -- otherwise an
adversarial batch of ``P log P`` copies of one key would concentrate the
whole batch on one module.  After deduplication, distinct keys hash to
uniformly random modules, so by Lemma 2.1 each module receives
``O(log P)`` operations whp: ``O(log P)`` IO time and ``O(log P)`` PIM
time, independent of the key distribution.

All three ops are single-stage :class:`~repro.ops.BatchOp` pipelines:
plan/route semisort and issue the deduplicated sends, the handlers below
are the execute phase, and aggregate fans results back out to duplicate
positions.
"""

from __future__ import annotations

import math
from typing import Any, Dict, Hashable, List, Optional, Sequence, Tuple

from repro.core.structure import SkipListStructure
from repro.cpuside.semisort import group_by
from repro.ops import BatchOp, cached_handlers, run_batch


def make_handlers(sl: SkipListStructure) -> Dict[str, Any]:
    """PIM-side handlers for point operations on ``sl``."""

    def h_get(ctx, key, tag=None):
        ml = sl.mlocal(ctx.mid)
        leaf = ml.table.lookup(key)
        ctx.charge(1)
        if leaf is not None:
            ctx.touch(leaf.nid)
        ctx.reply((key, leaf.value if leaf is not None else None,
                   leaf is not None), tag=tag)

    def h_update(ctx, key, value, tag=None):
        ml = sl.mlocal(ctx.mid)
        leaf = ml.table.lookup(key)
        ctx.charge(1)
        if leaf is not None:
            ctx.touch(leaf.nid)
            leaf.value = value
            sl.storage.set_value(leaf, value)
        ctx.reply((key, leaf is not None), tag=tag)

    return {
        f"{sl.name}:pt_get": h_get,
        f"{sl.name}:pt_update": h_update,
    }


def handlers_for(sl: SkipListStructure) -> Dict[str, Any]:
    """The point-op handler dict, created once per structure."""
    return cached_handlers(sl, "point", lambda: make_handlers(sl))


class _PointGetOp(BatchOp):
    """Shared pipeline of batched Get / Contains (they differ only in
    which reply field fans out)."""

    def __init__(self, sl: SkipListStructure, keys: Sequence[Hashable],
                 want_value: bool) -> None:
        self.sl = sl
        self.keys = keys
        self.want_value = want_value
        self.name = f"{sl.name}:batch_get" if want_value else \
            f"{sl.name}:batch_contains"

    def handlers(self):
        return handlers_for(self.sl)

    def route(self, machine, plan):
        sl, keys = self.sl, self.keys
        cpu = machine.cpu
        n = len(keys)
        if n == 0:
            return []
        with cpu.region(2 * n):
            # Semisort to deduplicate (O(B) expected work, O(log B) whp
            # depth).
            groups = group_by(cpu, list(range(n)), key=lambda i: keys[i])
            fn_get = f"{sl.name}:pt_get"
            replies = yield ((sl.leaf_owner(key), fn_get, (key,), None)
                             for key in groups)
            if self.want_value:
                results: List[Optional[Any]] = [None] * n
                for r in replies:
                    key, value, _found = r.payload
                    for i in groups[key]:
                        results[i] = value
            else:
                results = [False] * n
                for r in replies:
                    key, _value, found = r.payload
                    for i in groups[key]:
                        results[i] = found
            # Fan-out of results to duplicates: O(B) work, O(log B) depth.
            cpu.charge(n, max(1.0, math.log2(n)))
        return results


class _PointUpdateOp(BatchOp):
    def __init__(self, sl: SkipListStructure,
                 pairs: Sequence[Tuple[Hashable, Any]]) -> None:
        self.sl = sl
        self.pairs = pairs
        self.name = f"{sl.name}:batch_update"

    def handlers(self):
        return handlers_for(self.sl)

    def route(self, machine, plan):
        sl, pairs = self.sl, self.pairs
        cpu = machine.cpu
        n = len(pairs)
        if n == 0:
            return 0
        with cpu.region(2 * n):
            groups = group_by(cpu, list(pairs), key=lambda kv: kv[0])
            fn_update = f"{sl.name}:pt_update"
            replies = yield (
                (sl.leaf_owner(key), fn_update, (key, occurrences[-1][1]),
                 None)
                for key, occurrences in groups.items())
            found = sum(1 for r in replies if r.payload[1])
        return found


def batch_get(sl: SkipListStructure,
              keys: Sequence[Hashable]) -> List[Optional[Any]]:
    """Execute a batch of Get operations; returns values aligned to input.

    Missing keys yield ``None``.
    """
    return run_batch(sl.machine, _PointGetOp(sl, keys, want_value=True))


def batch_contains(sl: SkipListStructure,
                   keys: Sequence[Hashable]) -> List[bool]:
    """Membership test per key (same costs and dedup as batched Get)."""
    return run_batch(sl.machine, _PointGetOp(sl, keys, want_value=False))


def batch_update(sl: SkipListStructure,
                 pairs: Sequence[Tuple[Hashable, Any]]) -> int:
    """Execute a batch of Update operations; returns the number of keys
    found (non-existent keys are ignored, per the paper).

    Duplicate keys within the batch are deduplicated with the *last*
    occurrence winning (batches are sets in the model; we define a
    deterministic tie-break for convenience).
    """
    return run_batch(sl.machine, _PointUpdateOp(sl, pairs))
