"""Batched Successor/Predecessor: the two-stage pivot algorithm (§4.2).

Naively batching ``P log^2 P`` searches is *not* PIM-balanced: an
adversary can pick distinct keys that all share one successor, so every
search path funnels into the same lower-part nodes and one module
serializes the whole batch.  The paper's fix:

**Stage 1 (pivots).**  Sort the batch, pick ``P log P`` pivots (every
``log P``-th operation) plus the extremes, and resolve the pivots by
divide and conquer: phase 0 searches the smallest and largest pivots from
the root, recording their lower-part paths; each later phase searches the
median pivot of every remaining segment, starting from the lowest common
lower-part node (LCA) of the segment endpoints' recorded paths -- or
directly returns the shared leaf, or starts at the root when the paths
share nothing.  Lemma 4.2: because the executed pivots' paths cut the
search-path tree into disjoint pieces, no node is accessed more than 3
times per phase, so each phase is an ``O(log P)``-contention-free round
set.

**Stage 2 (the rest).**  Every remaining operation starts from the hint
derived from its two surrounding pivots' saved paths.  Between adjacent
pivots sit only ``log P`` operations, so per-node contention is
``O(log P)`` and Lemma 2.2 (weighted balls in bins) gives ``O(log^2 P)``
IO time whp for the stage.

Bounds (Theorem 4.3): ``O(log^3 P)`` IO time, ``O(log^2 P log n)`` PIM
time, ``O(P log^3 P)`` expected CPU work, ``O(log^2 P)`` CPU depth, and
``Theta(P log^2 P)`` shared memory, all whp in ``P``.

The whole two-stage algorithm is one :class:`~repro.ops.BatchOp`: each
divide-and-conquer phase (and stage 2) is one route stage whose messages
are built by :func:`repro.core.ops_search.search_message`; the search
walk handlers are the execute phase.
"""

from __future__ import annotations

import bisect
import math
from dataclasses import dataclass
from typing import Any, Dict, Hashable, List, Optional, Sequence, Tuple

from repro.core import ops_search
from repro.core.node import Node, UPPER
from repro.core.ops_search import _target_i64, search_message
from repro.core.structure import SkipListStructure
from repro.cpuside.sort import parallel_sort
from repro.ops import BatchOp, run_batch
from repro.sim.cpu import WorkDepth

try:
    import numpy as _np
except ImportError:  # pragma: no cover - numpy is an optional accelerator
    _np = None  # type: ignore[assignment]

#: Minimum hinted record-free rows worth issuing as one column chunk.
COLS_SEND_MIN = 16

PathEntry = Tuple[Node, int, Optional[Node]]  # (node, level, right snapshot)


@dataclass(slots=True)
class SearchOutcome:
    """Result of one search: the predecessor leaf and path information.

    ``pred`` is the leaf with the largest key <= the searched key (the
    level-0 sentinel if the key precedes everything); ``pred_right`` is
    the snapshot of ``pred.right`` when the search completed.  ``by_level``
    (only when recording) maps each lower level to the last node the
    search visited there and that node's right snapshot -- exactly the
    per-level predecessors batched Insert needs.
    """

    pred: Node
    pred_right: Optional[Node]
    by_level: Optional[Dict[int, Tuple[Node, Optional[Node]]]] = None


Hint = Optional[Tuple[str, Any, Any]]  # ("leaf", leaf, right) | ("node", node, None)


def _lca_hint(path_a: Optional[List[PathEntry]],
              path_b: Optional[List[PathEntry]],
              min_level: int = 0,
              ids_b: Optional[set] = None) -> Hint:
    """Start hint from two recorded lower-part paths (paper, stage 1).

    Shared leaf -> the result itself; shared lower node -> the lowest such
    node; nothing shared (or a path missing) -> ``None`` = start at root.

    ``min_level`` (used by batched Insert) requires the hint node to sit
    at or above that level, so the hinted search still visits -- and hence
    records the per-level predecessor of -- every level the caller needs.
    Any node ``c`` on the *left* path is a valid start for the op
    (``c.key <= left pivot key <= op key``, and the right/down walk from
    ``c`` reaches the true predecessor at each level <= ``c.level``);
    picking the left path's lowest node at/above ``min_level`` keeps the
    elevated starts per-segment, so they contend only with their own
    segment's O(log P) operations rather than funneling the whole batch
    through a shared high node.
    """
    if not path_a or not path_b:
        return None
    if min_level > 0:
        # Path levels are non-increasing along the visit order, so the
        # reversed scan finds the lowest admissible node first.
        for node, lvl, _ in reversed(path_a):
            if lvl >= min_level:
                return ("node", node, None)
        return None
    leaf_a, lvl_a, right_a = path_a[-1]
    leaf_b = path_b[-1][0]
    if lvl_a == 0 and leaf_a is leaf_b:
        return ("leaf", leaf_a, right_a)
    if ids_b is None:
        # Callers with many ops against the same right pivot pass the
        # pivot path's id-set in (batch_search caches one per pivot).
        ids_b = {id(node) for node, _, _ in path_b}
    for node, _, _ in reversed(path_a):
        if id(node) in ids_b:
            return ("node", node, None)
    return None


class _BatchSearchOp(BatchOp):
    """The two-stage pivot search as a plan/route/execute/aggregate op."""

    def __init__(self, sl: SkipListStructure, keys: Sequence[Hashable],
                 record_all: bool, record_levels: Optional[Sequence[int]],
                 ) -> None:
        self.sl = sl
        self.keys = keys
        self.record_all = record_all
        self.record_levels = record_levels
        self.name = f"{sl.name}:batch_search"

    def handlers(self):
        return ops_search.handlers_for(self.sl)

    def route(self, machine, plan):
        sl, keys = self.sl, self.keys
        record_all, record_levels = self.record_all, self.record_levels
        cpu = machine.cpu
        b = len(keys)
        if b == 0:
            return []
        p = sl.num_modules
        seg_len = max(1, int(round(math.log2(p))) if p > 1 else 1)

        # Sort the batch on the CPU side (O(B log B) expected, O(log B)
        # whp depth).
        order = parallel_sort(cpu, list(range(b)), key=lambda i: (keys[i], i))
        skeys = [keys[i] for i in order]
        limits: Dict[int, int] = {}
        if record_levels is not None:
            for pos in range(b):
                limits[pos] = record_levels[order[pos]]
        elif record_all:
            # Record every lower level: hints must then start at or above
            # the topmost lower level so each search visits all of them.
            for pos in range(b):
                limits[pos] = sl.h_low - 1
        cpu.alloc(b)  # sorted index buffer

        piv_pos = list(range(0, b, seg_len))
        if piv_pos[-1] != b - 1:
            piv_pos.append(b - 1)
        num_piv = len(piv_pos)
        piv_set = set(piv_pos)

        h_cap = sl.h_low - 1

        def min_lvl(pos: int) -> int:
            """Lowest level the op's search must start at.

            In record mode, pivots always record their *full* lower-part
            paths (the paper's stage 1 stores them as the shared hint
            pool); non-pivots only need levels up to their own retention
            limit.
            """
            if not limits:
                return 0
            if pos in piv_set:
                return h_cap
            return min(limits.get(pos, 0), h_cap)

        paths: Dict[int, List[PathEntry]] = {}      # sorted-pos -> path
        outcomes: Dict[int, SearchOutcome] = {}     # sorted-pos -> outcome
        pre_derived: Dict[int, Dict[int, Tuple[Node, Optional[Node]]]] = {}
        retained_words = b  # the sorted index buffer

        piv_level_cache: Dict[int, Dict[int, Tuple[Node, Optional[Node]]]] = {}
        piv_ids_cache: Dict[int, set] = {}

        # Record-free searches that start from a lower-part hint node can
        # launch as one engine-level column chunk: the destination is the
        # hint's owner (no RNG draw) and the walk's batch handler consumes
        # the chunk natively.  Gated off under chaos plans -- those wrap
        # every CPU-issued scalar message in a delivery envelope, which a
        # column chunk would bypass.
        arena = getattr(sl.storage, "arena", None)
        cols_send = (_np is not None and arena is not None
                     and arena.vector_ok and machine._chaos is None
                     and getattr(machine, "can_send_cols", False))

        def pivot_ids(ppos: int) -> Optional[set]:
            """Cached ``id()`` set of a pivot's recorded path nodes."""
            s = piv_ids_cache.get(ppos)
            if s is None and ppos in paths:
                s = {id(node) for node, _, _ in paths[ppos]}
                piv_ids_cache[ppos] = s
            return s

        def level_view(ppos: int):
            """Per-level last (node, right) of a pivot's recorded path."""
            lv = piv_level_cache.get(ppos)
            if lv is None and ppos in paths:
                lv = {}
                for node, lvl, right in paths[ppos]:
                    lv[lvl] = (node, right)
                piv_level_cache[ppos] = lv
            return lv

        def derive_or_hint(pos: int, pa_pos: int, pb_pos: int):
            """Squeeze-derive per-level predecessors from bounding pivots.

            At any level where both bounding pivots have the *same*
            recorded predecessor, the op's predecessor is squeezed to
            that node (it lies between them), so no search is needed for
            that level.  This generalizes the shared-leaf shortcut and is
            what keeps batched Insert contention-free when many inserts
            share high-level predecessors (e.g. a contiguous run at the
            end of the key space).

            Returns ``("done", derived)`` when every needed level is
            derived, else ``(hint, derived_above)`` where the search
            starts at/above the highest underived level.
            """
            lvl_limit = min_lvl(pos)
            pa, pb = paths.get(pa_pos), paths.get(pb_pos)
            if lvl_limit == 0:
                return (_lca_hint(pa, pb, 0, ids_b=pivot_ids(pb_pos)), {})
            la, lb = level_view(pa_pos), level_view(pb_pos)
            derived: Dict[int, Tuple[Node, Optional[Node]]] = {}
            top = -1
            if la is not None and lb is not None:
                for lvl in range(lvl_limit, -1, -1):
                    ea, eb = la.get(lvl), lb.get(lvl)
                    if ea is not None and eb is not None and ea[0] is eb[0]:
                        derived[lvl] = ea
                    else:
                        top = lvl
                        break
            else:
                top = lvl_limit
            if top == -1:
                return ("done", derived)
            hint: Hint = None
            if pa:
                for node, lvl, _ in reversed(pa):
                    if lvl >= top:
                        hint = ("node", node, None)
                        break
            return (hint, derived)

        def settle_derived(pos: int, derived, record: bool,
                           keep_ordered: bool) -> None:
            """Finish an op entirely from derived levels (no search)."""
            nonlocal retained_words
            pred, right = derived[0]
            outcomes[pos] = SearchOutcome(
                pred=pred, pred_right=right,
                by_level=dict(derived) if record else None,
            )
            cpu.alloc(len(derived))
            retained_words += len(derived)
            if keep_ordered:
                paths[pos] = [
                    (derived[lvl][0], lvl, derived[lvl][1])
                    for lvl in sorted(derived, reverse=True)
                ]

        def execute(ops: List[Tuple[int, Hint]], record: bool,
                    keep_ordered: bool):
            """One phase: build the phase's search messages, yield them as
            a stage, and fold the drained replies into the outcome maps."""
            nonlocal retained_words
            msgs = []
            madd = msgs.append
            vec = cols_send and not record
            cd: List[int] = []   # dests (hint owners)
            ca: List[int] = []   # arena row of the hint node
            ct: List[int] = []   # int64 search target
            co: List[int] = []   # opid (sorted position)
            for pos, hint in ops:
                if hint is None:
                    madd(search_message(sl, skeys[pos], opid=pos,
                                        record=record))
                    continue
                if hint[0] == "leaf":
                    outcomes[pos] = SearchOutcome(
                        pred=hint[1], pred_right=hint[2],
                        by_level={0: (hint[1], hint[2])} if record else None,
                    )
                    if keep_ordered:
                        paths[pos] = [(hint[1], 0, hint[2])]
                        cpu.alloc(1)
                        retained_words += 1
                    continue
                if vec:
                    node = hint[1]
                    aid = node.aid
                    if aid >= 0 and node.owner != UPPER:
                        t = _target_i64(skeys[pos])
                        if t is not None:
                            cd.append(node.owner)
                            ca.append(aid)
                            ct.append(t)
                            co.append(pos)
                            continue
                madd(search_message(sl, skeys[pos], opid=pos, record=record,
                                    start=hint[1]))
            staged_cols = False
            if cd:
                if len(cd) >= COLS_SEND_MIN:
                    machine.send_cols(
                        sl.fn_search_step,
                        _np.array(cd, _np.int64),
                        (_np.array(ca, _np.int64), _np.array(ct, _np.int64),
                         _np.array(co, _np.int64)))
                    staged_cols = True
                else:
                    # Too few to amortize a chunk; the deferred scalar
                    # build draws no RNG (hint owners are never UPPER),
                    # so appending here preserves the machine's seeded
                    # stream and all per-round accounting.
                    nodes = arena.nodes
                    for aid, pos in zip(ca, co):
                        madd(search_message(sl, skeys[pos], opid=pos,
                                            record=record,
                                            start=nodes[aid]))
            if not msgs and not staged_cols:
                return
            replies = yield msgs
            if not record and not keep_ordered:
                # Record-free phase: every reply is a "done" (no search
                # emitted path records), so fold without the path branch.
                for r in replies:
                    _, opid, node, right = r.payload
                    outcomes[opid] = SearchOutcome(pred=node,
                                                   pred_right=right)
                return
            acc_paths: Dict[int, List[PathEntry]] = {}
            acc_bylevel: Dict[int, Dict[int, Tuple[Node, Optional[Node]]]] = {}
            for r in replies:
                payload = r.payload
                if payload[0] == "path":
                    _, opid, node, level, right = payload
                    if keep_ordered:
                        acc_paths.setdefault(opid, []).append(
                            (node, level, right))
                    if record:
                        acc_bylevel.setdefault(opid, {})[level] = (node, right)
                else:
                    _, opid, node, right = payload
                    outcomes[opid] = SearchOutcome(pred=node, pred_right=right)
            if keep_ordered:
                for opid, pth in acc_paths.items():
                    paths[opid] = pth
                    cpu.alloc(len(pth))
                    retained_words += len(pth)
            if record:
                for opid, bl in acc_bylevel.items():
                    if opid in outcomes:
                        limit = limits.get(opid)
                        if limit is not None:
                            bl = {lvl: v for lvl, v in bl.items()
                                  if lvl <= limit}
                        extra = pre_derived.pop(opid, None)
                        if extra:
                            for lvl, entry in extra.items():
                                bl.setdefault(lvl, entry)
                        outcomes[opid].by_level = bl
                        cpu.alloc(len(bl))
                        retained_words += len(bl)

        # ---- Stage 1: pivots by divide and conquer ----------------------
        first, last = piv_pos[0], piv_pos[-1]
        phase0 = [(first, None)]
        if last != first:
            phase0.append((last, None))
        yield from execute(phase0, record=True, keep_ordered=True)

        segments: List[Tuple[int, int]] = [(0, num_piv - 1)]
        while True:
            minis: List[Tuple[int, Hint]] = []
            next_segments: List[Tuple[int, int]] = []
            hint_work = 0.0
            for i, j in segments:
                if j - i < 2:
                    continue
                mid = (i + j) // 2
                pa = paths.get(piv_pos[i])
                pb = paths.get(piv_pos[j])
                hint_work += (len(pa) if pa else 0) + (len(pb) if pb else 0)
                hint, derived = derive_or_hint(piv_pos[mid], piv_pos[i],
                                               piv_pos[j])
                next_segments.append((i, mid))
                next_segments.append((mid, j))
                if hint == "done":
                    settle_derived(piv_pos[mid], derived, record=True,
                                   keep_ordered=True)
                    continue
                if derived:
                    pre_derived[piv_pos[mid]] = derived
                if limits:
                    # Full-path recording from an elevated hint would walk
                    # horizontally across the whole segment (endpoints are
                    # far apart in early phases); the root start is
                    # cheaper -- its upper descent is local on a replica
                    # -- and the shared-predecessor contention case was
                    # already settled by the squeeze derivation above.
                    hint = None
                minis.append((piv_pos[mid], hint))
            cpu.charge_wd(WorkDepth(hint_work + len(minis) + 1,
                                    max(1.0, math.log2(len(minis) + 2)) + 8))
            if not minis and not any(j - i >= 2 for i, j in next_segments):
                break
            yield from execute(minis, record=True, keep_ordered=True)
            segments = next_segments
            if not segments:
                break

        # ---- Stage 2: everything else, with pivot-path hints ------------
        rest: List[Tuple[int, Hint]] = []
        hint_work = 0.0
        if not limits:
            # Record-free searches: the hint depends only on the two
            # bounding pivot paths (``derive_or_hint`` degenerates to a
            # bare ``_lca_hint``), so every op inside a segment shares
            # one hint.  Derive it once per segment -- B/log P hint
            # computations instead of B.  The charged hint work is
            # unchanged: each op still pays for scanning both paths.
            for a in range(num_piv - 1):
                lo, hi = piv_pos[a], piv_pos[a + 1]
                if hi - lo < 2:
                    continue
                pa = paths.get(lo)
                pb = paths.get(hi)
                seg_work = (len(pa) if pa else 0) + (len(pb) if pb else 0)
                seg_hint = _lca_hint(pa, pb, 0, ids_b=pivot_ids(hi))
                for pos in range(lo + 1, hi):
                    hint_work += seg_work
                    rest.append((pos, seg_hint))
        else:
            for pos in range(b):
                if pos in piv_set:
                    continue
                a = bisect.bisect_right(piv_pos, pos) - 1
                c = min(a + 1, num_piv - 1)
                pa = paths.get(piv_pos[a])
                pb = paths.get(piv_pos[c])
                hint_work += (len(pa) if pa else 0) + (len(pb) if pb else 0)
                hint, derived = derive_or_hint(pos, piv_pos[a], piv_pos[c])
                if hint == "done":
                    settle_derived(pos, derived, record=record_all,
                                   keep_ordered=False)
                    continue
                if derived:
                    pre_derived[pos] = derived
                if min_lvl(pos) > 0:
                    # Underived level-constrained search: start from the
                    # root.  The upper descent is local (replicated), and
                    # an elevated per-segment hint can force a long
                    # horizontal walk when many stored keys separate the
                    # bounding pivots; the shared-predecessor contention
                    # case never reaches here (the squeeze derivation
                    # settles it).
                    hint = None
                rest.append((pos, hint))
        if rest:
            cpu.charge_wd(WorkDepth(hint_work + len(rest),
                                    max(1.0, math.log2(len(rest) + 1)) + 8))
            yield from execute(rest, record=record_all, keep_ordered=False)

        cpu.free(retained_words)

        # Map back to the caller's order: order[pos] is the original index
        # of the operation at sorted position pos.
        results: List[Optional[SearchOutcome]] = [None] * b
        for pos in range(b):
            results[order[pos]] = outcomes[pos]
        cpu.charge(b, max(1.0, math.log2(b)))
        return results  # type: ignore[return-value]


def batch_search(sl: SkipListStructure, keys: Sequence[Hashable],
                 record_all: bool = False,
                 record_levels: Optional[Sequence[int]] = None,
                 ) -> List[SearchOutcome]:
    """Two-stage pivot search for all ``keys``; results align with input.

    ``record_all=True`` additionally records the per-level predecessor of
    *every* operation (``SearchOutcome.by_level``), which batched Upsert
    uses; pivots always record (their ordered paths drive the hints).
    ``record_levels`` (aligned with ``keys``) caps the levels *retained*
    per operation -- batched Insert only keeps the last ``l_i`` path nodes
    of each operation, which is what keeps the shared-memory footprint at
    ``Theta(P log^2 P)`` rather than ``Theta(P log^3 P)``.
    """
    return run_batch(sl.machine,
                     _BatchSearchOp(sl, keys, record_all, record_levels))


def batch_successor(sl: SkipListStructure, keys: Sequence[Hashable],
                    ) -> List[Optional[Tuple[Hashable, Any]]]:
    """Successor(k): the smallest (key, value) with key >= k, else None."""
    out: List[Optional[Tuple[Hashable, Any]]] = []
    for key, res in zip(keys, batch_search(sl, keys)):
        pred = res.pred
        if not pred.is_sentinel and pred.key == key:
            out.append((pred.key, pred.value))
        elif res.pred_right is not None:
            out.append((res.pred_right.key, res.pred_right.value))
        else:
            out.append(None)
    sl.machine.cpu.charge(len(keys), 8)
    return out


def batch_predecessor(sl: SkipListStructure, keys: Sequence[Hashable],
                      ) -> List[Optional[Tuple[Hashable, Any]]]:
    """Predecessor(k): the largest (key, value) with key <= k, else None."""
    out: List[Optional[Tuple[Hashable, Any]]] = []
    for res in batch_search(sl, keys):
        pred = res.pred
        out.append(None if pred.is_sentinel else (pred.key, pred.value))
    sl.machine.cpu.charge(len(keys), 8)
    return out
