"""Order statistics on the PIM skip list: rank and selection.

The paper's structure carries no subtree counts, but the PIM model
offers two good routes to order statistics anyway:

- ``rank(key)`` -- the number of stored keys strictly below ``key`` --
  is one broadcast *count* range (§5.1): O(1) IO time, O(1) rounds,
  O(n/P + log n) whp PIM time.
- ``select(i)`` -- the i-th smallest key (0-indexed) -- runs the classic
  distributed weighted-median selection over the modules' local leaf
  lists: each module snapshots its sorted local keys once (O(n/P) PIM
  work), then O(log n) whp rounds of constant-size probes narrow
  per-module windows around the target.  Every round:

  1. each module reports its window's size and median (one message);
  2. the CPU picks the weighted median of the medians as pivot
     (discards >= 1/4 of the remaining candidates, so O(log n) rounds);
  3. each module reports the pivot's rank within its window;
  4. the CPU keeps the side containing the target.

  When few candidates remain they are gathered and indexed directly.
  Total: O(P log n) messages => O(log n) whp IO time, O(log n) rounds.

The CPU holds the per-module window bounds (2P words << M), so modules
stay stateless between probes beyond their one snapshot.
"""

from __future__ import annotations

import bisect
import math
from typing import Any, Dict, Hashable, List, Optional, Tuple

from repro.core.probes import just_above
from repro.core.structure import SkipListStructure
from repro.ops import BatchOp, Broadcast, cached_handlers, run_batch


def make_handlers(sl: SkipListStructure) -> Dict[str, Any]:
    name = sl.name

    def snapshots(ctx):
        return ctx.module.state.setdefault(name + ":sel", {})

    def h_begin(ctx, opid, tag=None):
        ml = sl.mlocal(ctx.mid)
        keys: List[Hashable] = []
        leaf = ml.first_leaf
        while leaf is not None:
            keys.append(leaf.key)
            leaf = leaf.local_right
        ctx.charge(len(keys) + 1)
        ctx.module.alloc_words(len(keys))
        snapshots(ctx)[opid] = keys
        ctx.reply(("sel_size", ctx.mid, len(keys)), tag=tag)

    def h_probe(ctx, opid, lo, hi, tag=None):
        keys = snapshots(ctx)[opid]
        ctx.charge(max(1, int(math.log2(len(keys) + 2))))
        window = keys[lo:hi]
        if window:
            med = window[len(window) // 2]
        else:
            med = None
        ctx.reply(("sel_probe", ctx.mid, hi - lo, med), tag=tag)

    def h_rank_of(ctx, opid, lo, hi, pivot, tag=None):
        keys = snapshots(ctx)[opid]
        ctx.charge(max(1, int(math.log2(len(keys) + 2))))
        r = bisect.bisect_left(keys, pivot, lo, hi) - lo
        ctx.reply(("sel_rank", ctx.mid, r), tag=tag)

    def h_gather(ctx, opid, lo, hi, tag=None):
        keys = snapshots(ctx)[opid]
        window = keys[lo:hi]
        ctx.charge(len(window) + 1)
        ctx.reply(("sel_gather", ctx.mid, window),
                  size=max(1, len(window)), tag=tag)

    def h_end(ctx, opid, tag=None):
        keys = snapshots(ctx).pop(opid, [])
        ctx.charge(1)
        ctx.module.free_words(len(keys))
        ctx.reply(("ack",), tag=tag)

    return {
        f"{name}:sel_begin": h_begin,
        f"{name}:sel_probe": h_probe,
        f"{name}:sel_rank": h_rank_of,
        f"{name}:sel_gather": h_gather,
        f"{name}:sel_end": h_end,
    }


def handlers_for(sl: SkipListStructure) -> Dict[str, Any]:
    """The selection handler dict, created once per structure."""
    return cached_handlers(sl, "select", lambda: make_handlers(sl))


def rank(sl: SkipListStructure, key: Hashable) -> int:
    """The number of stored keys strictly below ``key``."""
    from repro.core import ops_range
    from repro.core.probes import BELOW_ALL

    res = ops_range.range_broadcast(sl, BELOW_ALL, key, func="count",
                                    inclusive=(False, False))
    return res.count


class _SelectOp(BatchOp):
    def __init__(self, sl: SkipListStructure, index: int,
                 gather_threshold: Optional[int]) -> None:
        self.sl = sl
        self.index = index
        self.gather_threshold = gather_threshold
        self.name = f"{sl.name}:select"

    def handlers(self):
        return handlers_for(self.sl)

    def route(self, machine, plan):
        sl = self.sl
        p = sl.num_modules
        index = self.index
        if not (0 <= index < sl.num_keys):
            raise IndexError(
                f"index {index} out of range 0..{sl.num_keys - 1}")
        threshold = (self.gather_threshold
                     if self.gather_threshold is not None else 4 * p)
        opid = getattr(sl, "_sel_seq", 0)
        sl._sel_seq = opid + 1
        name = sl.name

        # snapshot phase
        replies = yield [Broadcast(f"{name}:sel_begin", (opid,))]
        sizes = [0] * p
        for r in replies:
            _, mid, size = r.payload
            sizes[mid] = size
        lo = [0] * p
        hi = list(sizes)
        machine.cpu.alloc(2 * p)
        try:
            answer = yield from self._narrow(machine, opid, lo, hi,
                                             index, threshold)
        finally:
            machine.cpu.free(2 * p)
        # release the per-module snapshots (success-path cleanup stage)
        yield [Broadcast(f"{name}:sel_end", (opid,))]
        return answer

    def _narrow(self, machine, opid, lo, hi, target, threshold):
        sl = self.sl
        p = sl.num_modules
        name = sl.name
        while True:
            remaining = sum(h - l for l, h in zip(lo, hi))
            if remaining <= threshold:
                break
            meds: List[Tuple[Hashable, int]] = []
            replies = yield [(mid, f"{name}:sel_probe",
                              (opid, lo[mid], hi[mid]), None)
                             for mid in range(p)]
            for r in replies:
                _, mid, size, med = r.payload
                if med is not None:
                    meds.append((med, size))
            machine.cpu.charge(p, max(1.0, math.log2(p + 1)))
            # 2. weighted median of medians
            meds.sort()
            half = sum(w for _, w in meds) / 2
            acc = 0
            pivot = meds[-1][0]
            for med, w in meds:
                acc += w
                if acc >= half:
                    pivot = med
                    break
            # 3. pivot's rank within every window
            replies = yield [(mid, f"{name}:sel_rank",
                              (opid, lo[mid], hi[mid], pivot), None)
                             for mid in range(p)]
            below = [0] * p
            for r in replies:
                _, mid, cnt = r.payload
                below[mid] = cnt
            machine.cpu.charge(p, max(1.0, math.log2(p + 1)))
            total_below = sum(below)
            # 4. keep the side containing the target
            if target < total_below:
                for mid in range(p):
                    hi[mid] = lo[mid] + below[mid]
            else:
                target -= total_below
                for mid in range(p):
                    lo[mid] = lo[mid] + below[mid]
            if total_below == 0:
                # pivot is the global minimum of the remaining windows;
                # it is the answer iff target == 0
                if target == 0:
                    return pivot
                # otherwise discard it explicitly to guarantee progress
                replies = yield [(mid, f"{name}:sel_rank",
                                  (opid, lo[mid], hi[mid],
                                   just_above(pivot)), None)
                                 for mid in range(p)]
                skip = [0] * p
                for r in replies:
                    _, mid, cnt = r.payload
                    skip[mid] = cnt
                dropped = sum(skip)
                target -= dropped
                for mid in range(p):
                    lo[mid] += skip[mid]

        # gather the few remaining candidates
        replies = yield [(mid, f"{name}:sel_gather",
                          (opid, lo[mid], hi[mid]), None)
                         for mid in range(p)]
        candidates: List[Hashable] = []
        for r in replies:
            _, mid, window = r.payload
            candidates.extend(window)
        with machine.cpu.region(len(candidates)):
            candidates.sort()
            machine.cpu.charge(
                len(candidates) * max(1.0, math.log2(len(candidates) + 1)),
                max(1.0, math.log2(len(candidates) + 1)),
            )
        return candidates[target]


def select(sl: SkipListStructure, index: int,
           gather_threshold: Optional[int] = None) -> Hashable:
    """The key of 0-indexed ``index`` in sorted order.

    Raises IndexError when out of range.  See the module docstring for
    the algorithm and its costs.
    """
    return run_batch(sl.machine, _SelectOp(sl, index, gather_threshold))
