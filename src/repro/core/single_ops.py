"""Single-operation executions (the paper's per-§4 warm-up paragraphs).

Each point-operation section of the paper first describes how *one*
operation executes before giving the batched algorithm; these functions
implement exactly those descriptions, with their stated costs:

- :func:`get_one` / :func:`update_one` -- hash shortcut: O(1) messages,
  O(1) whp PIM work (§4.1);
- :func:`successor_one` / :func:`predecessor_one` -- the naive search:
  O(log n) whp PIM work, O(log P) whp messages (§4.2);
- :func:`upsert_one` / :func:`delete_one` -- delegate to the batched
  pipelines with a batch of one (§4.3/§4.4 describe the same steps; a
  singleton batch degenerates to them, minus the batch-only staging).

They are conveniences for interactive use and small tests; throughput
work should always be batched (that is the model's whole point).
"""

from __future__ import annotations

from typing import Any, Hashable, Optional, Tuple

from repro.core import ops_delete, ops_point, ops_search, ops_upsert
from repro.core.ops_search import search_message
from repro.core.structure import SkipListStructure
from repro.ops import BatchOp, run_batch


class _OneShotOp(BatchOp):
    """A single-message op: one route stage, one reply."""

    def __init__(self, sl: SkipListStructure, suffix: str,
                 handler_src) -> None:
        self.sl = sl
        self.name = f"{sl.name}:{suffix}"
        self._handler_src = handler_src

    def handlers(self):
        return self._handler_src(self.sl)

    def route(self, machine, plan):
        replies = yield [plan]
        return replies


def get_one(sl: SkipListStructure, key: Hashable) -> Optional[Any]:
    """Get(key) via the hash shortcut: exactly 2 messages."""
    op = _OneShotOp(sl, "get_one", ops_point.handlers_for)
    msg = (sl.leaf_owner(key), f"{sl.name}:pt_get", (key,), None)
    (reply,) = run_batch(sl.machine, op, msg)
    _key, value, found = reply.payload
    return value if found else None


def update_one(sl: SkipListStructure, key: Hashable, value: Any) -> bool:
    """Update(key, value); returns whether the key existed."""
    op = _OneShotOp(sl, "update_one", ops_point.handlers_for)
    msg = (sl.leaf_owner(key), f"{sl.name}:pt_update", (key, value), None)
    (reply,) = run_batch(sl.machine, op, msg)
    return bool(reply.payload[1])


def _search_one(sl: SkipListStructure, key: Hashable):
    op = _OneShotOp(sl, "search_one", ops_search.handlers_for)
    msg = search_message(sl, key, opid=0, record=False)
    replies = run_batch(sl.machine, op, msg)
    pred = right = None
    for r in replies:
        if r.payload[0] == "done":
            _, _, pred, right = r.payload
    return pred, right


def successor_one(sl: SkipListStructure, key: Hashable,
                  ) -> Optional[Tuple[Hashable, Any]]:
    """Successor(key): the naive single search from the root."""
    pred, right = _search_one(sl, key)
    if pred is None:
        return None
    if not pred.is_sentinel and pred.key == key:
        return (pred.key, pred.value)
    if right is not None:
        return (right.key, right.value)
    return None


def predecessor_one(sl: SkipListStructure, key: Hashable,
                    ) -> Optional[Tuple[Hashable, Any]]:
    """Predecessor(key): the naive single search from the root."""
    pred, _right = _search_one(sl, key)
    if pred is None or pred.is_sentinel:
        return None
    return (pred.key, pred.value)


def upsert_one(sl: SkipListStructure, key: Hashable, value: Any) -> bool:
    """Upsert(key, value); returns True when a new key was inserted."""
    stats = ops_upsert.batch_upsert(sl, [(key, value)])
    return stats.inserted == 1


def delete_one(sl: SkipListStructure, key: Hashable) -> bool:
    """Delete(key); returns whether the key existed."""
    stats = ops_delete.batch_delete(sl, [key])
    return stats.deleted == 1
