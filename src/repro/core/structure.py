"""Structural layer of the PIM skip list.

This module owns everything below the batch algorithms: the sentinel
tower, the upper/lower split (paper §3.1), per-module local state (hash
table, local leaf list), node creation with memory accounting, the local
mutators that task handlers call (local leaf insertion/removal with
next-leaf maintenance, idempotent upper-part linking), and the replicated
upper-part descent.

Placement recap (Fig. 2): the skip list is cut horizontally at height
``h_low = log2 P``.  Nodes at level >= ``h_low`` (the *upper part*) are
replicated in every module; nodes below (the *lower part*) are distributed
by a seeded hash on (key, level).  Each module additionally chains its own
leaves into a *local leaf list* and each upper-part leaf keeps a
per-module ``next_leaf`` pointer to the first local leaf at or after its
key.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Hashable, List, Optional, Tuple

from repro.balls.hashing import KeyLevelHash, stable_hash
from repro.core.hash_table import CuckooHashTable
from repro.core.node import NEG_INF, NODE_WORDS, Node, UPPER
from repro.core.storage import StorageBackend, make_storage
from repro.sim.machine import PIMMachine

Charge = Callable[[float], None]

MAX_HEIGHT = 64
"""Cap on tower height (2^-64 truncation; irrelevant at any feasible n)."""


@dataclass
class ModuleLocal:
    """Per-module local state of one skip-list structure."""

    table: CuckooHashTable
    first_leaf: Optional[Node] = None
    last_leaf: Optional[Node] = None
    leaf_count: int = 0
    # Transient per-(opid, token) state of in-flight range traversals.
    range_ctx: Dict = field(default_factory=dict)


class SkipListStructure:
    """Storage layout + local mutators of the PIM skip list.

    One instance per :class:`repro.core.skiplist.PIMSkipList`; the batch
    operation modules (``ops_*``) orchestrate message flow and call the
    local mutators from inside task handlers.
    """

    def __init__(self, machine: PIMMachine, name: str = "skiplist",
                 level_promotion: float = 0.5,
                 h_low_override: Optional[int] = None,
                 storage: Optional[str] = None) -> None:
        self.machine = machine
        self.name = name
        # Storage backend first: node creation below registers with it.
        self.storage: StorageBackend = make_storage(storage)
        self.storage_kind: str = self.storage.kind
        self.num_modules = machine.num_modules
        p = self.num_modules
        if h_low_override is not None:
            # Ablation hook: the paper sets the split at log2 P; the
            # upper/lower split benchmark varies it to show the space/IO
            # trade-off.
            self.h_low = max(1, h_low_override)
        else:
            self.h_low = max(1, int(round(math.log2(p))) if p > 1 else 1)
        self.level_p = level_promotion
        # stable_hash, not hash(): the per-process salt on str hashing
        # would give each run a different placement draw, breaking
        # cross-process reproducibility (and the golden-metrics tests).
        self.hash = KeyLevelHash(
            p, seed=machine.spawn_rng(stable_hash(name) & 0xFFFF).getrandbits(32))
        self.rng: random.Random = machine.spawn_rng(0xC01)
        self.num_keys = 0
        # Pre-formatted handler ids for the hot search path: the f-string
        # per forwarded hop was measurable in the wall-clock profile.
        self.fn_search_entry = f"{name}:search_entry"
        self.fn_search_step = f"{name}:search_step"

        # Per-module local state.
        for mid in range(p):
            module = machine.modules[mid]
            module.state[name] = ModuleLocal(
                table=CuckooHashTable(
                    rng=machine.spawn_rng(0x7AB1E0 + mid),
                    charge=module.charge,
                )
            )

        # Sentinel tower (-inf at every level, fully replicated).
        st = self.storage
        self.sentinels: List[Node] = []
        self.top_level = self.h_low + 1
        prev: Optional[Node] = None
        for lvl in range(self.top_level + 1):
            s = Node(NEG_INF, lvl, owner=UPPER)
            if lvl == self.h_low:
                s.init_next_leaf(p)
            st.alloc(s)
            if prev is not None:
                s.down = prev
                prev.up = s
                st.link(s, "down", prev)
                st.link(prev, "up", s)
            self.sentinels.append(s)
            prev = s
        for mid in range(p):
            # sentinel tower: one replica's words per module
            machine.modules[mid].alloc_words(len(self.sentinels) * NODE_WORDS + 1)

    # ------------------------------------------------------------------
    # basic geometry
    # ------------------------------------------------------------------

    @property
    def root(self) -> Node:
        """The search root: the sentinel node at the current top level."""
        return self.sentinels[self.top_level]

    @property
    def upper_leaf_sentinel(self) -> Node:
        """The sentinel's node at level ``h_low`` (leftmost upper leaf)."""
        return self.sentinels[self.h_low]

    def is_upper_level(self, level: int) -> bool:
        """True when ``level`` lies in the replicated upper part."""
        return level >= self.h_low

    def mlocal(self, mid: int) -> ModuleLocal:
        """Module ``mid``'s local state for this structure."""
        return self.machine.modules[mid].state[self.name]

    def owner_of(self, key: Hashable, level: int) -> int:
        """Module owning the lower-part node for (key, level)."""
        return self.hash.module_of(key, level)

    def leaf_owner(self, key: Hashable) -> int:
        """Module owning ``key``'s leaf (the Get/Update shortcut target)."""
        return self.owner_of(key, 0)

    def draw_height(self) -> int:
        """Tower top level: geometric(1/2), so the tower spans 0..height."""
        h = 0
        while h < MAX_HEIGHT and self.rng.random() < self.level_p:
            h += 1
        return h

    # ------------------------------------------------------------------
    # node creation / destruction (with memory accounting)
    # ------------------------------------------------------------------

    def make_lower_node(self, key: Hashable, level: int, value: Any = None) -> Node:
        """Create an unlinked lower-part node (no memory charged yet).

        Memory is charged when the node is delivered to its owner (the
        creation task calls :meth:`account_lower_alloc`).
        """
        if self.is_upper_level(level):
            raise ValueError("lower node at upper level")
        node = Node(key, level, owner=self.owner_of(key, level), value=value)
        self.storage.alloc(node)
        return node

    def make_upper_node(self, key: Hashable, level: int) -> Node:
        """Create an unlinked upper-part (replicated) node."""
        if not self.is_upper_level(level):
            raise ValueError("upper node below h_low")
        node = Node(key, level, owner=UPPER)
        if level == self.h_low:
            node.init_next_leaf(self.num_modules)
        self.storage.alloc(node)
        return node

    def account_lower_alloc(self, node: Node) -> None:
        """Charge a lower-part node's words at its owner."""
        self.machine.modules[node.owner].alloc_words(NODE_WORDS)

    def account_lower_free(self, node: Node) -> None:
        """Release a lower-part node's words at its owner."""
        self.machine.modules[node.owner].free_words(NODE_WORDS)

    def account_upper_alloc_on(self, mid: int, node: Node) -> None:
        """Charge one module's share of an upper node's replicated storage."""
        words = NODE_WORDS + (1 if node.level == self.h_low else 0)
        self.machine.modules[mid].alloc_words(words)

    def account_upper_free_on(self, mid: int, node: Node) -> None:
        """Release one module's share of an upper node's storage."""
        words = NODE_WORDS + (1 if node.level == self.h_low else 0)
        self.machine.modules[mid].free_words(words)

    # ------------------------------------------------------------------
    # replicated upper-part operations (local on any module)
    # ------------------------------------------------------------------

    def upper_descend(self, key: Hashable, charge: Charge) -> Node:
        """Descend the (replicated) upper part toward ``key``.

        Returns the upper-part leaf (level ``h_low`` node) with the
        largest key <= ``key``.  Purely local: every touched node is
        replicated.  Charges one unit per node traversed.
        """
        x = self.root
        charge(1)
        while True:
            while x.right is not None and x.right.key <= key:
                x = x.right
                charge(1)
            if x.level == self.h_low:
                return x
            x = x.down
            charge(1)

    def upper_descend_path(self, key: Hashable, charge: Charge) -> List[Node]:
        """Like :meth:`upper_descend` but returns the rightmost node at
        *every* upper level (root level down to ``h_low``), for insertion."""
        path: List[Node] = []
        x = self.root
        charge(1)
        while True:
            while x.right is not None and x.right.key <= key:
                x = x.right
                charge(1)
            path.append(x)
            if x.level == self.h_low:
                return path
            x = x.down
            charge(1)

    def link_upper_node(self, node: Node, charge: Charge) -> None:
        """Horizontally link a new upper node into its level (idempotent).

        Executed by every module when the creation broadcast arrives; the
        first execution performs the (shared-object) mutation, later ones
        only charge the work, so replication costs are accounted without
        double-linking.
        """
        if node.left is not None or node.right is not None:
            charge(1)
            return
        # Descend to the insertion point at node.level.  The strict <
        # keeps the descent off same-key nodes -- i.e. off this node's own
        # tower: when delivery retries reorder a link batch, a higher
        # tower node may already be linked, and stepping onto it would
        # route the descent down through the tower onto ``node`` itself
        # (self-linking it).  Keys are unique, so fault-free the path is
        # unchanged.
        x = self.root
        charge(1)
        while True:
            while x.right is not None and x.right.key < node.key:
                x = x.right
                charge(1)
            if x.level == node.level:
                break
            # The down-step must land on a horizontally *linked* node, or
            # the descent loses its anchor to the level's list.  Fault-free
            # that always holds (a tower links bottom-up within one round),
            # but a retried link batch can install a tower's upper node
            # before its lower one; slide left until the step is safe (the
            # sentinel column always is).
            d = x.down
            while d.left is None and d.right is None and d.key is not NEG_INF:
                x = x.left
                d = x.down
                charge(1)
            x = d
            charge(1)
        succ = x.right
        node.left = x
        node.right = succ
        x.right = node
        if succ is not None:
            succ.left = node
        if self.storage.mirrors:
            self.storage.link(x, "right", node)
            self.storage.link(node, "right", succ)
        charge(1)

    def unlink_upper_node(self, node: Node, charge: Charge) -> None:
        """Splice an upper node out of its level (idempotent)."""
        charge(1)
        lf, rt = node.left, node.right
        if lf is None and rt is None:
            return  # already unlinked
        if lf is not None:
            lf.right = rt
        if rt is not None:
            rt.left = lf
        node.left = None
        node.right = None
        if self.storage.mirrors:
            # First (real) unlink of the replicated node: splice the
            # mirror and release its arena row exactly once.
            if lf is not None:
                self.storage.link(lf, "right", rt)
            self.storage.free(node)

    def grow_to_level(self, level: int, charge: Charge) -> None:
        """Extend the sentinel tower so the root sits above ``level``.

        Idempotent; each module's share of the new sentinel words is
        charged by the caller (the growth broadcast task).
        """
        while self.top_level <= level:
            charge(1)
            below = self.sentinels[self.top_level]
            s = Node(NEG_INF, self.top_level + 1, owner=UPPER)
            s.down = below
            below.up = s
            self.storage.alloc(s)
            if self.storage.mirrors:
                self.storage.link(s, "down", below)
                self.storage.link(below, "up", s)
            self.sentinels.append(s)
            self.top_level += 1

    # ------------------------------------------------------------------
    # local leaf list operations (run on one module, via its handlers)
    # ------------------------------------------------------------------

    def local_position(self, mid: int, key: Hashable, charge: Charge,
                       ) -> Tuple[Optional[Node], Optional[Node]]:
        """(pred, succ) of ``key`` within module ``mid``'s local leaf list.

        ``pred`` is the last local leaf with key < ``key``; ``succ`` the
        first with key >= ``key``.  Either may be ``None``.  Uses the
        replicated upper part + the module's next-leaf pointers, then a
        short local walk (O(log P) whp).
        """
        ml = self.mlocal(mid)
        u = self.upper_descend(key, charge)
        cur = u.next_leaf[mid] if u.next_leaf is not None else None
        if cur is None:
            # no local leaf at or after u.key: pred is the module's last
            # leaf if it is < key (it must be, since it is < u.key <= key
            # ... unless the list is empty).
            pred = ml.last_leaf
            if pred is not None and not (pred.key < key):
                # Defensive: stale next-leaf would be a structure bug.
                raise AssertionError("next-leaf invariant violated")
            return pred, None
        if cur.key >= key:
            charge(1)
            return cur.local_left, cur
        prev = cur
        cur = cur.local_right
        charge(1)
        while cur is not None and cur.key < key:
            prev, cur = cur, cur.local_right
            charge(1)
        return prev, cur

    def local_insert_leaf(self, mid: int, leaf: Node, charge: Charge) -> None:
        """Insert ``leaf`` into module ``mid``'s local list + hash table.

        Also repairs the module's next-leaf pointers: every upper-part
        leaf with key in (pred.key, leaf.key] must now point at ``leaf``.
        """
        ml = self.mlocal(mid)
        pred, succ = self.local_position(mid, leaf.key, charge)
        leaf.local_left = pred
        leaf.local_right = succ
        if pred is not None:
            pred.local_right = leaf
        else:
            ml.first_leaf = leaf
        if succ is not None:
            succ.local_left = leaf
        else:
            ml.last_leaf = leaf
        ml.leaf_count += 1
        charge(1)
        ml.table.insert(leaf.key, leaf)
        # next-leaf repair: walk upper leaves left from the descent point.
        pred_key = pred.key if pred is not None else None
        u = self.upper_descend(leaf.key, charge)
        while u is not None and (pred_key is None or u.key > pred_key):
            if u.next_leaf is not None:
                u.next_leaf[mid] = leaf
            charge(1)
            u = u.left
            if u is not None and u.level != self.h_low:  # pragma: no cover
                raise AssertionError("left walk left the upper-leaf level")

    def local_remove_leaf(self, mid: int, leaf: Node, charge: Charge) -> None:
        """Remove ``leaf`` from module ``mid``'s local list + hash table,
        repairing next-leaf pointers that referenced it."""
        ml = self.mlocal(mid)
        pred, succ = leaf.local_left, leaf.local_right
        if pred is not None:
            pred.local_right = succ
        else:
            ml.first_leaf = succ
        if succ is not None:
            succ.local_left = pred
        else:
            ml.last_leaf = pred
        ml.leaf_count -= 1
        charge(1)
        ml.table.delete(leaf.key)
        leaf.local_left = None
        leaf.local_right = None
        pred_key = pred.key if pred is not None else None
        u = self.upper_descend(leaf.key, charge)
        while u is not None and (pred_key is None or u.key > pred_key):
            if u.next_leaf is not None and u.next_leaf[mid] is leaf:
                u.next_leaf[mid] = succ
            charge(1)
            u = u.left
            if u is not None and u.level != self.h_low:  # pragma: no cover
                raise AssertionError("left walk left the upper-leaf level")

    def compute_next_leaf(self, mid: int, upper_leaf: Node, charge: Charge) -> None:
        """Set a *new* upper leaf's next-leaf pointer for module ``mid``:
        the first local leaf with key >= the upper leaf's key."""
        _, succ = self.local_position(mid, upper_leaf.key, charge)
        # local_position's succ is the first local leaf >= key; but a
        # leaf with key exactly equal belongs to next_leaf as well, and
        # local_position treats `key <= cur.key` as succ -- correct.
        upper_leaf.next_leaf[mid] = succ

    # ------------------------------------------------------------------
    # bulk construction
    # ------------------------------------------------------------------

    def bulk_build(self, items) -> None:
        """Initialize the structure with sorted, unique (key, value) pairs.

        The model assumes "the input starts evenly divided among the PIM
        modules"; this constructor realizes that initial state directly
        (memory is accounted; construction work is charged at one unit per
        created node on the receiving side, but no network messages are
        billed -- the input is already resident).  For dynamic insertion
        with full cost accounting use batched Upsert.
        """
        if self.num_keys != 0:
            raise ValueError("bulk_build requires an empty structure")
        items = list(items)
        for (k1, _), (k2, _) in zip(items, items[1:]):
            if not (k1 < k2):
                raise ValueError("bulk_build requires sorted unique keys")
        p = self.num_modules
        heights = [self.draw_height() for _ in items]
        max_h = max(heights, default=0)
        if max_h + 1 > self.top_level:
            before = len(self.sentinels)
            self.grow_to_level(max_h, lambda w: None)
            grown = len(self.sentinels) - before
            for mid in range(p):
                self.machine.modules[mid].alloc_words(grown * NODE_WORDS)

        # Build towers and link all levels horizontally.
        st = self.storage
        mirrors = st.mirrors
        level_tail: List[Node] = list(self.sentinels)
        for (key, value), h in zip(items, heights):
            below: Optional[Node] = None
            up_chain: List[Node] = []
            for lvl in range(h + 1):
                if self.is_upper_level(lvl):
                    node = self.make_upper_node(key, lvl)
                    for mid in range(p):
                        self.account_upper_alloc_on(mid, node)
                        self.machine.modules[mid].charge(1)
                else:
                    node = self.make_lower_node(key, lvl, value if lvl == 0 else None)
                    self.account_lower_alloc(node)
                    self.machine.modules[node.owner].charge(1)
                tail = level_tail[lvl]
                tail.right = node
                node.left = tail
                level_tail[lvl] = node
                if below is not None:
                    below.up = node
                    node.down = below
                if mirrors:
                    st.link(tail, "right", node)
                    if below is not None:
                        st.link(below, "up", node)
                        st.link(node, "down", below)
                below = node
                if lvl == 0:
                    leaf = node
                elif not self.is_upper_level(lvl):
                    up_chain.append(node)
            leaf.up_chain = up_chain
            leaf.has_upper = h >= self.h_low

        # Local leaf lists + hash tables, per module, in key order.
        locals_by_mid: List[List[Node]] = [[] for _ in range(p)]
        for leaf in self.iter_level(0):
            locals_by_mid[leaf.owner].append(leaf)
        for mid in range(p):
            ml = self.mlocal(mid)
            chain = locals_by_mid[mid]
            prev: Optional[Node] = None
            for leaf in chain:
                leaf.local_left = prev
                if prev is not None:
                    prev.local_right = leaf
                prev = leaf
                ml.table.insert(leaf.key, leaf)
            ml.first_leaf = chain[0] if chain else None
            ml.last_leaf = chain[-1] if chain else None
            ml.leaf_count = len(chain)

        # next-leaf pointers: two-pointer sweep per module over the
        # descending upper leaves and that module's descending leaves.
        upper_leaves = [self.upper_leaf_sentinel] + list(self.iter_level(self.h_low))
        for mid in range(p):
            chain = locals_by_mid[mid]
            j = len(chain) - 1
            for u in reversed(upper_leaves):
                while j >= 0 and chain[j].key >= u.key:
                    j -= 1
                # chain[j+1] is the first local leaf with key >= u.key
                u.next_leaf[mid] = chain[j + 1] if j + 1 < len(chain) else None

        self.num_keys = len(items)

    # ------------------------------------------------------------------
    # diagnostics / integrity
    # ------------------------------------------------------------------

    def iter_level(self, level: int):
        """Yield the real (non-sentinel) nodes at ``level``, left to right.

        Diagnostic only (walks shared objects without cost accounting).
        """
        if level > self.top_level:
            return
        x = self.sentinels[level].right
        while x is not None:
            yield x
            x = x.right

    def keys_in_order(self) -> List[Hashable]:
        """All keys, ascending (diagnostic; not cost-accounted)."""
        return [n.key for n in self.iter_level(0)]

    def check_integrity(self) -> None:
        """Assert every structural invariant; raises AssertionError on rot.

        Used by tests and by the property-based suite after each batch.
        """
        p = self.num_modules
        # 1. horizontal order + left/right symmetry at every level
        for lvl in range(self.top_level + 1):
            prev = self.sentinels[lvl]
            x = prev.right
            while x is not None:
                assert prev.key < x.key, f"order violated at level {lvl}"
                assert x.left is prev, f"left pointer broken at level {lvl}"
                assert x.level == lvl
                assert not x.deleted, "deleted node still linked"
                prev, x = x, x.right
        # 2. towers: up/down symmetry and presence at every level below top
        for leaf in self.iter_level(0):
            x = leaf
            lvl = 0
            while x.up is not None:
                assert x.up.down is x, "up/down asymmetry"
                assert x.up.key == x.key
                assert x.up.level == lvl + 1
                x = x.up
                lvl += 1
        # 3. level membership: each level-(i+1) node has a level-i node,
        #    and vertical pointers are symmetric in both directions
        for lvl in range(1, self.top_level + 1):
            for x in self.iter_level(lvl):
                assert x.down is not None, "tower gap"
                assert x.down.up is x, "down/up asymmetry"
        # 4. ownership: lower nodes hashed correctly, upper nodes replicated
        for lvl in range(self.top_level + 1):
            for x in self.iter_level(lvl):
                if self.is_upper_level(lvl):
                    assert x.owner == UPPER
                else:
                    assert x.owner == self.owner_of(x.key, lvl)
        # 5. local leaf lists: partition of leaves, ordered, tables agree
        all_leaves = list(self.iter_level(0))
        by_module: dict = {mid: [] for mid in range(p)}
        for leaf in all_leaves:
            by_module[leaf.owner].append(leaf)
        for mid in range(p):
            ml = self.mlocal(mid)
            chain = []
            x = ml.first_leaf
            prev = None
            while x is not None:
                chain.append(x)
                assert x.local_left is prev, "local_left broken"
                if prev is not None:
                    assert prev.key < x.key, "local list out of order"
                prev, x = x, x.local_right
            assert ml.last_leaf is (chain[-1] if chain else None)
            assert ml.leaf_count == len(chain)
            assert chain == by_module[mid], f"local list of module {mid} wrong"
            assert len(ml.table) == len(chain)
            for leaf in chain:
                assert ml.table.lookup(leaf.key) is leaf, "hash table disagrees"
        # 6. next-leaf invariants at every upper leaf (incl. sentinel)
        uls = [self.upper_leaf_sentinel] + [
            n for n in self.iter_level(self.h_low)
        ]
        for u in uls:
            assert u.next_leaf is not None
            for mid in range(p):
                ml = self.mlocal(mid)
                expect = ml.first_leaf
                while expect is not None and expect.key < u.key:
                    expect = expect.local_right
                assert u.next_leaf[mid] is expect, (
                    f"next_leaf wrong at {u!r} for module {mid}"
                )
        # 7. key count
        assert self.num_keys == len(all_leaves)
        # 8. arena mirror (arena storage only): every linked node resides
        #    in the arena and its mirrored columns agree with the graph
        arena = self.storage.arena
        if arena is not None:
            reachable = 0
            for lvl in range(self.top_level + 1):
                x: Optional[Node] = self.sentinels[lvl]
                while x is not None:
                    aid = x.aid
                    assert aid >= 0 and arena.nodes[aid] is x, (
                        f"node {x!r} not resident in the arena")
                    assert arena.live[aid], f"arena row {aid} not live"
                    assert arena.keys[aid] == x.key or x.key is NEG_INF
                    assert int(arena.level[aid]) == x.level
                    assert int(arena.owner[aid]) == x.owner
                    r = int(arena.right[aid])
                    assert (arena.nodes[r] if r >= 0 else None) is x.right, (
                        f"arena right index stale at {x!r}")
                    d = int(arena.down[aid])
                    assert (arena.nodes[d] if d >= 0 else None) is x.down, (
                        f"arena down index stale at {x!r}")
                    u = int(arena.up[aid])
                    assert (arena.nodes[u] if u >= 0 else None) is x.up, (
                        f"arena up index stale at {x!r}")
                    if x.level == 0:
                        assert arena.values[aid] == x.value, (
                            f"arena value stale at {x!r}")
                    reachable += 1
                    x = x.right
            assert arena.live_count == reachable, (
                f"arena holds {arena.live_count} live rows, structure "
                f"links {reachable}")
