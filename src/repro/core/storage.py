"""Storage backends for the skip-list structure: object graph vs node arena.

The structure layer (:mod:`repro.core.structure`) keeps its algorithms on
the linked :class:`~repro.core.node.Node` graph -- that is the shared
algorithm both storage backends execute, which is what makes their
round/word accounting identical by construction.  The *storage backend*
decides how the structure's state is additionally laid out in memory:

- ``"object"`` -- the heap-allocated node graph alone (the reference
  layout; zero bookkeeping overhead);
- ``"arena"`` -- the node graph plus a :class:`NodeArena`: flat,
  contiguous, integer-indexed arrays (int64 keys, values, level, owner,
  and per-node successor/down/up *indices*) with a free-list for
  delete/upsert churn.  Every pointer mutation the structure performs is
  mirrored into the arrays through the narrow API below, so the hot
  search walk (:mod:`repro.core.ops_search`) can advance an entire
  wavefront per round with numpy gather/compare over the arena instead
  of chasing Python object pointers.

The narrow storage API -- the only thing the ``ops_*`` modules and the
structure's mutators may call -- is :meth:`StorageBackend.alloc`,
:meth:`StorageBackend.free`, :meth:`StorageBackend.link` (a pointer-field
write) and :meth:`StorageBackend.set_value`, plus the read-side
:meth:`StorageBackend.succ`.  For the object backend each hook is a
no-op (the object pointers, written by the shared algorithm, *are* the
storage); for the arena backend each hook maintains the arrays.

Selection mirrors the engine-backend pattern of :mod:`repro.sim.config`:
``PIMSkipList(storage="object" | "arena")``, with the
:data:`STORAGE_ENV_VAR` environment variable supplying the default for
structures built without an explicit argument.  Model metrics are
certified bit-identical across storages by ``repro.verify.differ``'s
cross-storage replay; only wall-clock behaviour differs.
"""

from __future__ import annotations

import os
from typing import Any, List, Optional

from repro.core.node import NEG_INF, Node

try:  # numpy is optional at runtime; the arena degrades to Python lists.
    import numpy as _np
except ImportError:  # pragma: no cover - exercised via _force_no_numpy
    _np = None  # type: ignore[assignment]

#: Environment variable overriding the structure-storage backend for
#: skip lists constructed without an explicit ``storage=`` argument.
#: Accepted values: ``"object"`` or ``"arena"``.
STORAGE_ENV_VAR = "REPRO_STRUCT_STORAGE"

#: The two structure-storage backends.
STORAGES = ("object", "arena")

I64_MIN = -(2 ** 63)
I64_MAX = 2 ** 63 - 1


def resolve_storage(storage: Optional[str]) -> str:
    """Resolve a storage selection to ``"object"`` or ``"arena"``.

    ``None`` (unspecified) consults :data:`STORAGE_ENV_VAR`, defaulting
    to ``"object"``.  An explicit argument always wins over the
    environment.  Unknown names raise ``ValueError`` either way.
    """
    origin = "storage"
    if storage is None:
        storage = os.environ.get(STORAGE_ENV_VAR) or "object"
        origin = STORAGE_ENV_VAR
    if storage not in STORAGES:
        raise ValueError(
            f"unknown structure storage {storage!r} (from {origin}); "
            f"expected one of {', '.join(STORAGES)}")
    return storage


def key_to_i64(key: Any) -> Optional[int]:
    """Map a stored key to its int64 arena representation.

    Plain Python ints strictly inside the int64 range map to themselves;
    the -inf sentinel maps to ``I64_MIN``.  Everything else (strings,
    floats, bools, huge ints, probe objects) returns ``None`` -- such
    keys force the vectorized walk onto its scalar fallback.
    """
    if type(key) is int and I64_MIN < key < I64_MAX:
        return key
    if key is NEG_INF:
        return I64_MIN
    return None


class NodeArena:
    """Level-agnostic flat node storage: one row per live node.

    Rows are addressed by *arena id* (``aid``, stamped onto the node's
    ``aid`` slot at :meth:`alloc` time).  Columns are parallel arrays --
    numpy int64 when numpy is available (the vectorized walk's gather
    targets), plain Python lists otherwise (correctness-only mode).
    ``right`` / ``down`` / ``up`` hold successor *indices* (-1 for no
    neighbor); ``key_i64`` holds the int64 image of the key (rows whose
    key has no int64 image are tracked in ``_bad_keys`` and disable
    :attr:`vector_ok` while live).  Freed rows go onto a free-list and
    are reused by later allocations, so delete/upsert churn does not
    grow the arrays.
    """

    __slots__ = (
        "key_i64", "key_ok", "keys", "values", "level", "owner",
        "right", "down", "up", "live", "nodes",
        "_free", "_n", "_cap", "_bad_keys",
        "allocs", "frees", "reuses", "live_count",
    )

    # int64 ndarrays with numpy, plain Python lists without.
    key_i64: Any
    level: Any
    owner: Any
    right: Any
    down: Any
    up: Any

    def __init__(self) -> None:
        self._cap = 0
        self._n = 0
        self._bad_keys = 0
        self._free: List[int] = []
        if _np is not None:
            empty = _np.empty(0, dtype=_np.int64)
            self.key_i64 = empty
            self.level = empty.copy()
            self.owner = empty.copy()
            self.right = empty.copy()
            self.down = empty.copy()
            self.up = empty.copy()
        else:
            self.key_i64 = []
            self.level = []
            self.owner = []
            self.right = []
            self.down = []
            self.up = []
        self.key_ok: List[bool] = []
        self.keys: List[Any] = []
        self.values: List[Any] = []
        self.live: List[bool] = []
        self.nodes: List[Optional[Node]] = []
        self.allocs = 0
        self.frees = 0
        self.reuses = 0
        self.live_count = 0

    # -- geometry ----------------------------------------------------------

    def __len__(self) -> int:
        return self.live_count

    @property
    def size(self) -> int:
        """High-water row count (live + freed rows)."""
        return self._n

    @property
    def vector_ok(self) -> bool:
        """True when the numpy wavefront walk may read these arrays:
        numpy present and every live key has a faithful int64 image."""
        return _np is not None and self._bad_keys == 0

    def _grow(self) -> None:
        new_cap = max(64, self._cap * 2)
        add = new_cap - self._cap
        if _np is not None:
            for name in ("key_i64", "level", "owner", "right", "down", "up"):
                old = getattr(self, name)
                arr = _np.empty(new_cap, dtype=_np.int64)
                arr[: self._cap] = old
                setattr(self, name, arr)
        else:
            for name in ("key_i64", "level", "owner", "right", "down", "up"):
                getattr(self, name).extend([0] * add)
        self.key_ok.extend([True] * add)
        self.keys.extend([None] * add)
        self.values.extend([None] * add)
        self.live.extend([False] * add)
        self.nodes.extend([None] * add)
        self._cap = new_cap

    # -- the narrow write API ----------------------------------------------

    def alloc(self, node: Node) -> int:
        """Register ``node``: claim a row (reusing a freed one when
        available), copy its scalar fields in, stamp ``node.aid``."""
        if self._free:
            aid = self._free.pop()
            self.reuses += 1
        else:
            if self._n == self._cap:
                self._grow()
            aid = self._n
            self._n += 1
        k64 = key_to_i64(node.key)
        if k64 is None:
            self.key_i64[aid] = 0
            self.key_ok[aid] = False
            self._bad_keys += 1
        else:
            self.key_i64[aid] = k64
            self.key_ok[aid] = True
        self.keys[aid] = node.key
        self.values[aid] = node.value
        self.level[aid] = node.level
        self.owner[aid] = node.owner
        self.right[aid] = -1
        self.down[aid] = -1
        self.up[aid] = -1
        self.live[aid] = True
        self.nodes[aid] = node
        self.allocs += 1
        self.live_count += 1
        node.aid = aid
        return aid

    def free(self, node: Node) -> None:
        """Release ``node``'s row onto the free-list."""
        aid = node.aid
        if aid < 0 or self.nodes[aid] is not node:
            raise AssertionError(
                f"arena free of unregistered node {node!r} (aid={aid})")
        if not self.live[aid]:
            raise AssertionError(f"arena double free of {node!r}")
        if not self.key_ok[aid]:
            self._bad_keys -= 1
            self.key_ok[aid] = True
        self.live[aid] = False
        self.nodes[aid] = None
        self.keys[aid] = None
        self.values[aid] = None
        self.right[aid] = -1
        self.down[aid] = -1
        self.up[aid] = -1
        self.frees += 1
        self.live_count -= 1
        node.aid = -1
        self._free.append(aid)

    def link(self, node: Node, field: str, target: Optional[Node]) -> None:
        """Mirror the pointer write ``node.field = target`` (``field`` in
        ``right`` / ``down`` / ``up``) as an index write."""
        aid = node.aid
        if aid < 0 or self.nodes[aid] is not node:
            raise AssertionError(
                f"arena link on unregistered node {node!r} ({field})")
        if target is None:
            t = -1
        else:
            t = target.aid
            if t < 0 or self.nodes[t] is not target:
                raise AssertionError(
                    f"arena link target not resident: {target!r} ({field})")
        if field == "right":
            self.right[aid] = t
        elif field == "down":
            self.down[aid] = t
        elif field == "up":
            self.up[aid] = t
        else:
            raise ValueError(f"arena does not mirror field {field!r}")

    def set_value(self, node: Node, value: Any) -> None:
        """Mirror a leaf value write."""
        aid = node.aid
        if aid < 0 or self.nodes[aid] is not node:
            raise AssertionError(
                f"arena set_value on unregistered node {node!r}")
        self.values[aid] = value

    # -- the read API -------------------------------------------------------

    def node_at(self, aid: int) -> Optional[Node]:
        """The node occupying row ``aid`` (``None`` for freed rows)."""
        return self.nodes[aid]

    def succ(self, aid: int, lvl: Optional[int] = None) -> int:
        """Successor index of row ``aid``: its right neighbor at its own
        level, or -- given ``lvl`` -- at level ``lvl`` of its tower
        (navigating the mirrored up/down indices)."""
        if lvl is not None:
            while int(self.level[aid]) > lvl:
                aid = int(self.down[aid])
                if aid < 0:
                    raise IndexError("tower gap while descending")
            while int(self.level[aid]) < lvl:
                aid = int(self.up[aid])
                if aid < 0:
                    raise IndexError("tower ends below requested level")
        return int(self.right[aid])

    def stats(self) -> dict:
        """Occupancy and churn counters (diagnostic)."""
        return {
            "rows": self._n,
            "capacity": self._cap,
            "live": self.live_count,
            "free": len(self._free),
            "allocs": self.allocs,
            "frees": self.frees,
            "reuses": self.reuses,
            "bad_keys": self._bad_keys,
        }


class StorageBackend:
    """The object storage backend (and the hook contract).

    Object pointers written by the shared algorithms *are* this layout,
    so every mirror hook is a no-op.  ``mirrors`` lets hot paths skip
    the call entirely.
    """

    kind = "object"
    mirrors = False
    arena: Optional[NodeArena] = None

    def alloc(self, node: Node) -> None:
        pass

    def free(self, node: Node) -> None:
        pass

    def link(self, node: Node, field: str, target: Optional[Node]) -> None:
        pass

    def set_value(self, node: Node, value: Any) -> None:
        pass

    def succ(self, node: Node, lvl: Optional[int] = None) -> Optional[Node]:
        """The successor node at ``lvl`` (default: the node's own level),
        navigating the object graph."""
        if lvl is not None:
            while node.level > lvl:
                assert node.down is not None, "tower gap while descending"
                node = node.down
            while node.level < lvl:
                assert node.up is not None, "tower ends below level"
                node = node.up
        return node.right


class ObjectStorage(StorageBackend):
    """Alias backend name for the plain object-graph layout."""


class ArenaStorage(StorageBackend):
    """The arena backend: object graph + mirrored flat arrays."""

    kind = "arena"
    mirrors = True

    def __init__(self) -> None:
        self.arena = NodeArena()

    def alloc(self, node: Node) -> None:
        self.arena.alloc(node)

    def free(self, node: Node) -> None:
        self.arena.free(node)

    def link(self, node: Node, field: str, target: Optional[Node]) -> None:
        self.arena.link(node, field, target)

    def set_value(self, node: Node, value: Any) -> None:
        self.arena.set_value(node, value)

    def succ(self, node: Node, lvl: Optional[int] = None) -> Optional[Node]:
        arena = self.arena
        assert arena is not None
        r = arena.succ(node.aid, lvl)
        return arena.nodes[r] if r >= 0 else None


def make_storage(storage: Optional[str] = None) -> StorageBackend:
    """Construct the resolved storage backend instance."""
    kind = resolve_storage(storage)
    if kind == "arena":
        return ArenaStorage()
    return ObjectStorage()
