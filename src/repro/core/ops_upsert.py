"""Batched Upsert (paper §4.3): Update falling back to batched Insert.

An Upsert first attempts an Update through the hash shortcut; keys not
found become a batched Insert.  The insert pipeline (following the paper's
single-operation steps 1-6 plus the batch pointer construction):

1. Deduplicate and sort the missing keys; draw each tower's height from
   the geometric coin (CPU side -- the adversary never sees the coins).
2. Create the tower nodes with their vertical (up/down) pointers, the
   leaf's up-chain record, and the has-upper flag (step 5 of the paper).
3. Deliver lower-part nodes to their hash-designated modules (one message
   per node); leaves are inserted into the module's local leaf list and
   hash table, repairing the module's next-leaf pointers.
4. Run the batched Predecessor (the two-stage pivot search of §4.2) with
   path recording trimmed to the last ``l_i`` nodes per operation,
   obtaining each insert's per-level predecessor *in the old structure*.
5. Grow the sentinel tower if needed, then install upper-part nodes by
   broadcast: every module charges its replica's storage, links the node
   into its (shared, idempotently-mutated) upper level by a local
   descent, and computes the new upper leaf's next-leaf pointer for
   itself.
6. Run Algorithm 1 to construct the lower levels' horizontal pointers:
   within each level, runs of new nodes that share an old (pred, succ)
   segment are chained to each other and the run ends are linked to pred
   and succ -- every pointer is RemoteWritten exactly once.

Bounds (Theorem 4.4): same as Successor -- ``O(log^3 P)`` IO time,
``O(log^2 P log n)`` PIM time, ``O(P log^3 P)`` expected CPU work,
``O(log^2 P)`` CPU depth, ``Theta(P log^2 P)`` shared memory, whp.

Each numbered phase above is one route stage of a single
:class:`~repro.ops.BatchOp`; phase 4 nests the batched-search op as a
plain call (the machine is quiescent between stages).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Dict, Hashable, List, Optional, Sequence, Tuple

from repro.core.node import Node
from repro.core.ops_successor import batch_search
from repro.core.ops_write import write_message
from repro.core.structure import SkipListStructure
from repro.cpuside.semisort import group_by
from repro.cpuside.sort import parallel_sort
from repro.ops import BatchOp, Broadcast, cached_handlers, run_batch
from repro.sim.cpu import WorkDepth


@dataclass
class UpsertStats:
    """What a batched Upsert did."""

    updated: int
    inserted: int


def make_handlers(sl: SkipListStructure) -> Dict[str, Any]:
    def h_try_update(ctx, key, value, tag=None):
        ml = sl.mlocal(ctx.mid)
        leaf = ml.table.lookup(key)
        ctx.charge(1)
        if leaf is not None:
            ctx.touch(leaf.nid)
            leaf.value = value
            sl.storage.set_value(leaf, value)
        ctx.reply((key, leaf is not None), tag=tag)

    def h_insert_lower(ctx, node, tag=None):
        sl.account_lower_alloc(node)
        ctx.charge(1)
        ctx.touch(node.nid)
        if node.level == 0:
            sl.local_insert_leaf(ctx.mid, node, ctx.charge)
        ctx.reply(("ack",), tag=tag)

    def h_upper_prepare(ctx, node, tag=None):
        # Round 1 of upper installation: charge this module's replica
        # storage and -- for new upper leaves -- compute this module's
        # next-leaf pointer *against the old upper part* (nothing is
        # linked yet, so the descent sees a consistent structure).
        sl.account_upper_alloc_on(ctx.mid, node)
        ctx.charge(1)
        if node.level == sl.h_low:
            sl.compute_next_leaf(ctx.mid, node, ctx.charge)
        ctx.reply(("ack",), tag=tag)

    def h_upper_link(ctx, node, tag=None):
        # Round 2: idempotent horizontal linking of the shared replica.
        sl.link_upper_node(node, ctx.charge)
        ctx.reply(("ack",), tag=tag)

    return {
        f"{sl.name}:ups_try_update": h_try_update,
        f"{sl.name}:ups_insert_lower": h_insert_lower,
        f"{sl.name}:ups_upper_prepare": h_upper_prepare,
        f"{sl.name}:ups_upper_link": h_upper_link,
    }


def handlers_for(sl: SkipListStructure) -> Dict[str, Any]:
    """The upsert handler dict, created once per structure."""
    return cached_handlers(sl, "upsert", lambda: make_handlers(sl))


@dataclass
class _Tower:
    key: Hashable
    height: int
    nodes: List[Node]  # levels 0..height


def _build_tower(sl: SkipListStructure, key: Hashable, value: Any,
                 height: int) -> _Tower:
    """Create a tower's nodes with vertical pointers and leaf metadata."""
    nodes: List[Node] = []
    below: Optional[Node] = None
    for lvl in range(height + 1):
        if sl.is_upper_level(lvl):
            node = sl.make_upper_node(key, lvl)
        else:
            node = sl.make_lower_node(key, lvl, value if lvl == 0 else None)
        if below is not None:
            below.up = node
            node.down = below
            if sl.storage.mirrors:
                sl.storage.link(below, "up", node)
                sl.storage.link(node, "down", below)
        nodes.append(node)
        below = node
    leaf = nodes[0]
    leaf.up_chain = [n for n in nodes[1:] if not sl.is_upper_level(n.level)]
    leaf.has_upper = height >= sl.h_low
    return _Tower(key=key, height=height, nodes=nodes)


class _BatchUpsertOp(BatchOp):
    def __init__(self, sl: SkipListStructure,
                 pairs: Sequence[Tuple[Hashable, Any]]) -> None:
        self.sl = sl
        self.pairs = pairs
        self.name = f"{sl.name}:batch_upsert"

    def handlers(self):
        return handlers_for(self.sl)

    def route(self, machine, plan):
        sl, pairs = self.sl, self.pairs
        cpu = machine.cpu
        n = len(pairs)
        if n == 0:
            return UpsertStats(updated=0, inserted=0)

        shared_words = 2 * n
        cpu.alloc(shared_words)
        try:
            # -- phase A: deduplicate, try Update via the hash shortcut --
            groups = group_by(cpu, list(pairs), key=lambda kv: kv[0])
            wanted: Dict[Hashable, Any] = {
                k: occ[-1][1] for k, occ in groups.items()
            }
            cpu.charge(len(groups), max(1.0, math.log2(len(groups) + 1)))
            fn_try_update = f"{sl.name}:ups_try_update"
            replies = yield (
                (sl.leaf_owner(key), fn_try_update, (key, value), None)
                for key, value in wanted.items())
            found = {r.payload[0] for r in replies if r.payload[1]}
            missing = [(k, v) for k, v in wanted.items() if k not in found]
            updated = len(wanted) - len(missing)
            if not missing:
                return UpsertStats(updated=updated, inserted=0)

            # -- phase B: sort, draw heights, build towers ----------------
            missing = parallel_sort(cpu, missing, key=lambda kv: kv[0])
            heights = [sl.draw_height() for _ in missing]
            towers = [
                _build_tower(sl, k, v, h)
                for (k, v), h in zip(missing, heights)
            ]
            tower_words = sum(t.height + 1 for t in towers)
            cpu.alloc(tower_words)
            shared_words += tower_words
            cpu.charge_wd(WorkDepth(tower_words,
                                    max(1.0, math.log2(len(towers) + 1)) + 8))

            # -- phase C: deliver lower-part nodes -----------------------
            fn_insert_lower = f"{sl.name}:ups_insert_lower"
            yield (
                (node.owner, fn_insert_lower, (node,), None)
                for t in towers for node in t.nodes
                if not sl.is_upper_level(node.level))

            # -- phase D: batched Predecessor on the old structure -------
            keys = [k for k, _ in missing]
            outcomes = batch_search(sl, keys, record_all=True,
                                    record_levels=heights)

            # -- phase E: sentinel growth + upper-part installation ------
            max_h = max(heights)
            if max_h + 1 > sl.top_level:
                added = (max_h + 1) - sl.top_level
                yield [Broadcast(f"{sl.name}:grow", (max_h, added))]
            upper_nodes = [
                node for t in towers for node in t.nodes
                if sl.is_upper_level(node.level)
            ]
            if upper_nodes:
                fn_prepare = f"{sl.name}:ups_upper_prepare"
                yield [Broadcast(fn_prepare, (node,))
                       for node in upper_nodes]
                fn_link = f"{sl.name}:ups_upper_link"
                yield [Broadcast(fn_link, (node,))
                       for node in upper_nodes]

            # -- phase F: Algorithm 1 (lower horizontal pointers) --------
            yield _algorithm1(sl, towers, outcomes)

            sl.num_keys += len(missing)
            return UpsertStats(updated=updated, inserted=len(missing))
        finally:
            cpu.free(shared_words)


def batch_upsert(sl: SkipListStructure,
                 pairs: Sequence[Tuple[Hashable, Any]]) -> UpsertStats:
    """Execute a batch of Upsert operations.

    Duplicate keys in the batch collapse to the last occurrence.
    """
    return run_batch(sl.machine, _BatchUpsertOp(sl, pairs))


def _algorithm1(sl: SkipListStructure, towers: List[_Tower],
                outcomes) -> list:
    """Build the RemoteWrite messages of the paper's Algorithm 1.

    ``towers`` are key-sorted; ``outcomes[j].by_level[i]`` holds the old
    structure's (pred, pred.right) at level ``i`` for tower ``j``.  For
    each lower level, runs of new nodes sharing an old segment are chained
    together; the run ends attach to the old pred/succ.  Every pointer is
    written exactly once; the returned messages form one route stage.
    """
    cpu = sl.machine.cpu
    msgs: list = []
    total = 0
    for lvl in range(sl.h_low):
        row: List[Tuple[Node, Node, Optional[Node]]] = []
        for t, outcome in zip(towers, outcomes):
            if t.height < lvl:
                continue
            pred, succ = outcome.by_level[lvl]
            row.append((t.nodes[lvl], pred, succ))
        m = len(row)
        for j, (cur, pred, succ) in enumerate(row):
            right_end = (j == m - 1) or (row[j + 1][2] is not succ)
            if right_end:
                msgs.append(write_message(sl, cur, "right", succ))
                if succ is not None:
                    msgs.append(write_message(sl, succ, "left", cur))
            else:
                nxt = row[j + 1][0]
                msgs.append(write_message(sl, cur, "right", nxt))
                msgs.append(write_message(sl, nxt, "left", cur))
            left_end = (j == 0) or (row[j - 1][1] is not pred)
            if left_end:
                msgs.append(write_message(sl, pred, "right", cur))
                msgs.append(write_message(sl, cur, "left", pred))
        total += m
    cpu.charge_wd(WorkDepth(2 * total + 1, max(1.0, math.log2(total + 2)) + 8))
    return msgs
