"""The paper's primary contribution: the PIM-balanced skip list.

Public API
----------

:class:`~repro.core.skiplist.PIMSkipList` is the batch-parallel ordered
map.  Construct it over a :class:`repro.sim.machine.PIMMachine` and drive
it with batches (all operations in a batch share one type, as the model
requires):

- ``batch_get(keys)`` / ``batch_update(pairs)`` -- point lookups/updates
  via the (key, level)->module hash shortcut (paper §4.1);
- ``batch_successor(keys)`` / ``batch_predecessor(keys)`` -- two-stage
  pivot searches with provably bounded node contention (paper §4.2);
- ``batch_upsert(pairs)`` -- update-or-insert with Algorithm 1's parallel
  horizontal-pointer construction (paper §4.3);
- ``batch_delete(keys)`` -- shortcut deletion plus list-contraction
  splicing (paper §4.4);
- ``batch_range(ops)`` / ``range_broadcast(...)`` -- range operations by
  tree structure (§5.2) or by broadcast (§5.1).

Supporting pieces: the node/address layer (:mod:`repro.core.node`), the
replicated-upper/hashed-lower structure (:mod:`repro.core.structure`),
per-module de-amortized cuckoo hash tables (:mod:`repro.core.hash_table`),
and one module per operation family (``ops_*``).
"""

from repro.core.hash_table import CuckooHashTable
from repro.core.node import Node, NodeId, UPPER
from repro.core.skiplist import PIMSkipList
from repro.core.structure import SkipListStructure

__all__ = [
    "CuckooHashTable",
    "Node",
    "NodeId",
    "PIMSkipList",
    "SkipListStructure",
    "UPPER",
]
