"""Skip-list nodes and the key ordering (including the -inf sentinel).

A node exists for each (key, level) pair of a tower, linked four ways as
in the paper (§3.2): ``left``/``right`` within a level, ``up``/``down``
within a tower.  Three extra pointer families support range operations:
``local_left``/``local_right`` chain a module's leaves into its *local
leaf list*, and each upper-part leaf carries a per-module ``next_leaf``
pointer into that module's local leaf list.

Ownership: a node is either *lower-part* (owned by one module, chosen by
the structure's (key, level) hash) or *upper-part* / sentinel (owner
:data:`UPPER`, logically replicated in every module; the simulator keeps
one object and charges its memory once per module).

Nodes carry a monotonically increasing ``nid`` used for deterministic
identities in tracing and list contraction.
"""

from __future__ import annotations

import itertools
from typing import Any, Dict, List, Optional

UPPER = -1
"""Owner sentinel: the node is replicated in every PIM module."""

NODE_WORDS = 8
"""Accounted size of one node in words (pointers + key + value + flags)."""


class _NegInf:
    """The -infinity key: compares less than every other key."""

    _instance: Optional["_NegInf"] = None

    def __new__(cls) -> "_NegInf":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __lt__(self, other: Any) -> bool:
        return other is not self

    def __le__(self, other: Any) -> bool:
        return True

    def __gt__(self, other: Any) -> bool:
        return False

    def __ge__(self, other: Any) -> bool:
        return other is self

    def __eq__(self, other: Any) -> bool:
        return other is self

    def __hash__(self) -> int:
        return 0x5EB1A9

    def __repr__(self) -> str:
        return "-inf"


NEG_INF = _NegInf()
"""Singleton -infinity key used by the sentinel tower."""

_nid_counter = itertools.count(1)


class Node:
    """One (key, level) element of a skip-list tower.

    Attributes
    ----------
    key, level, value:
        ``value`` is meaningful only at level 0 (the leaf).
    owner:
        Module id for lower-part nodes, :data:`UPPER` for replicated ones.
    left, right, up, down:
        The solid pointers of Fig. 2 (point operations).
    local_left, local_right:
        Leaf-only: neighbors within the owning module's local leaf list
        (dashed pointers of Fig. 2).
    next_leaf:
        Upper-part-leaf only: per-module pointer to the first leaf with
        key >= this node's key in that module's local leaf list.
    up_chain:
        Leaf-only (paper §4.3 step 5): the lower-part nodes of this
        tower above the leaf, recorded at insert time so Delete can mark
        the tower without a search.
    has_upper:
        Leaf-only flag: the tower continues into the upper part.
    deleted:
        Deletion mark set during batched Delete stage 1.
    aid:
        Arena row index when the owning structure uses the arena storage
        backend (see :mod:`repro.core.storage`); -1 when the node is not
        resident in an arena (object storage, or freed).
    """

    __slots__ = (
        "nid", "key", "level", "value", "owner",
        "left", "right", "up", "down",
        "local_left", "local_right", "next_leaf",
        "up_chain", "has_upper", "deleted", "aid",
    )

    def __init__(self, key: Any, level: int, owner: int,
                 value: Any = None) -> None:
        self.nid: int = next(_nid_counter)
        self.key = key
        self.level = level
        self.value = value
        self.owner = owner
        self.left: Optional[Node] = None
        self.right: Optional[Node] = None
        self.up: Optional[Node] = None
        self.down: Optional[Node] = None
        self.local_left: Optional[Node] = None
        self.local_right: Optional[Node] = None
        self.next_leaf: Optional[List[Optional[Node]]] = None
        self.up_chain: Optional[List[Node]] = None
        self.has_upper: bool = False
        self.deleted: bool = False
        self.aid: int = -1

    @property
    def is_replicated(self) -> bool:
        return self.owner == UPPER

    @property
    def is_sentinel(self) -> bool:
        return self.key is NEG_INF

    def init_next_leaf(self, num_modules: int) -> None:
        """Allocate the per-module next-leaf array (upper-part leaves)."""
        self.next_leaf = [None] * num_modules

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        own = "U" if self.owner == UPPER else str(self.owner)
        return f"Node({self.key!r}@L{self.level}/{own}{'#' if self.deleted else ''})"


NodeId = int
"""Alias for the integer node identity used in traces and contraction."""
