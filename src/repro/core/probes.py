"""Probe keys: sentinels that compare below/above every real key.

Useful for open-ended queries against ordered structures whose key type
is arbitrary: ``successor(BELOW_ALL)`` is the global minimum,
``predecessor(ABOVE_ALL)`` the global maximum, without knowing anything
about the key space.
"""

from __future__ import annotations

from typing import Any


class BelowAll:
    """Compares strictly below every non-BelowAll value."""

    def __lt__(self, other: Any) -> bool:
        return not isinstance(other, BelowAll)

    def __le__(self, other: Any) -> bool:
        return True

    def __gt__(self, other: Any) -> bool:
        return False

    def __ge__(self, other: Any) -> bool:
        return isinstance(other, BelowAll)

    def __eq__(self, other: Any) -> bool:
        return isinstance(other, BelowAll)

    def __hash__(self) -> int:
        return 0x10_BE10

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "BelowAll()"


class AboveAll:
    """Compares strictly above every non-AboveAll value."""

    def __lt__(self, other: Any) -> bool:
        return False

    def __le__(self, other: Any) -> bool:
        return isinstance(other, AboveAll)

    def __gt__(self, other: Any) -> bool:
        return not isinstance(other, AboveAll)

    def __ge__(self, other: Any) -> bool:
        return True

    def __eq__(self, other: Any) -> bool:
        return isinstance(other, AboveAll)

    def __hash__(self) -> int:
        return 0x0A_B0FE

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "AboveAll()"


BELOW_ALL = BelowAll()
ABOVE_ALL = AboveAll()


def just_above(key: Any):
    """A virtual key immediately above ``key`` (complement of
    :class:`repro.core.ops_range.JustBelow`): predecessor(just_above(k))
    is the largest key <= k *including* k, and searches treat stored
    keys equal to ``key`` as strictly below the probe."""
    from repro.core.ops_range import JustBelow

    class _Above(JustBelow):
        def __lt__(self, other):
            if isinstance(other, JustBelow):
                return self.key < other.key
            return self.key < other

        def __le__(self, other):
            if isinstance(other, JustBelow):
                return self.key <= other.key
            return self.key < other

        def __gt__(self, other):
            if isinstance(other, JustBelow):
                return self.key > other.key
            return self.key >= other

        def __ge__(self, other):
            if isinstance(other, JustBelow):
                return self.key >= other.key
            return self.key >= other

        def __repr__(self):
            return f"JustAbove({self.key!r})"

    return _Above(key)
