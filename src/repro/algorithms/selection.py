"""Top-k / selection on PIM-resident data.

``top_k`` finds the ``k`` smallest elements of data distributed across
the modules, without sorting everything: each module sorts locally once,
then the CPU runs the same safe-prefix-fetch scheme as the priority
queue's extraction -- every module supplies a ``Theta(k/P + log P)``
prefix (Lemma 2.1 bounds how many of the global top-k one module can
hold whp), the CPU merges, and any module whose supply is both
exhausted-below-the-bound and quota-limited is re-asked with a doubled
quota (whp never happens).

Costs: ``O((n/P) log(n/P))`` PIM time for the one-time local sorts,
then ``O(k/P + log P)`` whp IO time and O(1) expected rounds per query.

``median_of`` composes top_k into a selection of arbitrary rank via the
same machinery (fetch rank+1 smallest, take the last).
"""

from __future__ import annotations

import math
from typing import Any, Dict, List, Sequence, Tuple

from repro.sim.machine import PIMMachine


class TopKSelector:
    """Repeated top-k queries over module-resident data."""

    def __init__(self, machine: PIMMachine, parts: Sequence[Sequence[Any]],
                 name: str = "topk") -> None:
        if len(parts) != machine.num_modules:
            raise ValueError("need one part per module")
        self.machine = machine
        self.name = name
        self.total = sum(len(part) for part in parts)
        for mid, part in enumerate(parts):
            machine.modules[mid].state[name] = {"data": list(part),
                                                "sorted": False}
            machine.modules[mid].alloc_words(len(part))
        if f"{name}:prefix" not in machine._handlers:
            machine.register_all(self._handlers())

    def _handlers(self) -> Dict[str, Any]:
        name = self.name

        def h_prefix(ctx, quota, tag=None):
            state = ctx.module.state[name]
            if not state["sorted"]:
                m = len(state["data"])
                state["data"].sort()
                state["sorted"] = True
                ctx.charge(m * max(1, int(math.log2(m + 1))) + 1)
            ctx.charge(min(quota, len(state["data"])) + 1)
            keys = state["data"][:quota]
            ctx.reply(("prefix", ctx.mid, keys,
                       quota >= len(state["data"])),
                      size=max(1, len(keys)), tag=tag)

        return {f"{name}:prefix": h_prefix}

    def top_k(self, k: int) -> List[Any]:
        """The ``k`` smallest elements, ascending."""
        k = min(k, self.total)
        if k <= 0:
            return []
        machine = self.machine
        p = machine.num_modules
        log_p = max(1, int(round(math.log2(p)))) if p > 1 else 1
        quotas = {mid: min(k, 2 * ((k + p - 1) // p) + 4 * log_p)
                  for mid in range(p)}
        supplied: Dict[int, Tuple[List[Any], bool]] = {}
        while True:
            for mid in range(p):
                if mid not in supplied:
                    machine.send(mid, f"{self.name}:prefix",
                                 (quotas[mid],))
            for r in machine.drain():
                _, mid, keys, exhausted = r.payload
                supplied[mid] = (keys, exhausted)
            merged: List[Any] = []
            for keys, _ in supplied.values():
                merged.extend(keys)
            merged.sort()
            with machine.cpu.region(len(merged)):
                machine.cpu.charge(
                    len(merged) * max(1.0, math.log2(len(merged) + 1)),
                    max(1.0, math.log2(len(merged) + 1)),
                )
            take = merged[:k]
            bound = take[-1]
            unsafe = [
                mid for mid, (keys, exhausted) in supplied.items()
                if not exhausted and keys and keys[-1] < bound
            ]
            if not unsafe:
                return take
            for mid in unsafe:
                quotas[mid] *= 2
                del supplied[mid]

    def select(self, rank: int) -> Any:
        """The element of 0-indexed ``rank`` in sorted order."""
        if not (0 <= rank < self.total):
            raise IndexError(f"rank {rank} out of range 0..{self.total - 1}")
        return self.top_k(rank + 1)[-1]

    def median(self) -> Any:
        """The lower median."""
        return self.select((self.total - 1) // 2)
