"""Additional PIM-model algorithms (the paper's future-work direction).

- :mod:`repro.algorithms.sorting` -- distributed sample sort across the
  PIM modules, plus the intro's "sorting up to M numbers without
  incurring any network communication" fast path.
- :mod:`repro.algorithms.pram` -- a Valiant-style PRAM emulation layer
  (§2.2): shared-memory cells hashed across modules, each PRAM step
  executed as gather-compute-scatter rounds.  Running algorithms through
  it quantifies the paper's argument that such emulations are
  "impractical because all accessed memory incurs maximal data
  movement".
- :mod:`repro.algorithms.selection` -- top-k / rank selection over
  module-resident data via safe balanced prefix fetches.
- :mod:`repro.algorithms.bfs` -- level-synchronous BFS over a
  hash-distributed graph (one bulk-synchronous round per level).
"""

from repro.algorithms.bfs import PIMGraph
from repro.algorithms.pram import PRAMEmulation
from repro.algorithms.selection import TopKSelector
from repro.algorithms.sorting import pim_sample_sort, sort_within_cache

__all__ = [
    "PIMGraph",
    "PRAMEmulation",
    "TopKSelector",
    "pim_sample_sort",
    "sort_within_cache",
]
