"""Sorting on the PIM model.

Two regimes, straight from the model's geometry:

- ``n <= M``: the data fits in the CPU-side shared memory, so sorting is
  a pure CPU-side parallel sort with **zero network communication** --
  the intro's example of why the shared memory earns its place in the
  model (:func:`sort_within_cache`).
- ``n >> M``: the data lives distributed across the modules; sample sort
  fits the model perfectly (:func:`pim_sample_sort`):

  1. each module sorts its part locally (``O((n/P) log(n/P))`` PIM work);
  2. each module sends a random sample of ``Theta(log P)`` keys to the
     CPU (an ``h = Theta(log P)`` relation; ``P log P`` sample keys fit
     in ``M``);
  3. the CPU sorts the sample and broadcasts ``P-1`` splitters;
  4. an all-to-all exchange routes each element to its bucket's module
     -- with random input placement the transfer matrix is balanced
     whp, so ``h = O(n/P)`` (splitters chosen from the sample keep
     bucket sizes ``O(n/P)`` whp as well);
  5. each module merges its received, already-sorted runs.

  Total: ``O((n/P) log n)`` PIM time, ``O(n/P + log P)`` whp IO time,
  ``O(1)`` rounds -- PIM-balanced.
"""

from __future__ import annotations

import bisect
import math
import random
from typing import Any, List, Optional, Sequence

from repro.collectives import Collectives
from repro.cpuside.sort import parallel_sort
from repro.sim.errors import SharedMemoryExceeded
from repro.sim.machine import PIMMachine


def sort_within_cache(machine: PIMMachine, values: Sequence[Any],
                      strict: bool = True) -> List[Any]:
    """Sort CPU-resident data of size <= M with zero IO.

    Raises :class:`SharedMemoryExceeded` when the data does not fit and
    ``strict`` is set (the caller should use :func:`pim_sample_sort`).
    """
    m_words = machine.cpu.shared_memory_words
    if strict and len(values) > m_words:
        raise SharedMemoryExceeded(
            f"{len(values)} values exceed M = {m_words}; "
            "use pim_sample_sort for PIM-resident data"
        )
    with machine.cpu.region(len(values)):
        out = parallel_sort(machine.cpu, values)
    return out


def pim_sample_sort(machine: PIMMachine, parts: Sequence[Sequence[Any]],
                    name: str = "ssort", oversample: int = 2,
                    seed: int = 0) -> List[List[Any]]:
    """Sample sort of data distributed one part per module.

    ``parts[i]`` is module ``i``'s resident input (loaded slot-wise, not
    charged as IO -- the model's inputs start on the PIM side).  Returns
    the sorted partition per module: concatenating the returned lists
    yields the globally sorted order, and every module ends with
    ``O(n/P)`` whp elements.
    """
    p = machine.num_modules
    if len(parts) != p:
        raise ValueError("need one part per module")
    coll = Collectives(machine, name=name)
    rng = random.Random(seed)
    n = sum(len(part) for part in parts)

    # Inputs start resident on the PIM side (slot load is not network IO,
    # matching the model's "input starts evenly divided" assumption).
    for mid, part in enumerate(parts):
        machine.modules[mid].state[name]["slot"] = list(part)
        machine.modules[mid].alloc_words(len(part))

    # 1. local sorts
    def local_sort(mid, slot):
        m = len(slot)
        return sorted(slot), int(m * max(1, math.log2(m + 1)))

    coll.map_slots(local_sort)

    # 2. sampling: Theta(log P) keys per module back to the CPU
    s = max(1, oversample * max(1, int(round(math.log2(p)))))
    salt = rng.getrandbits(32)

    def sample(mid, slot):
        r = random.Random((salt << 8) ^ mid)
        if not slot:
            return (slot, []), 1
        picks = sorted(r.choice(slot) for _ in range(s))
        return (slot, picks), s

    coll.map_slots(sample)
    samples: List[Any] = []
    gathered = coll.gather()
    for slot, picks in gathered:
        samples.extend(picks)

    # 3. splitters on the CPU (P*s keys fit in M)
    with machine.cpu.region(len(samples)):
        samples = parallel_sort(machine.cpu, samples)
        step = max(1, len(samples) // p)
        splitters = [samples[i * step] for i in range(1, p)
                     if i * step < len(samples)]

    # 4. all-to-all exchange by bucket, module-to-module (the pieces are
    # forwarded directly; h = max per module of words sent + received)
    fn_route = f"{name}:route"
    fn_merge = f"{name}:merge"
    if fn_route not in machine._handlers:
        def h_route(ctx, splitters, tag=None):
            state = ctx.module.state[name]
            slot, _picks = state["slot"]
            ctx.charge(len(slot) + 1)
            row: dict = {}
            for x in slot:
                dest = bisect.bisect_right(splitters, x)
                row.setdefault(dest, []).append(x)
            state["slot"] = []
            for dest, piece in row.items():
                ctx.forward(dest, f"{name}:recv_piece", (piece,),
                            size=max(1, len(piece)))
            ctx.reply(("ack",), tag=tag)

        def h_merge(ctx, tag=None):
            state = ctx.module.state[name]
            runs = state["inbox"]
            state["inbox"] = []
            out: List[Any] = []
            work = 1
            for run in runs:
                out = _merge2(out, run)
                work += len(out)
            ctx.charge(work)
            state["slot"] = out
            ctx.reply(("ack",), tag=tag)

        machine.register(fn_route, h_route)
        machine.register(fn_merge, h_merge)

    machine.broadcast(fn_route, (splitters,), size=max(1, len(splitters)))
    machine.drain()

    # 5. local multiway merges of the received sorted runs
    machine.broadcast(fn_merge, ())
    machine.drain()
    # result extraction (verification only; costs one gather of the data)
    result = coll.gather()
    # cleanup: release the resident-input accounting
    for mid, part in enumerate(parts):
        machine.modules[mid].free_words(len(part))
    flat_check = sum(len(r) for r in result)
    if flat_check != n:  # pragma: no cover - sanity
        raise AssertionError("sample sort lost elements")
    return result


def _merge2(a: List[Any], b: List[Any]) -> List[Any]:
    out: List[Any] = []
    i = j = 0
    while i < len(a) and j < len(b):
        if a[i] <= b[j]:
            out.append(a[i]); i += 1
        else:
            out.append(b[j]); j += 1
    out.extend(a[i:])
    out.extend(b[j:])
    return out
