"""Level-synchronous BFS on the PIM model.

Graphs are a natural PIM workload: adjacency lists live in the modules
(vertices placed by a seeded hash, so any vertex-set is spread whp), and
a BFS wave is exactly the model's bulk-synchronous round structure --
one round per level:

- the CPU seeds the source vertex;
- a visited vertex's module marks its distance (first arrival wins; a
  message's arrival round *is* its BFS distance, because every edge
  traversal costs one module-to-module forward) and forwards one visit
  message per outgoing edge to the neighbors' owners;
- already-visited vertices absorb duplicates at O(1) work.

Costs for a graph with n vertices / m edges and diameter D:
``O((n + m)/P + D·(hub traffic))`` IO time over ``D + 1`` rounds, and
``O((n + m)/P)`` whp PIM time *if degrees are spread*.  A high-degree
hub is a genuine hot-spot -- its module must send ``deg(hub)`` messages
in one round -- which the benchmark demonstrates with a star graph: the
imbalance is in the *workload's structure*, not the placement, matching
how real PIM systems behave.
"""

from __future__ import annotations

import math
from typing import Any, Dict, Hashable, Iterable, List, Optional, Tuple

from repro.balls.hashing import KeyLevelHash
from repro.sim.machine import PIMMachine


class PIMGraph:
    """A graph distributed over the PIM modules by vertex hash."""

    def __init__(self, machine: PIMMachine,
                 edges: Iterable[Tuple[Hashable, Hashable]],
                 directed: bool = False, name: str = "graph") -> None:
        self.machine = machine
        self.name = name
        self.hash = KeyLevelHash(
            machine.num_modules,
            seed=machine.spawn_rng(0x6AF).getrandbits(32),
        )
        adj: Dict[Hashable, List[Hashable]] = {}
        for u, v in edges:
            adj.setdefault(u, []).append(v)
            adj.setdefault(v, [])
            if not directed:
                adj[v].append(u)
        self.num_vertices = len(adj)
        self.num_edges = sum(len(vs) for vs in adj.values())
        for module in machine.modules:
            module.state[name] = {"adj": {}, "dist": {}}
        for u, vs in adj.items():
            mid = self.owner(u)
            machine.modules[mid].state[name]["adj"][u] = list(vs)
            machine.modules[mid].alloc_words(1 + len(vs))
        if f"{name}:visit" not in machine._handlers:
            machine.register_all(self._handlers())

    def owner(self, v: Hashable) -> int:
        """The module holding vertex ``v``'s adjacency and label."""
        return self.hash.module_of(("vtx", v))

    def _handlers(self) -> Dict[str, Any]:
        name = self.name

        def h_visit(ctx, v, dist, tag=None):
            state = ctx.module.state[name]
            ctx.charge(1)
            ctx.touch(("vtx", v))
            if v in state["dist"]:
                return  # duplicate arrival: absorbed at O(1)
            if v not in state["adj"]:
                raise KeyError(f"unknown vertex {v!r}")
            state["dist"][v] = dist
            ctx.reply(("visited", v, dist), size=1)
            neighbors = state["adj"][v]
            ctx.charge(len(neighbors))
            for u in neighbors:
                ctx.forward(self.owner(u), f"{name}:visit", (u, dist + 1))

        def h_reset(ctx, tag=None):
            state = ctx.module.state[name]
            ctx.charge(len(state["dist"]) + 1)
            state["dist"] = {}
            ctx.reply(("ack",), tag=tag)

        return {f"{name}:visit": h_visit, f"{name}:reset": h_reset}

    def bfs(self, source: Hashable) -> Dict[Hashable, int]:
        """Distances from ``source`` for every reachable vertex."""
        machine = self.machine
        machine.broadcast(f"{self.name}:reset", ())
        machine.drain()
        machine.send(self.owner(source), f"{self.name}:visit", (source, 0))
        dist: Dict[Hashable, int] = {}
        for r in machine.drain():
            if r.payload[0] == "visited":
                _, v, d = r.payload
                dist[v] = d
        machine.cpu.charge(len(dist) + 1,
                           max(1.0, math.log2(len(dist) + 2)))
        return dist

    def connected_components(self) -> Dict[Hashable, int]:
        """Component id (a representative vertex's index) per vertex,
        by repeated BFS from unvisited vertices."""
        machine = self.machine
        vertices: List[Hashable] = []
        for module in machine.modules:
            vertices.extend(module.state[self.name]["adj"].keys())
        comp: Dict[Hashable, int] = {}
        cid = 0
        for v in sorted(vertices, key=repr):
            if v in comp:
                continue
            for u in self.bfs(v):
                comp[u] = cid
            cid += 1
        return comp
