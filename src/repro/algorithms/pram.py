"""A Valiant-style PRAM emulation layer on the PIM model (paper §2.2).

§2.2 recalls that an EREW PRAM step can be emulated on a distributed
machine by hashing the shared memory's cells across the processors --
"However, these emulations are impractical because all accessed memory
incurs maximal data movement (i.e., across the network between the CPU
cores and the PIM memory), which is the exact opposite of the goal of
having processing-in-memory."

This module makes that argument measurable.  :class:`PRAMEmulation`
hashes virtual shared-memory cells to PIM modules and executes each PRAM
step as bulk-synchronous gather-compute-scatter rounds: every read and
every write of every virtual processor is one network message.  Running
a textbook PRAM algorithm (e.g. the pointer-doubling prefix sum in
:meth:`prefix_sum`) through the layer and comparing against the native
formulation (CPU-side scan over one gather,
:func:`native_prefix_sum`) shows the emulation paying
``Theta(n log n)`` messages where the native algorithm pays ``Theta(n)``
-- with *every* emulated access remote, as the paper says.
"""

from __future__ import annotations

import math
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.balls.hashing import KeyLevelHash
from repro.collectives import Collectives
from repro.sim.machine import PIMMachine


class PRAMEmulation:
    """Shared-memory cells hashed across the PIM modules.

    One instance models an EREW PRAM with an addressable memory of
    arbitrary integer cells.  :meth:`write_many` / :meth:`read_many`
    perform one bulk-synchronous exchange each; :meth:`step` is a full
    PRAM super-step (parallel reads, CPU-side compute per virtual
    processor, parallel writes).
    """

    def __init__(self, machine: PIMMachine, name: str = "pram") -> None:
        self.machine = machine
        self.name = name
        self.hash = KeyLevelHash(
            machine.num_modules,
            seed=machine.spawn_rng(0x6E4A).getrandbits(32),
        )
        for module in machine.modules:
            module.state.setdefault(name, {})
        if f"{name}:write" not in machine._handlers:
            machine.register_all(self._handlers())

    def _handlers(self) -> Dict[str, Any]:
        name = self.name

        def h_write(ctx, addr, value, tag=None):
            ctx.charge(1)
            cells = ctx.module.state[name]
            if addr not in cells:
                ctx.module.alloc_words(1)
            cells[addr] = value

        def h_read(ctx, addr, tag=None):
            ctx.charge(1)
            ctx.reply(("cell", addr, ctx.module.state[name].get(addr)),
                      tag=tag)

        return {f"{name}:write": h_write, f"{name}:read": h_read}

    def owner(self, addr: int) -> int:
        return self.hash.module_of(("pram", addr))

    # -- bulk memory operations (one round each) -------------------------

    def write_many(self, writes: Sequence[Tuple[int, Any]]) -> None:
        """Parallel exclusive writes: one message per write."""
        for addr, value in writes:
            self.machine.send(self.owner(addr), f"{self.name}:write",
                              (addr, value))
        self.machine.drain()

    def read_many(self, addrs: Sequence[int]) -> List[Any]:
        """Parallel exclusive reads: one message each way per read."""
        for i, addr in enumerate(addrs):
            self.machine.send(self.owner(addr), f"{self.name}:read",
                              (addr,), tag=i)
        out: List[Any] = [None] * len(addrs)
        for r in self.machine.drain():
            out[r.tag] = r.payload[2]
        return out

    # -- PRAM super-step ---------------------------------------------------

    def step(self, procs: Sequence[Tuple[Sequence[int],
                                         Callable[..., Sequence[Tuple[int, Any]]]]],
             ) -> None:
        """One EREW PRAM step for a set of virtual processors.

        Each processor is ``(read_addrs, compute)``; ``compute`` receives
        the read values and returns the writes ``[(addr, value), ...]``.
        All reads happen, then all computes (charged O(1) CPU work each,
        O(1) depth in parallel), then all writes -- the BSP emulation
        schedule.
        """
        flat_addrs: List[int] = []
        spans: List[Tuple[int, int]] = []
        for addrs, _ in procs:
            spans.append((len(flat_addrs), len(addrs)))
            flat_addrs.extend(addrs)
        values = self.read_many(flat_addrs)
        writes: List[Tuple[int, Any]] = []
        for (off, k), (_, compute) in zip(spans, procs):
            writes.extend(compute(*values[off:off + k]))
        self.machine.cpu.charge(len(procs),
                                max(1.0, math.log2(len(procs) + 1)))
        self.write_many(writes)

    # -- a textbook PRAM algorithm -----------------------------------------

    def prefix_sum(self, values: Sequence[float], base: int = 0,
                   ) -> List[float]:
        """Inclusive prefix sum by pointer doubling: ``ceil(log2 n)``
        PRAM steps, each touching all ``n`` cells remotely.

        Stores inputs at addresses ``base..base+n-1``, returns the
        prefix sums (also left in memory).
        """
        n = len(values)
        self.write_many([(base + i, v) for i, v in enumerate(values)])
        stride = 1
        while stride < n:
            procs = []
            for i in range(n - 1, stride - 1, -1):
                def make(i=i):
                    def compute(a, b):
                        return [(base + i, a + b)]
                    return compute
                procs.append(([base + i, base + i - stride], make()))
            self.step(procs)
            stride *= 2
        return self.read_many([base + i for i in range(n)])


def native_prefix_sum(machine: PIMMachine, parts: Sequence[Sequence[float]],
                      name: str = "npsum") -> List[List[float]]:
    """The PIM-native formulation: local scans + one exscan of the sums.

    ``parts[i]`` is module ``i``'s resident slice.  Costs: O(n/P) PIM
    time, O(P) messages for the combine (plus the final verification
    gather), O(1) rounds -- versus the emulation's Theta(n log n)
    messages.
    """
    p = machine.num_modules
    if len(parts) != p:
        raise ValueError("need one part per module")
    fn_scan = f"{name}:scan"
    fn_shift = f"{name}:shift"
    fn_dump = f"{name}:dump"
    if fn_scan not in machine._handlers:
        def h_scan(ctx, tag=None):
            state = ctx.module.state[name]
            acc = 0.0
            out = []
            for x in state["part"]:
                acc += x
                out.append(acc)
            ctx.charge(len(out) + 1)
            state["scan"] = out
            ctx.reply(("sum", ctx.mid, acc), tag=tag)

        def h_shift(ctx, offset, tag=None):
            state = ctx.module.state[name]
            state["scan"] = [x + offset for x in state["scan"]]
            ctx.charge(len(state["scan"]) + 1)

        def h_dump(ctx, tag=None):
            scan = ctx.module.state[name]["scan"]
            ctx.charge(1)
            ctx.reply(("scan", ctx.mid, scan), size=max(1, len(scan)),
                      tag=tag)

        machine.register(fn_scan, h_scan)
        machine.register(fn_shift, h_shift)
        machine.register(fn_dump, h_dump)

    for mid, part in enumerate(parts):
        machine.modules[mid].state.setdefault(name, {})["part"] = list(part)

    machine.broadcast(fn_scan, ())
    sums = [0.0] * p
    for r in machine.drain():
        _, mid, total = r.payload
        sums[mid] = total
    acc = 0.0
    offsets = []
    for total in sums:
        offsets.append(acc)
        acc += total
    machine.cpu.charge(2 * p, 2 * max(1.0, math.log2(p)))
    for mid, off in enumerate(offsets):
        machine.send(mid, fn_shift, (off,))
    machine.drain()
    machine.broadcast(fn_dump, ())
    out: List[List[float]] = [[] for _ in range(p)]
    for r in machine.drain():
        _, mid, scan = r.payload
        out[mid] = scan
    return out
