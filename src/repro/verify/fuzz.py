"""Seeded adversarial session fuzzer.

Builds on :mod:`repro.workloads.generators` but aims the generators at
*correctness* rather than cost measurement: a fuzzed session interleaves
the paper's adversarial shapes -- contiguous insert/delete runs,
duplicate-heavy and Zipf-skewed reads, same-successor clusters,
single-interval range storms -- with churn patterns that targeted tests
don't produce, most importantly ranges and successors aimed at a window
of *freshly deleted* keys (the pattern that catches stale-pointer and
tombstone bugs).

Everything is derived from one integer seed: the same seed always yields
the same :class:`~repro.workloads.sessions.Session`, so any failure is
replayable from its seed alone (and shrinkable from its batch list).
"""

from __future__ import annotations

import random
from typing import List, Optional, Tuple

from repro.workloads.generators import (
    contiguous_run,
    duplicate_heavy_batch,
    same_successor_batch,
    zipf_batch,
)
from repro.workloads.sessions import Session, SessionBatch

#: Shapes a fuzzed session draws from.  Read-only sessions drop the
#: mutating shapes so build-once implementations (the fine-grained
#: baseline, naive batched search) can stay in the comparison for the
#: whole session.
MUTATING_SHAPES = (
    "uniform_upsert", "contiguous_insert", "skew_upsert",
    "scattered_delete", "contiguous_delete",
)
READ_SHAPES = (
    "uniform_get", "duplicate_get", "zipf_get",
    "uniform_successor", "same_successor", "single_range",
)


def fuzz_session(seed: int, *, num_batches: int = 12, batch_size: int = 24,
                 initial_n: int = 60, stride: int = 1000,
                 read_only: bool = False) -> Session:
    """One deterministic adversarial session for differential replay.

    The generator tracks the live key universe exactly as the oracle
    will see it, so shapes that need live keys (deletes, hot-key reads,
    same-successor gaps) stay meaningful as the session churns.
    """
    rng = random.Random(seed)
    live = sorted(k for k, _ in _initial_items(initial_n, stride))
    space = (initial_n + 2) * stride
    shapes = READ_SHAPES if read_only else READ_SHAPES + MUTATING_SHAPES
    batches: List[SessionBatch] = []
    fresh_counter = space  # fresh keys drawn above the initial space
    churn_window: Optional[Tuple[int, int]] = None

    for step in range(num_batches):
        if churn_window is not None:
            # The follow-up to a churn delete: ranges and successors over
            # the freshly deleted window.
            lo, hi = churn_window
            churn_window = None
            if rng.random() < 0.5:
                ops = [(rng.randrange(lo, hi + 1), hi + rng.randrange(stride))
                       for _ in range(max(1, batch_size // 8))]
                batches.append(SessionBatch(op="range",
                                            payload=[(a, max(a, b))
                                                     for a, b in ops]))
            else:
                keys = [rng.randrange(lo, hi + 1) for _ in range(batch_size)]
                batches.append(SessionBatch(op="successor", payload=keys))
            continue

        shape = shapes[rng.randrange(len(shapes))]
        if shape == "uniform_get":
            payload = [rng.choice(live) if live and rng.random() < 0.7
                       else rng.randrange(space)
                       for _ in range(batch_size)]
            batches.append(SessionBatch(op="get", payload=payload))
        elif shape == "duplicate_get":
            hot = rng.choice(live) if live else rng.randrange(space)
            payload = duplicate_heavy_batch(batch_size, hot, rng,
                                            distinct=1 + rng.randrange(3))
            batches.append(SessionBatch(op="get", payload=payload))
        elif shape == "zipf_get":
            if live:
                payload = zipf_batch(batch_size, live, alpha=1.3,
                                     seed=rng.getrandbits(30))
            else:
                payload = [rng.randrange(space) for _ in range(batch_size)]
            batches.append(SessionBatch(op="get", payload=payload))
        elif shape == "uniform_successor":
            payload = [rng.randrange(space) for _ in range(batch_size)]
            batches.append(SessionBatch(op="successor", payload=payload))
        elif shape == "same_successor":
            try:
                payload = same_successor_batch(live, batch_size, rng)
            except (ValueError, IndexError):
                payload = [rng.randrange(space) for _ in range(batch_size)]
            batches.append(SessionBatch(op="successor", payload=payload))
        elif shape == "single_range":
            # Ranges concentrated inside one interval (plus one wide op
            # every so often, so result merging across modules is hit).
            a = rng.randrange(space)
            ops = []
            for _ in range(max(1, batch_size // 8)):
                lo = a + rng.randrange(stride)
                ops.append((lo, lo + rng.randrange(1, 3 * stride)))
            if rng.random() < 0.3:
                ops.append((0, space))
            batches.append(SessionBatch(op="range", payload=ops))
        elif shape == "uniform_upsert":
            payload = []
            for _ in range(batch_size):
                if live and rng.random() < 0.5:
                    payload.append((rng.choice(live), rng.randrange(1000)))
                else:
                    fresh_counter += 1 + rng.randrange(3)
                    payload.append((fresh_counter, rng.randrange(1000)))
            _apply_upserts(live, payload)
            batches.append(SessionBatch(op="upsert", payload=payload))
        elif shape == "contiguous_insert":
            start = rng.randrange(space)
            run = contiguous_run(start, batch_size)
            payload = [(k, step) for k in run]
            _apply_upserts(live, payload)
            batches.append(SessionBatch(op="upsert", payload=payload))
        elif shape == "skew_upsert":
            hot = rng.choice(live) if live else rng.randrange(space)
            payload = [(hot, i) for i in range(batch_size // 2)]
            payload += [(hot + 1 + rng.randrange(stride), step)
                        for _ in range(batch_size - len(payload))]
            _apply_upserts(live, payload)
            batches.append(SessionBatch(op="upsert", payload=payload))
        elif shape == "scattered_delete":
            k = min(batch_size, len(live))
            payload = rng.sample(live, k) if k else []
            # a few misses mixed in: deleting absent keys must be a no-op
            payload += [rng.randrange(space) for _ in range(3)]
            _apply_deletes(live, payload)
            batches.append(SessionBatch(op="delete", payload=payload))
        elif shape == "contiguous_delete":
            if len(live) > batch_size + 2:
                i = rng.randrange(len(live) - batch_size)
                payload = live[i:i + batch_size]
            else:
                payload = list(live)
            if payload:
                churn_window = (min(payload), max(payload))
            _apply_deletes(live, payload)
            batches.append(SessionBatch(op="delete", payload=payload))
        else:  # pragma: no cover - shapes list is closed
            raise AssertionError(shape)

    initial = sorted(k for k, _ in _initial_items(initial_n, stride))
    return Session(batches=batches, initial_keys=initial, seed=seed)


def _initial_items(n: int, stride: int) -> List[Tuple[int, int]]:
    """The build items a fuzzed session assumes: ``(k, k)`` pairs spaced
    ``stride`` apart (wide gaps for the adversarial read shapes)."""
    return [(i * stride, i * stride) for i in range(1, n + 1)]


def initial_items_for(session: Session) -> List[Tuple[int, int]]:
    """(key, value) build pairs for a session's initial key universe."""
    return [(k, k) for k in session.initial_keys]


def _apply_upserts(live: List[int], pairs: List[Tuple[int, int]]) -> None:
    present = set(live)
    for k, _ in pairs:
        if k not in present:
            present.add(k)
            live.append(k)
    live.sort()


def _apply_deletes(live: List[int], keys: List[int]) -> None:
    dead = set(keys)
    live[:] = [k for k in live if k not in dead]
