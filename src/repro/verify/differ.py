"""The differential driver: replay one session against every implementation.

For each batch of a session the driver:

1. asks the :class:`~repro.verify.oracle.SequentialOracle` for the
   expected result (mutating the oracle's state in payload order);
2. replays the batch through every live implementation's uniform
   ``apply_batch`` surface and compares observable results;
3. checks the skip list's metamorphic cost invariants: per-batch round
   counts within generous paper envelopes, and -- against a twin skip
   list built from the same seed that answers every read batch split in
   two halves -- result equivalence and cost monotonicity under batch
   splitting (the split replay can never be *cheaper* in rounds or IO,
   and must return the same answers).

After the last batch every implementation's full state (one inclusive
range over the session's key universe) is compared against the oracle,
the skip list's structural invariants are asserted, and the whole
session is replayed once more on a fresh machine to check that the
per-op metric stream -- collected through the op pipeline's
``batch_observer`` hook -- is bit-identical across reruns of the same
seed.  Two further solo replays pin the equivalence axes: one on the
*other execution backend* (object vs columnar engine) and one on the
*other structure storage* (object node graph vs flat arena), each of
which must reproduce the primary run's results and metric stream
bit-for-bit.

Divergences are collected, not raised: the driver is also the shrinker's
test function, and a shrinker needs "still failing?" as a value.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.sim.metrics import MetricsDelta
from repro.verify.adapters import (
    DEFAULT_IMPLS,
    ImplAdapter,
    MUTATING_OPS,
    build_implementations,
)
from repro.verify.fuzz import initial_items_for
from repro.verify.oracle import SequentialOracle
from repro.workloads.sessions import Session

READ_OPS = frozenset({"get", "successor", "range"})


@dataclass
class Divergence:
    """One observed disagreement, pinned to a batch and implementation."""

    seed: int
    batch_index: int  # -1 for session-level checks (final state, rerun)
    op: str
    impl: str
    kind: str  # result | final_state | integrity | determinism |
    #            rounds_envelope | split_result | split_monotonicity |
    #            container | crash | backend | storage
    detail: str

    def __str__(self) -> str:
        where = (f"batch {self.batch_index} ({self.op})"
                 if self.batch_index >= 0 else "session")
        return (f"[{self.kind}] impl={self.impl} seed={self.seed} "
                f"{where}: {self.detail}")


@dataclass
class SessionReport:
    """Everything the driver observed while replaying one session."""

    seed: int
    num_modules: int
    impls: Tuple[str, ...]
    num_batches: int
    divergences: List[Divergence] = field(default_factory=list)
    retired: Dict[str, int] = field(default_factory=dict)  # impl -> batch
    observed_ops: int = 0  # pipeline batch_observer events on the skip list

    @property
    def ok(self) -> bool:
        return not self.divergences

    def summary(self) -> str:
        state = "OK" if self.ok else f"{len(self.divergences)} divergence(s)"
        retired = (f", retired: {sorted(self.retired)}" if self.retired
                   else "")
        return (f"seed={self.seed}: {self.num_batches} batches x "
                f"{len(self.impls)} impls -> {state}{retired}")


# ----------------------------------------------------------------------
# round envelopes (per implementation)
# ----------------------------------------------------------------------

def rounds_envelope(op: str, batch_len: int, num_modules: int,
                    n_keys: int, result_size: int = 0) -> int:
    """Generous per-batch round budgets for the paper's structure.

    The theorems give O(1) rounds for Get/Update and O(log P)-flavored
    round counts for the search-based ops; these budgets sit ~2x above
    the measured maxima across the fuzz seed corpus, so they catch a
    round-structure regression (a stage turning into a per-element
    loop) without tripping on whp tail noise.  Range collection rounds
    grow with the number of elements returned, so the range budget
    takes ``result_size`` (total elements across the batch's ops).
    """
    log_p = max(1, math.ceil(math.log2(num_modules + 1)))
    log_b = max(1, math.ceil(math.log2(batch_len + 2)))
    log_n = max(1, math.ceil(math.log2(n_keys + 2)))
    if op == "get":
        return 8
    if op == "upsert":
        return 24 + 10 * log_b + 4 * log_p
    if op == "delete":
        return 24 + 10 * log_b + 4 * log_p
    if op == "successor":
        return 24 + 10 * (log_p + log_b)
    if op == "range":
        return 48 + 6 * (log_p + log_n) + 2 * result_size
    return 10_000


def pimtree_rounds_envelope(op: str, batch_len: int, num_modules: int,
                            n_keys: int, result_size: int = 0) -> int:
    """Per-batch round budgets for the PIM-tree.

    Every op descends O(height) = O(log n) levels (each level one
    push/pull stage) plus at most one shadow-promotion broadcast, then
    spends a constant number of leaf stages -- except Range, whose
    chained leaf scans advance frontier-parallel, one stage per hop, so
    its budget grows with the elements returned (half-full leaves make
    the hop count ~result/2 in the worst case).  Budgets sit ~2x above
    the measured maxima across the fuzz seed corpus, like the skip
    list's.
    """
    log_b = max(1, math.ceil(math.log2(batch_len + 2)))
    log_n = max(1, math.ceil(math.log2(n_keys + 2)))
    if op == "get":
        return 12 + 4 * log_n
    if op == "successor":
        return 18 + 4 * log_n
    if op == "upsert":
        return 24 + 4 * log_n + 2 * log_b
    if op == "delete":
        return 16 + 4 * log_n
    if op == "range":
        return 24 + 4 * log_n + 3 * result_size
    return 10_000


#: Implementations with calibrated per-op round envelopes; the driver
#: checks every batch of each against its budget.
ENVELOPE_FNS = {
    "skiplist": rounds_envelope,
    "pimtree": pimtree_rounds_envelope,
}


# ----------------------------------------------------------------------
# the driver
# ----------------------------------------------------------------------

def verify_session(session: Session,
                   impls: Optional[Sequence[str]] = None,
                   num_modules: int = 8, *,
                   check_metamorphic: bool = True,
                   check_determinism: bool = True,
                   check_backends: bool = True,
                   check_storages: bool = True,
                   backend: Optional[str] = None,
                   storage: Optional[str] = None,
                   fault: Optional[Tuple[str, str]] = None,
                   ) -> SessionReport:
    """Differentially replay ``session``; returns the full report.

    ``fault`` optionally injects a named fault (see
    :mod:`repro.verify.faults`) into one implementation's adapter --
    the mutation-testing hook that proves the verifier can see.

    With ``check_backends`` (the default) the skip list session is
    replayed once more on the *other* execution backend (columnar when
    the primary run used the object engine, and vice versa); its read
    results must match the oracle and its per-op metric stream must be
    bit-identical to the primary run's -- the oracle-level certification
    that the two engines are observationally equivalent.

    ``check_storages`` (also the default) does the same along the
    structure-storage axis: the skip list session is replayed on the
    *other* storage backend (arena when the primary used object nodes,
    and vice versa) on the same execution backend, and its read
    results, final structural integrity, and per-op metric stream must
    all match the primary run bit-for-bit -- the certification that the
    flat arena and the pointer graph are the same structure.
    """
    names = tuple(impls) if impls is not None else DEFAULT_IMPLS
    items = initial_items_for(session)
    report = SessionReport(seed=session.seed, num_modules=num_modules,
                           impls=names, num_batches=len(session.batches))
    oracle = SequentialOracle(items)
    adapters = build_implementations(names, seed=session.seed, items=items,
                                     num_modules=num_modules,
                                     backend=backend, storage=storage)
    if fault is not None:
        from repro.verify.faults import inject_fault
        impl_name, fault_name = fault
        for a in adapters:
            if a.name == impl_name:
                inject_fault(a, fault_name)
                break
        else:
            raise ValueError(f"fault target {impl_name!r} not in {names}")

    # The metamorphic twin: same seed, same machine draw -> its structure
    # evolves bit-identically, so split-vs-whole costs are comparable.
    twin = None
    if check_metamorphic and "skiplist" in names:
        twin = build_implementations(["skiplist"], seed=session.seed,
                                     items=items,
                                     num_modules=num_modules,
                                     backend=backend, storage=storage)[0]

    # Per-op metric stream of the skip list's machine, via the pipeline
    # driver's batch_observer hook (nested ops included).
    stream: List[Tuple[str, MetricsDelta]] = []
    skiplist = next((a for a in adapters if a.name == "skiplist"), None)
    if skiplist is not None and skiplist.machine is not None:
        skiplist.machine.batch_observer = \
            lambda op_name, delta: stream.append((op_name, delta))

    for i, batch in enumerate(session.batches):
        expected = oracle.apply_batch(batch.op, batch.payload)
        for adapter in adapters:
            if adapter.stale:
                continue
            if not adapter.supports(batch.op):
                if batch.op in MUTATING_OPS:
                    adapter.retire(i)
                    report.retired[adapter.name] = i
                continue
            try:
                result, delta = adapter.measured_apply(batch.op,
                                                       batch.payload)
            except Exception as exc:  # noqa: BLE001 - report, don't die
                report.divergences.append(Divergence(
                    seed=session.seed, batch_index=i, op=batch.op,
                    impl=adapter.name, kind="crash",
                    detail=f"{type(exc).__name__}: {exc}"))
                adapter.retire(i)
                report.retired[adapter.name] = i
                continue
            if batch.op in READ_OPS and result != expected:
                report.divergences.append(Divergence(
                    seed=session.seed, batch_index=i, op=batch.op,
                    impl=adapter.name, kind="result",
                    detail=_diff_results(batch.op, batch.payload,
                                         expected, result)))
            envelope_fn = ENVELOPE_FNS.get(adapter.name)
            if envelope_fn is not None and delta is not None:
                result_size = (sum(len(rows) for rows in expected)
                               if batch.op == "range" else 0)
                budget = envelope_fn(batch.op, len(batch.payload),
                                     num_modules, len(oracle),
                                     result_size)
                if delta.rounds > budget:
                    report.divergences.append(Divergence(
                        seed=session.seed, batch_index=i, op=batch.op,
                        impl=adapter.name, kind="rounds_envelope",
                        detail=(f"{delta.rounds} rounds > envelope "
                                f"{budget} (batch of "
                                f"{len(batch.payload)}, P={num_modules})")))
                if adapter.name == "skiplist" and twin is not None:
                    _check_split(report, session, i, batch, expected,
                                 delta, twin)

    # Detach the observer before the final-state scans, which run extra
    # pipeline ops that the determinism rerun does not replay.
    if skiplist is not None and skiplist.machine is not None:
        skiplist.machine.batch_observer = None
        report.observed_ops = len(stream)

    _check_final_states(report, session, oracle, adapters)

    if check_determinism and skiplist is not None:
        _check_determinism(report, session, num_modules, stream,
                           backend=backend, storage=storage, fault=fault)

    if (check_backends and skiplist is not None
            and skiplist.machine is not None):
        _check_backend_equivalence(
            report, session, num_modules, stream,
            primary_backend=skiplist.machine.backend, storage=storage,
            fault=fault)

    if check_storages and skiplist is not None:
        _check_storage_equivalence(
            report, session, num_modules, stream,
            primary_storage=skiplist.impl.storage,
            backend=backend, fault=fault)
    return report


def _diff_results(op: str, payload: Sequence, expected: Any,
                  actual: Any) -> str:
    """A compact first-point-of-divergence description."""
    if isinstance(expected, list) and isinstance(actual, list):
        if len(expected) != len(actual):
            return (f"result length {len(actual)} != expected "
                    f"{len(expected)}")
        for j, (e, a) in enumerate(zip(expected, actual)):
            if e != a:
                arg = payload[j] if j < len(payload) else "?"
                return (f"element {j} (arg {arg!r}): got {a!r}, "
                        f"expected {e!r}")
    return f"got {actual!r}, expected {expected!r}"


def _check_split(report: SessionReport, session: Session, i: int, batch,
                 expected: Any, whole_delta: MetricsDelta,
                 twin: ImplAdapter) -> None:
    """Metamorphic invariant: replaying a read batch as two half batches
    must return the same answers and cannot be cheaper in rounds or IO
    (splitting only adds bulk-synchronous overhead)."""
    payload = batch.payload
    if batch.op in MUTATING_OPS:
        twin.apply(batch.op, payload)  # keep the twin's state in sync
        return
    if len(payload) < 2:
        twin.apply(batch.op, payload)  # charge it the same reads anyway
        return
    mid = len(payload) // 2
    r1, d1 = twin.measured_apply(batch.op, payload[:mid])
    r2, d2 = twin.measured_apply(batch.op, payload[mid:])
    if r1 + r2 != expected:
        report.divergences.append(Divergence(
            seed=session.seed, batch_index=i, op=batch.op, impl="skiplist",
            kind="split_result",
            detail=_diff_results(batch.op, payload, expected, r1 + r2)))
    if batch.op == "range":
        # Concurrent ranges contend for modules, so a whole batch can
        # legitimately cost *more* rounds/IO than its two halves run
        # back to back; only the result-equivalence half of the
        # invariant applies to ranges.
        return
    if d1 is not None and d2 is not None:
        # Calibrated slack: Get is strictly monotone (0 excess across
        # the 250-config sweep); Successor's pivot recursion wobbles by
        # a few rounds / ~20 IO on small batches, so its bound carries
        # constant+multiplicative headroom.  A per-element regression
        # multiplies costs by O(batch) and still trips both bounds.
        if batch.op == "get":
            round_slack, io_mult, io_slack = 0, 1.0, 0.0
        else:
            round_slack, io_mult, io_slack = 8, 1.5, 16.0
        split_rounds = d1.rounds + d2.rounds
        split_io = d1.io_time + d2.io_time
        if whole_delta.rounds > split_rounds + round_slack:
            report.divergences.append(Divergence(
                seed=session.seed, batch_index=i, op=batch.op,
                impl="skiplist", kind="split_monotonicity",
                detail=(f"whole batch took {whole_delta.rounds} rounds > "
                        f"{split_rounds} (+{round_slack} slack) for its "
                        f"two halves")))
        if whole_delta.io_time > io_mult * split_io + io_slack:
            report.divergences.append(Divergence(
                seed=session.seed, batch_index=i, op=batch.op,
                impl="skiplist", kind="split_monotonicity",
                detail=(f"whole batch took {whole_delta.io_time:.0f} IO > "
                        f"{io_mult:g}x{split_io:.0f}+{io_slack:g} for "
                        f"its two halves")))


def _session_key_bounds(session: Session) -> Optional[Tuple[int, int]]:
    """(lo, hi) covering every key the session can have touched."""
    keys: List[Any] = list(session.initial_keys)
    for batch in session.batches:
        if batch.op in ("get", "successor", "delete"):
            keys.extend(batch.payload)
        elif batch.op == "upsert":
            keys.extend(k for k, _ in batch.payload)
        elif batch.op == "range":
            for lo, hi in batch.payload:
                keys.extend((lo, hi))
    if not keys:
        return None
    return min(keys), max(keys)


def _check_final_states(report: SessionReport, session: Session,
                        oracle: SequentialOracle,
                        adapters: Sequence[ImplAdapter]) -> None:
    bounds = _session_key_bounds(session)
    if bounds is None:
        return
    lo, hi = bounds
    want = oracle.as_dict()
    for adapter in adapters:
        if adapter.stale:
            continue
        try:
            adapter.check_integrity()
        except AssertionError as exc:
            report.divergences.append(Divergence(
                seed=session.seed, batch_index=-1, op="final",
                impl=adapter.name, kind="integrity",
                detail=f"invariant violated: {exc}"))
        got = adapter.final_state(lo, hi)
        if got is None:
            continue
        if got != want:
            missing = sorted(set(want) - set(got))[:4]
            extra = sorted(set(got) - set(want))[:4]
            wrong = sorted(k for k in set(want) & set(got)
                           if want[k] != got[k])[:4]
            report.divergences.append(Divergence(
                seed=session.seed, batch_index=-1, op="final",
                impl=adapter.name, kind="final_state",
                detail=(f"{len(want)} keys expected, {len(got)} found; "
                        f"missing={missing} extra={extra} "
                        f"wrong_value={wrong}")))


def _check_determinism(report: SessionReport, session: Session,
                       num_modules: int,
                       first_stream: List[Tuple[str, MetricsDelta]], *,
                       backend: Optional[str] = None,
                       storage: Optional[str] = None,
                       fault: Optional[Tuple[str, str]] = None,
                       ) -> None:
    """Replay the skip list alone on a fresh machine (same backend and
    storage); the per-op metric stream must be bit-identical to the
    first run's.  An injected fault is replayed too, so this check
    isolates nondeterminism rather than re-detecting the fault's state
    divergence."""
    items = initial_items_for(session)
    rerun = build_implementations(["skiplist"], seed=session.seed,
                                  items=items,
                                  num_modules=num_modules,
                                  backend=backend, storage=storage)[0]
    if fault is not None and fault[0] == "skiplist":
        from repro.verify.faults import inject_fault
        inject_fault(rerun, fault[1])
    stream: List[Tuple[str, MetricsDelta]] = []
    assert rerun.machine is not None
    rerun.machine.batch_observer = \
        lambda op_name, delta: stream.append((op_name, delta))
    for batch in session.batches:
        rerun.apply(batch.op, batch.payload)
    rerun.machine.batch_observer = None
    if len(stream) != len(first_stream):
        report.divergences.append(Divergence(
            seed=session.seed, batch_index=-1, op="rerun", impl="skiplist",
            kind="determinism",
            detail=(f"rerun produced {len(stream)} pipeline ops, first "
                    f"run {len(first_stream)}")))
        return
    for j, ((op1, d1), (op2, d2)) in enumerate(zip(first_stream, stream)):
        if op1 != op2 or d1 != d2:
            report.divergences.append(Divergence(
                seed=session.seed, batch_index=-1, op="rerun",
                impl="skiplist", kind="determinism",
                detail=(f"pipeline op {j}: first run ({op1}, {d1}) != "
                        f"rerun ({op2}, {d2})")))
            return


def _check_backend_equivalence(report: SessionReport, session: Session,
                               num_modules: int,
                               first_stream: List[Tuple[str, MetricsDelta]],
                               *, primary_backend: str,
                               storage: Optional[str] = None,
                               fault: Optional[Tuple[str, str]] = None,
                               ) -> None:
    """Replay the skip list alone on the other execution backend.

    Two checks, both against the primary run: every read batch's result
    must match the sequential oracle (replayed fresh here, so the check
    stands alone), and the per-op metric stream -- rounds, h-relations,
    IO/PIM time, messages -- must be *bit-identical* to the stream the
    primary backend produced.  An injected skip-list fault is replayed
    too (and the oracle comparison skipped, since the fault's result
    divergence is already reported by the primary run): this check
    isolates backend divergence, nothing else.
    """
    other = "columnar" if primary_backend == "object" else "object"
    items = initial_items_for(session)
    rerun = build_implementations(["skiplist"], seed=session.seed,
                                  items=items, num_modules=num_modules,
                                  backend=other, storage=storage)[0]
    faulted = fault is not None and fault[0] == "skiplist"
    if faulted:
        from repro.verify.faults import inject_fault
        inject_fault(rerun, fault[1])
    oracle = SequentialOracle(items)
    stream: List[Tuple[str, MetricsDelta]] = []
    assert rerun.machine is not None
    rerun.machine.batch_observer = \
        lambda op_name, delta: stream.append((op_name, delta))
    for i, batch in enumerate(session.batches):
        expected = oracle.apply_batch(batch.op, batch.payload)
        try:
            result = rerun.apply(batch.op, batch.payload)
        except Exception as exc:  # noqa: BLE001 - report, don't die
            report.divergences.append(Divergence(
                seed=session.seed, batch_index=i, op=batch.op,
                impl="skiplist", kind="backend",
                detail=(f"[{other}] {type(exc).__name__}: {exc}")))
            rerun.machine.batch_observer = None
            return
        if batch.op in READ_OPS and not faulted and result != expected:
            report.divergences.append(Divergence(
                seed=session.seed, batch_index=i, op=batch.op,
                impl="skiplist", kind="backend",
                detail=(f"[{other}] "
                        + _diff_results(batch.op, batch.payload,
                                        expected, result))))
    rerun.machine.batch_observer = None
    if len(stream) != len(first_stream):
        report.divergences.append(Divergence(
            seed=session.seed, batch_index=-1, op="rerun", impl="skiplist",
            kind="backend",
            detail=(f"{other} backend produced {len(stream)} pipeline "
                    f"ops, {primary_backend} {len(first_stream)}")))
        return
    for j, ((op1, d1), (op2, d2)) in enumerate(zip(first_stream, stream)):
        if op1 != op2 or d1 != d2:
            report.divergences.append(Divergence(
                seed=session.seed, batch_index=-1, op="rerun",
                impl="skiplist", kind="backend",
                detail=(f"pipeline op {j}: {primary_backend} ({op1}, {d1})"
                        f" != {other} ({op2}, {d2})")))
            return


def _check_storage_equivalence(report: SessionReport, session: Session,
                               num_modules: int,
                               first_stream: List[Tuple[str, MetricsDelta]],
                               *, primary_storage: str,
                               backend: Optional[str] = None,
                               fault: Optional[Tuple[str, str]] = None,
                               ) -> None:
    """Replay the skip list alone on the other structure storage.

    The storage twin of :func:`_check_backend_equivalence`: same
    execution backend, other storage (arena when the primary run used
    object nodes, and vice versa).  Read results must match the
    sequential oracle, the rerun's structural invariants must hold
    after the last batch, and the per-op metric stream must be
    *bit-identical* to the primary run's -- the certification that the
    flat arena and the pointer graph are the same structure with the
    same costs, op for op.  A skip-list fault is replayed too; a
    *storage-level* fault (e.g. ``arena_succ_corrupt``) is by design a
    no-op on the other storage, so its drift surfaces here as a
    ``storage`` stream divergence.
    """
    other = "arena" if primary_storage == "object" else "object"
    items = initial_items_for(session)
    rerun = build_implementations(["skiplist"], seed=session.seed,
                                  items=items, num_modules=num_modules,
                                  backend=backend, storage=other)[0]
    faulted = fault is not None and fault[0] == "skiplist"
    if faulted:
        from repro.verify.faults import inject_fault
        inject_fault(rerun, fault[1])
    oracle = SequentialOracle(items)
    stream: List[Tuple[str, MetricsDelta]] = []
    assert rerun.machine is not None
    rerun.machine.batch_observer = \
        lambda op_name, delta: stream.append((op_name, delta))
    for i, batch in enumerate(session.batches):
        expected = oracle.apply_batch(batch.op, batch.payload)
        try:
            result = rerun.apply(batch.op, batch.payload)
        except Exception as exc:  # noqa: BLE001 - report, don't die
            report.divergences.append(Divergence(
                seed=session.seed, batch_index=i, op=batch.op,
                impl="skiplist", kind="storage",
                detail=(f"[{other}] {type(exc).__name__}: {exc}")))
            rerun.machine.batch_observer = None
            return
        if batch.op in READ_OPS and not faulted and result != expected:
            report.divergences.append(Divergence(
                seed=session.seed, batch_index=i, op=batch.op,
                impl="skiplist", kind="storage",
                detail=(f"[{other}] "
                        + _diff_results(batch.op, batch.payload,
                                        expected, result))))
    rerun.machine.batch_observer = None
    try:
        rerun.check_integrity()
    except AssertionError as exc:
        report.divergences.append(Divergence(
            seed=session.seed, batch_index=-1, op="final", impl="skiplist",
            kind="storage",
            detail=f"[{other}] invariant violated: {exc}"))
    if len(stream) != len(first_stream):
        report.divergences.append(Divergence(
            seed=session.seed, batch_index=-1, op="rerun", impl="skiplist",
            kind="storage",
            detail=(f"{other} storage produced {len(stream)} pipeline "
                    f"ops, {primary_storage} {len(first_stream)}")))
        return
    for j, ((op1, d1), (op2, d2)) in enumerate(zip(first_stream, stream)):
        if op1 != op2 or d1 != d2:
            report.divergences.append(Divergence(
                seed=session.seed, batch_index=-1, op="rerun",
                impl="skiplist", kind="storage",
                detail=(f"pipeline op {j}: {primary_storage} ({op1}, {d1})"
                        f" != {other} ({op2}, {d2})")))
            return


# ----------------------------------------------------------------------
# container structures (FIFO queue, priority queue)
# ----------------------------------------------------------------------

def verify_containers(seed: int, num_modules: int = 8, *,
                      num_batches: int = 6, batch_size: int = 16,
                      machine: Optional[Any] = None,
                      ) -> List[Divergence]:
    """Differentially test the FIFO queue against ``collections.deque``
    and the priority queue against a sorted-reference, with batch shapes
    (duplicate priorities, drain-to-empty, refill) derived from ``seed``.

    ``machine`` optionally supplies a pre-built machine -- the chaos
    harness passes one with a fault plan installed, so the containers'
    exact-result checks run over an unreliable network too."""
    import random as _random

    from repro.sim.machine import PIMMachine
    from repro.structures.fifo import PIMQueue
    from repro.structures.priority_queue import PIMPriorityQueue

    rng = _random.Random(seed ^ 0x5EED)
    if machine is None:
        machine = PIMMachine(num_modules=num_modules, seed=seed & 0x7FFFFFFF)
    queue = PIMQueue(machine)
    pq = PIMPriorityQueue(machine)
    out: List[Divergence] = []

    from collections import deque
    ref_q: deque = deque()
    ref_pq: List[Tuple[Any, int, Any]] = []  # (priority, seq, value)
    seq = 0

    def report(impl: str, batch_index: int, op: str, detail: str) -> None:
        out.append(Divergence(seed=seed, batch_index=batch_index, op=op,
                              impl=impl, kind="container", detail=detail))

    for i in range(num_batches):
        # FIFO: enqueue a batch, dequeue a (sometimes overlong) batch.
        values = [rng.randrange(1000) for _ in
                  range(1 + rng.randrange(batch_size))]
        queue.enqueue_batch(values)
        ref_q.extend(values)
        want_n = rng.randrange(batch_size + 4)
        got = queue.dequeue_batch(want_n)
        want = [ref_q.popleft() for _ in range(min(want_n, len(ref_q)))]
        if got != want:
            report("fifo", i, "dequeue", f"got {got!r}, expected {want!r}")
        if len(queue) != len(ref_q):
            report("fifo", i, "depth",
                   f"depth {len(queue)} != expected {len(ref_q)}")

        # Priority queue: duplicate-heavy priorities stress FIFO ties.
        items = [(rng.randrange(8), rng.randrange(1000))
                 for _ in range(1 + rng.randrange(batch_size))]
        pq.insert_batch(items)
        for prio, value in items:
            ref_pq.append((prio, seq, value))
            seq += 1
        ref_pq.sort()
        take = rng.randrange(batch_size + 4)
        got_pq = pq.extract_min_batch(take)
        k = min(take, len(ref_pq))
        want_pq = [(p, v) for p, _, v in ref_pq[:k]]
        del ref_pq[:k]
        if got_pq != want_pq:
            report("priority_queue", i, "extract_min",
                   f"got {got_pq!r}, expected {want_pq!r}")
        if len(pq) != len(ref_pq):
            report("priority_queue", i, "depth",
                   f"depth {len(pq)} != expected {len(ref_pq)}")
    return out
