"""Differential verification: fuzzer, cross-implementation oracle, shrinker.

The paper's claims are comparative -- the PIM-balanced skip list against
range-partitioned, hash-partitioned, fine-grained and naive-batch
baselines under adversarial batches -- so correctness must be checked
*across* implementations, not per structure.  This package is the
correctness backbone the ROADMAP's perf PRs regress against:

- :mod:`repro.verify.fuzz` -- a seeded workload fuzzer (on top of
  :mod:`repro.workloads.generators`) emitting mixed batch sessions with
  adversarial shapes: contiguous runs, duplicate-heavy and Zipf-skewed
  reads, same-successor clusters, churn, and ranges over fresh deletes.
- :mod:`repro.verify.adapters` -- every implementation behind the
  uniform ``apply_batch`` conformance surface, each on its own fresh
  seeded :class:`~repro.sim.machine.PIMMachine`.
- :mod:`repro.verify.differ` -- the differential driver: replays each
  session simultaneously against the skip list, the five baselines and
  the LSM store, checking observable equivalence against the
  :class:`~repro.verify.oracle.SequentialOracle` plus metamorphic cost
  invariants (bit-identical metrics across reruns of the same seed,
  per-batch round counts within paper envelopes, metric monotonicity
  under batch splitting), and the FIFO/priority-queue containers
  against deque/heap oracles.
- :mod:`repro.verify.shrink` -- a failing-case shrinker that minimizes
  any diverging session to a small reproducer and writes it to
  ``tests/golden/repros/`` as a replayable JSON case (auto-collected by
  ``tests/test_verify_repros.py``).
- :mod:`repro.verify.faults` -- the unified fault registry: adapter
  mutations (the verifier itself is mutation-tested: a seeded fault
  must be caught, shrunk, and emitted as a repro file) plus the
  machine-level fault schedules, collision-checked under one namespace.
- :mod:`repro.verify.chaos` -- the differential chaos harness: fuzz
  sessions replayed on an unreliable machine under a recovery manager,
  checking result equivalence, round-overhead envelopes, and
  bit-identical reruns per (session seed, fault seed).
- :mod:`repro.verify.cli` --
  ``python -m repro verify fuzz|replay|shrink|chaos|faults``.
"""

from repro.verify.adapters import (
    DEFAULT_IMPLS,
    IMPLEMENTATIONS,
    ImplAdapter,
    build_implementations,
)
from repro.verify.differ import (
    Divergence,
    SessionReport,
    verify_containers,
    verify_session,
)
from repro.verify.chaos import (
    ChaosReport,
    MESSAGE_SCHEDULES,
    OVERHEAD_ENVELOPES,
    chaos_containers,
    chaos_matrix,
    chaos_session,
    check_chaos_determinism,
)
from repro.verify.faults import (
    FAULTS,
    REGISTRY,
    FaultDef,
    describe_faults,
    fault_names,
    get_fault,
    inject_fault,
)
from repro.verify.fuzz import fuzz_session
from repro.verify.oracle import SequentialOracle
from repro.verify.shrink import (
    load_repro,
    session_from_dict,
    session_to_dict,
    shrink_session,
    write_repro,
)

__all__ = [
    "ChaosReport",
    "DEFAULT_IMPLS",
    "Divergence",
    "FAULTS",
    "FaultDef",
    "IMPLEMENTATIONS",
    "ImplAdapter",
    "MESSAGE_SCHEDULES",
    "OVERHEAD_ENVELOPES",
    "REGISTRY",
    "SequentialOracle",
    "SessionReport",
    "build_implementations",
    "chaos_containers",
    "chaos_matrix",
    "chaos_session",
    "check_chaos_determinism",
    "describe_faults",
    "fault_names",
    "fuzz_session",
    "get_fault",
    "inject_fault",
    "load_repro",
    "session_from_dict",
    "session_to_dict",
    "shrink_session",
    "verify_containers",
    "verify_session",
    "write_repro",
]
