"""Restart-equivalence certification for :mod:`repro.recovery.durable`.

Two sweeps, both differential against the
:class:`~repro.verify.oracle.SequentialOracle` and both bit-identical
across reruns:

1. **Kill sweep** (:func:`kill_sweep`) -- drive a seeded fuzz session
   through a :class:`~repro.recovery.manager.RecoveryManager` with a
   durable state dir and crash the host at *every* record boundary
   (including mid-record, via seeded torn-fragment variants of the
   in-flight append).  Each restart must restore **exactly** the
   oracle's acked prefix -- zero acked-write loss (RPO = 0), zero
   phantom writes -- and the resumed session must finish with the full
   oracle state, every read answered oracle-exact along the way.
2. **Disk-fault sweep** (:func:`fault_sweep`) -- run the session to
   completion, close the state dir, apply one registered disk fault
   (:data:`~repro.verify.faults.DISK_FAULTS`), and demand the damage
   is *caught*: ``fsck`` must report it, and reopen must either
   recover to an exact oracle prefix (full state where the fault
   destroys nothing acked, e.g. a duplicated record) or refuse with a
   typed :class:`~repro.recovery.durable.store.DurabilityError` that
   ``fsck --repair`` resolves.  A recovered state that is not an
   oracle prefix is the one unforgivable outcome.

State dirs live in fresh temp directories and are removed on the way
out, pass or fail (the ``--keep-state`` escape hatch in the CLI trades
that for debuggability).
"""

from __future__ import annotations

import hashlib
import shutil
import tempfile
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.core.skiplist import PIMSkipList
from repro.recovery import RecoveryManager
from repro.recovery.durable import (
    DurabilityError,
    DurabilityPolicy,
    DurableStore,
    fsck,
)
from repro.recovery.durable.wal import WalRecord, encode_record
from repro.recovery.manager import MUTATING_OPS, _wal_payload
from repro.sim.chaos import _mix
from repro.sim.machine import PIMMachine
from repro.verify.faults import DISK_FAULTS
from repro.verify.fuzz import fuzz_session, initial_items_for
from repro.verify.oracle import SequentialOracle
from repro.workloads.sessions import Session

__all__ = ["DurableReport", "check_durable_determinism", "durable_matrix",
           "fault_sweep", "kill_sweep"]


@dataclass
class DurableReport:
    """One sweep's observations and verdict."""

    mode: str  # "kill" | "fault"
    session_seed: int
    fault_seed: int
    cases: int = 0
    mutations: int = 0
    violations: List[str] = field(default_factory=list)
    #: fault name -> how the damage was caught ("recovered" /
    #: "refused+repaired" / "refused+unrepairable"), fault sweep only.
    caught: Dict[str, str] = field(default_factory=dict)
    fingerprint: str = ""

    @property
    def ok(self) -> bool:
        return not self.violations

    def summary(self) -> str:
        verdict = "OK" if self.ok else f"{len(self.violations)} violation(s)"
        detail = (f"{self.cases} boundary(ies)" if self.mode == "kill"
                  else f"{self.cases} fault(s): "
                       + ", ".join(f"{k}={v}"
                                   for k, v in sorted(self.caught.items())))
        return (f"durable {self.mode} seed={self.session_seed} "
                f"fault_seed={self.fault_seed}: {self.mutations} acked "
                f"record(s), {detail} -> {verdict}")

    def as_dict(self) -> Dict[str, object]:
        return {
            "mode": self.mode,
            "session_seed": self.session_seed,
            "fault_seed": self.fault_seed,
            "cases": self.cases,
            "mutations": self.mutations,
            "violations": list(self.violations),
            "caught": dict(self.caught),
            "fingerprint": self.fingerprint,
        }


# ---------------------------------------------------------------------------
# shared plumbing


#: Modeled-fsync policy for every sweep: the crash model is exact
#: either way, and skipping physical fsyncs keeps the O(boundaries x
#: session) kill sweep fast.
_POLICY = DurabilityPolicy(os_fsync=False)


def _plan(session_seed: int, num_batches: int, batch_size: int,
          ) -> Tuple[Session, list, List[Dict[Any, Any]], List[Any]]:
    """Session + initial items + oracle state after each mutating batch
    (index = acked-record count) + expected answers per batch."""
    session = fuzz_session(session_seed, num_batches=num_batches,
                           batch_size=batch_size)
    initial = initial_items_for(session)
    oracle = SequentialOracle(initial)
    states: List[Dict[Any, Any]] = [dict(oracle.data)]
    answers: List[Any] = []
    for batch in session.batches:
        answers.append(oracle.apply_batch(batch.op, list(batch.payload)))
        if batch.op in MUTATING_OPS:
            states.append(dict(oracle.data))
    return session, initial, states, answers


def _open_manager(root: str, session: Session, initial: list,
                  num_modules: int, checkpoint_every: int,
                  ) -> Tuple[RecoveryManager, DurableStore]:
    """Open the state dir and front it with a RecoveryManager (fresh
    dirs bootstrap from the initial build; reopened dirs restore)."""
    store = DurableStore.open(root, _POLICY)

    def rebuild() -> PIMSkipList:
        return PIMSkipList(PIMMachine(num_modules=num_modules,
                                      seed=session.seed))

    live = rebuild()
    if store.report.created and initial:
        live.build(initial)
    manager = RecoveryManager(live, rebuild,
                              checkpoint_every=checkpoint_every,
                              durable=store)
    return manager, store


def _drive(manager: RecoveryManager, session: Session, answers: List[Any],
           start: int, stop_mutations: Optional[int],
           violations: List[str], label: str) -> Tuple[int, int]:
    """Apply ``session.batches[start:]``, checking every answer against
    the oracle's, stopping *before* the mutating batch that would be
    acked record ``stop_mutations + 1``.  Returns ``(next_batch_index,
    mutations_applied_here)``."""
    mutated = 0
    for index in range(start, len(session.batches)):
        batch = session.batches[index]
        if (stop_mutations is not None and batch.op in MUTATING_OPS
                and mutated >= stop_mutations):
            return index, mutated
        result = manager.run(batch.op, list(batch.payload))
        if batch.op in MUTATING_OPS:
            mutated += 1
        elif result != answers[index]:
            violations.append(
                f"{label}: batch {index} ({batch.op}) answer diverges "
                f"from oracle: got {result!r}, expected {answers[index]!r}")
    return len(session.batches), mutated


def _state_key(state: Dict[Any, Any]) -> str:
    return repr(sorted(state.items()))


def _torn_fragment(session: Session, boundary: int, lsn: int,
                   next_index: int, variant: int) -> bytes:
    """A prefix of the record that was mid-write at the crash: nothing
    (clean cut at the sync boundary), a partial header, or a partial
    body -- the three shapes a power cut leaves behind."""
    if variant == 0 or next_index >= len(session.batches):
        return b""
    batch = session.batches[next_index]
    blob = encode_record(WalRecord(lsn=lsn, op=batch.op,
                                   payload=_wal_payload(batch.payload)))
    if variant == 1:
        cut = 1 + _mix(session.seed, boundary, 0xF1) % 7       # header only
    else:
        cut = 8 + _mix(session.seed, boundary, 0xF2) % max(1, len(blob) - 8)
    return blob[:cut]


# ---------------------------------------------------------------------------
# sweep 1: kill at every record boundary


def kill_sweep(session_seed: int, *, fault_seed: int = 0,
               num_batches: int = 14, batch_size: int = 12,
               num_modules: int = 8, checkpoint_every: int = 3,
               ) -> DurableReport:
    """Crash at every acked-record boundary; each restart must equal
    the oracle's acked prefix and resume to the full oracle state."""
    session, initial, states, answers = _plan(session_seed, num_batches,
                                              batch_size)
    total = len(states) - 1
    report = DurableReport(mode="kill", session_seed=session_seed,
                           fault_seed=fault_seed, mutations=total)
    digest = hashlib.sha256()
    for boundary in range(total + 1):
        report.cases += 1
        root = tempfile.mkdtemp(prefix="repro-durable-kill-")
        try:
            manager, store = _open_manager(root, session, initial,
                                           num_modules, checkpoint_every)
            next_index, _ = _drive(manager, session, answers, 0, boundary,
                                   report.violations,
                                   f"kill@{boundary} pre-crash")
            variant = _mix(session_seed, fault_seed, boundary, 0xF0) % 3
            store.crash(_torn_fragment(session, boundary, boundary + 1,
                                       next_index, variant))

            manager2, store2 = _open_manager(root, session, initial,
                                             num_modules, checkpoint_every)
            restored = manager2.structure.to_dict()
            if restored != states[boundary]:
                missing = sorted(set(states[boundary]) - set(restored))
                phantom = sorted(set(restored) - set(states[boundary]))
                report.violations.append(
                    f"kill@{boundary} (variant {variant}): restart state "
                    f"is not the acked prefix: {len(missing)} acked "
                    f"key(s) lost {missing[:5]!r}, {len(phantom)} phantom "
                    f"key(s) {phantom[:5]!r}")
            _drive(manager2, session, answers, next_index, None,
                   report.violations, f"kill@{boundary} post-restart")
            final = manager2.structure.to_dict()
            if final != states[-1]:
                report.violations.append(
                    f"kill@{boundary}: resumed session ended away from "
                    f"the full oracle state ({len(final)} vs "
                    f"{len(states[-1])} key(s))")
            store2.close()
            digest.update(f"{boundary}:{variant}:"
                          f"{_state_key(restored)}\n".encode())
        finally:
            shutil.rmtree(root, ignore_errors=True)
    report.fingerprint = digest.hexdigest()
    return report


# ---------------------------------------------------------------------------
# sweep 2: every registered disk fault


#: What each fault may legitimately look like after reopen.
#: ``open_state``: "full" (no acked loss tolerated), "prefix_minus_one"
#: (the damaged final record drops), "any_prefix".  ``may_refuse``:
#: a typed DurabilityError is an acceptable catch.
_FAULT_EXPECT: Dict[str, Tuple[str, bool]] = {
    "wal_torn_tail": ("prefix_minus_one", True),
    "wal_bitflip": ("any_prefix", True),
    "snapshot_truncated": ("full", True),
    "crash_before_rename": ("full", True),
    "wal_dup_record": ("full", False),
}


def fault_sweep(session_seed: int, *, fault_seed: int = 1,
                faults: Optional[List[str]] = None,
                num_batches: int = 14, batch_size: int = 12,
                num_modules: int = 8, checkpoint_every: int = 3,
                damage_override: Optional[Callable[[str, int], str]] = None,
                ) -> DurableReport:
    """Inject every disk fault into a completed session's state dir;
    each must be caught by fsck or recovery, and any recovered state
    must be an exact oracle prefix.

    ``damage_override`` substitutes one damage function for every
    fault -- the mutation-test hook the suite uses to prove a fault
    the function fails to inject makes this harness light up.
    """
    names = faults if faults is not None else sorted(DISK_FAULTS)
    unknown = [n for n in names if n not in DISK_FAULTS]
    if unknown:
        raise ValueError(f"unknown disk fault(s) {unknown}; known: "
                         f"{', '.join(sorted(DISK_FAULTS))}")
    session, initial, states, answers = _plan(session_seed, num_batches,
                                              batch_size)
    total = len(states) - 1
    report = DurableReport(mode="fault", session_seed=session_seed,
                           fault_seed=fault_seed, mutations=total)
    if total < 2:
        raise ValueError(
            f"session seed {session_seed} produced only {total} mutating "
            f"batch(es); disk faults need >= 2 (raise num_batches)")
    state_keys = {_state_key(s): i for i, s in enumerate(states)}
    digest = hashlib.sha256()
    for name in names:
        report.cases += 1
        expect_state, may_refuse = _FAULT_EXPECT.get(name,
                                                     ("any_prefix", True))
        damage = damage_override or DISK_FAULTS[name]
        root = tempfile.mkdtemp(prefix=f"repro-durable-{name}-")
        try:
            manager, store = _open_manager(root, session, initial,
                                           num_modules, checkpoint_every)
            _drive(manager, session, answers, 0, None, report.violations,
                   f"{name} baseline")
            store.close()

            detail = damage(root, fault_seed)
            check = fsck(root)
            if check.clean:
                report.violations.append(
                    f"{name}: damage ({detail}) invisible to fsck -- the "
                    f"checker cannot see this fault class")

            outcome = ""
            restored: Optional[Dict[Any, Any]] = None
            try:
                manager2, store2 = _open_manager(root, session, initial,
                                                 num_modules,
                                                 checkpoint_every)
                restored = manager2.structure.to_dict()
                store2.close()
                outcome = "recovered"
            except DurabilityError as exc:
                if not may_refuse:
                    report.violations.append(
                        f"{name}: reopen refused "
                        f"({type(exc).__name__}: {exc}) but this fault "
                        f"destroys nothing recovery needs")
                repaired = fsck(root, repair=True)
                if repaired.repairable:
                    outcome = "refused+repaired"
                    manager3, store3 = _open_manager(root, session, initial,
                                                     num_modules,
                                                     checkpoint_every)
                    restored = manager3.structure.to_dict()
                    store3.close()
                else:
                    outcome = "refused+unrepairable"

            if restored is not None:
                prefix = state_keys.get(_state_key(restored))
                if prefix is None:
                    report.violations.append(
                        f"{name}: recovered state is NOT an oracle "
                        f"prefix ({len(restored)} key(s)) -- wrong "
                        f"answers would follow")
                elif outcome == "recovered":
                    if expect_state == "full" and prefix != total:
                        report.violations.append(
                            f"{name}: recovery silently dropped acked "
                            f"record(s): came back at prefix {prefix} "
                            f"of {total}")
                    if expect_state == "prefix_minus_one" \
                            and prefix < total - 1:
                        report.violations.append(
                            f"{name}: recovery lost more than the "
                            f"damaged final record: prefix {prefix} "
                            f"of {total}")
            report.caught[name] = outcome
            digest.update(f"{name}:{outcome}:"
                          f"{'' if restored is None else _state_key(restored)}"
                          f"\n".encode())
        finally:
            shutil.rmtree(root, ignore_errors=True)
    report.fingerprint = digest.hexdigest()
    return report


# ---------------------------------------------------------------------------
# determinism + the matrix


def check_durable_determinism(session_seed: int, *, fault_seed: int = 0,
                              num_batches: int = 14, batch_size: int = 12,
                              num_modules: int = 8, checkpoint_every: int = 3,
                              ) -> Tuple[bool, str, str]:
    """Run the kill sweep twice; fingerprints must be bit-identical."""
    kwargs = dict(fault_seed=fault_seed, num_batches=num_batches,
                  batch_size=batch_size, num_modules=num_modules,
                  checkpoint_every=checkpoint_every)
    first = kill_sweep(session_seed, **kwargs)
    second = kill_sweep(session_seed, **kwargs)
    return (first.fingerprint == second.fingerprint,
            first.fingerprint, second.fingerprint)


def durable_matrix(session_seeds: List[int], fault_seeds: List[int], *,
                   num_batches: int = 14, batch_size: int = 12,
                   num_modules: int = 8, checkpoint_every: int = 3,
                   faults: Optional[List[str]] = None,
                   ) -> List[DurableReport]:
    """The certification sweep: kill sweep + full disk-fault sweep for
    every (session seed, fault seed) pair."""
    reports = []
    for session_seed in session_seeds:
        for fault_seed in fault_seeds:
            reports.append(kill_sweep(
                session_seed, fault_seed=fault_seed,
                num_batches=num_batches, batch_size=batch_size,
                num_modules=num_modules, checkpoint_every=checkpoint_every))
            reports.append(fault_sweep(
                session_seed, fault_seed=fault_seed, faults=faults,
                num_batches=num_batches, batch_size=batch_size,
                num_modules=num_modules, checkpoint_every=checkpoint_every))
    return reports
