"""Chaos soak harness for the serving layer (:mod:`repro.serve`).

Replays a swarm of synthetic concurrent clients against a
:class:`~repro.serve.server.Server` whose live machine carries a PR 5
fault schedule, then proves the serving SLO from the outside:

1. **Sequential-replay equivalence** -- the server's journal (every
   answered batch, in execution order, with demux slices) is replayed
   through the :class:`~repro.verify.oracle.SequentialOracle`; each
   client's answered stream must match its slice of the replay, *in
   its own program order*.  This is the interleaving check: whatever
   order the coalescer merged tenants in, the result must be
   explainable by one sequential execution.
2. **Correct or typed refusal** -- every outcome a client saw is
   either its replay-expected answer, or a falsy typed value
   (:class:`~repro.serve.errors.Refusal` /
   :class:`~repro.recovery.DegradedResult`).  Refused requests must be
   absent from the journal (refusal == proof of non-effect).
3. **No hangs** -- the run completes with the bounded-progress
   watchdog silent; a :class:`~repro.serve.errors.ServerStalled` (or
   any scheduler failure) is a violation, not an exception.
4. **Fault-free honesty** -- under ``schedule="none"`` the refusal
   rate must be exactly zero: typed refusals are a *fault* response,
   never a steady-state tax.

Everything is deterministic: client programs are pure functions of
``(seed, client, step)`` via the chaos layer's splitmix hash, the
server runs on virtual ticks, and asyncio's ready queue is FIFO -- so
``fingerprint`` is stable and :func:`check_soak_determinism` can
demand bit-identical reruns.
"""

from __future__ import annotations

import asyncio
import hashlib
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.recovery import DegradedReason, DegradedResult
from repro.serve import Refusal, Server, ServerConfig
from repro.sim.chaos import MACHINE_SCHEDULES, _mix, build_schedule
from repro.sim.machine import PIMMachine
from repro.verify.chaos import STRUCTURE_FACTORIES
from repro.verify.oracle import SequentialOracle

__all__ = ["SoakReport", "check_soak_determinism", "soak_matrix",
           "soak_session"]

#: Wall-clock guard for the whole async drive.  Purely a harness
#: backstop (virtual time governs every decision); it only fires if the
#: event loop itself wedges, which is exactly what the soak must not
#: mask with an infinite hang.
_HARNESS_TIMEOUT_S = 600.0


# ---------------------------------------------------------------------------
# synthetic clients


def _client_op(seed: int, cid: int, step: int, key_space: int,
               ) -> Tuple[str, list, Optional[int]]:
    """The deterministic ``step``-th request of client ``cid``.

    Mix: 40% get, 25% upsert, 10% delete, 10% range, 5% successor,
    10% multi-get.  Roughly one request in six carries a deadline
    (generous: 16-31 ticks, so deadlines only ever fire when faults
    actually back the pipeline up).
    """
    draw = _mix(seed, cid, step, 0xA0) % 100
    key = _mix(seed, cid, step, 0xA1) % key_space
    timeout: Optional[int] = None
    if _mix(seed, cid, step, 0xA2) % 6 == 0:
        timeout = 16 + _mix(seed, cid, step, 0xA3) % 16
    if draw < 40:
        return "get", [key], timeout
    if draw < 65:
        return "upsert", [(key, _mix(seed, cid, step, 0xA4) % 10_000)], timeout
    if draw < 75:
        return "delete", [key], timeout
    if draw < 85:
        span = 1 + _mix(seed, cid, step, 0xA5) % 8
        return "range", [(key, min(key_space - 1, key + span))], timeout
    if draw < 90:
        return "successor", [key], timeout
    count = 2 + _mix(seed, cid, step, 0xA6) % 3
    keys = [_mix(seed, cid, step, 0xA7 + i) % key_space
            for i in range(count)]
    return "get", keys, timeout


@dataclass
class _Record:
    """One client-side observation: what was asked, what came back."""

    op: str
    payload: list
    outcome: Any
    wait_ticks: int


# ---------------------------------------------------------------------------
# the report


@dataclass
class SoakReport:
    """Everything one soak run observed, plus the SLO verdict."""

    schedule: str
    fault_seed: int
    seed: int
    clients: int
    ops_per_client: int
    structure: str = "skiplist"
    answered: int = 0
    refused: Dict[str, int] = field(default_factory=dict)
    degraded: Dict[str, int] = field(default_factory=dict)
    violations: List[str] = field(default_factory=list)
    health_state: str = ""
    health_transitions: int = 0
    recoveries: int = 0
    trips: int = 0
    stale_reads: int = 0
    ticks: int = 0
    batches: int = 0
    journal_batches: int = 0
    rounds: int = 0
    items_served: int = 0
    latencies: List[int] = field(default_factory=list)
    fingerprint: str = ""

    @property
    def ok(self) -> bool:
        return not self.violations

    @property
    def total_refused(self) -> int:
        return sum(self.refused.values())

    @property
    def total_degraded(self) -> int:
        return sum(self.degraded.values())

    def latency_percentile(self, q: float) -> int:
        """Queue-wait percentile in ticks (0 when nothing completed)."""
        if not self.latencies:
            return 0
        ordered = sorted(self.latencies)
        index = min(len(ordered) - 1, int(q * (len(ordered) - 1) + 0.5))
        return ordered[index]

    def summary(self) -> str:
        verdict = "OK" if self.ok else f"{len(self.violations)} violation(s)"
        return (f"soak {self.schedule}/f{self.fault_seed}/s{self.seed}"
                f"/{self.structure}: "
                f"{self.clients} clients x {self.ops_per_client} ops -> "
                f"{self.answered} answered, {self.total_refused} refused, "
                f"{self.total_degraded} degraded | "
                f"{self.recoveries} failover(s), {self.trips} trip(s), "
                f"health={self.health_state} | {self.ticks} ticks, "
                f"{self.rounds} rounds | {verdict}")

    def as_dict(self) -> Dict[str, object]:
        return {
            "schedule": self.schedule,
            "fault_seed": self.fault_seed,
            "seed": self.seed,
            "clients": self.clients,
            "ops_per_client": self.ops_per_client,
            "structure": self.structure,
            "answered": self.answered,
            "refused": dict(self.refused),
            "degraded": dict(self.degraded),
            "violations": list(self.violations),
            "health_state": self.health_state,
            "health_transitions": self.health_transitions,
            "recoveries": self.recoveries,
            "trips": self.trips,
            "stale_reads": self.stale_reads,
            "ticks": self.ticks,
            "batches": self.batches,
            "journal_batches": self.journal_batches,
            "rounds": self.rounds,
            "items_served": self.items_served,
            "latency_p50": self.latency_percentile(0.50),
            "latency_p99": self.latency_percentile(0.99),
            "fingerprint": self.fingerprint,
        }


# ---------------------------------------------------------------------------
# the soak


def soak_session(schedule: str = "none", fault_seed: int = 0, *,
                 clients: int = 64, ops_per_client: int = 8,
                 num_modules: int = 8, seed: int = 0,
                 key_space: Optional[int] = None,
                 structure: str = "skiplist",
                 config: Optional[ServerConfig] = None) -> SoakReport:
    """Run one soak: ``clients`` concurrent streams under ``schedule``.

    ``schedule`` is a :data:`~repro.sim.chaos.MACHINE_SCHEDULES` name
    or ``"none"`` (fault-free baseline, where the refusal rate must be
    exactly zero).  ``structure`` picks the structure under serve from
    the chaos harness's :data:`~repro.verify.chaos.STRUCTURE_FACTORIES`
    (both expose the full batch-op surface, so the client mix is
    unchanged).  Returns a :class:`SoakReport`; ``report.ok`` is the
    SLO verdict.
    """
    if schedule != "none" and schedule not in MACHINE_SCHEDULES:
        raise ValueError(
            f"unknown fault schedule {schedule!r}; known: none, "
            f"{', '.join(sorted(MACHINE_SCHEDULES))}")
    factory = STRUCTURE_FACTORIES.get(structure)
    if factory is None:
        raise ValueError(f"unknown soak structure {structure!r}; known: "
                         f"{', '.join(sorted(STRUCTURE_FACTORIES))}")
    if clients < 1 or ops_per_client < 1:
        raise ValueError("clients and ops_per_client must be >= 1")
    key_space = key_space or max(64, 2 * clients)
    report = SoakReport(schedule=schedule, fault_seed=fault_seed, seed=seed,
                        clients=clients, ops_per_client=ops_per_client,
                        structure=structure)

    initial = [(k, k * 3) for k in range(0, key_space, 2)]
    machines: List[PIMMachine] = []

    def standby() -> Any:
        m = PIMMachine(num_modules=num_modules, seed=seed)
        machines.append(m)
        return factory(m, None)

    live = standby()
    live.build(initial)
    if schedule != "none":
        machines[0].install_fault_plan(
            build_schedule(schedule, fault_seed, num_modules))
    server = Server(live, standby,
                    config or ServerConfig(seed=seed))
    if server.manager.restored_from_disk:
        # Non-fresh state dir: the disk is the source of truth -- the
        # manager just restored snapshot + WAL tail over the built
        # structure, so the replay oracle must start from the restored
        # state, not the synthetic build.
        view = SequentialOracle(list(server.manager.checkpoint.payload))
        for op, payload in server.manager._log:
            view.apply_batch(op, payload)
        initial = sorted(view.data.items())

    records: Dict[str, List[_Record]] = {}

    async def client(cid: int) -> None:
        name = f"c{cid:04d}"
        stream = records.setdefault(name, [])
        for step in range(ops_per_client):
            op, payload, timeout = _client_op(seed, cid, step, key_space)
            before = server.tick
            outcome = await server.submit(name, op, payload,
                                          timeout_ticks=timeout)
            stream.append(_Record(op, payload, outcome,
                                  server.tick - before))

    async def drive() -> None:
        await server.start()
        try:
            await asyncio.gather(*[client(c) for c in range(clients)])
        finally:
            try:
                await server.stop()
            except Exception as exc:  # watchdog / scheduler failure
                report.violations.append(
                    f"server failed: {type(exc).__name__}: {exc}")

    try:
        asyncio.run(asyncio.wait_for(drive(), _HARNESS_TIMEOUT_S))
    except asyncio.TimeoutError:
        report.violations.append(
            f"harness timeout: soak did not finish within "
            f"{_HARNESS_TIMEOUT_S:.0f}s wall-clock")
        return report
    except Exception as exc:
        report.violations.append(
            f"client crashed: {type(exc).__name__}: {exc}")
        return report

    _tally(report, records)
    _verify_replay(report, records, server, initial)

    if schedule == "none":
        if report.total_refused:
            report.violations.append(
                f"fault-free run refused {report.total_refused} "
                f"request(s): {report.refused}")
        if report.total_degraded:
            report.violations.append(
                f"fault-free run degraded {report.total_degraded} "
                f"request(s): {report.degraded}")

    status = server.status()
    report.health_state = status["health"]["state"]  # type: ignore[index]
    report.health_transitions = len(
        status["health"]["transitions"])  # type: ignore[index]
    report.recoveries = server.manager.recoveries
    report.trips = server.policy.stats["trips"]
    report.stale_reads = server.policy.stats["stale_reads"]
    report.ticks = server.tick
    report.batches = server.batches_served
    report.journal_batches = len(server.journal)
    report.rounds = sum(m.metrics.rounds for m in machines)
    report.items_served = sum(s.metrics.items_served
                              for s in server.admission.tenants.values())

    if server.manager.healthy:
        try:
            server.manager.structure.check_integrity()
        except AssertionError as exc:
            report.violations.append(f"integrity violated after soak: {exc}")

    parts = [f"{name}:{record.op}:{record.outcome!r}"
             for name in sorted(records)
             for record in records[name]]
    parts.append(f"journal={report.journal_batches}")
    parts.append(f"rounds={report.rounds}")
    parts.append(f"recoveries={report.recoveries}")
    report.fingerprint = hashlib.sha256(
        "\n".join(parts).encode()).hexdigest()
    return report


def _tally(report: SoakReport, records: Dict[str, List[_Record]]) -> None:
    for stream in records.values():
        for record in stream:
            outcome = record.outcome
            if isinstance(outcome, Refusal):
                key = outcome.reason.value
                report.refused[key] = report.refused.get(key, 0) + 1
            elif isinstance(outcome, DegradedResult):
                key = outcome.reason.value
                report.degraded[key] = report.degraded.get(key, 0) + 1
                report.latencies.append(record.wait_ticks)
            else:
                report.answered += 1
                report.latencies.append(record.wait_ticks)


def _verify_replay(report: SoakReport, records: Dict[str, List[_Record]],
                   server: Server, initial: List[Tuple[Any, Any]]) -> None:
    """Checks 1 and 2: journal replay vs each client's program order."""
    oracle = SequentialOracle(initial)
    expect: Dict[str, List[Tuple[str, Any, str]]] = {}
    for entry in server.journal:
        answers = oracle.apply_batch(entry.op, list(entry.items))
        for _, tenant, lo, hi in entry.slices:
            expect.setdefault(tenant, []).append(
                (entry.op,
                 None if answers is None else answers[lo:hi],
                 entry.kind))

    for tenant in sorted(records):
        stream = records[tenant]
        slots = expect.get(tenant, [])
        cursor = 0
        for step, record in enumerate(stream):
            outcome = record.outcome
            if isinstance(outcome, Refusal):
                continue  # refusals are never journaled
            if isinstance(outcome, DegradedResult) \
                    and outcome.reason is not DegradedReason.STALE_READ:
                continue  # quiesced refusal: no answer, no journal entry
            if cursor >= len(slots):
                report.violations.append(
                    f"{tenant} step {step} ({record.op}): answered but "
                    f"absent from the journal")
                continue
            op, expected, kind = slots[cursor]
            cursor += 1
            if op != record.op:
                report.violations.append(
                    f"{tenant} step {step}: journal order mismatch "
                    f"(journal has {op!r}, client ran {record.op!r})")
                continue
            if isinstance(outcome, DegradedResult):
                if kind != "stale":
                    report.violations.append(
                        f"{tenant} step {step} ({record.op}): stale answer "
                        f"for a live-journaled batch")
                value = outcome.value
            else:
                if kind != "live":
                    report.violations.append(
                        f"{tenant} step {step} ({record.op}): live answer "
                        f"for a stale-journaled batch")
                value = outcome
            if value != expected:
                report.violations.append(
                    f"{tenant} step {step} ({record.op}): answer diverges "
                    f"from sequential replay: got {value!r}, "
                    f"expected {expected!r}")
        if cursor != len(slots):
            report.violations.append(
                f"{tenant}: journal holds {len(slots) - cursor} "
                f"extra batch slice(s) beyond the client's answered "
                f"stream (refused request executed?)")


# ---------------------------------------------------------------------------
# sweeps


def check_soak_determinism(schedule: str, fault_seed: int = 0, *,
                           clients: int = 32, ops_per_client: int = 6,
                           seed: int = 0, num_modules: int = 8,
                           structure: str = "skiplist",
                           ) -> Tuple[bool, str, str]:
    """Run the same soak twice; fingerprints must be bit-identical."""
    first = soak_session(schedule, fault_seed, clients=clients,
                         ops_per_client=ops_per_client, seed=seed,
                         num_modules=num_modules, structure=structure)
    second = soak_session(schedule, fault_seed, clients=clients,
                          ops_per_client=ops_per_client, seed=seed,
                          num_modules=num_modules, structure=structure)
    return (first.fingerprint == second.fingerprint,
            first.fingerprint, second.fingerprint)


def soak_matrix(schedules: List[str], fault_seeds: List[int], *,
                clients: int = 64, ops_per_client: int = 8,
                seed: int = 0, num_modules: int = 8,
                structure: str = "skiplist") -> List[SoakReport]:
    """The certification sweep: every schedule x every fault seed."""
    reports = []
    for schedule in schedules:
        for fault_seed in fault_seeds:
            reports.append(soak_session(
                schedule, fault_seed, clients=clients,
                ops_per_client=ops_per_client, seed=seed,
                num_modules=num_modules, structure=structure))
    return reports
