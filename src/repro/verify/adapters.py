"""Implementations behind the uniform ``apply_batch`` conformance surface.

The contract (authoritative docstring:
:meth:`repro.core.skiplist.PIMSkipList.apply_batch`):

- ``apply_batch("get", keys)`` -> list of values, ``None`` for missing;
- ``apply_batch("successor", keys)`` -> list of ``(key, value)`` / ``None``;
- ``apply_batch("range", [(lo, hi), ...])`` -> one inclusive, ascending
  ``[(key, value), ...]`` list per op;
- ``apply_batch("upsert", pairs)`` / ``apply_batch("delete", keys)`` ->
  ``None`` (mutations are observed through later reads and the final
  full-range state comparison).

Each adapter owns a *fresh* seeded :class:`~repro.sim.machine.PIMMachine`
(the sequential baseline owns none), so per-implementation metrics are
isolated and a replay of the same seed is bit-for-bit reproducible.

An adapter whose implementation cannot apply a mutating batch (the
fine-grained baseline is build-once) goes **stale**: it is retired from
the comparison for the rest of the session -- recorded, not a
divergence.  Read-only fuzz sessions keep those implementations live for
the whole session.
"""

from __future__ import annotations

import random
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.baselines.fine_grained import FineGrainedSkipList
from repro.baselines.hash_partition import HashPartitionedMap
from repro.baselines.local_skiplist import LocalSkipList
from repro.baselines.naive_batch import naive_batch_successor
from repro.baselines.range_partition import RangePartitionedSkipList
from repro.core.skiplist import PIMSkipList
from repro.sim.machine import PIMMachine
from repro.sim.metrics import MetricsDelta
from repro.structures.lsm import PIMLSMStore
from repro.structures.pimtree import PIMTree

MUTATING_OPS = frozenset({"upsert", "delete"})


class ImplAdapter:
    """One implementation under differential test."""

    def __init__(self, name: str, impl: Any,
                 machine: Optional[PIMMachine] = None,
                 apply_fn: Optional[Callable[[str, Sequence], Any]] = None,
                 ) -> None:
        self.name = name
        self.impl = impl
        self.machine = machine
        self.caps = frozenset(impl.BATCH_CAPS)
        self._apply = apply_fn if apply_fn is not None else impl.apply_batch
        self.stale = False
        self.stale_at: Optional[int] = None  # batch index that retired it

    def supports(self, op: str) -> bool:
        return op in self.caps

    def apply(self, op: str, payload: Sequence) -> Any:
        """Run one batch; returns the normalized comparable result."""
        return self._apply(op, payload)

    def measured_apply(self, op: str, payload: Sequence,
                       ) -> Tuple[Any, Optional[MetricsDelta]]:
        """Like :meth:`apply` but also returns the machine's metric delta
        for the batch (``None`` for machine-less implementations)."""
        if self.machine is None:
            return self.apply(op, payload), None
        before = self.machine.snapshot()
        result = self.apply(op, payload)
        return result, self.machine.delta_since(before)

    def retire(self, batch_index: int) -> None:
        self.stale = True
        if self.stale_at is None:
            self.stale_at = batch_index

    def final_state(self, lo: Any, hi: Any) -> Optional[Dict[Any, Any]]:
        """The full key/value state via one inclusive [lo, hi] range, or
        ``None`` when the implementation cannot answer ranges."""
        if "range" not in self.caps:
            return None
        return dict(self.apply("range", [(lo, hi)])[0])

    def check_integrity(self) -> None:
        """Run the implementation's own invariant checker, if it has one."""
        checker = getattr(self.impl, "check_integrity", None)
        if checker is not None:
            checker()


class _NaiveSuccessorMap:
    """The paper's own structure, answering Successor the naive way.

    Mutations and point ops go through the host :class:`PIMSkipList`, so
    the structure stays current under churn; ``successor`` batches run
    through :func:`repro.baselines.naive_batch.naive_batch_successor` --
    the PIM-imbalanced strawman becomes a genuinely distinct successor
    implementation under differential test.
    """

    BATCH_CAPS = frozenset({"get", "successor", "upsert", "delete", "range"})

    def __init__(self, sl: PIMSkipList) -> None:
        self.sl = sl

    def apply_batch(self, op: str, payload: Sequence) -> Optional[list]:
        if op == "successor":
            return naive_batch_successor(self.sl.struct, list(payload))
        return self.sl.apply_batch(op, payload)


def _adapt_skiplist(name: str, seed: int, items: Sequence[Tuple[Any, Any]],
                    num_modules: int, backend: Optional[str],
                    storage: Optional[str] = None) -> ImplAdapter:
    machine = PIMMachine(num_modules=num_modules, seed=seed, backend=backend)
    sl = PIMSkipList(machine, storage=storage)
    sl.build(items)
    return ImplAdapter(name, sl, machine)


def _adapt_naive(name: str, seed: int, items: Sequence[Tuple[Any, Any]],
                 num_modules: int, backend: Optional[str],
                 storage: Optional[str] = None) -> ImplAdapter:
    machine = PIMMachine(num_modules=num_modules, seed=seed, backend=backend)
    sl = PIMSkipList(machine, storage=storage)
    sl.build(items)
    return ImplAdapter(name, _NaiveSuccessorMap(sl), machine)


def _adapt_range_partition(name: str, seed: int,
                           items: Sequence[Tuple[Any, Any]],
                           num_modules: int,
                           backend: Optional[str],
                           storage: Optional[str] = None) -> ImplAdapter:
    machine = PIMMachine(num_modules=num_modules, seed=seed, backend=backend)
    rp = RangePartitionedSkipList(machine)
    rp.build(items)
    return ImplAdapter(name, rp, machine)


def _adapt_hash_partition(name: str, seed: int,
                          items: Sequence[Tuple[Any, Any]],
                          num_modules: int,
                          backend: Optional[str],
                          storage: Optional[str] = None) -> ImplAdapter:
    machine = PIMMachine(num_modules=num_modules, seed=seed, backend=backend)
    hp = HashPartitionedMap(machine)
    hp.build(items)
    return ImplAdapter(name, hp, machine)


def _adapt_fine_grained(name: str, seed: int,
                        items: Sequence[Tuple[Any, Any]],
                        num_modules: int,
                        backend: Optional[str],
                        storage: Optional[str] = None) -> ImplAdapter:
    machine = PIMMachine(num_modules=num_modules, seed=seed, backend=backend)
    fg = FineGrainedSkipList(machine)
    fg.build(items)
    return ImplAdapter(name, fg, machine)


def _adapt_local(name: str, seed: int, items: Sequence[Tuple[Any, Any]],
                 num_modules: int, backend: Optional[str],
                 storage: Optional[str] = None) -> ImplAdapter:
    # The sequential baseline owns no machine; ``backend`` is moot.
    ls = LocalSkipList(rng=random.Random(seed ^ 0x10CA1))
    for k, v in items:
        ls.upsert(k, v)
    return ImplAdapter(name, ls, machine=None)


def _adapt_lsm(name: str, seed: int, items: Sequence[Tuple[Any, Any]],
               num_modules: int, backend: Optional[str],
               storage: Optional[str] = None) -> ImplAdapter:
    machine = PIMMachine(num_modules=num_modules, seed=seed, backend=backend)
    # Small blocks and a low flush threshold so fuzz sessions actually
    # exercise compaction, tombstone collection and fence rebuilds.
    lsm = PIMLSMStore(machine, block_size=16, flush_threshold=48)
    if items:
        lsm.batch_upsert(list(items))
        lsm.compact()
    return ImplAdapter(name, lsm, machine)


def _adapt_pimtree(name: str, seed: int, items: Sequence[Tuple[Any, Any]],
                   num_modules: int, backend: Optional[str],
                   storage: Optional[str] = None) -> ImplAdapter:
    machine = PIMMachine(num_modules=num_modules, seed=seed, backend=backend)
    # Tiny nodes and an eager promotion threshold so fuzz-sized sessions
    # (tens of keys) still grow module-resident interior levels, take
    # both push and pull branches, and promote shadow subtrees.
    tree = PIMTree(machine, leaf_size=4, fanout=4, promote_threshold=2)
    tree.build(items)
    return ImplAdapter(name, tree, machine)


#: name -> builder(name, seed, items, num_modules, backend).  The skip
#: list, the five baselines (range/hash partition, fine-grained,
#: sequential local skip list, naive batched search on the paper's
#: structure), the LSM foil, and the skew-resistant PIM-tree.
IMPLEMENTATIONS: Dict[str, Callable[..., ImplAdapter]] = {
    "skiplist": _adapt_skiplist,
    "range_partition": _adapt_range_partition,
    "hash_partition": _adapt_hash_partition,
    "fine_grained": _adapt_fine_grained,
    "local": _adapt_local,
    "naive_batch": _adapt_naive,
    "lsm": _adapt_lsm,
    "pimtree": _adapt_pimtree,
}

DEFAULT_IMPLS: Tuple[str, ...] = tuple(IMPLEMENTATIONS)


def build_implementations(names: Sequence[str], *, seed: int,
                          items: Sequence[Tuple[Any, Any]],
                          num_modules: int,
                          backend: Optional[str] = None,
                          storage: Optional[str] = None) -> List[ImplAdapter]:
    """Construct the named implementations, each freshly built over
    ``items`` on its own machine seeded with ``seed``.

    ``backend`` picks each machine's execution backend (``"object"`` /
    ``"columnar"``); ``None`` defers to the environment override and the
    machine default, exactly like :class:`PIMMachine` itself.  ``storage``
    picks the skip-list structure storage (``"object"`` / ``"arena"``)
    the same way; implementations that are not the paper's skip list
    ignore it.
    """
    out: List[ImplAdapter] = []
    for name in names:
        builder = IMPLEMENTATIONS.get(name)
        if builder is None:
            raise ValueError(
                f"unknown implementation {name!r}; "
                f"known: {', '.join(sorted(IMPLEMENTATIONS))}")
        out.append(builder(name, seed, items, num_modules, backend,
                           storage=storage))
    return out
