"""The unified fault registry: adapter-level mutations + machine-level
fault schedules, collision-checked under one namespace.

A verifier that never fires is indistinguishable from one that cannot
see.  Faults exist at two levels and the registry names both:

- **adapter** faults wrap one implementation's ``apply`` with a small,
  realistic bug -- a dropped hit, an off-by-one successor, a silently
  lost write, a truncated range.  The test suite asserts the
  differential driver catches each, the shrinker reduces it, and a
  replayable repro file comes out the other end.  Pure functions of the
  payload (no RNG, no hidden state), so an injected failure shrinks
  deterministically.
- **storage** faults corrupt a built structure's storage in place --
  today, severing a successor index in the arena mirror while the
  authoritative object graph stays intact.  They prove the
  *cross-storage* replay can see: the same fault is a no-op on the
  other storage, so the bit-identical-stream comparison must diverge.
- **machine** faults are the named schedules of
  :data:`repro.sim.chaos.MACHINE_SCHEDULES`: seeded
  :class:`~repro.sim.chaos.FaultPlan` builders that drop / duplicate /
  delay / corrupt messages and crash / stall / wipe modules underneath
  an otherwise-correct implementation.  The chaos harness
  (:mod:`repro.verify.chaos`) asserts the reliable-delivery protocol
  and recovery layer keep results exact anyway.
- **disk** faults damage a closed durable state dir
  (:mod:`repro.recovery.durable`) in place -- a torn WAL tail, a
  bit-flipped record, a truncated snapshot, a snapshot that never got
  renamed, a duplicated record.  Each ``damage(root, fault_seed)``
  function is a pure function of the directory contents and the seed;
  the durable harness (:mod:`repro.verify.durable`) asserts reopen or
  ``repro fsck`` catches every one and the recovered state is still an
  exact oracle prefix.

The levels answer different questions -- "does the verifier see
bugs?", "does the machine survive faults?", "does restart recover?" --
so a name must say which it is.  Registration collision-checks the
shared namespace; the CLI (``python -m repro verify fuzz --faults
list``) enumerates it.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Any, Callable, Dict, Optional, Sequence

from repro.sim.chaos import MACHINE_SCHEDULES, FaultPlan
from repro.verify.adapters import ImplAdapter

FaultFn = Callable[[Callable[[str, Sequence], Any], str, Sequence], Any]


# ----------------------------------------------------------------------
# adapter-level mutation faults
# ----------------------------------------------------------------------

def _drop_get(inner: Callable, op: str, payload: Sequence) -> Any:
    """Every third Get answers ``None`` even on a hit."""
    result = inner(op, payload)
    if op == "get":
        return [None if i % 3 == 2 else v for i, v in enumerate(result)]
    return result


def _offset_successor(inner: Callable, op: str, payload: Sequence) -> Any:
    """Successor answers have their key shifted by one -- the classic
    strict-vs-non-strict boundary bug."""
    result = inner(op, payload)
    if op == "successor":
        return [None if r is None else (r[0] + 1, r[1]) for r in result]
    return result


def _lose_upsert(inner: Callable, op: str, payload: Sequence) -> Any:
    """The last pair of every upsert batch is silently dropped -- only
    later reads or the final-state comparison can notice."""
    if op == "upsert" and len(payload) > 0:
        return inner(op, list(payload)[:-1])
    return inner(op, payload)


def _truncate_range(inner: Callable, op: str, payload: Sequence) -> Any:
    """Range results lose their last element -- an exclusive-bound bug."""
    result = inner(op, payload)
    if op == "range":
        return [rows[:-1] if rows else rows for rows in result]
    return result


def _resurrect_delete(inner: Callable, op: str, payload: Sequence) -> Any:
    """The first key of every delete batch survives."""
    if op == "delete" and len(payload) > 1:
        return inner(op, list(payload)[1:])
    return inner(op, payload)


#: name -> adapter fault wrapper (the registry's adapter-level entries;
#: kept as a plain dict for back-compat with existing tests).
FAULTS: Dict[str, FaultFn] = {
    "drop_get": _drop_get,
    "offset_successor": _offset_successor,
    "lose_upsert": _lose_upsert,
    "truncate_range": _truncate_range,
    "resurrect_delete": _resurrect_delete,
}


# ----------------------------------------------------------------------
# storage-level mutation faults
# ----------------------------------------------------------------------

def _arena_succ_corrupt(adapter: ImplAdapter) -> None:
    """Sever the successor indices of one module's live lower-part
    level-0 rows in the arena mirror (``right`` -> -1), leaving the
    authoritative object graph intact -- one module's mirror segment
    going stale, the classic drift bug only the cross-storage replay
    can attribute.  The module is the one owning the median-key row, so
    the severed range sits mid-keyspace where the vectorized wavefront
    actually walks.  A deliberate no-op on object storage (there is no
    arena to corrupt), which is exactly what makes the cross-storage
    differ's stream comparison light up."""
    from repro.core.node import UPPER

    impl = adapter.impl
    sl = getattr(impl, "sl", impl)  # unwrap _NaiveSuccessorMap
    struct = getattr(sl, "struct", None)
    arena = getattr(getattr(struct, "storage", None), "arena", None)
    if arena is None:
        return
    rows = [aid for aid in range(arena.size)
            if (arena.live[aid] and int(arena.level[aid]) == 0
                and int(arena.owner[aid]) != UPPER
                and int(arena.right[aid]) >= 0)]
    if not rows:
        return
    rows.sort(key=lambda aid: int(arena.key_i64[aid])
              if arena.key_ok[aid] else 0)
    victim = int(arena.owner[rows[len(rows) // 2]])
    for aid in rows:
        if int(arena.owner[aid]) == victim:
            arena.right[aid] = -1


def _pimtree_shadow_stale(adapter: ImplAdapter) -> None:
    """Disable the PIM-tree's shadow-subtree invalidation: promoted
    nodes keep serving their broadcast replicas after leaf splits
    change the authoritative copy, so hot reads route to leaves that no
    longer hold the moved keys -- the classic cache-invalidation bug a
    replicated index can grow.  Latent until a batch stream promotes a
    shadow *and* splits a leaf under it; the differ's read comparison,
    final-state check and the tree's shadow-vs-mirror integrity sweep
    must all be able to see it.  A deliberate no-op on every other
    implementation."""
    from repro.structures.pimtree import PIMTree

    if isinstance(adapter.impl, PIMTree):
        adapter.impl._shadow_invalidation = False


#: name -> storage corruptor (mutates the built structure's storage
#: in place at injection time; deterministic given the same build).
STORAGE_FAULTS: Dict[str, Callable[[ImplAdapter], None]] = {
    "arena_succ_corrupt": _arena_succ_corrupt,
    "pimtree_shadow_stale": _pimtree_shadow_stale,
}


# ----------------------------------------------------------------------
# disk-level faults (durable state-dir damage)
# ----------------------------------------------------------------------

def _newest_populated_segment(root: str):
    """The last WAL segment holding at least one record, scanned."""
    from repro.recovery.durable import list_segments, scan_segment

    for first_lsn, path in reversed(list_segments(root)):
        scan = scan_segment(path, expect_lsn=first_lsn)
        if scan.records:
            return path, scan
    raise ValueError(f"no WAL records to damage under {root}")


def _record_offsets(scan) -> list:
    """Byte offset of each record in a clean scanned segment (canonical
    encoding is deterministic, so re-encoding reproduces the layout)."""
    from repro.recovery.durable.wal import encode_record

    offsets, off = [], 0
    for record in scan.records:
        offsets.append(off)
        off += len(encode_record(record))
    return offsets


def _damage_wal_torn_tail(root: str, fault_seed: int) -> str:
    """Cut a seeded number of bytes off the WAL's final record -- the
    canonical crash artifact.  Reopen must classify it as a torn tail,
    truncate, and come back with exactly the previous record's state."""
    from repro.recovery.durable.wal import encode_record
    from repro.sim.chaos import _mix

    path, scan = _newest_populated_segment(root)
    rec_len = len(encode_record(scan.records[-1]))
    cut = 1 + _mix(fault_seed, 0xD15C, 1) % (rec_len - 1)
    with open(path, "r+b") as f:
        f.truncate(scan.good_size - cut)
    return (f"tore {cut} byte(s) off record lsn={scan.records[-1].lsn} "
            f"in {path}")


def _damage_wal_bitflip(root: str, fault_seed: int) -> str:
    """Flip one seeded bit in a non-final WAL record (bit rot).  With a
    valid record after it this is mid-log corruption: reopen must
    refuse (never silently skip acked writes) and ``fsck --repair`` is
    the explicit path out.  Falls back to the only record when the
    segment holds just one (then it is tail damage: prefix state)."""
    from repro.sim.chaos import _mix

    path, scan = _newest_populated_segment(root)
    offsets = _record_offsets(scan)
    pool = offsets[:-1] or offsets
    target = pool[_mix(fault_seed, 0xD15C, 2) % len(pool)]
    end = offsets[offsets.index(target) + 1] if target != offsets[-1] \
        else scan.good_size
    byte = target + _mix(fault_seed, 0xD15C, 3) % (end - target)
    bit = _mix(fault_seed, 0xD15C, 4) % 8
    with open(path, "r+b") as f:
        f.seek(byte)
        old = f.read(1)[0]
        f.seek(byte)
        f.write(bytes([old ^ (1 << bit)]))
    return f"flipped bit {bit} of byte {byte} in {path}"


def _damage_snapshot_truncated(root: str, fault_seed: int) -> str:
    """Truncate the newest snapshot to a seeded fraction.  Reopen must
    fail its checksum and fall back to the previous snapshot + a longer
    WAL replay (retention keeps the segments); with no older snapshot
    it must raise a typed DurabilityError, never serve partial state."""
    from repro.recovery.durable import list_snapshots
    from repro.sim.chaos import _mix

    snaps = list_snapshots(root)
    if not snaps:
        raise ValueError(f"no snapshot to damage under {root}")
    path = snaps[-1].path
    size = os.path.getsize(path)
    keep = _mix(fault_seed, 0xD15C, 5) % max(1, size - 1)
    with open(path, "r+b") as f:
        f.truncate(keep)
    return f"truncated {path} from {size} to {keep} byte(s)"


def _damage_crash_before_rename(root: str, fault_seed: int) -> str:
    """Un-publish the newest snapshot: move it back to its ``.tmp``
    name, as if the host died between the tmp write and the atomic
    rename.  Reopen must ignore the orphan and use the previous
    snapshot; fsck must sweep the tmp."""
    from repro.recovery.durable import list_snapshots

    snaps = list_snapshots(root)
    if not snaps:
        raise ValueError(f"no snapshot to damage under {root}")
    path = snaps[-1].path
    os.rename(path, path + ".tmp")
    return f"reverted {path} to its pre-rename .tmp name"


def _damage_wal_dup_record(root: str, fault_seed: int) -> str:
    """Duplicate one seeded WAL record in place (a crashed append
    retried after its original did land).  Replay must skip the
    duplicate idempotently: final state identical to the undamaged
    log's."""
    from repro.recovery.durable.wal import encode_record
    from repro.sim.chaos import _mix

    path, scan = _newest_populated_segment(root)
    index = _mix(fault_seed, 0xD15C, 6) % len(scan.records)
    blobs = [encode_record(r) for r in scan.records]
    blobs.insert(index + 1, blobs[index])
    with open(path, "r+b") as f:
        tail = f.read()[scan.good_size:]
        f.seek(0)
        f.write(b"".join(blobs) + tail)
    return (f"duplicated record lsn={scan.records[index].lsn} in {path}")


#: name -> disk damage function ``(state_dir, fault_seed) -> detail``.
#: Applied to a *closed* durable state dir; deterministic given the
#: same directory contents and seed.
DISK_FAULTS: Dict[str, Callable[[str, int], str]] = {
    "wal_torn_tail": _damage_wal_torn_tail,
    "wal_bitflip": _damage_wal_bitflip,
    "snapshot_truncated": _damage_snapshot_truncated,
    "crash_before_rename": _damage_crash_before_rename,
    "wal_dup_record": _damage_wal_dup_record,
}


def inject_fault(adapter: ImplAdapter, fault_name: str) -> ImplAdapter:
    """Apply the named fault to ``adapter``; returns the adapter.

    Adapter faults wrap ``adapter.apply``; storage faults corrupt the
    built structure's storage in place, once, at injection time."""
    corrupt = STORAGE_FAULTS.get(fault_name)
    if corrupt is not None:
        corrupt(adapter)
        return adapter
    fault = FAULTS.get(fault_name)
    if fault is None:
        raise ValueError(
            f"unknown fault {fault_name!r}; known: "
            f"{', '.join(sorted([*FAULTS, *STORAGE_FAULTS]))}")
    inner = adapter._apply

    def faulty(op: str, payload: Sequence) -> Any:
        return fault(inner, op, payload)

    adapter._apply = faulty
    return adapter


# ----------------------------------------------------------------------
# the unified registry
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class FaultDef:
    """One registered fault: its level decides how it is applied.

    ``wrap`` is set for adapter faults (use :func:`inject_fault` or call
    it around an adapter's apply); ``build`` for machine faults (maps
    ``(fault_seed, num_modules)`` to a
    :class:`~repro.sim.chaos.FaultPlan` for
    ``PIMMachine.install_fault_plan``); ``damage`` for disk faults
    (maps ``(state_dir, fault_seed)`` to a description of the damage
    done in place).
    """

    name: str
    level: str  # "adapter" | "storage" | "machine" | "disk"
    description: str
    wrap: Optional[FaultFn] = None
    build: Optional[Callable[[int, int], FaultPlan]] = None
    corrupt: Optional[Callable[[ImplAdapter], None]] = None
    damage: Optional[Callable[[str, int], str]] = None


_MACHINE_DESCRIPTIONS: Dict[str, str] = {
    "drop": "drop 15% of protocol envelopes (retry/backoff path)",
    "dup_delay": "duplicate 10% + delay 15% of envelopes by 3 rounds",
    "corrupt": "corrupt 12% of envelopes (checksum-discard, retry)",
    "stall": "stall two seeded modules for a few rounds each",
    "crash_restart": "fail-stop one module, restart with state intact",
    "crash_wipe": "fail-stop one module and wipe its DRAM on restart",
    "mixed": "low-rate drop+dup+delay+corrupt plus one stall",
    "intermittent": "one module flaps (crash/restart cycles) + 4% drop",
}

REGISTRY: Dict[str, FaultDef] = {}


def _register(defn: FaultDef) -> None:
    clash = REGISTRY.get(defn.name)
    if clash is not None:
        raise ValueError(
            f"fault name {defn.name!r} registered twice "
            f"({clash.level} vs {defn.level}); adapter faults and "
            f"machine schedules share one namespace")
    REGISTRY[defn.name] = defn


for _name, _fn in FAULTS.items():
    _register(FaultDef(
        name=_name, level="adapter",
        description=" ".join((_fn.__doc__ or "").split()).partition(".")[0],
        wrap=_fn))
for _name, _cfn in STORAGE_FAULTS.items():
    _register(FaultDef(
        name=_name, level="storage",
        description=" ".join((_cfn.__doc__ or "").split()).partition(".")[0],
        corrupt=_cfn))
for _name, _builder in MACHINE_SCHEDULES.items():
    _register(FaultDef(name=_name, level="machine",
                       description=_MACHINE_DESCRIPTIONS.get(_name, ""),
                       build=_builder))
for _name, _dfn in DISK_FAULTS.items():
    _register(FaultDef(
        name=_name, level="disk",
        description=" ".join((_dfn.__doc__ or "").split()).partition(".")[0],
        damage=_dfn))
del _name, _fn, _cfn, _builder, _dfn


def get_fault(name: str) -> FaultDef:
    """Look up a registered fault by name (either level)."""
    defn = REGISTRY.get(name)
    if defn is None:
        raise ValueError(f"unknown fault {name!r}; known: "
                         f"{', '.join(sorted(REGISTRY))}")
    return defn


def fault_names(level: Optional[str] = None) -> list:
    """Sorted registered names, optionally restricted to one level."""
    return sorted(n for n, d in REGISTRY.items()
                  if level is None or d.level == level)


def describe_faults() -> str:
    """The registry as an aligned table (the CLI's ``--faults list``)."""
    rows = [(d.name, d.level, d.description)
            for _, d in sorted(REGISTRY.items())]
    width = max(len(r[0]) for r in rows)
    return "\n".join(f"{name:<{width}}  {level:<7}  {desc}"
                     for name, level, desc in rows)
