"""Deterministic fault injection: mutation testing for the verifier.

A verifier that never fires is indistinguishable from one that cannot
see.  Each fault here wraps one adapter's ``apply`` with a small,
realistic bug -- a dropped hit, an off-by-one successor, a silently
lost write, a truncated range -- and the test suite asserts the
differential driver catches it, the shrinker reduces it, and a
replayable repro file comes out the other end.

Faults are pure functions of the payload (no RNG, no hidden state), so
an injected failure shrinks deterministically.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Sequence

from repro.verify.adapters import ImplAdapter

FaultFn = Callable[[Callable[[str, Sequence], Any], str, Sequence], Any]


def _drop_get(inner: Callable, op: str, payload: Sequence) -> Any:
    """Every third Get answers ``None`` even on a hit."""
    result = inner(op, payload)
    if op == "get":
        return [None if i % 3 == 2 else v for i, v in enumerate(result)]
    return result


def _offset_successor(inner: Callable, op: str, payload: Sequence) -> Any:
    """Successor answers have their key shifted by one -- the classic
    strict-vs-non-strict boundary bug."""
    result = inner(op, payload)
    if op == "successor":
        return [None if r is None else (r[0] + 1, r[1]) for r in result]
    return result


def _lose_upsert(inner: Callable, op: str, payload: Sequence) -> Any:
    """The last pair of every upsert batch is silently dropped -- only
    later reads or the final-state comparison can notice."""
    if op == "upsert" and len(payload) > 0:
        return inner(op, list(payload)[:-1])
    return inner(op, payload)


def _truncate_range(inner: Callable, op: str, payload: Sequence) -> Any:
    """Range results lose their last element -- an exclusive-bound bug."""
    result = inner(op, payload)
    if op == "range":
        return [rows[:-1] if rows else rows for rows in result]
    return result


def _resurrect_delete(inner: Callable, op: str, payload: Sequence) -> Any:
    """The first key of every delete batch survives."""
    if op == "delete" and len(payload) > 1:
        return inner(op, list(payload)[1:])
    return inner(op, payload)


#: name -> fault wrapper.
FAULTS: Dict[str, FaultFn] = {
    "drop_get": _drop_get,
    "offset_successor": _offset_successor,
    "lose_upsert": _lose_upsert,
    "truncate_range": _truncate_range,
    "resurrect_delete": _resurrect_delete,
}


def inject_fault(adapter: ImplAdapter, fault_name: str) -> ImplAdapter:
    """Wrap ``adapter.apply`` with the named fault; returns the adapter."""
    fault = FAULTS.get(fault_name)
    if fault is None:
        raise ValueError(f"unknown fault {fault_name!r}; "
                         f"known: {', '.join(sorted(FAULTS))}")
    inner = adapter._apply

    def faulty(op: str, payload: Sequence) -> Any:
        return fault(inner, op, payload)

    adapter._apply = faulty
    return adapter
