"""``python -m repro verify fuzz|replay|shrink``.

- ``fuzz`` -- generate N seeded sessions, differentially replay each
  against every implementation (plus the FIFO/priority-queue container
  checks), and on divergence shrink the session and write a replayable
  repro file.  Exit code 1 if anything diverged.
- ``replay`` -- re-run one repro JSON file (or every file in a
  directory) and report whether it still diverges.
- ``shrink`` -- minimize an existing repro file in place.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional

from repro.verify.differ import verify_containers, verify_session
from repro.verify.fuzz import fuzz_session
from repro.verify.shrink import (
    load_repro,
    session_from_dict,
    shrink_session,
    write_repro,
)

DEFAULT_REPRO_DIR = os.path.join("tests", "golden", "repros")


def _add_common(p: argparse.ArgumentParser) -> None:
    p.add_argument("--modules", type=int, default=8,
                   help="PIM modules per machine (default 8)")
    p.add_argument("--impls", default=None,
                   help="comma-separated implementation names "
                        "(default: all)")
    p.add_argument("--no-metamorphic", action="store_true",
                   help="skip split-monotonicity / round-envelope checks")
    p.add_argument("--no-determinism", action="store_true",
                   help="skip the bit-identical rerun check")


def _impl_list(args: argparse.Namespace) -> Optional[List[str]]:
    if args.impls is None:
        return None
    return [s.strip() for s in args.impls.split(",") if s.strip()]


def _verify_kwargs(args: argparse.Namespace) -> dict:
    return {
        "impls": _impl_list(args),
        "num_modules": args.modules,
        "check_metamorphic": not args.no_metamorphic,
        "check_determinism": not args.no_determinism,
    }


def cmd_fuzz(args: argparse.Namespace) -> int:
    fault = None
    if args.inject_fault:
        impl, _, name = args.inject_fault.partition(":")
        if not name:
            print("--inject-fault wants IMPL:FAULT "
                  "(e.g. skiplist:drop_get)", file=sys.stderr)
            return 2
        fault = (impl, name)
    failures = 0
    for i in range(args.sessions):
        seed = args.seed + i
        session = fuzz_session(seed, num_batches=args.batches,
                               batch_size=args.batch_size,
                               read_only=args.read_only)
        report = verify_session(session, fault=fault,
                                **_verify_kwargs(args))
        container_divs = verify_containers(seed, num_modules=args.modules)
        print(report.summary()
              + (f" + {len(container_divs)} container divergence(s)"
                 if container_divs else ""))
        for d in container_divs:
            print(f"  {d}")
        if report.ok and not container_divs:
            continue
        failures += 1
        for d in report.divergences:
            print(f"  {d}")
        if report.divergences and not args.no_shrink:
            path = _shrink_and_write(session, args, fault)
            print(f"  shrunk repro written: {path}")
    if failures:
        print(f"\n{failures}/{args.sessions} session(s) diverged")
        return 1
    print(f"\nall {args.sessions} session(s) verified clean "
          f"({args.batches} batches x {args.batch_size} each, "
          f"P={args.modules})")
    return 0


def _shrink_and_write(session, args: argparse.Namespace, fault) -> str:
    kwargs = _verify_kwargs(args)

    def is_failing(candidate) -> bool:
        return not verify_session(candidate, fault=fault, **kwargs).ok

    small = shrink_session(session, is_failing, max_evals=args.max_evals)
    report = verify_session(small, fault=fault, **kwargs)
    os.makedirs(args.repro_dir, exist_ok=True)
    path = os.path.join(args.repro_dir, f"seed{session.seed}.json")
    impls = kwargs["impls"]
    return write_repro(
        small, path, divergences=report.divergences,
        impls=list(impls) if impls else None,
        num_modules=args.modules,
        note=(f"shrunk from a {len(session.batches)}-batch fuzz session"
              + (f" with injected fault {fault[0]}:{fault[1]}" if fault
                 else "")))


def _replay_one(path: str, args: argparse.Namespace) -> bool:
    """Replay one repro file; returns True when it (still) diverges."""
    data = load_repro(path)
    session = session_from_dict(data)
    kwargs = _verify_kwargs(args)
    if args.impls is None and data.get("impls"):
        kwargs["impls"] = data["impls"]
    if data.get("num_modules") and args.modules == 8:
        kwargs["num_modules"] = data["num_modules"]
    report = verify_session(session, **kwargs)
    tag = "DIVERGES" if not report.ok else "clean"
    print(f"{path}: {len(session.batches)} batch(es) -> {tag}")
    for d in report.divergences:
        print(f"  {d}")
    return not report.ok


def cmd_replay(args: argparse.Namespace) -> int:
    explicit = bool(args.paths)
    paths: List[str] = []
    for target in args.paths or [DEFAULT_REPRO_DIR]:
        if os.path.isdir(target):
            paths += sorted(os.path.join(target, f)
                            for f in os.listdir(target)
                            if f.endswith(".json"))
        elif os.path.isfile(target):
            paths.append(target)
        elif explicit:
            print(f"no such repro file or directory: {target}",
                  file=sys.stderr)
            return 2
    if not paths:
        print("no repro files found", file=sys.stderr)
        return 2
    diverged = sum(_replay_one(p, args) for p in paths)
    if diverged and not args.expect_divergence:
        return 1
    if args.expect_divergence and diverged != len(paths):
        print(f"expected every repro to diverge; "
              f"{len(paths) - diverged} replayed clean", file=sys.stderr)
        return 1
    return 0


def cmd_shrink(args: argparse.Namespace) -> int:
    data = load_repro(args.path)
    session = session_from_dict(data)
    kwargs = _verify_kwargs(args)
    if args.impls is None and data.get("impls"):
        kwargs["impls"] = data["impls"]

    def is_failing(candidate) -> bool:
        return not verify_session(candidate, **kwargs).ok

    if not is_failing(session):
        print(f"{args.path}: replays clean -- nothing to shrink")
        return 0
    before = len(session.batches)
    small = shrink_session(session, is_failing, max_evals=args.max_evals)
    report = verify_session(small, **kwargs)
    out = args.out or args.path
    write_repro(small, out, divergences=report.divergences,
                impls=kwargs["impls"],
                num_modules=kwargs["num_modules"],
                note=f"re-shrunk from {before} batch(es)")
    print(f"{args.path}: {before} -> {len(small.batches)} batch(es), "
          f"written to {out}")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro verify",
        description="differential verification: fuzz, replay, shrink")
    sub = parser.add_subparsers(dest="command", required=True)

    fz = sub.add_parser("fuzz", help="fuzz N sessions differentially")
    fz.add_argument("--seed", type=int, default=0,
                    help="first session seed (sessions use seed..seed+N-1)")
    fz.add_argument("--sessions", type=int, default=25,
                    help="number of sessions (default 25)")
    fz.add_argument("--batches", type=int, default=12,
                    help="batches per session (default 12)")
    fz.add_argument("--batch-size", type=int, default=24,
                    help="ops per batch (default 24)")
    fz.add_argument("--read-only", action="store_true",
                    help="no mutating batches (keeps build-once "
                         "implementations live)")
    fz.add_argument("--inject-fault", default=None, metavar="IMPL:FAULT",
                    help="mutation-test the verifier (e.g. "
                         "skiplist:drop_get)")
    fz.add_argument("--no-shrink", action="store_true",
                    help="report divergences without shrinking")
    fz.add_argument("--repro-dir", default=DEFAULT_REPRO_DIR,
                    help=f"where shrunk repros land "
                         f"(default {DEFAULT_REPRO_DIR})")
    fz.add_argument("--max-evals", type=int, default=400,
                    help="shrinker evaluation budget (default 400)")
    _add_common(fz)
    fz.set_defaults(fn=cmd_fuzz)

    rp = sub.add_parser("replay", help="replay repro file(s)")
    rp.add_argument("paths", nargs="*",
                    help=f"repro files or directories "
                         f"(default {DEFAULT_REPRO_DIR})")
    rp.add_argument("--expect-divergence", action="store_true",
                    help="exit 0 only if every repro still diverges")
    _add_common(rp)
    rp.set_defaults(fn=cmd_replay)

    sh = sub.add_parser("shrink", help="minimize an existing repro file")
    sh.add_argument("path", help="repro JSON file")
    sh.add_argument("--out", default=None,
                    help="write here instead of in place")
    sh.add_argument("--max-evals", type=int, default=400,
                    help="shrinker evaluation budget (default 400)")
    _add_common(sh)
    sh.set_defaults(fn=cmd_shrink)

    args = parser.parse_args(argv)
    return int(args.fn(args))


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
