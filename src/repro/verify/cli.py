"""``python -m repro verify fuzz|replay|shrink|chaos|faults``.

- ``fuzz`` -- generate N seeded sessions, differentially replay each
  against every implementation (plus the FIFO/priority-queue container
  checks), and on divergence shrink the session and write a replayable
  repro file.  Exit code 1 if anything diverged.  ``--faults`` layers
  registered faults on top (``--faults list`` enumerates the registry).
- ``replay`` -- re-run one repro JSON file (or every file in a
  directory) and report whether it still diverges.  Repros carrying a
  ``fault_schedule`` replay through the chaos harness.
- ``shrink`` -- minimize an existing repro file in place.
- ``chaos`` -- sweep fuzz sessions across machine-level fault
  schedules: result equivalence under faults, round-overhead
  envelopes, bit-identical reruns, and container checks on a faulty
  machine.
- ``soak`` -- chaos-soak the serving layer (:mod:`repro.serve`):
  concurrent synthetic clients vs the sequential oracle under machine
  fault schedules; every answer must match a sequential replay of the
  server's journal or be a typed refusal, and fault-free runs must
  refuse nothing.
- ``durable`` -- certify crash-consistent persistence
  (:mod:`repro.recovery.durable`): kill the store at every acked
  record boundary and demand the restart equals the oracle's acked
  prefix, then inject every registered disk fault into a completed
  state dir and demand fsck or recovery catches it.
- ``faults`` -- print the unified fault registry.

``fuzz``, ``chaos``, ``soak`` and ``durable`` exit non-zero on any
failure and, when a repro was written, print its path on the **last
line** of output so scripts can ``tail -1`` straight into ``replay``.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import List, Optional, Tuple

from repro.verify.chaos import (
    MESSAGE_SCHEDULES,
    STRUCTURE_FACTORIES,
    chaos_containers,
    chaos_session,
    check_chaos_determinism,
)
from repro.verify.differ import verify_containers, verify_session
from repro.verify.faults import describe_faults, get_fault
from repro.verify.fuzz import fuzz_session
from repro.verify.shrink import (
    load_repro,
    session_from_dict,
    shrink_session,
    write_repro,
)
from repro.sim.chaos import MACHINE_SCHEDULES

DEFAULT_REPRO_DIR = os.path.join("tests", "golden", "repros")


def _add_common(p: argparse.ArgumentParser) -> None:
    p.add_argument("--modules", type=int, default=8,
                   help="PIM modules per machine (default 8)")
    p.add_argument("--impls", default=None,
                   help="comma-separated implementation names "
                        "(default: all)")
    p.add_argument("--no-metamorphic", action="store_true",
                   help="skip split-monotonicity / round-envelope checks")
    p.add_argument("--no-determinism", action="store_true",
                   help="skip the bit-identical rerun check")
    p.add_argument("--no-backends", action="store_true",
                   help="skip the cross-backend (object vs columnar) "
                        "equivalence replay")
    p.add_argument("--backend", choices=["object", "columnar"], default=None,
                   help="execution backend for the primary replay "
                        "(default: machine default / REPRO_SIM_BACKEND; "
                        "the equivalence replay always uses the other one)")
    p.add_argument("--no-storages", action="store_true",
                   help="skip the cross-storage (object nodes vs arena) "
                        "equivalence replay")
    p.add_argument("--storage", choices=["object", "arena"], default=None,
                   help="structure storage for the primary replay "
                        "(default: structure default / "
                        "REPRO_STRUCT_STORAGE; the equivalence replay "
                        "always uses the other one)")


def _impl_list(args: argparse.Namespace) -> Optional[List[str]]:
    if args.impls is None:
        return None
    return [s.strip() for s in args.impls.split(",") if s.strip()]


def _verify_kwargs(args: argparse.Namespace) -> dict:
    return {
        "impls": _impl_list(args),
        "num_modules": args.modules,
        "check_metamorphic": not args.no_metamorphic,
        "check_determinism": not args.no_determinism,
        "check_backends": not args.no_backends,
        "check_storages": not args.no_storages,
        "backend": args.backend,
        "storage": args.storage,
    }


def _parse_faults(spec: str) -> Tuple[Optional[tuple], List[str]]:
    """Split a ``--faults`` list into (adapter/storage (impl, name),
    machine schedule names).  Adapter and storage names accept an
    ``IMPL:`` prefix and default to the skip list."""
    adapter = None
    schedules: List[str] = []
    for raw in spec.split(","):
        token = raw.strip()
        if not token:
            continue
        impl, _, rest = token.partition(":")
        name = rest if rest else token
        defn = get_fault(name)  # raises on unknown names
        if defn.level == "machine":
            if rest:
                raise ValueError(
                    f"machine fault {name!r} takes no IMPL: prefix")
            schedules.append(name)
        else:
            if adapter is not None:
                raise ValueError("at most one adapter fault per run")
            adapter = (impl if rest else "skiplist", name)
    return adapter, schedules


def cmd_fuzz(args: argparse.Namespace) -> int:
    fault = None
    chaos_schedules: List[str] = []
    if args.faults:
        if args.faults.strip() == "list":
            print(describe_faults())
            return 0
        try:
            fault, chaos_schedules = _parse_faults(args.faults)
        except ValueError as exc:
            print(str(exc), file=sys.stderr)
            return 2
    if args.inject_fault:
        impl, _, name = args.inject_fault.partition(":")
        if not name:
            print("--inject-fault wants IMPL:FAULT "
                  "(e.g. skiplist:drop_get)", file=sys.stderr)
            return 2
        if fault is not None:
            print("--inject-fault conflicts with an adapter fault in "
                  "--faults", file=sys.stderr)
            return 2
        fault = (impl, name)
    failures = 0
    repro_paths: List[str] = []
    for i in range(args.sessions):
        seed = args.seed + i
        session = fuzz_session(seed, num_batches=args.batches,
                               batch_size=args.batch_size,
                               read_only=args.read_only)
        report = verify_session(session, fault=fault,
                                **_verify_kwargs(args))
        container_divs = verify_containers(seed, num_modules=args.modules)
        chaos_divs = []
        for schedule in chaos_schedules:
            cr = chaos_session(seed, schedule, args.fault_seed,
                               num_modules=args.modules, session=session,
                               storage=args.storage)
            chaos_divs += cr.divergences
        print(report.summary()
              + (f" + {len(container_divs)} container divergence(s)"
                 if container_divs else "")
              + (f" + {len(chaos_divs)} chaos divergence(s)"
                 if chaos_divs else ""))
        for d in container_divs + chaos_divs:
            print(f"  {d}")
        if report.ok and not container_divs and not chaos_divs:
            continue
        failures += 1
        for d in report.divergences:
            print(f"  {d}")
        if report.divergences and not args.no_shrink:
            path = _shrink_and_write(session, args, fault)
            repro_paths.append(path)
            print(f"  shrunk repro written: {path}")
    if failures:
        print(f"\n{failures}/{args.sessions} session(s) diverged")
        if repro_paths:
            # Contract: on divergence the repro path is the LAST line,
            # so scripts (and humans) can tail -1 straight into replay.
            print(repro_paths[-1])
        return 1
    print(f"\nall {args.sessions} session(s) verified clean "
          f"({args.batches} batches x {args.batch_size} each, "
          f"P={args.modules}"
          + (f", chaos: {','.join(chaos_schedules)}" if chaos_schedules
             else "") + ")")
    return 0


def _shrink_and_write(session, args: argparse.Namespace, fault) -> str:
    kwargs = _verify_kwargs(args)

    def is_failing(candidate) -> bool:
        return not verify_session(candidate, fault=fault, **kwargs).ok

    small = shrink_session(session, is_failing, max_evals=args.max_evals)
    report = verify_session(small, fault=fault, **kwargs)
    os.makedirs(args.repro_dir, exist_ok=True)
    path = os.path.join(args.repro_dir, f"seed{session.seed}.json")
    impls = kwargs["impls"]
    return write_repro(
        small, path, divergences=report.divergences,
        impls=list(impls) if impls else None,
        num_modules=args.modules,
        note=(f"shrunk from a {len(session.batches)}-batch fuzz session"
              + (f" with injected fault {fault[0]}:{fault[1]}" if fault
                 else "")))


def _replay_soak(path: str, data: dict) -> bool:
    """Re-run a soak repro; returns True when it (still) fails."""
    from repro.verify.soak import check_soak_determinism, soak_session

    kwargs = dict(clients=int(data["clients"]),
                  ops_per_client=int(data["ops_per_client"]),
                  seed=int(data["seed"]),
                  num_modules=int(data["num_modules"]),
                  structure=data.get("structure", "skiplist"))
    schedule = data["schedule"]
    fault_seed = int(data["fault_seed"])
    if data.get("check") == "determinism":
        same, first, second = check_soak_determinism(
            schedule, fault_seed, **kwargs)
        tag = "clean" if same else "STILL NOT DETERMINISTIC"
        print(f"{path}: soak determinism {schedule!r} -> {tag}")
        if not same:
            print(f"  {first[:16]}... != {second[:16]}...")
        return not same
    report = soak_session(schedule, fault_seed, **kwargs)
    tag = "STILL VIOLATES" if not report.ok else "clean"
    print(f"{path}: {report.summary()} -> {tag}")
    for v in report.violations:
        print(f"  {v}")
    return not report.ok


def _replay_durable(path: str, data: dict) -> bool:
    """Re-run a durable-sweep repro; returns True when it still fails."""
    from repro.verify.durable import fault_sweep, kill_sweep

    kwargs = dict(fault_seed=int(data["fault_seed"]),
                  num_batches=int(data["num_batches"]),
                  batch_size=int(data["batch_size"]),
                  num_modules=int(data["num_modules"]),
                  checkpoint_every=int(data["checkpoint_every"]))
    if data["mode"] == "fault":
        report = fault_sweep(int(data["session_seed"]),
                             faults=data.get("faults"), **kwargs)
    else:
        report = kill_sweep(int(data["session_seed"]), **kwargs)
    tag = "STILL VIOLATES" if not report.ok else "clean"
    print(f"{path}: {report.summary()} -> {tag}")
    for v in report.violations:
        print(f"  {v}")
    return not report.ok


def _replay_one(path: str, args: argparse.Namespace) -> bool:
    """Replay one repro file; returns True when it (still) diverges."""
    data = load_repro(path)
    kind = data.get("kind")
    if kind == "soak":
        return _replay_soak(path, data)
    if kind == "durable":
        return _replay_durable(path, data)
    session = session_from_dict(data)
    num_modules = args.modules
    if data.get("num_modules") and args.modules == 8:
        num_modules = data["num_modules"]
    schedule = data.get("fault_schedule")
    if schedule is not None:
        # Chaos repro: replay under the recorded machine fault schedule.
        report = chaos_session(session.seed, schedule,
                               int(data.get("fault_seed", 0)),
                               num_modules=num_modules, session=session,
                               storage=args.storage)
        tag = "DIVERGES" if not report.ok else "clean"
        print(f"{path}: {len(session.batches)} batch(es) under "
              f"{schedule!r} (fault_seed={report.fault_seed}) -> {tag}")
        for d in report.divergences:
            print(f"  {d}")
        return not report.ok
    kwargs = _verify_kwargs(args)
    if args.impls is None and data.get("impls"):
        kwargs["impls"] = data["impls"]
    kwargs["num_modules"] = num_modules
    report = verify_session(session, **kwargs)
    tag = "DIVERGES" if not report.ok else "clean"
    print(f"{path}: {len(session.batches)} batch(es) -> {tag}")
    for d in report.divergences:
        print(f"  {d}")
    return not report.ok


def cmd_replay(args: argparse.Namespace) -> int:
    explicit = bool(args.paths)
    paths: List[str] = []
    for target in args.paths or [DEFAULT_REPRO_DIR]:
        if os.path.isdir(target):
            paths += sorted(os.path.join(target, f)
                            for f in os.listdir(target)
                            if f.endswith(".json"))
        elif os.path.isfile(target):
            paths.append(target)
        elif explicit:
            print(f"no such repro file or directory: {target}",
                  file=sys.stderr)
            return 2
    if not paths:
        print("no repro files found", file=sys.stderr)
        return 2
    diverged = sum(_replay_one(p, args) for p in paths)
    if diverged and not args.expect_divergence:
        return 1
    if args.expect_divergence and diverged != len(paths):
        print(f"expected every repro to diverge; "
              f"{len(paths) - diverged} replayed clean", file=sys.stderr)
        return 1
    return 0


def cmd_shrink(args: argparse.Namespace) -> int:
    data = load_repro(args.path)
    session = session_from_dict(data)
    kwargs = _verify_kwargs(args)
    if args.impls is None and data.get("impls"):
        kwargs["impls"] = data["impls"]

    def is_failing(candidate) -> bool:
        return not verify_session(candidate, **kwargs).ok

    if not is_failing(session):
        print(f"{args.path}: replays clean -- nothing to shrink")
        return 0
    before = len(session.batches)
    small = shrink_session(session, is_failing, max_evals=args.max_evals)
    report = verify_session(small, **kwargs)
    out = args.out or args.path
    write_repro(small, out, divergences=report.divergences,
                impls=kwargs["impls"],
                num_modules=kwargs["num_modules"],
                note=f"re-shrunk from {before} batch(es)")
    print(f"{args.path}: {before} -> {len(small.batches)} batch(es), "
          f"written to {out}")
    return 0


def cmd_chaos(args: argparse.Namespace) -> int:
    if args.schedules == "all":
        schedules = list(MACHINE_SCHEDULES)
    else:
        schedules = [s.strip() for s in args.schedules.split(",")
                     if s.strip()]
        for s in schedules:
            if s not in MACHINE_SCHEDULES:
                print(f"unknown fault schedule {s!r}; known: "
                      f"{', '.join(sorted(MACHINE_SCHEDULES))}",
                      file=sys.stderr)
                return 2
    failures = 0
    runs = 0
    repro_paths: List[str] = []
    for schedule in schedules:
        for i in range(args.sessions):
            seed = args.seed + i
            report = chaos_session(
                seed, schedule, args.fault_seed,
                num_modules=args.modules, num_batches=args.batches,
                batch_size=args.batch_size, storage=args.storage,
                structure=args.structure)
            runs += 1
            print(report.summary())
            if report.ok:
                continue
            failures += 1
            for d in report.divergences:
                print(f"  {d}")
            if not args.no_shrink:
                path = _shrink_chaos_and_write(seed, schedule, args)
                repro_paths.append(path)
                print(f"  shrunk chaos repro written: {path}")
        if not args.no_determinism:
            div = check_chaos_determinism(
                args.seed, schedule, args.fault_seed,
                num_modules=args.modules, num_batches=args.batches,
                batch_size=args.batch_size, storage=args.storage,
                structure=args.structure)
            if div is not None:
                failures += 1
                print(f"  {div}")
        if not args.no_containers and schedule in MESSAGE_SCHEDULES:
            divs = chaos_containers(args.seed, schedule, args.fault_seed,
                                    num_modules=args.modules)
            if divs:
                failures += 1
                for d in divs:
                    print(f"  {d}")
    if failures:
        print(f"\n{failures} chaos failure(s) across {runs} session(s)")
        if repro_paths:
            # Same contract as fuzz: repro path on the last line.
            print(repro_paths[-1])
        return 1
    print(f"\nall {runs} chaos session(s) exact "
          f"({len(schedules)} schedule(s), fault_seed={args.fault_seed}, "
          f"P={args.modules})")
    return 0


def _shrink_chaos_and_write(seed: int, schedule: str,
                            args: argparse.Namespace) -> str:
    session = fuzz_session(seed, num_batches=args.batches,
                           batch_size=args.batch_size)

    def is_failing(candidate) -> bool:
        return not chaos_session(seed, schedule, args.fault_seed,
                                 num_modules=args.modules,
                                 session=candidate,
                                 storage=args.storage).ok

    small = shrink_session(session, is_failing, max_evals=args.max_evals)
    report = chaos_session(seed, schedule, args.fault_seed,
                           num_modules=args.modules, session=small,
                           storage=args.storage)
    os.makedirs(args.repro_dir, exist_ok=True)
    path = os.path.join(args.repro_dir,
                        f"seed{seed}-{schedule}-f{args.fault_seed}.json")
    return write_repro(
        small, path, divergences=report.divergences,
        num_modules=args.modules, fault_schedule=schedule,
        fault_seed=args.fault_seed,
        note=(f"shrunk from a {len(session.batches)}-batch chaos session "
              f"under schedule {schedule!r}"))


def _write_param_repro(path: str, data: dict) -> str:
    """Write a parameter-replay repro (soak/durable): no session body,
    just the knobs ``verify replay`` needs to re-run the harness."""
    os.makedirs(os.path.dirname(os.path.abspath(path)), exist_ok=True)
    with open(path, "w") as fh:
        json.dump(data, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return path


def cmd_soak(args: argparse.Namespace) -> int:
    from repro.verify.soak import check_soak_determinism, soak_session

    if args.schedules == "all":
        schedules = ["none"] + sorted(MACHINE_SCHEDULES)
    else:
        schedules = [s.strip() for s in args.schedules.split(",")
                     if s.strip()]
        for s in schedules:
            if s != "none" and s not in MACHINE_SCHEDULES:
                print(f"unknown fault schedule {s!r}; known: none, "
                      f"{', '.join(sorted(MACHINE_SCHEDULES))}",
                      file=sys.stderr)
                return 2
    fault_seeds = [int(s) for s in str(args.fault_seeds).split(",")
                   if s.strip() != ""]
    failures = 0
    runs = 0
    repro_paths: List[str] = []

    def _soak_repro(schedule: str, fault_seed: int, *, check: str,
                    clients: int, violations: List[str]) -> None:
        data = {
            "kind": "soak", "check": check, "schedule": schedule,
            "fault_seed": fault_seed, "clients": clients,
            "ops_per_client": args.ops, "seed": args.seed,
            "num_modules": args.modules, "structure": args.structure,
            "violations": violations[:20],
        }
        path = os.path.join(
            args.repro_dir,
            f"soak-{schedule}-f{fault_seed}-s{args.seed}.json")
        repro_paths.append(_write_param_repro(path, data))
        print(f"  soak repro written: {path}")

    for schedule in schedules:
        for fault_seed in (fault_seeds if schedule != "none" else [0]):
            report = soak_session(
                schedule, fault_seed, clients=args.clients,
                ops_per_client=args.ops, seed=args.seed,
                num_modules=args.modules, structure=args.structure)
            runs += 1
            print(report.summary())
            if not report.ok:
                failures += 1
                for v in report.violations:
                    print(f"  {v}")
                _soak_repro(schedule, fault_seed, check="slo",
                            clients=args.clients,
                            violations=[str(v) for v in report.violations])
        if not args.no_determinism:
            det_seed = fault_seeds[0] if schedule != "none" else 0
            det_clients = min(args.clients, 32)
            same, first, second = check_soak_determinism(
                schedule, det_seed, clients=det_clients,
                ops_per_client=args.ops, seed=args.seed,
                num_modules=args.modules, structure=args.structure)
            if not same:
                failures += 1
                print(f"  soak {schedule!r} is NOT deterministic: "
                      f"{first[:16]}... != {second[:16]}...")
                _soak_repro(schedule, det_seed, check="determinism",
                            clients=det_clients,
                            violations=[f"{first} != {second}"])
    if failures:
        print(f"\n{failures} soak failure(s) across {runs} run(s)")
        if repro_paths:
            # Same contract as fuzz/chaos: repro path on the last line.
            print(repro_paths[-1])
        return 1
    print(f"\nall {runs} soak run(s) clean ({args.clients} clients x "
          f"{args.ops} ops, {len(schedules)} schedule(s), "
          f"P={args.modules}, structure={args.structure})")
    return 0


def cmd_durable(args: argparse.Namespace) -> int:
    from repro.verify.durable import (
        check_durable_determinism,
        fault_sweep,
        kill_sweep,
    )
    from repro.verify.faults import DISK_FAULTS

    if args.faults is None:
        faults: Optional[List[str]] = None
    else:
        faults = [s.strip() for s in args.faults.split(",") if s.strip()]
        for name in faults:
            if name not in DISK_FAULTS:
                print(f"unknown disk fault {name!r}; known: "
                      f"{', '.join(sorted(DISK_FAULTS))}", file=sys.stderr)
                return 2
    session_seeds = [int(s) for s in str(args.seeds).split(",")
                     if s.strip() != ""]
    fault_seeds = [int(s) for s in str(args.fault_seeds).split(",")
                   if s.strip() != ""]
    kwargs = dict(num_batches=args.batches, batch_size=args.batch_size,
                  num_modules=args.modules,
                  checkpoint_every=args.checkpoint_every)
    failures = 0
    runs = 0
    repro_paths: List[str] = []

    def _durable_repro(report) -> None:
        data = dict(kind="durable", mode=report.mode,
                    session_seed=report.session_seed,
                    fault_seed=report.fault_seed, faults=faults,
                    violations=[str(v) for v in report.violations][:20],
                    **kwargs)
        path = os.path.join(
            args.repro_dir,
            f"durable-{report.mode}-s{report.session_seed}"
            f"-f{report.fault_seed}.json")
        repro_paths.append(_write_param_repro(path, data))
        print(f"  durable repro written: {path}")

    for session_seed in session_seeds:
        for fault_seed in fault_seeds:
            for report in (
                    kill_sweep(session_seed, fault_seed=fault_seed,
                               **kwargs),
                    fault_sweep(session_seed, fault_seed=fault_seed,
                                faults=faults, **kwargs)):
                runs += 1
                print(report.summary())
                if report.ok:
                    continue
                failures += 1
                for v in report.violations:
                    print(f"  {v}")
                _durable_repro(report)
        if not args.no_determinism:
            same, first, second = check_durable_determinism(
                session_seed, fault_seed=fault_seeds[0], **kwargs)
            if not same:
                failures += 1
                print(f"  durable kill sweep seed={session_seed} is NOT "
                      f"deterministic: {first[:16]}... != {second[:16]}...")
    if failures:
        print(f"\n{failures} durable failure(s) across {runs} sweep(s)")
        if repro_paths:
            # Same contract as fuzz/chaos/soak: path on the last line.
            print(repro_paths[-1])
        return 1
    print(f"\nall {runs} durable sweep(s) exact "
          f"({len(session_seeds)} session seed(s) x "
          f"{len(fault_seeds)} fault seed(s), "
          f"checkpoint_every={args.checkpoint_every})")
    return 0


def cmd_faults(args: argparse.Namespace) -> int:
    print(describe_faults())
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro verify",
        description="differential verification: fuzz, replay, shrink")
    sub = parser.add_subparsers(dest="command", required=True)

    fz = sub.add_parser("fuzz", help="fuzz N sessions differentially")
    fz.add_argument("--seed", type=int, default=0,
                    help="first session seed (sessions use seed..seed+N-1)")
    fz.add_argument("--sessions", type=int, default=25,
                    help="number of sessions (default 25)")
    fz.add_argument("--batches", type=int, default=12,
                    help="batches per session (default 12)")
    fz.add_argument("--batch-size", type=int, default=24,
                    help="ops per batch (default 24)")
    fz.add_argument("--read-only", action="store_true",
                    help="no mutating batches (keeps build-once "
                         "implementations live)")
    fz.add_argument("--inject-fault", default=None, metavar="IMPL:FAULT",
                    help="mutation-test the verifier (e.g. "
                         "skiplist:drop_get)")
    fz.add_argument("--faults", default=None, metavar="NAMES",
                    help="comma-separated registered faults to layer on "
                         "('list' enumerates; machine names run each "
                         "session under that chaos schedule too)")
    fz.add_argument("--fault-seed", type=int, default=0,
                    help="seed for machine fault schedules (default 0)")
    fz.add_argument("--no-shrink", action="store_true",
                    help="report divergences without shrinking")
    fz.add_argument("--repro-dir", default=DEFAULT_REPRO_DIR,
                    help=f"where shrunk repros land "
                         f"(default {DEFAULT_REPRO_DIR})")
    fz.add_argument("--max-evals", type=int, default=400,
                    help="shrinker evaluation budget (default 400)")
    _add_common(fz)
    fz.set_defaults(fn=cmd_fuzz)

    rp = sub.add_parser("replay", help="replay repro file(s)")
    rp.add_argument("paths", nargs="*",
                    help=f"repro files or directories "
                         f"(default {DEFAULT_REPRO_DIR})")
    rp.add_argument("--expect-divergence", action="store_true",
                    help="exit 0 only if every repro still diverges")
    _add_common(rp)
    rp.set_defaults(fn=cmd_replay)

    sh = sub.add_parser("shrink", help="minimize an existing repro file")
    sh.add_argument("path", help="repro JSON file")
    sh.add_argument("--out", default=None,
                    help="write here instead of in place")
    sh.add_argument("--max-evals", type=int, default=400,
                    help="shrinker evaluation budget (default 400)")
    _add_common(sh)
    sh.set_defaults(fn=cmd_shrink)

    ch = sub.add_parser("chaos", help="sweep fuzz sessions across "
                                      "machine-level fault schedules")
    ch.add_argument("--seed", type=int, default=0,
                    help="first session seed (sessions use seed..seed+N-1)")
    ch.add_argument("--sessions", type=int, default=25,
                    help="sessions per schedule (default 25)")
    ch.add_argument("--schedules", default="all",
                    help="comma-separated schedule names or 'all' "
                         f"(known: {', '.join(sorted(MACHINE_SCHEDULES))})")
    ch.add_argument("--fault-seed", type=int, default=0,
                    help="fault plan seed (default 0)")
    ch.add_argument("--batches", type=int, default=10,
                    help="batches per session (default 10)")
    ch.add_argument("--batch-size", type=int, default=16,
                    help="ops per batch (default 16)")
    ch.add_argument("--modules", type=int, default=8,
                    help="PIM modules per machine (default 8)")
    ch.add_argument("--storage", choices=["object", "arena"], default=None,
                    help="structure storage for twin, chaos run and "
                         "standbys (default: structure default / "
                         "REPRO_STRUCT_STORAGE)")
    ch.add_argument("--structure", choices=sorted(STRUCTURE_FACTORIES),
                    default="skiplist",
                    help="structure to put under chaos (default skiplist)")
    ch.add_argument("--no-shrink", action="store_true",
                    help="report divergences without shrinking")
    ch.add_argument("--no-determinism", action="store_true",
                    help="skip the bit-identical rerun check")
    ch.add_argument("--no-containers", action="store_true",
                    help="skip FIFO/priority-queue checks on a faulty "
                         "machine")
    ch.add_argument("--repro-dir", default=DEFAULT_REPRO_DIR,
                    help=f"where shrunk chaos repros land "
                         f"(default {DEFAULT_REPRO_DIR})")
    ch.add_argument("--max-evals", type=int, default=200,
                    help="shrinker evaluation budget (default 200)")
    ch.set_defaults(fn=cmd_chaos)

    sk = sub.add_parser("soak", help="chaos-soak the serving layer "
                                     "(concurrent clients vs the oracle)")
    sk.add_argument("--schedules", default="none,crash_wipe,intermittent,"
                                           "mixed",
                    help="comma-separated schedule names, 'none' for the "
                         "fault-free baseline, or 'all' "
                         f"(known: none, "
                         f"{', '.join(sorted(MACHINE_SCHEDULES))})")
    sk.add_argument("--fault-seeds", default="0,1,2",
                    help="comma-separated fault plan seeds (default 0,1,2)")
    sk.add_argument("--clients", type=int, default=64,
                    help="concurrent synthetic clients (default 64)")
    sk.add_argument("--ops", type=int, default=8,
                    help="requests per client (default 8)")
    sk.add_argument("--seed", type=int, default=0,
                    help="client-program / machine seed (default 0)")
    sk.add_argument("--modules", type=int, default=8,
                    help="PIM modules per machine (default 8)")
    sk.add_argument("--structure", choices=sorted(STRUCTURE_FACTORIES),
                    default="skiplist",
                    help="structure under serve (default skiplist)")
    sk.add_argument("--no-determinism", action="store_true",
                    help="skip the bit-identical rerun check")
    sk.add_argument("--repro-dir", default=DEFAULT_REPRO_DIR,
                    help=f"where soak repros land "
                         f"(default {DEFAULT_REPRO_DIR})")
    sk.set_defaults(fn=cmd_soak)

    du = sub.add_parser("durable", help="certify crash-consistent "
                                        "persistence (kill sweep + "
                                        "disk-fault sweep)")
    du.add_argument("--seeds", default="0,1,2",
                    help="comma-separated session seeds (default 0,1,2)")
    du.add_argument("--fault-seeds", default="1,2",
                    help="comma-separated damage-placement seeds "
                         "(default 1,2)")
    du.add_argument("--batches", type=int, default=14,
                    help="batches per session (default 14)")
    du.add_argument("--batch-size", type=int, default=12,
                    help="ops per batch (default 12)")
    du.add_argument("--modules", type=int, default=8,
                    help="PIM modules per machine (default 8)")
    du.add_argument("--checkpoint-every", type=int, default=3,
                    help="snapshot every N acked records (default 3)")
    du.add_argument("--faults", default=None,
                    help="comma-separated disk fault names "
                         "(default: all registered disk faults)")
    du.add_argument("--no-determinism", action="store_true",
                    help="skip the bit-identical rerun check")
    du.add_argument("--repro-dir", default=DEFAULT_REPRO_DIR,
                    help=f"where durable repros land "
                         f"(default {DEFAULT_REPRO_DIR})")
    du.set_defaults(fn=cmd_durable)

    fl = sub.add_parser("faults", help="print the unified fault registry")
    fl.set_defaults(fn=cmd_faults)

    args = parser.parse_args(argv)
    return int(args.fn(args))


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
