"""Failing-case shrinker plus the replayable-repro JSON format.

``shrink_session`` takes a diverging session and a test function and
minimizes it with delta debugging: first ddmin over whole batches (drop
chunks of batches while the failure persists), then payload halving
inside the surviving batches.  Evaluation count is bounded, so a
pathological test function cannot spin forever.

``write_repro`` / ``load_repro`` serialize a session (plus the
divergence that condemned it) to ``tests/golden/repros/`` as JSON.
Every file in that directory is auto-collected and replayed by
``tests/test_verify_repros.py`` -- a shrunk fuzz failure becomes a
permanent regression test by existing.
"""

from __future__ import annotations

import json
import os
from typing import Any, Callable, Dict, List, Optional

from repro.workloads.sessions import Session, SessionBatch

#: Ops whose payload elements are 2-item lists in JSON and must come
#: back as tuples for the batch surfaces / comparisons.
_TUPLE_PAYLOAD_OPS = frozenset({"upsert", "range"})

REPRO_FORMAT = 1


# ----------------------------------------------------------------------
# serialization
# ----------------------------------------------------------------------

def session_to_dict(session: Session) -> Dict[str, Any]:
    return {
        "format": REPRO_FORMAT,
        "seed": session.seed,
        "initial_keys": list(session.initial_keys),
        "batches": [{"op": b.op, "payload": [list(e) if isinstance(e, tuple)
                                             else e for e in b.payload]}
                    for b in session.batches],
    }


def session_from_dict(data: Dict[str, Any]) -> Session:
    if data.get("format") != REPRO_FORMAT:
        raise ValueError(f"unknown repro format {data.get('format')!r}")
    batches = []
    for b in data["batches"]:
        payload = b["payload"]
        if b["op"] in _TUPLE_PAYLOAD_OPS:
            payload = [tuple(e) for e in payload]
        batches.append(SessionBatch(op=b["op"], payload=payload))
    return Session(batches=batches,
                   initial_keys=list(data["initial_keys"]),
                   seed=int(data["seed"]))


def write_repro(session: Session, path: str, *,
                divergences: Optional[List[Any]] = None,
                impls: Optional[List[str]] = None,
                num_modules: Optional[int] = None,
                fault_schedule: Optional[str] = None,
                fault_seed: Optional[int] = None,
                note: str = "") -> str:
    """Write a replayable repro file; returns the path written.

    ``fault_schedule`` / ``fault_seed`` mark a *chaos* repro: replay
    then goes through :func:`repro.verify.chaos.chaos_session` under
    that machine-level fault schedule instead of the fault-free
    differential driver.
    """
    data = session_to_dict(session)
    if impls is not None:
        data["impls"] = list(impls)
    if num_modules is not None:
        data["num_modules"] = num_modules
    if fault_schedule is not None:
        data["fault_schedule"] = fault_schedule
        data["fault_seed"] = int(fault_seed or 0)
    if note:
        data["note"] = note
    if divergences:
        data["divergences"] = [str(d) for d in divergences]
    os.makedirs(os.path.dirname(os.path.abspath(path)), exist_ok=True)
    with open(path, "w") as fh:
        json.dump(data, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return path


def load_repro(path: str) -> Dict[str, Any]:
    """Load a repro file; ``session_from_dict(result)`` rebuilds the
    session, and the dict keeps any impls/num_modules/note metadata."""
    with open(path) as fh:
        return json.load(fh)


# ----------------------------------------------------------------------
# shrinking
# ----------------------------------------------------------------------

def shrink_session(session: Session,
                   is_failing: Callable[[Session], bool], *,
                   max_evals: int = 400) -> Session:
    """Minimize a failing session while ``is_failing`` stays true.

    Classic ddmin over the batch list, then payload bisection within
    each surviving batch.  ``is_failing(session)`` must be true on entry
    (asserted); the result is the smallest failing session found within
    the evaluation budget.
    """
    assert is_failing(session), "shrink_session needs a failing session"
    budget = [max_evals]

    def check(candidate: Session) -> bool:
        if budget[0] <= 0:
            return False
        budget[0] -= 1
        return is_failing(candidate)

    batches = _ddmin_batches(session, check)
    batches = _shrink_payloads(session, batches, check)
    return Session(batches=batches, initial_keys=session.initial_keys,
                   seed=session.seed)


def _with_batches(session: Session,
                  batches: List[SessionBatch]) -> Session:
    return Session(batches=batches, initial_keys=session.initial_keys,
                   seed=session.seed)


def _ddmin_batches(session: Session,
                   check: Callable[[Session], bool],
                   ) -> List[SessionBatch]:
    """ddmin over the batch list: try dropping chunks, refining the
    chunk size until single batches can't be removed."""
    batches = list(session.batches)
    chunk = max(1, len(batches) // 2)
    while chunk >= 1 and len(batches) > 1:
        shrunk = False
        i = 0
        while i < len(batches):
            candidate = batches[:i] + batches[i + chunk:]
            if candidate and check(_with_batches(session, candidate)):
                batches = candidate
                shrunk = True
                # retry the same index: the next chunk shifted into place
            else:
                i += chunk
        if not shrunk:
            chunk //= 2
    return batches


def _shrink_payloads(session: Session, batches: List[SessionBatch],
                     check: Callable[[Session], bool],
                     ) -> List[SessionBatch]:
    """Halve each surviving batch's payload while the failure persists:
    try the first half, the second half, then single-element drops for
    small payloads."""
    batches = list(batches)
    for i, batch in enumerate(batches):
        payload = list(batch.payload)
        changed = True
        while changed and len(payload) > 1:
            changed = False
            mid = len(payload) // 2
            for half in (payload[:mid], payload[mid:]):
                if not half:
                    continue
                candidate = batches[:i] + \
                    [SessionBatch(op=batch.op, payload=half)] + \
                    batches[i + 1:]
                if check(_with_batches(session, candidate)):
                    payload = half
                    batches[i] = SessionBatch(op=batch.op, payload=half)
                    changed = True
                    break
        if len(payload) <= 8:  # single-element polish on small payloads
            j = 0
            while j < len(payload) and len(payload) > 1:
                candidate_payload = payload[:j] + payload[j + 1:]
                candidate = batches[:i] + \
                    [SessionBatch(op=batch.op,
                                  payload=candidate_payload)] + \
                    batches[i + 1:]
                if check(_with_batches(session, candidate)):
                    payload = candidate_payload
                    batches[i] = SessionBatch(op=batch.op, payload=payload)
                else:
                    j += 1
    return batches
