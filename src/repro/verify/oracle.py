"""The sequential oracle: a sorted-list + dict model of the ordered map.

Every implementation under differential test is compared against this
model, batch by batch.  It is deliberately the dumbest possible correct
implementation -- element-at-a-time over ``bisect`` -- so a divergence
always indicts the distributed structure, never the oracle.

The test suite's ``ReferenceMap`` (``tests/conftest.py``) is an alias of
this class, so the property tests and the fuzzer share one oracle.
"""

from __future__ import annotations

import bisect
from typing import Any, Dict, List, Optional, Sequence, Tuple


class SequentialOracle:
    """Sequential ordered-map model with the ``apply_batch`` surface."""

    #: Batch ops replayable through :meth:`apply_batch`.
    BATCH_CAPS = frozenset({"get", "successor", "upsert", "delete", "range"})

    def __init__(self, items: Sequence[Tuple[Any, Any]] = ()) -> None:
        self.data: Dict[Any, Any] = dict(items)
        self._sorted: List[Any] = sorted(self.data)

    # -- element operations -------------------------------------------------

    def upsert(self, key: Any, value: Any) -> None:
        if key not in self.data:
            bisect.insort(self._sorted, key)
        self.data[key] = value

    def delete(self, key: Any) -> bool:
        if key not in self.data:
            return False
        del self.data[key]
        self._sorted.remove(key)
        return True

    def get(self, key: Any) -> Optional[Any]:
        return self.data.get(key)

    def successor(self, key: Any) -> Optional[Tuple[Any, Any]]:
        """Smallest (key, value) with key >= the argument."""
        i = bisect.bisect_left(self._sorted, key)
        if i == len(self._sorted):
            return None
        k = self._sorted[i]
        return (k, self.data[k])

    def predecessor(self, key: Any) -> Optional[Tuple[Any, Any]]:
        """Largest (key, value) with key <= the argument."""
        i = bisect.bisect_right(self._sorted, key)
        if i == 0:
            return None
        k = self._sorted[i - 1]
        return (k, self.data[k])

    def range(self, lkey: Any, rkey: Any) -> List[Tuple[Any, Any]]:
        """All (key, value) with lkey <= key <= rkey, ascending."""
        lo = bisect.bisect_left(self._sorted, lkey)
        hi = bisect.bisect_right(self._sorted, rkey)
        return [(k, self.data[k]) for k in self._sorted[lo:hi]]

    def as_dict(self) -> Dict[Any, Any]:
        return dict(self.data)

    def __len__(self) -> int:
        return len(self.data)

    # -- conformance surface -------------------------------------------------

    def apply_batch(self, op: str, payload: Sequence) -> Optional[list]:
        """Uniform batch dispatch (contract: see
        :meth:`repro.core.skiplist.PIMSkipList.apply_batch`).

        Mutations apply element by element in payload order, so duplicate
        keys within an upsert batch collapse to the last occurrence --
        the same semantics every batched implementation guarantees.
        """
        if op == "get":
            return [self.get(k) for k in payload]
        if op == "successor":
            return [self.successor(k) for k in payload]
        if op == "upsert":
            for k, v in payload:
                self.upsert(k, v)
            return None
        if op == "delete":
            for k in payload:
                self.delete(k)
            return None
        if op == "range":
            return [self.range(lo, hi) for lo, hi in payload]
        raise ValueError(f"apply_batch: unknown op {op!r}")
