"""The differential chaos harness: fuzz sessions on an unreliable machine.

Extends the differential driver (:mod:`repro.verify.differ`) with fault
injection at the *machine* level: each chaos session replays one seeded
fuzz session on a machine running a named fault schedule
(:data:`repro.sim.chaos.MACHINE_SCHEDULES`), under a
:class:`~repro.recovery.manager.RecoveryManager`, and checks

- **equivalence** -- every read batch and the final full-range state
  must match the :class:`~repro.verify.oracle.SequentialOracle` exactly
  (the reliable-delivery protocol and crash recovery must be invisible
  in *results*), or end in a typed
  :class:`~repro.recovery.manager.DegradedResult` -- never a wrong
  answer;
- **overhead envelopes** -- retry/backoff/failover traffic shows up in
  *rounds*; each schedule's total must stay inside a calibrated
  multiple of the fault-free twin's rounds;
- **determinism** -- the whole chaos run is a pure function of
  ``(session seed, fault seed)``: a rerun must be bit-identical
  (same results, same fault statistics, same round counts).

Divergences reuse :class:`~repro.verify.differ.Divergence` with
``chaos_*`` kinds, so the shrinker and the repro-file pipeline apply
unchanged -- a diverging chaos session shrinks to a replayable JSON
repro carrying its fault schedule and fault seed.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.skiplist import PIMSkipList
from repro.recovery import DegradedResult, RecoveryManager
from repro.sim.chaos import MACHINE_SCHEDULES, build_schedule
from repro.sim.machine import PIMMachine
from repro.structures.pimtree import PIMTree
from repro.verify.differ import (
    Divergence,
    READ_OPS,
    _diff_results,
    _session_key_bounds,
    verify_containers,
)
from repro.verify.fuzz import fuzz_session, initial_items_for
from repro.verify.oracle import SequentialOracle
from repro.workloads.sessions import Session

__all__ = [
    "ChaosReport",
    "MESSAGE_SCHEDULES",
    "OVERHEAD_ENVELOPES",
    "STRUCTURE_FACTORIES",
    "chaos_containers",
    "chaos_matrix",
    "chaos_session",
    "check_chaos_determinism",
]

#: Structures the chaos harness can put under a fault schedule.  Each
#: factory builds a fresh *empty* structure on ``machine`` (``storage``
#: only applies to the skip list).  The PIM-tree uses the same tiny
#: geometry as its differ adapter, so chaos-sized sessions exercise
#: interior levels, splits, and shadow promotion/rebroadcast.
STRUCTURE_FACTORIES = {
    "skiplist": lambda machine, storage: PIMSkipList(machine,
                                                     storage=storage),
    "pimtree": lambda machine, storage: PIMTree(
        machine, leaf_size=4, fanout=4, promote_threshold=2),
}

#: Schedules with no crash events: safe for structures that issue
#: unprotected module->module forwards outside the recovery manager
#: (the container checks run these).  Decided by probing the plan's
#: crash list (crash presence is seed-independent for every builder),
#: not by name-matching -- ``intermittent`` carries crashes too.
MESSAGE_SCHEDULES: Tuple[str, ...] = tuple(
    name for name in MACHINE_SCHEDULES
    if not build_schedule(name, 0, 8).spec.crashes
)

#: Per-schedule round-overhead envelopes: chaos rounds must stay within
#: ``factor * fault-free rounds + constant``.  Calibrated against the
#: fuzz corpus (seeds 0..24, all schedules, P=8) at roughly 2x the
#: observed maxima; the constant absorbs failover rebuild+replay, whose
#: cost is history- not batch-proportional.  A regression that turns
#: retries into per-message round trips blows the factor; one that
#: makes recovery replay quadratic blows the constant.
OVERHEAD_ENVELOPES: Dict[str, Tuple[float, int]] = {
    "drop": (4.0, 64),
    "dup_delay": (4.0, 64),
    "corrupt": (4.0, 64),
    "stall": (3.0, 64),
    "crash_restart": (5.0, 512),
    "crash_wipe": (5.0, 512),
    "mixed": (4.0, 128),
    "intermittent": (6.0, 768),
}


@dataclass
class ChaosReport:
    """Everything one chaos session observed."""

    session_seed: int
    fault_seed: int
    schedule: str
    num_modules: int
    num_batches: int
    structure: str = "skiplist"
    divergences: List[Divergence] = field(default_factory=list)
    degraded: bool = False
    degraded_at: int = -1  # batch index at which the run quiesced
    recoveries: int = 0
    base_rounds: int = 0   # fault-free twin, whole session
    chaos_rounds: int = 0  # chaos machine + any standby machines
    stats: Dict[str, int] = field(default_factory=dict)
    fingerprint: str = ""

    @property
    def ok(self) -> bool:
        return not self.divergences

    @property
    def overhead(self) -> float:
        return self.chaos_rounds / max(1, self.base_rounds)

    def summary(self) -> str:
        state = "OK" if self.ok else f"{len(self.divergences)} divergence(s)"
        tail = f", degraded at batch {self.degraded_at}" if self.degraded \
            else ""
        faults = self.stats.get("transmissions", 0) and (
            f", {sum(self.stats.get(k, 0) for k in ('drops', 'dups', 'delays', 'corrupts', 'dead_drops', 'stalled_slots'))}"
            f"/{self.stats['transmissions']} envelopes faulted") or ""
        return (f"seed={self.session_seed} fault_seed={self.fault_seed} "
                f"schedule={self.schedule}: {self.num_batches} batches -> "
                f"{state}; rounds {self.base_rounds} -> {self.chaos_rounds} "
                f"({self.overhead:.2f}x), {self.recoveries} recovery(ies)"
                f"{faults}{tail}")


def chaos_session(session_seed: int, schedule: str, fault_seed: int = 0, *,
                  num_modules: int = 8, num_batches: int = 10,
                  batch_size: int = 16, checkpoint_every: int = 3,
                  allow_restore: bool = True,
                  session: Optional[Session] = None,
                  storage: Optional[str] = None,
                  structure: str = "skiplist",
                  check_overhead: bool = True) -> ChaosReport:
    """Replay one fuzz session under a machine-level fault schedule.

    ``session`` overrides the fuzzed one (the repro-replay path); its
    seed then labels the report.  ``structure`` picks the structure
    under chaos (see :data:`STRUCTURE_FACTORIES`); ``storage`` picks
    the skip list's structure storage for the twin, the chaos run, and
    every standby a recovery builds (``None`` defers to the environment
    override).  The report carries a fingerprint of every observable
    (results, fault statistics, rounds) for the bit-identical-rerun
    check.
    """
    if schedule not in MACHINE_SCHEDULES:
        raise ValueError(f"unknown fault schedule {schedule!r}; known: "
                         f"{', '.join(sorted(MACHINE_SCHEDULES))}")
    factory = STRUCTURE_FACTORIES.get(structure)
    if factory is None:
        raise ValueError(f"unknown chaos structure {structure!r}; known: "
                         f"{', '.join(sorted(STRUCTURE_FACTORIES))}")
    if session is None:
        session = fuzz_session(session_seed, num_batches=num_batches,
                               batch_size=batch_size)
    items = initial_items_for(session)
    report = ChaosReport(session_seed=session.seed, fault_seed=fault_seed,
                         schedule=schedule, num_modules=num_modules,
                         num_batches=len(session.batches),
                         structure=structure)

    # Oracle answers + the fault-free twin's round count (the overhead
    # baseline; same machine seed, so the structure evolves identically
    # and the only difference under chaos is fault handling).
    oracle = SequentialOracle(items)
    twin_machine = PIMMachine(num_modules=num_modules, seed=session.seed)
    twin = factory(twin_machine, storage)
    twin.build(items)
    expected: List = []
    for batch in session.batches:
        expected.append(oracle.apply_batch(batch.op, batch.payload))
        twin.apply_batch(batch.op, batch.payload)
    report.base_rounds = twin_machine.metrics.rounds

    # The chaos run: same structure seed, fault plan installed, wrapped
    # in a recovery manager whose standby factory builds clean machines.
    machines: List[PIMMachine] = []

    def standby():
        m = PIMMachine(num_modules=num_modules, seed=session.seed)
        machines.append(m)
        return factory(m, storage)

    chaotic = standby()
    chaotic.build(items)
    chaos_state = machines[0].install_fault_plan(
        build_schedule(schedule, fault_seed, num_modules))
    manager = RecoveryManager(chaotic, standby,
                              checkpoint_every=checkpoint_every,
                              allow_restore=allow_restore)

    parts: List[str] = []  # determinism fingerprint material

    def diverge(i: int, op: str, kind: str, detail: str) -> None:
        report.divergences.append(Divergence(
            seed=session.seed, batch_index=i, op=op,
            impl=f"{structure}+chaos", kind=kind, detail=detail))

    for i, batch in enumerate(session.batches):
        result = manager.run(batch.op, batch.payload)
        if isinstance(result, DegradedResult):
            report.degraded = True
            report.degraded_at = i
            parts.append(f"degraded@{i}:{result.reason.value}")
            break
        parts.append(repr(result))
        if batch.op in READ_OPS and result != expected[i]:
            diverge(i, batch.op, "chaos_result",
                    _diff_results(batch.op, batch.payload, expected[i],
                                  result))

    # Final state + integrity, unless the run (correctly) quiesced.
    if not report.degraded:
        bounds = _session_key_bounds(session)
        if bounds is not None:
            final = manager.run("range", [bounds])
            if isinstance(final, DegradedResult):
                report.degraded = True
                report.degraded_at = len(session.batches)
                parts.append(f"degraded@final:{final.reason.value}")
            else:
                got = dict(final[0])
                want = oracle.as_dict()
                if got != want:
                    missing = sorted(set(want) - set(got))[:4]
                    extra = sorted(set(got) - set(want))[:4]
                    diverge(-1, "final", "chaos_final_state",
                            f"{len(want)} keys expected, {len(got)} found; "
                            f"missing={missing} extra={extra}")
                parts.append(repr(sorted(got.items())))
        try:
            manager.structure.check_integrity()
        except AssertionError as exc:
            diverge(-1, "final", "chaos_integrity",
                    f"invariant violated after chaos session: {exc}")

    report.recoveries = manager.recoveries
    report.chaos_rounds = sum(m.metrics.rounds for m in machines)
    report.stats = chaos_state.stats.as_dict()
    parts.append(repr(sorted(report.stats.items())))
    parts.append(f"recoveries={report.recoveries}")
    parts.append(f"rounds={report.chaos_rounds}")
    report.fingerprint = hashlib.sha256(
        "\n".join(parts).encode()).hexdigest()

    if check_overhead and not report.degraded:
        factor, constant = OVERHEAD_ENVELOPES[schedule]
        budget = int(factor * report.base_rounds) + constant
        if report.chaos_rounds > budget:
            diverge(-1, "session", "chaos_overhead",
                    f"{report.chaos_rounds} chaos rounds > envelope "
                    f"{budget} ({factor:g}x{report.base_rounds}+{constant} "
                    f"for schedule {schedule!r})")
    return report


def check_chaos_determinism(session_seed: int, schedule: str,
                            fault_seed: int = 0, *,
                            num_modules: int = 8, num_batches: int = 10,
                            batch_size: int = 16,
                            storage: Optional[str] = None,
                            structure: str = "skiplist",
                            ) -> Optional[Divergence]:
    """Run the same chaos session twice; the fingerprints must match.

    Returns the describing divergence on mismatch, else ``None``.
    """
    kwargs = dict(num_modules=num_modules, num_batches=num_batches,
                  batch_size=batch_size, storage=storage,
                  structure=structure, check_overhead=False)
    first = chaos_session(session_seed, schedule, fault_seed, **kwargs)
    second = chaos_session(session_seed, schedule, fault_seed, **kwargs)
    if first.fingerprint == second.fingerprint:
        return None
    return Divergence(
        seed=session_seed, batch_index=-1, op="rerun",
        impl=f"{structure}+chaos", kind="chaos_determinism",
        detail=(f"schedule {schedule!r} fault_seed={fault_seed}: rerun "
                f"fingerprint {second.fingerprint[:12]} != first "
                f"{first.fingerprint[:12]} (stats {second.stats} vs "
                f"{first.stats})"))


def chaos_containers(seed: int, schedule: str, fault_seed: int = 0, *,
                     num_modules: int = 8) -> List[Divergence]:
    """The FIFO/priority-queue exact-result checks on a faulty machine.

    Restricted to :data:`MESSAGE_SCHEDULES`: the containers run outside
    the recovery manager, so crash schedules would (correctly) escalate
    unprotected forwards to :class:`~repro.sim.errors.ModuleCrashed`
    rather than produce a comparable result.
    """
    if schedule not in MESSAGE_SCHEDULES:
        raise ValueError(f"container chaos wants a crash-free schedule; "
                         f"{schedule!r} not in {MESSAGE_SCHEDULES}")
    machine = PIMMachine(num_modules=num_modules, seed=seed & 0x7FFFFFFF)
    machine.install_fault_plan(build_schedule(schedule, fault_seed,
                                              num_modules))
    return verify_containers(seed, num_modules=num_modules, machine=machine)


def chaos_matrix(session_seeds: Sequence[int],
                 schedules: Sequence[str], fault_seed: int = 0, *,
                 num_modules: int = 8, num_batches: int = 10,
                 batch_size: int = 16,
                 storage: Optional[str] = None,
                 structure: str = "skiplist") -> List[ChaosReport]:
    """The full sweep: every session seed under every fault schedule."""
    return [
        chaos_session(seed, schedule, fault_seed,
                      num_modules=num_modules, num_batches=num_batches,
                      batch_size=batch_size, storage=storage,
                      structure=structure)
        for schedule in schedules
        for seed in session_seeds
    ]
