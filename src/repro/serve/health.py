"""The server's health/liveness state machine.

Four states, surfaced through the status API and driven by the
resilience policy (:mod:`repro.serve.policy`) off the recovery
manager's hooks:

- ``HEALTHY`` -- batches run on live hardware, circuit closed.
- ``FAILED_OVER`` -- a failover just promoted standby hardware; the
  server keeps answering (results stay exact) while a success streak
  re-earns ``HEALTHY``.
- ``DEGRADED`` -- the circuit breaker is open: too many faults in a
  row, or the recovery manager quiesced permanently.  Reads are served
  stale from the last checkpoint (typed
  :class:`~repro.recovery.DegradedResult`), writes get typed refusals.
- ``RECOVERING`` -- half-open probe: the cooldown elapsed and the next
  batch is allowed through to live hardware; success closes the
  circuit, failure re-opens it.

Transitions are edge-checked: an illegal transition raises instead of
silently corrupting the availability story, so the state machine is a
testable contract rather than a label.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Dict, List, Tuple

__all__ = ["HealthMonitor", "HealthState"]


class HealthState(Enum):
    HEALTHY = "healthy"
    DEGRADED = "degraded"
    FAILED_OVER = "failed_over"
    RECOVERING = "recovering"


#: Legal edges (self-loops are always allowed and not recorded).
_EDGES: Dict[HealthState, Tuple[HealthState, ...]] = {
    HealthState.HEALTHY: (HealthState.DEGRADED, HealthState.FAILED_OVER),
    HealthState.FAILED_OVER: (HealthState.HEALTHY, HealthState.DEGRADED),
    HealthState.DEGRADED: (HealthState.RECOVERING,),
    HealthState.RECOVERING: (HealthState.HEALTHY, HealthState.DEGRADED,
                             HealthState.FAILED_OVER),
}


@dataclass(frozen=True)
class HealthTransition:
    """One recorded edge: when, to what, and why."""

    tick: int
    state: HealthState
    detail: str


class HealthMonitor:
    """Holds the current state and the full transition history."""

    def __init__(self) -> None:
        self.state = HealthState.HEALTHY
        self.history: List[HealthTransition] = [
            HealthTransition(0, HealthState.HEALTHY, "start")]

    def to(self, state: HealthState, tick: int, detail: str = "") -> None:
        """Transition to ``state`` (no-op when already there)."""
        if state is self.state:
            return
        if state not in _EDGES[self.state]:
            raise ValueError(
                f"illegal health transition {self.state.value} -> "
                f"{state.value} at tick {tick} ({detail!r})")
        self.state = state
        self.history.append(HealthTransition(tick, state, detail))

    def as_dict(self) -> Dict[str, object]:
        return {
            "state": self.state.value,
            "transitions": [
                {"tick": t.tick, "state": t.state.value, "detail": t.detail}
                for t in self.history
            ],
        }
