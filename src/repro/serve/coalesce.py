"""The coalescing scheduler: admitted requests -> PIM-sized batches.

The PIM model's economics come from batching: one ``run_batch`` over B
ops costs rounds, not B round trips.  The coalescer is where many
small per-tenant requests become one machine-sized batch:

- batches are **same-op** (the model's batch constraint -- a batch has
  one operation type), chosen FIFO: the op class of the *oldest*
  waiting request goes first, so no op class can starve;
- within the chosen op, requests are drained **round-robin across
  tenants** in ``quantum``-item slices (rotating the starting tenant
  each batch), so one chatty tenant cannot monopolise a batch;
- only queue *heads* are eligible -- a tenant's stream executes in its
  program order, which is what lets the soak harness compare each
  client's responses against a sequential replay;
- expired requests are evicted here (typed ``DEADLINE`` refusals),
  never dispatched.

The result is a :class:`MergedBatch`: the concatenated payload plus
the per-request slices the demux stage uses to route each tenant's
share of the replies back to its future.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.serve.admission import TenantState
from repro.serve.errors import Request

__all__ = ["Coalescer", "MergedBatch"]


@dataclass
class MergedBatch:
    """One coalesced same-op batch with its demux map."""

    op: str
    items: List[Any]
    #: ``(request, lo, hi)``: request's results are ``replies[lo:hi]``.
    slices: List[Tuple[Request, int, int]] = field(default_factory=list)

    @property
    def min_deadline(self) -> Optional[int]:
        """Tightest absolute deadline across the merged requests."""
        deadlines = [r.deadline for r, _, _ in self.slices
                     if r.deadline is not None]
        return min(deadlines) if deadlines else None

    @property
    def tenants(self) -> List[str]:
        return sorted({r.tenant for r, _, _ in self.slices})

    def __len__(self) -> int:
        return len(self.items)


class Coalescer:
    """Merge admitted requests into bounded same-op batches, fairly."""

    def __init__(self, *, max_batch_items: int = 512,
                 quantum: int = 64) -> None:
        if max_batch_items < 1:
            raise ValueError("max_batch_items must be >= 1")
        if quantum < 1:
            raise ValueError("quantum must be >= 1")
        self.max_batch_items = max_batch_items
        self.quantum = quantum
        self._rr = 0  # rotating round-robin offset

    def next_batch(self, tenants: Dict[str, TenantState], tick: int,
                   ) -> Tuple[Optional[MergedBatch], List[Request]]:
        """Build the next batch from the tenant queues.

        Returns ``(batch, expired)``: the merged batch (``None`` when
        nothing is dispatchable) and the requests evicted because
        their deadline passed before dispatch.
        """
        expired: List[Request] = []
        for state in tenants.values():
            while state.queue and state.queue[0].expired(tick):
                expired.append(state.queue.popleft())

        heads = [s.queue[0] for s in tenants.values() if s.queue]
        if not heads:
            return None, expired
        op = min(heads, key=lambda r: r.id).op

        active = sorted(name for name, s in tenants.items() if s.queue)
        offset = self._rr % len(active)
        order = active[offset:] + active[:offset]
        self._rr += 1

        items: List[Any] = []
        slices: List[Tuple[Request, int, int]] = []
        progress = True
        while progress and len(items) < self.max_batch_items:
            progress = False
            for name in order:
                queue = tenants[name].queue
                taken = 0
                while queue and queue[0].op == op and taken < self.quantum:
                    req = queue[0]
                    if req.expired(tick):
                        expired.append(queue.popleft())
                        continue
                    # An oversized request rides alone; otherwise stop
                    # at the batch bound and leave it for the next one.
                    if items and len(items) + req.items > \
                            self.max_batch_items:
                        break
                    queue.popleft()
                    slices.append((req, len(items),
                                   len(items) + req.items))
                    items.extend(req.payload)
                    taken += max(1, req.items)
                    progress = True
                    if len(items) >= self.max_batch_items:
                        break
                if len(items) >= self.max_batch_items:
                    break
        if not slices:
            return None, expired
        return MergedBatch(op=op, items=items, slices=slices), expired
