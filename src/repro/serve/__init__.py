"""Resilient concurrent serving layer over one batched PIM structure.

Four stages, one SLO (**a correct answer or a typed refusal, never a
wrong answer, never a hang**):

- :mod:`repro.serve.admission` -- per-tenant token buckets + bounded
  queues; overload becomes a typed ``OVERLOADED`` refusal, never
  unbounded buffering.
- :mod:`repro.serve.coalesce` -- merges admitted requests into
  PIM-sized same-op batches, round-robin fair across tenants,
  preserving each tenant's program order.
- :mod:`repro.serve.policy` -- deadlines clamp the pipeline retry
  budget, jittered capped retries, a circuit breaker that degrades to
  checkpoint-stale reads and typed write refusals, standby failover
  via :mod:`repro.recovery`.
- :mod:`repro.serve.server` -- the asyncio scheduler loop, demux,
  journal (for sequential-replay verification), health state machine
  and status API, bounded-progress watchdog.

Certified by the chaos soak harness (:mod:`repro.verify.soak`).
"""

from repro.serve.admission import AdmissionController, TenantState, TokenBucket
from repro.serve.coalesce import Coalescer, MergedBatch
from repro.serve.errors import Refusal, RefusalReason, Request, ServerStalled
from repro.serve.health import HealthMonitor, HealthState
from repro.serve.policy import ResiliencePolicy, jittered_backoff
from repro.serve.server import JournalEntry, Server, ServerConfig

__all__ = [
    "AdmissionController",
    "Coalescer",
    "HealthMonitor",
    "HealthState",
    "JournalEntry",
    "MergedBatch",
    "Refusal",
    "RefusalReason",
    "Request",
    "ResiliencePolicy",
    "Server",
    "ServerConfig",
    "ServerStalled",
    "TenantState",
    "TokenBucket",
    "jittered_backoff",
]
