"""Typed refusals and request/response envelopes for the serving layer.

The serving SLO is the PR 5 contract lifted to a multi-tenant front
end: **a correct answer or a typed refusal, never a wrong answer,
never a hang**.  Every way the server can decline work is a distinct
*falsy, typed* value here -- clients dispatch on ``reason`` (a
:class:`RefusalReason` member), never on message strings, and a
truth-test cleanly separates "answered" from "refused" exactly like
:class:`repro.recovery.DegradedResult` (which the server also returns,
for degraded-mode reads and a quiesced backend).

A refusal is a *value*, not an exception: a refused request must leave
the backend untouched (refusals are never journaled, so the soak
harness can prove non-effect by sequential replay), and an
asyncio client awaiting thousands of in-flight ops should not pay
exception plumbing for ordinary backpressure.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from enum import Enum
from typing import Any, List, Optional

__all__ = ["Refusal", "RefusalReason", "Request", "ServerStalled"]


class RefusalReason(Enum):
    """Machine-readable reason a request was refused.

    - ``OVERLOADED`` -- admission control refused: the tenant's bounded
      queue was full or its token bucket was empty.  Back off and retry.
    - ``DEADLINE`` -- the request's deadline expired before (or while)
      the scheduler could dispatch it.
    - ``WRITE_UNAVAILABLE`` -- the circuit breaker holds the backend
      open; writes are refused while reads are served stale from the
      last checkpoint.
    - ``UNSUPPORTED`` -- the op is not in the structure's
      ``BATCH_CAPS``.
    - ``SHUTDOWN`` -- the server stopped with the request still queued.
    """

    OVERLOADED = "overloaded"
    DEADLINE = "deadline"
    WRITE_UNAVAILABLE = "write_unavailable"
    UNSUPPORTED = "unsupported"
    SHUTDOWN = "shutdown"


@dataclass(frozen=True)
class Refusal:
    """One typed refusal.  Always falsy; carries no result data.

    ``op``/``tenant`` identify the refused request, ``reason`` is the
    machine-readable :class:`RefusalReason`, ``detail`` is free-text
    context (queue depths, deadline arithmetic) for logs only.
    """

    op: str
    tenant: str
    reason: RefusalReason
    detail: str = ""

    def __bool__(self) -> bool:
        return False


class ServerStalled(RuntimeError):
    """The bounded-progress watchdog fired: requests were pending but no
    request completed (or was refused) for ``watchdog_ticks`` scheduler
    ticks.  Raised out of the scheduler loop -- a hang turned into a
    loud, typed failure, so "never a hang" is enforceable in CI."""


_request_ids = itertools.count()


@dataclass
class Request:
    """One client request: a small same-op batch plus routing state.

    ``deadline`` is an *absolute* scheduler tick (virtual time, see
    :class:`repro.serve.server.Server`); ``None`` means no deadline.
    ``future`` resolves to the op's result list (reads), ``None``
    (writes), a :class:`Refusal`, or a
    :class:`~repro.recovery.DegradedResult`.
    """

    tenant: str
    op: str
    payload: List[Any]
    deadline: Optional[int] = None
    submitted_tick: int = 0
    future: Any = None  # asyncio.Future, attached by the server
    id: int = field(default_factory=lambda: next(_request_ids))

    @property
    def items(self) -> int:
        return len(self.payload)

    def expired(self, tick: int) -> bool:
        return self.deadline is not None and tick > self.deadline
