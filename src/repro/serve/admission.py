"""Per-tenant admission control: token-bucket quotas + bounded queues.

Admission is the first of the serving layer's four stages (admit ->
coalesce -> pipeline -> demux) and the only one allowed to *refuse for
capacity*: once a request is admitted it either executes or is refused
for a typed cause (deadline, degraded writes, shutdown) -- it is never
silently dropped, and nothing buffers unboundedly.

Both mechanisms run on the scheduler's virtual clock (ticks), not wall
time, so an admission decision is a pure function of the submission
history -- the soak harness's replays stay deterministic.

- The **token bucket** meters sustained throughput: ``rate`` items per
  tick, up to ``burst`` accumulated.  A request costs one token per
  payload item.  ``rate=None`` disables metering (the quota is then
  only the queue bound).
- The **bounded queue** (``max_pending`` requests) is the pipelining
  buffer between admission and the coalescer; refusing at the bound is
  what turns overload into typed backpressure instead of latency
  collapse.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, Optional

from repro.serve.errors import Refusal, RefusalReason, Request

__all__ = ["AdmissionController", "TenantState", "TokenBucket"]


class TokenBucket:
    """Deterministic token bucket on the scheduler's tick clock."""

    def __init__(self, rate: Optional[float], burst: float) -> None:
        if rate is not None and rate <= 0:
            raise ValueError("rate must be positive (or None: unmetered)")
        if burst <= 0:
            raise ValueError("burst must be positive")
        self.rate = rate
        self.burst = float(burst)
        self.tokens = float(burst)
        self._tick = 0

    def advance(self, tick: int) -> None:
        """Refill for the ticks elapsed since the last advance."""
        if self.rate is None or tick <= self._tick:
            return
        self.tokens = min(self.burst,
                          self.tokens + (tick - self._tick) * self.rate)
        self._tick = tick

    def try_take(self, n: int) -> bool:
        if self.rate is None:
            return True
        if self.tokens >= n:
            self.tokens -= n
            return True
        return False


@dataclass
class TenantMetrics:
    """Per-tenant serving counters (the fairness/SLO ledger)."""

    submitted: int = 0
    admitted: int = 0
    completed: int = 0
    degraded: int = 0          # DegradedResult answers (incl. stale reads)
    refused: Dict[str, int] = field(default_factory=dict)
    items_served: int = 0
    queue_wait_ticks: int = 0  # summed over completed requests

    def refuse(self, reason: RefusalReason) -> None:
        self.refused[reason.value] = self.refused.get(reason.value, 0) + 1

    @property
    def refusals(self) -> int:
        return sum(self.refused.values())

    def as_dict(self) -> Dict[str, object]:
        return {
            "submitted": self.submitted,
            "admitted": self.admitted,
            "completed": self.completed,
            "degraded": self.degraded,
            "refused": dict(self.refused),
            "items_served": self.items_served,
            "queue_wait_ticks": self.queue_wait_ticks,
        }


@dataclass
class TenantState:
    """One tenant's quota state: bucket + bounded FIFO of admitted work."""

    name: str
    bucket: TokenBucket
    max_pending: int
    queue: Deque[Request] = field(default_factory=deque)
    metrics: TenantMetrics = field(default_factory=TenantMetrics)


class AdmissionController:
    """Admit or refuse requests tenant by tenant (see module docstring)."""

    def __init__(self, *, rate: Optional[float] = None, burst: float = 1024,
                 max_pending: int = 256) -> None:
        if max_pending < 1:
            raise ValueError("max_pending must be >= 1")
        self.rate = rate
        self.burst = burst
        self.max_pending = max_pending
        self.tenants: Dict[str, TenantState] = {}

    def tenant(self, name: str) -> TenantState:
        state = self.tenants.get(name)
        if state is None:
            state = TenantState(name=name,
                                bucket=TokenBucket(self.rate, self.burst),
                                max_pending=self.max_pending)
            self.tenants[name] = state
        return state

    def admit(self, request: Request, tick: int) -> Optional[Refusal]:
        """Admit ``request`` into its tenant's queue, or refuse typed.

        Returns ``None`` on admission (the request is now queued) or an
        :class:`~repro.serve.errors.Refusal` with reason ``OVERLOADED``.
        """
        state = self.tenant(request.tenant)
        state.metrics.submitted += 1
        if len(state.queue) >= state.max_pending:
            state.metrics.refuse(RefusalReason.OVERLOADED)
            return Refusal(request.op, request.tenant,
                           RefusalReason.OVERLOADED,
                           f"queue full ({state.max_pending} pending)")
        state.bucket.advance(tick)
        if not state.bucket.try_take(request.items):
            state.metrics.refuse(RefusalReason.OVERLOADED)
            return Refusal(request.op, request.tenant,
                           RefusalReason.OVERLOADED,
                           f"quota exhausted ({state.bucket.tokens:.1f} "
                           f"tokens < {request.items} items)")
        state.metrics.admitted += 1
        state.queue.append(request)
        return None

    @property
    def pending(self) -> int:
        return sum(len(s.queue) for s in self.tenants.values())
