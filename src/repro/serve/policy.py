"""The resilience policy: deadlines, retries, circuit breaker, degrade.

This layer sits between the coalescer and the
:class:`~repro.recovery.RecoveryManager` and decides *how hard to try*:

- **deadline propagation** -- a merged batch's tightest deadline clamps
  the pipeline's retry budget (``max_delivery_attempts``) for the
  duration of the batch: one delivery attempt per remaining tick,
  floor one.  A request with 3 ticks left fails fast instead of
  burning the full backoff curve past its deadline.
- **capped jittered retries** -- read batches that die with
  :class:`~repro.sim.errors.DeliveryTimeout` are retried in place by
  the recovery manager (``read_retry_attempts``) with a jittered
  backoff curve (deterministic :func:`~repro.sim.chaos._mix` draws, so
  soak runs replay exactly); mutating batches go straight to failover.
- **circuit breaker** -- ``breaker_threshold`` consecutive failure
  events trip the breaker for ``cooldown_ticks``: reads are answered
  from the manager's durable view (last checkpoint advanced by the
  mutation log -- exactly what a failover would rebuild) as typed
  ``STALE_READ`` :class:`~repro.recovery.DegradedResult`\\ s, writes get
  typed ``WRITE_UNAVAILABLE`` refusals.  After the cooldown the breaker
  half-opens (``RECOVERING``): one probe batch goes through to live
  hardware; success closes the circuit, failure re-opens it.
- **failover accounting** -- the manager's standby failovers surface as
  ``FAILED_OVER`` health state; a success streak re-earns ``HEALTHY``.

If the manager quiesces permanently (recovery exhausted/disabled) the
breaker latches open: stale reads and write refusals forever -- the
strongest promise the SLO allows once no live hardware remains.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Any, Callable, Dict, Optional, Union

from repro.recovery import (
    DegradedReason,
    DegradedResult,
    MUTATING_OPS,
    RecoveryEvent,
    RecoveryManager,
    merged_lsm_items,
)
from repro.serve.coalesce import MergedBatch
from repro.serve.errors import Refusal, RefusalReason
from repro.serve.health import HealthMonitor, HealthState
from repro.sim.chaos import _mix
from repro.verify.oracle import SequentialOracle

__all__ = ["ResiliencePolicy", "jittered_backoff"]


def jittered_backoff(seed: int) -> Callable[[int], int]:
    """Capped exponential backoff with deterministic jitter.

    ``attempt`` (1-based) maps to ``min(2^(attempt-1), 8)`` idle rounds
    plus a 0-2 round jitter hashed from ``(seed, attempt)`` -- jitter
    decorrelates retry storms across tenants without sacrificing the
    bit-identical replays the soak harness depends on.
    """

    def backoff(attempt: int) -> int:
        return min(1 << (attempt - 1), 8) + _mix(seed, 0xBAC0FF, attempt) % 3

    return backoff


class ResiliencePolicy:
    """Execute merged batches under the resilience rules above.

    Constructed by the server around a :class:`RecoveryManager` whose
    hooks this policy owns (it wires them itself).  ``execute`` returns
    the batch result, a :class:`DegradedResult`, or a
    :class:`Refusal` template the server fans out per request.
    """

    def __init__(self, manager: RecoveryManager, health: HealthMonitor, *,
                 breaker_threshold: int = 3, cooldown_ticks: int = 32,
                 healthy_streak: int = 4) -> None:
        if breaker_threshold < 1:
            raise ValueError("breaker_threshold must be >= 1")
        if cooldown_ticks < 1:
            raise ValueError("cooldown_ticks must be >= 1")
        self.manager = manager
        self.health = health
        self.breaker_threshold = breaker_threshold
        self.cooldown_ticks = cooldown_ticks
        self.healthy_streak = healthy_streak
        manager.on_failure = self._on_failure
        manager.on_recovery = self._on_recovery
        manager.on_degrade = self._on_degrade
        self._failures = 0        # consecutive failure events
        self._streak = 0          # consecutive successful batches
        self._open_until: Optional[int] = None  # breaker cooldown end
        self._tick = 0            # last tick seen (for hook context)
        self._stale_cache: Optional[tuple] = None
        self.stats: Dict[str, int] = {
            "failures": 0, "failovers": 0, "trips": 0, "probes": 0,
            "stale_reads": 0, "refused_writes": 0,
        }

    # -- manager hooks ----------------------------------------------------

    def _on_failure(self, op: str, exc: Exception) -> None:
        self._failures += 1
        self.stats["failures"] += 1

    def _on_recovery(self, event: RecoveryEvent) -> None:
        self.stats["failovers"] += 1
        self._streak = 0
        if self.health.state in (HealthState.HEALTHY,
                                 HealthState.RECOVERING,
                                 HealthState.FAILED_OVER):
            self.health.to(HealthState.FAILED_OVER, self._tick,
                           f"failover after {event.cause}")

    def _on_degrade(self, result: DegradedResult) -> None:
        # Permanent: no live hardware remains.  Latch the breaker open.
        self._open_until = None
        if self.health.state is not HealthState.DEGRADED:
            self.health.to(HealthState.DEGRADED, self._tick,
                           f"quiesced: {result.cause}")

    # -- breaker state ----------------------------------------------------

    @property
    def circuit_open(self) -> bool:
        return self.health.state is HealthState.DEGRADED

    def _maybe_half_open(self, tick: int) -> None:
        """Cooldown elapsed on a tripped (non-latched) breaker?"""
        if (self.health.state is HealthState.DEGRADED
                and self.manager.healthy
                and self._open_until is not None
                and tick >= self._open_until):
            self.health.to(HealthState.RECOVERING, tick,
                           "cooldown elapsed; half-open probe")
            self.stats["probes"] += 1

    def _trip(self, tick: int, why: str) -> None:
        self._open_until = tick + self.cooldown_ticks
        self.stats["trips"] += 1
        self._failures = 0
        if self.health.state is not HealthState.DEGRADED:
            self.health.to(HealthState.DEGRADED, tick, why)

    # -- degraded-mode reads ----------------------------------------------

    def _durable_view(self) -> SequentialOracle:
        """The manager's durable state: checkpoint + mutation log."""
        chk = self.manager.checkpoint
        key = (id(chk), self.manager.log_size)
        if self._stale_cache is not None and self._stale_cache[0] == key:
            return self._stale_cache[1]
        if chk.kind in ("skiplist", "pimtree"):
            # Both checkpoint as a sorted (key, value) pair list.
            items = list(chk.payload)
        elif chk.kind == "lsm":
            items = merged_lsm_items(chk)
        else:
            raise TypeError(
                f"no degraded-read support for checkpoint kind {chk.kind!r}")
        oracle = SequentialOracle(items)
        for op, payload in self.manager._log:
            oracle.apply_batch(op, payload)
        self._stale_cache = (key, oracle)
        return oracle

    def _stale_read(self, batch: MergedBatch) -> DegradedResult:
        self.stats["stale_reads"] += 1
        view = self._durable_view()
        return DegradedResult(
            batch.op, DegradedReason.STALE_READ,
            cause=self.manager.degraded_reason or "circuit open",
            value=view.apply_batch(batch.op, batch.items))

    # -- the execute path -------------------------------------------------

    def execute(self, batch: MergedBatch, tick: int,
                ) -> Union[Any, DegradedResult, Refusal]:
        """Run one merged batch under the resilience rules.

        Returns the structure's batch result on success, a
        :class:`DegradedResult` (stale read / quiesced), or a
        :class:`Refusal` template (degraded writes) that the server
        stamps per request.
        """
        self._tick = tick
        self._maybe_half_open(tick)
        if self.circuit_open:
            if batch.op in MUTATING_OPS:
                self.stats["refused_writes"] += 1
                return Refusal(batch.op, "*",
                               RefusalReason.WRITE_UNAVAILABLE,
                               "circuit open; writes refused while "
                               "degraded")
            return self._stale_read(batch)

        failures_before = self._failures
        result = self._run_clamped(batch, tick)
        if isinstance(result, DegradedResult):
            # The manager quiesced mid-batch (hooks already latched the
            # breaker open).  Honour the SLO for *this* batch too.
            if batch.op in MUTATING_OPS:
                return result
            return self._stale_read(batch)

        # Success on live (possibly freshly promoted) hardware.
        self._streak += 1
        if self._failures > failures_before \
                and self._failures >= self.breaker_threshold:
            # The batch survived via retries/failovers, but the fault
            # rate says the next ones may not: open the circuit.
            self._trip(tick, f"{self._failures} failure events; "
                             f"cooling down {self.cooldown_ticks} ticks")
        elif self._failures == failures_before:
            if self._failures:
                self._failures = 0
            if (self.health.state is HealthState.RECOVERING
                    or (self.health.state is HealthState.FAILED_OVER
                        and self._streak >= self.healthy_streak)):
                self.health.to(HealthState.HEALTHY, tick,
                               f"{self._streak} clean batch(es)")
        return result

    def _run_clamped(self, batch: MergedBatch, tick: int) -> Any:
        """``manager.run`` with the deadline-clamped retry budget."""
        machine = getattr(self.manager.structure, "machine", None)
        deadline = batch.min_deadline
        if machine is None or deadline is None:
            return self.manager.run(batch.op, batch.items)
        original = machine.config
        # One delivery attempt per remaining tick, floor one: a batch
        # admitted with 3 ticks to spare gets 3 attempts, not the full
        # backoff curve charged long past its deadline.  MachineConfig
        # is frozen, so swap in a clamped copy for this batch only.
        clamped = max(1, min(original.max_delivery_attempts,
                             deadline - tick + 1))
        machine.config = replace(original, max_delivery_attempts=clamped)
        try:
            return self.manager.run(batch.op, batch.items)
        finally:
            machine.config = original

    def as_dict(self) -> Dict[str, object]:
        return {
            "stats": dict(self.stats),
            "circuit_open": self.circuit_open,
            "open_until": self._open_until,
            "consecutive_failures": self._failures,
            "streak": self._streak,
            "recoveries": self.manager.recoveries,
            "manager_degraded": self.manager.degraded,
        }
