"""The async multi-tenant PIM server: admit -> coalesce -> run -> demux.

:class:`Server` fronts one batched structure (plus its recovery
standby) with many concurrent asyncio client streams.  The contract is
the PR 5 SLO lifted to a serving surface: every ``submit`` resolves to
**a correct answer, or a typed refusal** (:class:`~repro.serve.errors.Refusal`
/ :class:`~repro.recovery.DegradedResult`) -- never a wrong answer,
and never a hang (a bounded-progress watchdog turns a stall into a
loud :class:`~repro.serve.errors.ServerStalled`).

Time is **virtual**: the scheduler tick advances once per dispatch
iteration, and every time-dependent decision (token-bucket refill,
deadline expiry, breaker cooldown, retry backoff) reads that tick --
never the wall clock.  With asyncio's deterministic FIFO ready queue
this makes an entire serve session a pure function of the submission
program and the fault seed, which is what lets the soak harness replay
it bit-for-bit and compare against a sequential oracle.

The scheduler loop pipelines: it dispatches the next merged batch as
soon as the previous one resolves, yielding to the event loop between
batches so clients can consume results and submit follow-ups (closed
loop).  Per-tenant *program order* is preserved end to end -- the
coalescer only ever drains queue heads -- so each client's response
stream is comparable against a sequential replay of the journal.

The **journal** records every batch that produced an answer (live
results and degraded stale reads) in execution order, with the demux
slices.  Refused requests are never journaled: a refusal is proof of
non-effect, and the soak harness leans on exactly that when it replays
the journal sequentially.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.recovery import (
    DegradedReason,
    DegradedResult,
    RecoveryManager,
)
from repro.recovery.durable import DurabilityPolicy, DurableStore
from repro.serve.admission import AdmissionController
from repro.serve.coalesce import Coalescer, MergedBatch
from repro.serve.errors import Refusal, RefusalReason, Request, ServerStalled
from repro.serve.health import HealthMonitor
from repro.serve.policy import ResiliencePolicy, jittered_backoff

__all__ = ["JournalEntry", "Server", "ServerConfig"]


@dataclass(frozen=True)
class ServerConfig:
    """Knobs for all four serving stages (defaults are soak-tested)."""

    # coalescer
    max_batch_items: int = 512
    quantum: int = 64
    # admission
    rate: Optional[float] = None     # tokens (items) per tick; None = off
    burst: float = 1024
    max_pending: int = 256           # per-tenant queue bound
    # recovery manager
    checkpoint_every: int = 4
    allow_restore: bool = True
    max_recoveries: int = 4
    read_retry_attempts: int = 2
    # resilience policy
    breaker_threshold: int = 3
    cooldown_ticks: int = 32
    healthy_streak: int = 4
    # liveness
    watchdog_ticks: int = 64
    seed: int = 0                    # jitter seed (backoff decorrelation)
    # durability (None = in-memory only, the pre-PR-10 behaviour)
    state_dir: Optional[str] = None  # WAL + snapshot directory
    os_fsync: bool = True            # real fsyncs (False: modeled only)


@dataclass(frozen=True)
class JournalEntry:
    """One executed batch, in execution order, with its demux map.

    ``kind`` is ``"live"`` (ran on live hardware) or ``"stale"``
    (answered from the durable checkpoint+log view while the circuit
    was open -- still journal-replayable, because the durable view
    contains exactly the journaled mutations).
    """

    tick: int
    op: str
    items: Tuple[Any, ...]
    #: ``(request_id, tenant, lo, hi)`` demux slices.
    slices: Tuple[Tuple[int, str, int, int], ...]
    kind: str = "live"


class Server:
    """Serve many concurrent client streams over one PIM structure.

    ``structure`` is the live structure (its machine may carry a fault
    plan); ``rebuild`` is the standby factory handed to the
    :class:`RecoveryManager`.  Call :meth:`start`, then ``await
    submit(...)`` from any number of client coroutines, then
    :meth:`stop`.
    """

    def __init__(self, structure: Any, rebuild: Any,
                 config: Optional[ServerConfig] = None) -> None:
        self.config = config or ServerConfig()
        cfg = self.config
        self.caps = frozenset(getattr(type(structure), "BATCH_CAPS",
                                      frozenset()))
        self.health = HealthMonitor()
        # With a state dir the journaled answer contract gains a leg:
        # policy.execute -> manager.run only returns after the batch's
        # WAL record is durable, so every acked answer survives a host
        # crash (RPO = 0) and a restarted server resumes from disk.
        self.durable: Optional[DurableStore] = None
        if cfg.state_dir is not None:
            self.durable = DurableStore.open(
                cfg.state_dir,
                DurabilityPolicy(snapshot_every=cfg.checkpoint_every,
                                 os_fsync=cfg.os_fsync))
        self.manager = RecoveryManager(
            structure, rebuild,
            checkpoint_every=cfg.checkpoint_every,
            allow_restore=cfg.allow_restore,
            max_recoveries=cfg.max_recoveries,
            read_retry_attempts=cfg.read_retry_attempts,
            retry_backoff=jittered_backoff(cfg.seed),
            durable=self.durable)
        self.policy = ResiliencePolicy(
            self.manager, self.health,
            breaker_threshold=cfg.breaker_threshold,
            cooldown_ticks=cfg.cooldown_ticks,
            healthy_streak=cfg.healthy_streak)
        self.admission = AdmissionController(
            rate=cfg.rate, burst=cfg.burst, max_pending=cfg.max_pending)
        self.coalescer = Coalescer(
            max_batch_items=cfg.max_batch_items, quantum=cfg.quantum)
        self.tick = 0
        self.journal: List[JournalEntry] = []
        self.batches_served = 0
        self._work = asyncio.Event()
        self._running = False
        self._task: Optional[asyncio.Task] = None
        self._failure: Optional[BaseException] = None
        self._last_progress = 0

    # -- lifecycle --------------------------------------------------------

    async def start(self) -> None:
        if self._running:
            return
        self._running = True
        self._task = asyncio.get_running_loop().create_task(self._run())

    async def stop(self) -> None:
        """Stop the scheduler; refuse (typed) whatever is still queued."""
        self._running = False
        self._work.set()
        if self._task is not None:
            try:
                await self._task
            finally:
                self._task = None
        for state in self.admission.tenants.values():
            while state.queue:
                req = state.queue.popleft()
                self._refuse(req, RefusalReason.SHUTDOWN,
                             "server stopped with request queued")
        if self.durable is not None:
            self.durable.close()
        if self._failure is not None:
            raise self._failure

    # -- the client surface -----------------------------------------------

    async def submit(self, tenant: str, op: str, payload: Sequence, *,
                     timeout_ticks: Optional[int] = None) -> Any:
        """Submit one request and await its outcome.

        Resolves to the op's result list (reads) / ``None`` (writes), a
        :class:`Refusal`, or a :class:`DegradedResult` -- the falsy
        cases are the typed refusals.  ``timeout_ticks`` sets a
        deadline that many scheduler ticks from now (virtual time).
        """
        if self._failure is not None:
            raise self._failure
        request = Request(
            tenant=tenant, op=op, payload=list(payload),
            deadline=(None if timeout_ticks is None
                      else self.tick + timeout_ticks),
            submitted_tick=self.tick)
        request.future = asyncio.get_running_loop().create_future()
        if not self._running:
            metrics = self.admission.tenant(tenant).metrics
            metrics.submitted += 1
            metrics.refuse(RefusalReason.SHUTDOWN)
            return Refusal(op, tenant, RefusalReason.SHUTDOWN,
                           "server is not running")
        if op not in self.caps:
            metrics = self.admission.tenant(tenant).metrics
            metrics.submitted += 1
            metrics.refuse(RefusalReason.UNSUPPORTED)
            return Refusal(op, tenant, RefusalReason.UNSUPPORTED,
                           f"op {op!r} not in structure caps")
        refusal = self.admission.admit(request, self.tick)
        if refusal is not None:
            return refusal
        self._work.set()
        return await request.future

    # -- the scheduler loop -----------------------------------------------

    async def _run(self) -> None:
        try:
            while self._running:
                if self.admission.pending == 0:
                    self._work.clear()
                    self._last_progress = self.tick  # idle is not a stall
                    await self._work.wait()
                    continue
                self.tick += 1
                batch, expired = self.coalescer.next_batch(
                    self.admission.tenants, self.tick)
                progressed = False
                for req in expired:
                    self._refuse(
                        req, RefusalReason.DEADLINE,
                        f"deadline tick {req.deadline} passed at tick "
                        f"{self.tick} before dispatch")
                    progressed = True
                if batch is not None:
                    result = self.policy.execute(batch, self.tick)
                    self._demux(batch, result)
                    self.batches_served += 1
                    progressed = True
                if progressed:
                    self._last_progress = self.tick
                elif (self.admission.pending
                      and self.tick - self._last_progress
                      > self.config.watchdog_ticks):
                    raise ServerStalled(
                        f"{self.admission.pending} request(s) pending but "
                        f"no progress for {self.config.watchdog_ticks} "
                        f"ticks (tick {self.tick})")
                # Yield so clients consume results and submit follow-ups
                # before the next batch forms (closed-loop pipelining).
                await asyncio.sleep(0)
        except BaseException as exc:
            self._failure = exc
            self._running = False
            self._abort_pending(exc)
            raise

    # -- demux ------------------------------------------------------------

    def _journal(self, batch: MergedBatch, kind: str) -> None:
        self.journal.append(JournalEntry(
            tick=self.tick, op=batch.op, items=tuple(batch.items),
            slices=tuple((r.id, r.tenant, lo, hi)
                         for r, lo, hi in batch.slices),
            kind=kind))

    def _demux(self, batch: MergedBatch, result: Any) -> None:
        """Fan one batch outcome back out to its requests' futures."""
        if isinstance(result, Refusal):
            for req, _, _ in batch.slices:
                self._refuse(req, result.reason, result.detail)
            return
        if isinstance(result, DegradedResult):
            if result.reason is DegradedReason.STALE_READ:
                self._journal(batch, "stale")
                values = result.value
                for req, lo, hi in batch.slices:
                    self._resolve(req, DegradedResult(
                        req.op, result.reason, result.cause,
                        None if values is None else values[lo:hi]),
                        degraded=True)
            else:
                for req, _, _ in batch.slices:
                    self._resolve(req, DegradedResult(
                        req.op, result.reason, result.cause),
                        degraded=True)
            return
        self._journal(batch, "live")
        for req, lo, hi in batch.slices:
            value = None if result is None else result[lo:hi]
            self._resolve(req, value)

    def _resolve(self, request: Request, outcome: Any, *,
                 degraded: bool = False) -> None:
        metrics = self.admission.tenant(request.tenant).metrics
        if degraded:
            metrics.degraded += 1
        else:
            metrics.completed += 1
            metrics.items_served += request.items
        metrics.queue_wait_ticks += self.tick - request.submitted_tick
        if request.future is not None and not request.future.done():
            request.future.set_result(outcome)

    def _refuse(self, request: Request, reason: RefusalReason,
                detail: str) -> None:
        metrics = self.admission.tenant(request.tenant).metrics
        metrics.refuse(reason)
        if request.future is not None and not request.future.done():
            request.future.set_result(
                Refusal(request.op, request.tenant, reason, detail))

    def _abort_pending(self, exc: BaseException) -> None:
        for state in self.admission.tenants.values():
            while state.queue:
                req = state.queue.popleft()
                if req.future is not None and not req.future.done():
                    req.future.set_exception(exc)

    # -- status API -------------------------------------------------------

    def status(self) -> Dict[str, object]:
        """The health/metrics surface (everything JSON-serialisable)."""
        machine = getattr(self.manager.structure, "machine", None)
        return {
            "tick": self.tick,
            "running": self._running,
            "failure": (None if self._failure is None
                        else f"{type(self._failure).__name__}: "
                             f"{self._failure}"),
            "health": self.health.as_dict(),
            "policy": self.policy.as_dict(),
            "pending": self.admission.pending,
            "batches_served": self.batches_served,
            "journal_batches": len(self.journal),
            "rounds": (None if machine is None
                       else machine.metrics.rounds),
            "durability": (None if self.durable is None
                           else dict(self.durable.stats(),
                                     restored=self.manager
                                     .restored_from_disk)),
            "tenants": {name: state.metrics.as_dict()
                        for name, state in
                        sorted(self.admission.tenants.items())},
        }
