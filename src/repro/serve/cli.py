"""``python -m repro serve`` -- drive the serving layer, watchably.

Spins up a :class:`~repro.serve.server.Server` over a skip list,
replays ``--clients`` concurrent synthetic client streams against it
(optionally under a ``--chaos`` fault schedule), verifies the serving
SLO through the soak harness (:mod:`repro.verify.soak`), and prints
the resulting health timeline, per-outcome tallies and latency
percentiles.  Exit code 1 if the SLO was violated.

Example::

    python -m repro serve --clients 100 --chaos intermittent
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.sim.chaos import MACHINE_SCHEDULES

__all__ = ["main"]


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro serve",
        description="serve concurrent clients over one PIM structure "
                    "and verify the SLO")
    parser.add_argument("--clients", type=int, default=100,
                        help="concurrent synthetic clients (default 100)")
    parser.add_argument("--ops", type=int, default=8,
                        help="requests per client (default 8)")
    parser.add_argument("--chaos", default="none", metavar="SCHEDULE",
                        help="fault schedule for the live machine "
                             f"(default none; known: "
                             f"{', '.join(sorted(MACHINE_SCHEDULES))})")
    parser.add_argument("--fault-seed", type=int, default=0,
                        help="fault plan seed (default 0)")
    parser.add_argument("--seed", type=int, default=0,
                        help="client-program / machine seed (default 0)")
    parser.add_argument("--modules", type=int, default=8,
                        help="PIM modules per machine (default 8)")
    parser.add_argument("--structure", default="skiplist",
                        help="structure under serve: skiplist or pimtree "
                             "(default skiplist)")
    parser.add_argument("--state-dir", default=None, metavar="DIR",
                        help="durable WAL+snapshot directory; answers are "
                             "acked only after their record is on disk, "
                             "and a restart resumes from DIR (default: "
                             "in-memory only)")
    args = parser.parse_args(argv)

    if args.chaos != "none" and args.chaos not in MACHINE_SCHEDULES:
        print(f"unknown fault schedule {args.chaos!r}; known: none, "
              f"{', '.join(sorted(MACHINE_SCHEDULES))}", file=sys.stderr)
        return 2
    from repro.verify.chaos import STRUCTURE_FACTORIES
    if args.structure not in STRUCTURE_FACTORIES:
        print(f"unknown structure {args.structure!r}; known: "
              f"{', '.join(sorted(STRUCTURE_FACTORIES))}", file=sys.stderr)
        return 2

    from repro.serve.server import ServerConfig
    from repro.verify.soak import soak_session

    config = None
    if args.state_dir is not None:
        config = ServerConfig(seed=args.seed, state_dir=args.state_dir)
    report = soak_session(args.chaos, args.fault_seed,
                          clients=args.clients, ops_per_client=args.ops,
                          seed=args.seed, num_modules=args.modules,
                          structure=args.structure, config=config)

    total = args.clients * args.ops
    print(f"served {total} requests from {args.clients} concurrent "
          f"clients over a {args.modules}-module {args.structure} "
          f"(chaos: {args.chaos}, fault_seed {args.fault_seed}"
          + (f", state dir {args.state_dir}" if args.state_dir else "")
          + ")\n")
    print(f"  answered exactly : {report.answered}")
    for reason, count in sorted(report.degraded.items()):
        print(f"  degraded ({reason:<14}): {count}")
    for reason, count in sorted(report.refused.items()):
        print(f"  refused ({reason:<15}): {count}")
    print(f"\n  scheduler ticks  : {report.ticks}")
    print(f"  merged batches   : {report.batches} "
          f"({total / max(1, report.batches):.1f} requests/batch)")
    print(f"  machine rounds   : {report.rounds}")
    print(f"  queue wait p50   : {report.latency_percentile(0.5)} ticks")
    print(f"  queue wait p99   : {report.latency_percentile(0.99)} ticks")
    print(f"  failovers        : {report.recoveries}, "
          f"breaker trips: {report.trips}, "
          f"stale reads: {report.stale_reads}")
    print(f"  final health     : {report.health_state} "
          f"({report.health_transitions} transition(s))")

    if report.ok:
        print("\nSLO verified: every response oracle-correct or a typed "
              "refusal; stream results sequential-replay-equivalent.")
        return 0
    print(f"\nSLO VIOLATED ({len(report.violations)}):")
    for violation in report.violations:
        print(f"  {violation}")
    return 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
