"""A batch-parallel priority queue composed on the PIM skip list.

The paper's structure supports ordered batch operations; a priority
queue is the classic client.  Batched inserts are Upserts (Thm 4.4
costs).  ``extract_min_batch(B)`` uses the skip list's *local leaf
lists* (the same dashed pointers §5.1's broadcast ranges ride on):

1. every module walks the first ``q`` leaves of its local leaf list and
   returns their keys (one fat reply of ``q`` words) -- ``q`` starts at
   ``Theta(B/P + log P)``, because Lemma 2.1 puts ``O(B/P)`` of the
   global ``B`` smallest keys on each module whp;
2. the CPU merges the ``P`` sorted prefixes and takes the ``B``
   smallest; a module's contribution is *safe* if it was exhausted or
   its largest returned key is at least the current ``B``-th candidate
   -- unsafe modules (a whp-rare event) get their quota doubled and are
   re-asked;
3. one batched Delete removes the extracted keys.

Costs per extraction: ``O(B/P + log P)`` whp IO time, ``O(B/P + log n)``
whp PIM time, O(1) rounds expected, plus the Delete's Thm 4.5 costs --
PIM-balanced even when every priority falls in a narrow band (the
classic concurrent-heap hot-spot, defused by the hashed placement).

Duplicate priorities are supported by keying on ``(priority, tiebreak)``
with a CPU-side tiebreak counter.
"""

from __future__ import annotations

import math
from typing import Any, Dict, List, Optional, Tuple

from repro.core.skiplist import PIMSkipList
from repro.ops import BatchOp, run_batch
from repro.sim.machine import PIMMachine


class PIMPriorityQueue:
    """Min-priority queue with batched insert/extract."""

    def __init__(self, machine: PIMMachine, name: str = "pimpq") -> None:
        self.machine = machine
        self.name = name
        self.sl = PIMSkipList(machine, name=name)
        self._tiebreak = 0
        machine.register(f"{name}:local_prefix", self._make_prefix_handler())

    def _make_prefix_handler(self):
        struct = self.sl.struct

        def h_local_prefix(ctx, quota, tag=None):
            ml = struct.mlocal(ctx.mid)
            keys = []
            leaf = ml.first_leaf
            while leaf is not None and len(keys) < quota:
                ctx.charge(1)
                keys.append(leaf.key)
                leaf = leaf.local_right
            exhausted = leaf is None
            ctx.reply(("prefix", ctx.mid, keys, exhausted),
                      size=max(1, len(keys)), tag=tag)

        return h_local_prefix

    # -- public API -----------------------------------------------------

    def __len__(self) -> int:
        return self.sl.size

    def insert_batch(self, items: List[Tuple[Any, Any]]) -> None:
        """Insert ``(priority, value)`` pairs (duplicates allowed)."""
        batch = []
        for priority, value in items:
            batch.append(((priority, self._tiebreak), value))
            self._tiebreak += 1
        self.machine.cpu.charge(len(items),
                                max(1.0, math.log2(len(items) + 1)))
        self.sl.batch_upsert(batch)

    def peek_min(self) -> Optional[Tuple[Any, Any]]:
        """The smallest (priority, value) without removing it."""
        keys = self._smallest_keys(1)
        if not keys:
            return None
        value = self.sl.batch_get(keys)[0]
        return (keys[0][0], value)

    def extract_min_batch(self, count: int) -> List[Tuple[Any, Any]]:
        """Remove and return the ``count`` smallest (priority, value)
        pairs, ascending by priority (FIFO among equal priorities)."""
        count = min(count, len(self))
        if count <= 0:
            return []
        keys = self._smallest_keys(count)
        values = self.sl.batch_get(keys)
        self.sl.batch_delete(keys)
        return [(k[0], v) for k, v in zip(keys, values)]

    # -- internals -----------------------------------------------------

    def _smallest_keys(self, count: int) -> List[Any]:
        """The ``count`` globally smallest keys, via safe prefix fetches."""
        return run_batch(self.machine, _SmallestKeysOp(self, count))

    def clear(self) -> None:
        """Remove everything (batched)."""
        while len(self):
            self.extract_min_batch(len(self))


class _SmallestKeysOp(BatchOp):
    """Quota-doubling safe-prefix fetch; one stage per re-ask round.

    The prefix handler is registered by the queue's constructor, so the
    op contributes no handlers itself."""

    def __init__(self, pq: PIMPriorityQueue, count: int) -> None:
        self.pq = pq
        self.count = count
        self.name = f"{pq.name}:smallest_keys"

    def route(self, machine, plan):
        pq, count = self.pq, self.count
        p = machine.num_modules
        log_p = max(1, int(round(math.log2(p)))) if p > 1 else 1
        quotas: Dict[int, int] = {
            mid: min(count, 2 * ((count + p - 1) // p) + 4 * log_p)
            for mid in range(p)
        }
        fn_prefix = f"{pq.name}:local_prefix"
        supplied: Dict[int, Tuple[List[Any], bool]] = {}
        while True:
            ask = [mid for mid in range(p) if mid not in supplied]
            replies = yield [(mid, fn_prefix, (quotas[mid],), None)
                             for mid in ask]
            for r in replies:
                _, mid, keys, exhausted = r.payload
                supplied[mid] = (keys, exhausted)
            merged: List[Any] = []
            for keys, _ in supplied.values():
                merged.extend(keys)
            merged.sort()
            with machine.cpu.region(len(merged)):
                machine.cpu.charge(
                    len(merged) * max(1.0, math.log2(len(merged) + 1)),
                    max(1.0, math.log2(len(merged) + 1)),
                )
            take = merged[:count]
            if not take:
                return []
            bound = take[-1]
            unsafe = [
                mid for mid, (keys, exhausted) in supplied.items()
                if not exhausted and keys and keys[-1] < bound
                and len(keys) >= quotas[mid]
            ]
            if not unsafe:
                return take
            # whp-rare: a module may still hide keys below the bound.
            for mid in unsafe:
                quotas[mid] *= 2
                del supplied[mid]
