"""A skew-resistant successor index on the PIM model ("PIM-tree").

The paper's skip list keeps its *upper part* replicated everywhere and
hashes lower-part nodes across modules, which balances **uniform**
batches -- but an adversarial batch of distinct keys whose search paths
converge (Zipf reads, same-successor probes) funnels the lower-part
walk into the few modules that own the hot path.  The authors'
follow-up index (PIM-tree, PVLDB 2022) fixes exactly that with two
mechanisms, both reproduced here on our simulator:

- **push-pull search**: at every tree level the CPU chooses, per node,
  between *pushing* the queries to the node's home module (one message
  per query, good when the group is small) and *pulling* the node's
  summary (fences + child ids) to the CPU side (one message of size
  ~fan-out, good when many queries pile onto one node).  The decision
  is a pure load comparison: pull when the group size reaches
  ``pull_threshold`` (default ``(fanout + 1) // 2``, the break-even
  point between ``2q`` pushed words and ``F + q`` pulled words).  The
  same rule applies at the leaf level with the leaf capacity in place
  of the fan-out.
- **shadow subtrees**: an upper-level node that keeps getting pulled is
  *hot*; after ``promote_threshold`` pulls its summary is broadcast to
  every module (a shadow replica), and from then on queries for it are
  sprayed round-robin across all ``P`` replicas -- the hot spot is gone
  and the pull traffic with it.  Shadow replicas are refreshed whenever
  the node changes (splits under it); disabling that refresh is the
  registered storage fault ``pimtree_shadow_stale``, which the
  differential stack must catch.

Layout.  Sorted leaves of at most ``leaf_size`` pairs live in module
state, placed by a seeded hash; interior nodes (fence keys + child
ids) also live on seeded home modules.  The CPU keeps the *root*
resident plus an authoritative **mirror** of every interior node: the
mirror plans structural maintenance (B+-style splits, bottom-up), and
every changed node is re-pushed wholesale to its home module -- search
traffic, however, always goes through the module copies (push, pull,
or shadow), so the read path is honestly charged.  A CPU directory of
``leaf -> (owner, next, size)`` supports chained range scans and
skipping emptied leaves.  Leaves are never merged (deletes leave empty
leaves behind; the directory skips them) -- the same tombstone-flavored
residual the LSM foil accepts.

Conformance: the full ``apply_batch`` surface (get / successor /
upsert / delete / range) with the repository-wide semantics --
successor is non-strict (smallest key >= probe), ranges are inclusive
and ascending, upsert duplicates collapse to the last occurrence.
"""

from __future__ import annotations

import bisect
import math
from typing import Any, Dict, Hashable, List, Optional, Sequence, Set, Tuple

from repro.balls.hashing import KeyLevelHash, stable_hash
from repro.cpuside.semisort import group_by
from repro.ops import BatchOp, Broadcast, run_batch
from repro.sim.machine import PIMMachine


def _log2(n: int) -> float:
    return max(1.0, math.log2(n)) if n > 1 else 1.0


def _chunks(seq: Sequence, cap: int) -> List[list]:
    """Split ``seq`` into the fewest balanced chunks of at most ``cap``."""
    n = len(seq)
    k = max(1, -(-n // cap))
    base, extra = divmod(n, k)
    out, start = [], 0
    for j in range(k):
        size = base + (1 if j < extra else 0)
        out.append(list(seq[start:start + size]))
        start += size
    return out


class _Node:
    """One interior node: ``fences[i]`` separates ``children[i]``.

    ``fences`` are subtree-minimum separators (``fences[0]`` is only
    nominal: child 0 also covers everything below it), so routing is
    ``bisect_right(fences, key) - 1`` clamped at 0.  ``kind`` says what
    the children are (``"leaf"`` or ``"node"``).
    """

    __slots__ = ("fences", "children", "kind")

    def __init__(self, fences: List, children: List[int], kind: str) -> None:
        self.fences = fences
        self.children = children
        self.kind = kind


def _child_of(node: _Node, key: Hashable) -> Tuple[int, str]:
    i = max(0, bisect.bisect_right(node.fences, key) - 1)
    return node.children[i], node.kind


class PIMTree:
    """Skew-resistant ordered map: push-pull search + shadow subtrees."""

    #: Batch ops replayable through :meth:`apply_batch`.
    BATCH_CAPS = frozenset({"get", "successor", "upsert", "delete", "range"})

    def __init__(self, machine: PIMMachine, name: str = "pimtree",
                 leaf_size: int = 16, fanout: int = 16,
                 pull_threshold: Optional[int] = None,
                 leaf_pull_threshold: Optional[int] = None,
                 promote_threshold: int = 4) -> None:
        self.machine = machine
        self.name = name
        self.leaf_size = max(2, leaf_size)
        self.fanout = max(2, fanout)
        self.pull_threshold = (pull_threshold if pull_threshold is not None
                               else max(2, (self.fanout + 1) // 2))
        self.leaf_pull_threshold = (
            leaf_pull_threshold if leaf_pull_threshold is not None
            else max(2, (self.leaf_size + 1) // 2))
        self.promote_threshold = max(1, promote_threshold)
        self.hash = KeyLevelHash(
            machine.num_modules,
            seed=machine.spawn_rng(stable_hash(name) & 0xFFFF)
            .getrandbits(32))
        # CPU-resident root + authoritative mirror of interior nodes.
        self.root = _Node([], [], "leaf")
        self.nodes: Dict[int, _Node] = {}
        self.node_owner: Dict[int, int] = {}
        self.parent: Dict[int, Optional[int]] = {}  # leaf/node id -> nid|root
        # Leaf directory (CPU metadata, maintained exactly).
        self.leaf_owner: Dict[int, int] = {}
        self.leaf_next: Dict[int, Optional[int]] = {}
        self.leaf_len: Dict[int, int] = {}
        self.first_leaf: Optional[int] = None
        # Shadow-subtree state.
        self.shadows: Set[int] = set()
        self.pull_counts: Dict[int, int] = {}
        self._promo_queue: List[int] = []
        #: The ``pimtree_shadow_stale`` fault flips this off: shadowed
        #: nodes keep serving their stale replicas after splits.
        self._shadow_invalidation = True
        #: CPU-side search-traffic counters (not machine metrics).
        self.stats: Dict[str, int] = {
            "push_msgs": 0, "pull_msgs": 0, "shadow_msgs": 0,
            "promotions": 0,
        }
        self.size = 0
        self.height = 0  # interior levels below the root
        self._next_id = 0
        for module in machine.modules:
            module.state.setdefault(name, {"leaf": {}, "node": {},
                                           "shadow": {}})
        if f"{name}:nd_step" not in machine._handlers:
            machine.register_all(self._handlers())

    # ------------------------------------------------------------------
    # handlers (module-resident nodes, shadow replicas, leaves)
    # ------------------------------------------------------------------

    def _handlers(self) -> Dict[str, Any]:
        name = self.name

        def nstate(ctx):
            return ctx.module.state[name]["node"]

        def sstate(ctx):
            return ctx.module.state[name]["shadow"]

        def lstate(ctx):
            return ctx.module.state[name]["leaf"]

        def _store_node(store, nid, fences, children, kind, module):
            old = store.get(nid)
            if old is not None:
                module.free_words(2 * len(old[1]))
            store[nid] = (list(fences), list(children), kind)
            module.alloc_words(2 * len(children))

        def h_nd_store(ctx, nid, fences, children, kind, tag=None):
            ctx.charge(len(children) + 1)
            _store_node(nstate(ctx), nid, fences, children, kind, ctx.module)
            ctx.reply(("ack",), tag=tag)

        def h_nd_step(ctx, nid, key, qid, tag=None):
            fences, children, kind = nstate(ctx)[nid]
            ctx.charge(max(1, int(math.log2(len(children) + 1))))
            i = max(0, bisect.bisect_right(fences, key) - 1)
            ctx.reply(("step", qid, children[i], kind), tag=tag)

        def h_nd_pull(ctx, nid, tag=None):
            fences, children, kind = nstate(ctx)[nid]
            ctx.charge(len(children) + 1)
            ctx.reply(("pull", nid, tuple(fences), tuple(children), kind),
                      size=max(1, len(children)), tag=tag)

        def h_sh_store(ctx, nid, fences, children, kind, tag=None):
            ctx.charge(len(children) + 1)
            _store_node(sstate(ctx), nid, fences, children, kind, ctx.module)
            ctx.reply(("ack",), tag=tag)

        def h_sh_step(ctx, nid, key, qid, tag=None):
            fences, children, kind = sstate(ctx)[nid]
            ctx.charge(max(1, int(math.log2(len(children) + 1))))
            i = max(0, bisect.bisect_right(fences, key) - 1)
            ctx.reply(("step", qid, children[i], kind), tag=tag)

        def h_sh_dump(ctx, tag=None):
            shadows = sstate(ctx)
            ctx.charge(len(shadows) + 1)
            dump = tuple(sorted(
                (nid, tuple(f), tuple(c), k)
                for nid, (f, c, k) in shadows.items()))
            ctx.reply(("shdump", ctx.module.mid, dump),
                      size=max(1, len(dump)), tag=tag)

        def h_lf_store(ctx, lid, items, tag=None):
            leaves = lstate(ctx)
            ctx.charge(len(items) + 1)
            old = leaves.get(lid)
            if old is not None:
                ctx.module.free_words(2 * len(old))
            leaves[lid] = [tuple(p) for p in items]
            ctx.module.alloc_words(2 * len(items))
            ctx.reply(("ack",), tag=tag)

        def h_lf_get(ctx, lid, key, tag=None):
            leaf = lstate(ctx)[lid]
            ctx.charge(max(1, int(math.log2(len(leaf) + 1))))
            i = bisect.bisect_left(leaf, (key,))
            hit = i < len(leaf) and leaf[i][0] == key
            ctx.reply(("lget", key, leaf[i][1] if hit else None, hit),
                      tag=tag)

        def h_lf_succ(ctx, lid, key, qid, tag=None):
            leaf = lstate(ctx)[lid]
            ctx.charge(max(1, int(math.log2(len(leaf) + 1))))
            i = bisect.bisect_left(leaf, (key,))
            found = leaf[i] if i < len(leaf) else None
            ctx.reply(("lsucc", qid, found), tag=tag)

        def h_lf_scan(ctx, lid, lo, hi, qid, tag=None):
            leaf = lstate(ctx)[lid]
            i = bisect.bisect_left(leaf, (lo,))
            out = []
            while i < len(leaf) and leaf[i][0] <= hi:
                out.append(leaf[i])
                i += 1
            ctx.charge(len(out) + max(1, int(math.log2(len(leaf) + 1))))
            last = leaf[-1][0] if leaf else None
            ctx.reply(("lscan", qid, lid, tuple(out), last),
                      size=max(1, len(out)), tag=tag)

        def h_lf_write(ctx, lid, pairs, tag=None):
            leaves = lstate(ctx)
            leaf = leaves[lid]
            ctx.charge(len(leaf) + len(pairs) + 1)
            merged = dict(leaf)
            merged.update(pairs)
            new = sorted(merged.items())
            grown = len(new) - len(leaf)
            if grown > 0:
                ctx.module.alloc_words(2 * grown)
            leaves[lid] = new
            ctx.reply(("lwrote", lid, len(new)), tag=tag)

        def h_lf_del(ctx, lid, keys, tag=None):
            leaves = lstate(ctx)
            leaf = leaves[lid]
            ctx.charge(len(leaf) + len(keys) + 1)
            drop = set(keys)
            new = [p for p in leaf if p[0] not in drop]
            removed = len(leaf) - len(new)
            if removed:
                ctx.module.free_words(2 * removed)
            leaves[lid] = new
            ctx.reply(("ldel", lid, len(new), removed), tag=tag)

        def h_lf_pull(ctx, lid, tag=None):
            leaf = lstate(ctx)[lid]
            ctx.charge(len(leaf) + 1)
            ctx.reply(("lpull", lid, tuple(leaf)),
                      size=max(1, len(leaf)), tag=tag)

        return {
            f"{name}:nd_store": h_nd_store,
            f"{name}:nd_step": h_nd_step,
            f"{name}:nd_pull": h_nd_pull,
            f"{name}:sh_store": h_sh_store,
            f"{name}:sh_step": h_sh_step,
            f"{name}:sh_dump": h_sh_dump,
            f"{name}:lf_store": h_lf_store,
            f"{name}:lf_get": h_lf_get,
            f"{name}:lf_succ": h_lf_succ,
            f"{name}:lf_scan": h_lf_scan,
            f"{name}:lf_write": h_lf_write,
            f"{name}:lf_del": h_lf_del,
            f"{name}:lf_pull": h_lf_pull,
        }

    # ------------------------------------------------------------------
    # CPU-side helpers
    # ------------------------------------------------------------------

    def _new_id(self) -> int:
        self._next_id += 1
        return self._next_id

    def _note_pull(self, nid: int) -> None:
        count = self.pull_counts.get(nid, 0) + 1
        self.pull_counts[nid] = count
        if (count >= self.promote_threshold and nid not in self.shadows
                and nid not in self._promo_queue):
            self._promo_queue.append(nid)

    def _next_nonempty(self, lid: Optional[int]) -> Optional[int]:
        """First leaf at/after ``lid`` in the chain with items (CPU walk
        over the directory; emptied leaves are skipped for free-ish)."""
        hops = 0
        while lid is not None and self.leaf_len.get(lid, 0) == 0:
            lid = self.leaf_next.get(lid)
            hops += 1
        if hops:
            self.machine.cpu.charge(float(hops), 1.0)
        return lid

    def _descend(self, machine: PIMMachine, queries: List[Tuple[int, Any]]):
        """Route every ``(qid, key)`` to its covering leaf id.

        The push-pull walk: per level, per node, ship the queries or
        pull the node by the load rule; hot nodes answer from shadow
        replicas sprayed across all modules.  A generator (used via
        ``yield from``); returns ``{qid: lid}``.  Ends with a shadow
        promotion broadcast when this batch's pulls made nodes hot.
        """
        name, p = self.name, machine.num_modules
        done: Dict[int, int] = {}
        at_node: Dict[int, Tuple[Any, int]] = {}  # qid -> (key, nid)
        root = self.root
        if not root.children:
            return done
        machine.cpu.charge(
            len(queries) * max(1.0, math.log2(len(root.children) + 1)),
            _log2(len(queries)))
        for qid, key in queries:
            child, kind = _child_of(root, key)
            if kind == "leaf":
                done[qid] = child
            else:
                at_node[qid] = (key, child)
        while at_node:
            by_node: Dict[int, List[Tuple[int, Any]]] = {}
            for qid in sorted(at_node):
                key, nid = at_node[qid]
                by_node.setdefault(nid, []).append((qid, key))
            msgs: List = []
            pulled: Dict[int, List[Tuple[int, Any]]] = {}
            for nid in sorted(by_node):
                grp = by_node[nid]
                if nid in self.shadows:
                    for j, (qid, key) in enumerate(grp):
                        msgs.append(((nid + qid) % p, f"{name}:sh_step",
                                     (nid, key, qid), None))
                    self.stats["shadow_msgs"] += len(grp)
                elif len(grp) >= self.pull_threshold:
                    msgs.append((self.node_owner[nid], f"{name}:nd_pull",
                                 (nid,), None))
                    pulled[nid] = grp
                    self.stats["pull_msgs"] += 1
                    self._note_pull(nid)
                else:
                    for qid, key in grp:
                        msgs.append((self.node_owner[nid], f"{name}:nd_step",
                                     (nid, key, qid), None))
                    self.stats["push_msgs"] += len(grp)
            replies = yield msgs
            prev_at = at_node
            at_node = {}
            for r in replies:
                if r.payload[0] == "step":
                    _, qid, child, kind = r.payload
                    key = prev_at[qid][0]
                    if kind == "leaf":
                        done[qid] = child
                    else:
                        at_node[qid] = (key, child)
                else:
                    _, nid, fences, children, kind = r.payload
                    grp = pulled[nid]
                    machine.cpu.charge(
                        len(grp) * max(1.0, math.log2(len(children) + 1)),
                        _log2(len(grp)))
                    node = _Node(list(fences), list(children), kind)
                    for qid, key in grp:
                        child, ckind = _child_of(node, key)
                        if ckind == "leaf":
                            done[qid] = child
                        else:
                            at_node[qid] = (key, child)
        promos = self._drain_promos()
        if promos:
            yield promos
        return done

    def _drain_promos(self) -> List[Broadcast]:
        """Shadow promotions queued by this batch's pulls, as one
        broadcast stage (replicas usable from the next batch on)."""
        msgs: List[Broadcast] = []
        for nid in self._promo_queue:
            node = self.nodes.get(nid)
            if node is None:
                continue
            msgs.append(Broadcast(
                f"{self.name}:sh_store",
                (nid, tuple(node.fences), tuple(node.children), node.kind),
                None, max(1, len(node.children))))
            self.shadows.add(nid)
            self.stats["promotions"] += 1
            self.stats["shadow_msgs"] += self.machine.num_modules
        self._promo_queue = []
        return msgs

    # ------------------------------------------------------------------
    # structural maintenance (planned on the CPU mirror)
    # ------------------------------------------------------------------

    def _plan_splits(self, contents: Dict[int, Sequence]) -> Tuple[List, Set[int]]:
        """B+-style bottom-up splits for the oversize pulled leaves.

        Mutates the CPU mirror and directory; returns ``(store_msgs,
        changed_nids)`` -- the whole-node/leaf rewrites to push in one
        stage, plus the interior nodes whose module (and shadow) copies
        went stale.
        """
        name, cpu = self.name, self.machine.cpu
        msgs: List = []
        changed: Set[int] = set()
        touched_parents: Set[Optional[int]] = set()
        for lid in sorted(contents):
            items = contents[lid]
            chunks = _chunks(items, self.leaf_size)
            cpu.charge(len(items) + len(self.root.children),
                       _log2(len(items)))
            old_next = self.leaf_next[lid]
            self.leaf_len[lid] = len(chunks[0])
            msgs.append((self.leaf_owner[lid], f"{name}:lf_store",
                         (lid, tuple(chunks[0])), None,
                         max(1, len(chunks[0]))))
            pid = self.parent.get(lid)
            node = self.root if pid is None else self.nodes[pid]
            pos = node.children.index(lid)
            prev = lid
            for j, chunk in enumerate(chunks[1:], start=1):
                nlid = self._new_id()
                owner = self.hash.module_of(("leaf", nlid))
                self.leaf_owner[nlid] = owner
                self.leaf_len[nlid] = len(chunk)
                self.leaf_next[prev] = nlid
                prev = nlid
                self.parent[nlid] = pid
                node.fences.insert(pos + j, chunk[0][0])
                node.children.insert(pos + j, nlid)
                msgs.append((owner, f"{name}:lf_store",
                             (nlid, tuple(chunk)), None,
                             max(1, len(chunk))))
            self.leaf_next[prev] = old_next
            if pid is not None:
                changed.add(pid)
            touched_parents.add(pid)
        # Cascade interior overflows bottom-up.
        pending: Set[int] = {pid for pid in touched_parents
                             if pid is not None}
        while pending:
            nxt: Set[int] = set()
            for nid in sorted(pending):
                if len(self.nodes[nid].children) > self.fanout:
                    self._split_node(nid, changed, nxt)
            pending = nxt
        while len(self.root.children) > self.fanout:
            self._split_root(changed)
        for nid in sorted(changed):
            node = self.nodes[nid]
            msgs.append((self.node_owner[nid], f"{name}:nd_store",
                         (nid, tuple(node.fences), tuple(node.children),
                          node.kind), None, max(1, len(node.children))))
        stale_shadows = sorted(changed & self.shadows)
        if self._shadow_invalidation:
            for nid in stale_shadows:
                node = self.nodes[nid]
                msgs.append(Broadcast(
                    f"{name}:sh_store",
                    (nid, tuple(node.fences), tuple(node.children),
                     node.kind), None, max(1, len(node.children))))
                self.stats["shadow_msgs"] += self.machine.num_modules
        return msgs, changed

    def _split_node(self, nid: int, changed: Set[int],
                    cascade: Set[int]) -> None:
        node = self.nodes[nid]
        self.machine.cpu.charge(float(len(node.children)),
                                _log2(len(node.children)))
        fchunks = _chunks(node.fences, self.fanout)
        cchunks = _chunks(node.children, self.fanout)
        node.fences, node.children = fchunks[0], cchunks[0]
        changed.add(nid)
        pid = self.parent.get(nid)
        pnode = self.root if pid is None else self.nodes[pid]
        pos = pnode.children.index(nid)
        for j in range(1, len(cchunks)):
            nnid = self._new_id()
            self.nodes[nnid] = _Node(fchunks[j], cchunks[j], node.kind)
            self.node_owner[nnid] = self.hash.module_of(("node", nnid))
            self.parent[nnid] = pid
            for child in cchunks[j]:
                self.parent[child] = nnid
            pnode.fences.insert(pos + j, fchunks[j][0])
            pnode.children.insert(pos + j, nnid)
            changed.add(nnid)
        if pid is not None:
            changed.add(pid)
            cascade.add(pid)

    def _split_root(self, changed: Set[int]) -> None:
        root = self.root
        self.machine.cpu.charge(float(len(root.children)),
                                _log2(len(root.children)))
        fchunks = _chunks(root.fences, self.fanout)
        cchunks = _chunks(root.children, self.fanout)
        fences, children = [], []
        for fch, cch in zip(fchunks, cchunks):
            nnid = self._new_id()
            self.nodes[nnid] = _Node(fch, cch, root.kind)
            self.node_owner[nnid] = self.hash.module_of(("node", nnid))
            self.parent[nnid] = None
            for child in cch:
                self.parent[child] = nnid
            changed.add(nnid)
            fences.append(fch[0])
            children.append(nnid)
        self.root = _Node(fences, children, "node")
        self.height += 1

    # ------------------------------------------------------------------
    # public batched surface
    # ------------------------------------------------------------------

    def build(self, items: Sequence[Tuple[Hashable, Any]]) -> None:
        """Bulk-load sorted-deduplicated ``items`` into an empty tree."""
        if self.first_leaf is not None:
            raise ValueError("build requires an empty tree")
        run_batch(self.machine, _PTBuildOp(self, items))

    def batch_get(self, keys: Sequence[Hashable]) -> List[Optional[Any]]:
        return run_batch(self.machine, _PTGetOp(self, keys))

    def batch_successor(self, keys: Sequence[Hashable],
                        ) -> List[Optional[Tuple[Hashable, Any]]]:
        return run_batch(self.machine, _PTSuccessorOp(self, keys))

    def batch_range(self, ops: Sequence[Tuple[Hashable, Hashable]],
                    ) -> List[List[Tuple[Hashable, Any]]]:
        return run_batch(self.machine, _PTRangeOp(self, ops))

    def batch_upsert(self, pairs: Sequence[Tuple[Hashable, Any]]) -> None:
        run_batch(self.machine, _PTUpsertOp(self, pairs))

    def batch_delete(self, keys: Sequence[Hashable]) -> None:
        run_batch(self.machine, _PTDeleteOp(self, keys))

    def apply_batch(self, op: str, payload: Sequence) -> Optional[list]:
        """Uniform batch dispatch (contract: see
        :meth:`repro.core.skiplist.PIMSkipList.apply_batch`)."""
        if op == "get":
            return self.batch_get(list(payload)) if payload else []
        if op == "successor":
            return self.batch_successor(list(payload)) if payload else []
        if op == "upsert":
            if payload:
                self.batch_upsert(list(payload))
            return None
        if op == "delete":
            if payload:
                self.batch_delete(list(payload))
            return None
        if op == "range":
            return self.batch_range(list(payload)) if payload else []
        raise ValueError(f"apply_batch: unknown op {op!r}")

    def check_integrity(self) -> None:
        """Assert the structural invariants, dumping module state:

        - the leaf chain covers every directory leaf exactly once, its
          concatenation is strictly increasing, per-leaf sizes match
          the directory, and the total matches ``self.size``;
        - every interior node's module copy equals the CPU mirror;
        - every module holds a shadow replica for exactly the promoted
          nodes, each equal to the mirror (a stale replica -- the
          ``pimtree_shadow_stale`` fault -- fails here).
        """
        run_batch(self.machine, _PTIntegrityOp(self))


# ----------------------------------------------------------------------
# ops
# ----------------------------------------------------------------------

class _PTOp(BatchOp):
    """Base: handlers are registered by the tree's constructor."""

    def __init__(self, tree: PIMTree, suffix: str) -> None:
        self.tree = tree
        self.name = f"{tree.name}:{suffix}"


class _PTBuildOp(_PTOp):
    def __init__(self, tree: PIMTree,
                 items: Sequence[Tuple[Hashable, Any]]) -> None:
        super().__init__(tree, "build")
        self.items = items

    def route(self, machine, plan):
        tree = self.tree
        merged: Dict[Hashable, Any] = {}
        for k, v in self.items:
            merged[k] = v
        items = sorted(merged.items())
        n = len(items)
        if not items:
            return None
        machine.cpu.charge(n * _log2(n), _log2(n))
        name = tree.name
        msgs: List = []
        level: List[Tuple[Any, int]] = []  # (min key, id)
        prev: Optional[int] = None
        for chunk in _chunks(items, tree.leaf_size):
            lid = tree._new_id()
            owner = tree.hash.module_of(("leaf", lid))
            tree.leaf_owner[lid] = owner
            tree.leaf_len[lid] = len(chunk)
            tree.leaf_next[lid] = None
            if prev is None:
                tree.first_leaf = lid
            else:
                tree.leaf_next[prev] = lid
            prev = lid
            level.append((chunk[0][0], lid))
            msgs.append((owner, f"{name}:lf_store", (lid, tuple(chunk)),
                         None, max(1, len(chunk))))
        kind = "leaf"
        while len(level) > tree.fanout:
            up: List[Tuple[Any, int]] = []
            for chunk in _chunks(level, tree.fanout):
                nid = tree._new_id()
                node = _Node([f for f, _ in chunk], [c for _, c in chunk],
                             kind)
                tree.nodes[nid] = node
                tree.node_owner[nid] = tree.hash.module_of(("node", nid))
                for _, child in chunk:
                    tree.parent[child] = nid
                up.append((chunk[0][0], nid))
                msgs.append((tree.node_owner[nid], f"{name}:nd_store",
                             (nid, tuple(node.fences), tuple(node.children),
                              node.kind), None, max(1, len(node.children))))
            level = up
            kind = "node"
            tree.height += 1
        tree.root = _Node([f for f, _ in level], [c for _, c in level],
                          kind)
        for _, child in level:
            tree.parent[child] = None
        tree.size = n
        yield msgs
        return None


class _PTGetOp(_PTOp):
    def __init__(self, tree: PIMTree, keys: Sequence[Hashable]) -> None:
        super().__init__(tree, "batch_get")
        self.keys = keys

    def route(self, machine, plan):
        tree, keys = self.tree, self.keys
        groups = group_by(machine.cpu, list(range(len(keys))),
                          key=lambda i: keys[i])
        out: List[Optional[Any]] = [None] * len(keys)
        if tree.first_leaf is None:
            return out
        distinct = sorted(groups)
        target = yield from tree._descend(
            machine, list(enumerate(distinct)))
        by_leaf: Dict[int, List[Tuple[int, Any]]] = {}
        for qid, key in enumerate(distinct):
            by_leaf.setdefault(target[qid], []).append((qid, key))
        name = tree.name
        values: Dict[Any, Any] = {}
        msgs: List = []
        pulled: Dict[int, List[Any]] = {}
        for lid in sorted(by_leaf):
            grp = by_leaf[lid]
            if tree.leaf_len.get(lid, 0) == 0:
                for _, key in grp:
                    values[key] = None
            elif len(grp) >= tree.leaf_pull_threshold:
                msgs.append((tree.leaf_owner[lid], f"{name}:lf_pull",
                             (lid,), None))
                pulled[lid] = [key for _, key in grp]
                tree.stats["pull_msgs"] += 1
            else:
                for _, key in grp:
                    msgs.append((tree.leaf_owner[lid], f"{name}:lf_get",
                                 (lid, key), None))
                tree.stats["push_msgs"] += len(grp)
        if msgs:
            replies = yield msgs
            for r in replies:
                if r.payload[0] == "lget":
                    _, key, value, hit = r.payload
                    values[key] = value if hit else None
                else:
                    _, lid, items = r.payload
                    probe_keys = pulled[lid]
                    machine.cpu.charge(
                        len(probe_keys) * max(1.0,
                                              math.log2(len(items) + 1)),
                        _log2(len(probe_keys)))
                    for key in probe_keys:
                        i = bisect.bisect_left(items, (key,))
                        hit = i < len(items) and items[i][0] == key
                        values[key] = items[i][1] if hit else None
        for key, idxs in groups.items():
            for i in idxs:
                out[i] = values[key]
        machine.cpu.charge(float(len(keys)), _log2(len(keys)))
        return out


class _PTSuccessorOp(_PTOp):
    def __init__(self, tree: PIMTree, keys: Sequence[Hashable]) -> None:
        super().__init__(tree, "batch_successor")
        self.keys = keys

    def route(self, machine, plan):
        tree, keys = self.tree, self.keys
        groups = group_by(machine.cpu, list(range(len(keys))),
                          key=lambda i: keys[i])
        out: List[Optional[Tuple[Hashable, Any]]] = [None] * len(keys)
        if tree.first_leaf is None:
            return out
        distinct = sorted(groups)
        target = yield from tree._descend(
            machine, list(enumerate(distinct)))
        name = tree.name
        found: Dict[Any, Optional[Tuple[Hashable, Any]]] = {}
        # key -> the leaf currently probed (None -> chain exhausted).
        pending: Dict[Any, Optional[int]] = {}
        for qid, key in enumerate(distinct):
            lid = tree._next_nonempty(target[qid])
            if lid is None:
                found[key] = None
            else:
                pending[key] = lid
        while pending:
            by_leaf: Dict[int, List[Any]] = {}
            for key in sorted(pending):
                by_leaf.setdefault(pending[key], []).append(key)
            msgs: List = []
            pulled: Dict[int, List[Any]] = {}
            for lid in sorted(by_leaf):
                grp = by_leaf[lid]
                if len(grp) >= tree.leaf_pull_threshold:
                    msgs.append((tree.leaf_owner[lid], f"{name}:lf_pull",
                                 (lid,), None))
                    pulled[lid] = grp
                    tree.stats["pull_msgs"] += 1
                else:
                    for key in grp:
                        msgs.append((tree.leaf_owner[lid], f"{name}:lf_succ",
                                     (lid, key, key), None))
                    tree.stats["push_msgs"] += len(grp)
            replies = yield msgs
            resolved: Dict[Any, Optional[Tuple[Hashable, Any]]] = {}
            for r in replies:
                if r.payload[0] == "lsucc":
                    _, key, hit = r.payload
                    resolved[key] = tuple(hit) if hit is not None else None
                else:
                    _, lid, items = r.payload
                    grp = pulled[lid]
                    machine.cpu.charge(
                        len(grp) * max(1.0, math.log2(len(items) + 1)),
                        _log2(len(grp)))
                    for key in grp:
                        i = bisect.bisect_left(items, (key,))
                        resolved[key] = (tuple(items[i]) if i < len(items)
                                         else None)
            nxt: Dict[Any, Optional[int]] = {}
            for key, lid in pending.items():
                hit = resolved[key]
                if hit is not None:
                    found[key] = hit
                    continue
                # Every item here is < key; any later non-empty leaf's
                # minimum exceeds this leaf's range, so it answers.
                follow = tree._next_nonempty(tree.leaf_next.get(lid))
                if follow is None:
                    found[key] = None
                else:
                    nxt[key] = follow
            pending = nxt
        for key, idxs in groups.items():
            for i in idxs:
                out[i] = found[key]
        machine.cpu.charge(float(len(keys)), _log2(len(keys)))
        return out


class _PTRangeOp(_PTOp):
    def __init__(self, tree: PIMTree,
                 ops: Sequence[Tuple[Hashable, Hashable]]) -> None:
        super().__init__(tree, "batch_range")
        self.ops = ops

    def route(self, machine, plan):
        tree, ops = self.tree, self.ops
        out: List[List[Tuple[Hashable, Any]]] = [[] for _ in ops]
        if tree.first_leaf is None:
            return out
        queries = [(i, lo) for i, (lo, _hi) in enumerate(ops)]
        target = yield from tree._descend(machine, queries)
        name = tree.name
        # op index -> leaf currently scanned; ops hop their chains
        # frontier-parallel (one stage per hop across all ops).
        active: Dict[int, int] = {}
        for i in range(len(ops)):
            lid = tree._next_nonempty(target.get(i))
            if lid is not None:
                active[i] = lid
        while active:
            msgs = [(tree.leaf_owner[active[i]], f"{name}:lf_scan",
                     (active[i], ops[i][0], ops[i][1], i), None)
                    for i in sorted(active)]
            tree.stats["push_msgs"] += len(msgs)
            replies = yield msgs
            nxt: Dict[int, int] = {}
            for r in replies:
                _, i, lid, items, last = r.payload
                out[i].extend(tuple(p) for p in items)
                hi = ops[i][1]
                if last is None or last > hi:
                    continue
                follow = tree._next_nonempty(tree.leaf_next.get(lid))
                if follow is not None:
                    nxt[i] = follow
            active = nxt
        total = sum(len(rows) for rows in out)
        machine.cpu.charge(total + len(ops), _log2(total + len(ops)))
        return out


class _PTUpsertOp(_PTOp):
    def __init__(self, tree: PIMTree,
                 pairs: Sequence[Tuple[Hashable, Any]]) -> None:
        super().__init__(tree, "batch_upsert")
        self.pairs = pairs

    def route(self, machine, plan):
        tree = self.tree
        merged: Dict[Hashable, Any] = {}
        for k, v in self.pairs:
            merged[k] = v
        machine.cpu.charge(2.0 * len(self.pairs), _log2(len(self.pairs)))
        if not merged:
            return None
        if tree.first_leaf is None:
            # Bootstrap: the first upsert bulk-loads the empty tree.
            yield from _PTBuildOp(tree, sorted(merged.items())).route(
                machine, plan)
            return None
        name = tree.name
        distinct = sorted(merged)
        target = yield from tree._descend(
            machine, list(enumerate(distinct)))
        by_leaf: Dict[int, List[Tuple[Hashable, Any]]] = {}
        for qid, key in enumerate(distinct):
            by_leaf.setdefault(target[qid], []).append((key, merged[key]))
        msgs = [(tree.leaf_owner[lid], f"{name}:lf_write",
                 (lid, tuple(by_leaf[lid])), None,
                 max(1, len(by_leaf[lid])))
                for lid in sorted(by_leaf)]
        replies = yield msgs
        oversize: List[int] = []
        for r in replies:
            _, lid, new_len = r.payload
            tree.size += new_len - tree.leaf_len[lid]
            tree.leaf_len[lid] = new_len
            if new_len > tree.leaf_size:
                oversize.append(lid)
        if oversize:
            replies = yield [(tree.leaf_owner[lid], f"{name}:lf_pull",
                              (lid,), None) for lid in sorted(oversize)]
            contents = {r.payload[1]: r.payload[2] for r in replies}
            store_msgs, _changed = tree._plan_splits(contents)
            yield store_msgs
        return None


class _PTDeleteOp(_PTOp):
    def __init__(self, tree: PIMTree, keys: Sequence[Hashable]) -> None:
        super().__init__(tree, "batch_delete")
        self.keys = keys

    def route(self, machine, plan):
        tree = self.tree
        groups = group_by(machine.cpu, list(self.keys), key=lambda k: k)
        if not groups or tree.first_leaf is None:
            return None
        name = tree.name
        distinct = sorted(groups)
        target = yield from tree._descend(
            machine, list(enumerate(distinct)))
        by_leaf: Dict[int, List[Hashable]] = {}
        for qid, key in enumerate(distinct):
            lid = target[qid]
            if tree.leaf_len.get(lid, 0) == 0:
                continue  # nothing to delete there
            by_leaf.setdefault(lid, []).append(key)
        msgs = [(tree.leaf_owner[lid], f"{name}:lf_del",
                 (lid, tuple(by_leaf[lid])), None,
                 max(1, len(by_leaf[lid])))
                for lid in sorted(by_leaf)]
        if msgs:
            replies = yield msgs
            for r in replies:
                _, lid, new_len, removed = r.payload
                tree.leaf_len[lid] = new_len
                tree.size -= removed
        return None


class _PTIntegrityOp(_PTOp):
    def __init__(self, tree: PIMTree) -> None:
        super().__init__(tree, "check_integrity")

    def route(self, machine, plan):
        tree, name = self.tree, self.tree.name
        msgs: List = [(owner, f"{name}:lf_pull", (lid,), None)
                      for lid, owner in sorted(tree.leaf_owner.items())]
        msgs.extend((tree.node_owner[nid], f"{name}:nd_pull", (nid,), None)
                    for nid in sorted(tree.nodes))
        msgs.append(Broadcast(f"{name}:sh_dump", (), None, 1))
        replies = yield msgs
        leaves: Dict[int, tuple] = {}
        nodes: Dict[int, tuple] = {}
        shadow_dumps: Dict[int, tuple] = {}
        for r in replies:
            if r.payload[0] == "lpull":
                leaves[r.payload[1]] = r.payload[2]
            elif r.payload[0] == "pull":
                _, nid, fences, children, kind = r.payload
                nodes[nid] = (fences, children, kind)
            else:
                _, mid, dump = r.payload
                shadow_dumps[mid] = dump
        # Leaf chain: complete, ordered, sizes exact, total exact.
        assert set(leaves) == set(tree.leaf_owner), \
            f"leaf dump {sorted(leaves)} != directory " \
            f"{sorted(tree.leaf_owner)}"
        seen: List[int] = []
        lid = tree.first_leaf
        prev_key = None
        total = 0
        while lid is not None:
            seen.append(lid)
            items = leaves[lid]
            assert len(items) == tree.leaf_len[lid], \
                f"leaf {lid}: {len(items)} items != directory " \
                f"{tree.leaf_len[lid]}"
            for k, _v in items:
                assert prev_key is None or k > prev_key, \
                    f"leaf {lid}: key {k!r} <= predecessor {prev_key!r}"
                prev_key = k
            total += len(items)
            lid = tree.leaf_next[lid]
        assert sorted(seen) == sorted(tree.leaf_owner), \
            f"chain visits {sorted(seen)} != directory " \
            f"{sorted(tree.leaf_owner)}"
        assert total == tree.size, \
            f"{total} chained items != size {tree.size}"
        # Interior module copies match the CPU mirror.
        assert set(nodes) == set(tree.nodes), \
            f"node dump {sorted(nodes)} != mirror {sorted(tree.nodes)}"
        for nid, (fences, children, kind) in nodes.items():
            mirror = tree.nodes[nid]
            assert (list(fences) == list(mirror.fences)
                    and list(children) == list(mirror.children)
                    and kind == mirror.kind), \
                f"node {nid}: module copy {fences}/{children}/{kind} != " \
                f"mirror {mirror.fences}/{mirror.children}/{mirror.kind}"
        # Shadow replicas: present on every module, none stray, each
        # bit-equal to the mirror.
        for mid in range(machine.num_modules):
            dump = dict()
            for nid, fences, children, kind in shadow_dumps.get(mid, ()):
                dump[nid] = (fences, children, kind)
            assert set(dump) == set(tree.shadows), \
                f"module {mid}: shadow set {sorted(dump)} != promoted " \
                f"{sorted(tree.shadows)}"
            for nid, (fences, children, kind) in dump.items():
                mirror = tree.nodes[nid]
                assert (list(fences) == list(mirror.fences)
                        and list(children) == list(mirror.children)
                        and kind == mirror.kind), \
                    f"module {mid}: stale shadow of node {nid}: " \
                    f"{fences}/{children} != mirror " \
                    f"{mirror.fences}/{mirror.children}"
        return None
