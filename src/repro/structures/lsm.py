"""An LSM-style ordered store on the PIM model ("PIM-LSM").

A log-structured merge design composed from this repository's parts --
and a foil for the paper's skip list:

- **delta**: recent updates live in a :class:`PIMSkipList` (all its
  PIM-balance guarantees apply to the write path);
- **run**: the bulk of the data is one static sorted run, chopped into
  blocks of ``block_size`` keys; blocks are placed on modules by a
  seeded hash (Lemma 2.1 balance for the *storage*), and the fence keys
  (each block's first key) are replicated on every module -- the same
  replicate-the-top idea as the skip list's upper part, so routing a
  query costs a local binary search plus **one** message;
- **compaction**: when the delta outgrows ``flush_threshold``, its
  contents (including tombstones) merge with the run through
  :func:`repro.algorithms.sorting.pim_sample_sort`-style machinery --
  here a CPU-coordinated merge of already-sorted block stream + sorted
  delta, rewritten into fresh hashed blocks.

Why it is a foil: the run's *blocks* are range partitions.  Point Gets
stay balanced (dedup + hashed blocks), but an adversarial batch of
distinct Successor keys that all land in one block funnels into that
block's module -- the serialization the paper's pivot machinery was
invented to avoid.  ``bench_lsm.py`` measures exactly that gap.

Semantics: an ordered map (upsert/delete/get/successor/range), with
deletes as tombstones until the next compaction.
"""

from __future__ import annotations

import bisect
import math
from typing import Any, Dict, Hashable, Iterable, List, Optional, Sequence, Tuple

from repro.balls.hashing import KeyLevelHash
from repro.core.skiplist import PIMSkipList
from repro.cpuside.semisort import group_by
from repro.ops import BatchOp, run_batch
from repro.sim.machine import PIMMachine

TOMBSTONE = ("__lsm_tombstone__",)


class PIMLSMStore:
    """Delta skip list + static hashed-block run, with compaction."""

    def __init__(self, machine: PIMMachine, name: str = "lsm",
                 block_size: int = 64,
                 flush_threshold: Optional[int] = None) -> None:
        self.machine = machine
        self.name = name
        self.block_size = max(4, block_size)
        p = machine.num_modules
        log_p = max(1, int(round(math.log2(p)))) if p > 1 else 1
        self.flush_threshold = (flush_threshold if flush_threshold
                                is not None else 4 * p * log_p * log_p)
        self.delta = PIMSkipList(machine, name=f"{name}:delta")
        self.hash = KeyLevelHash(p, seed=machine.spawn_rng(0x15A).getrandbits(32))
        self.generation = 0
        self.fences: List[Hashable] = []   # replicated: first key per block
        self.block_owner: List[int] = []
        self.run_size = 0
        for module in machine.modules:
            module.state.setdefault(name, {})
        if f"{name}:blk_get" not in machine._handlers:
            machine.register_all(self._handlers())

    # ------------------------------------------------------------------
    # handlers (block storage)
    # ------------------------------------------------------------------

    def _handlers(self) -> Dict[str, Any]:
        name = self.name

        def blocks(ctx):
            return ctx.module.state[name]

        def h_store(ctx, bid, block, tag=None):
            ctx.charge(len(block) + 1)
            blocks(ctx)[bid] = block
            ctx.module.alloc_words(2 * len(block))
            ctx.reply(("ack",), tag=tag)

        def h_drop(ctx, bid, tag=None):
            ctx.charge(1)
            block = blocks(ctx).pop(bid, None)
            if block is not None:
                ctx.module.free_words(2 * len(block))
            ctx.reply(("ack",), tag=tag)

        def h_get(ctx, bid, key, tag=None):
            block = blocks(ctx)[bid]
            ctx.charge(max(1, int(math.log2(len(block) + 1))))
            i = bisect.bisect_left(block, (key,))
            hit = i < len(block) and block[i][0] == key
            ctx.reply(("blk", key, block[i][1] if hit else None, hit),
                      tag=tag)

        def h_succ(ctx, bid, key, opid, tag=None):
            block = blocks(ctx)[bid]
            ctx.charge(max(1, int(math.log2(len(block) + 1))))
            ctx.touch((self.name, "blk", bid))
            i = bisect.bisect_left(block, (key,))
            found = block[i] if i < len(block) else None
            ctx.reply(("bsucc", opid, found), tag=tag)

        def h_scan(ctx, bid, lo, hi, opid, tag=None):
            block = blocks(ctx)[bid]
            i = bisect.bisect_left(block, (lo,))
            out = []
            while i < len(block) and block[i][0] <= hi:
                out.append(block[i])
                i += 1
            ctx.charge(len(out) + max(1, int(math.log2(len(block) + 1))))
            ctx.reply(("bscan", opid, bid, out),
                      size=max(1, len(out)), tag=tag)

        def h_dump(ctx, bid, tag=None):
            block = blocks(ctx)[bid]
            ctx.charge(len(block) + 1)
            ctx.reply(("bdump", bid, block), size=max(1, len(block)),
                      tag=tag)

        return {
            f"{name}:blk_store": h_store,
            f"{name}:blk_drop": h_drop,
            f"{name}:blk_get": h_get,
            f"{name}:blk_succ": h_succ,
            f"{name}:blk_scan": h_scan,
            f"{name}:blk_dump": h_dump,
        }

    # ------------------------------------------------------------------
    # routing
    # ------------------------------------------------------------------

    def _block_of(self, key: Hashable) -> Optional[int]:
        """The run block that could contain ``key`` (fence routing is a
        local/CPU binary search over the replicated fences)."""
        if not self.fences:
            return None
        self.machine.cpu.charge(max(1.0, math.log2(len(self.fences) + 1)),
                                1.0)
        i = bisect.bisect_right(self.fences, key) - 1
        return max(0, i)

    @property
    def size_estimate(self) -> int:
        """Run size + delta size (tombstones make this an upper bound)."""
        return self.run_size + self.delta.size

    # ------------------------------------------------------------------
    # writes
    # ------------------------------------------------------------------

    def batch_upsert(self, pairs: Sequence[Tuple[Hashable, Any]]) -> None:
        """Upsert into the delta (flushing when it outgrows the threshold)."""
        self.delta.batch_upsert(list(pairs))
        self._maybe_flush()

    def batch_delete(self, keys: Sequence[Hashable]) -> None:
        """Tombstone the keys (physical removal happens at compaction)."""
        self.delta.batch_upsert([(k, TOMBSTONE) for k in set(keys)])
        self._maybe_flush()

    def _maybe_flush(self) -> None:
        if self.delta.size > self.flush_threshold:
            self.compact()

    # ------------------------------------------------------------------
    # reads
    # ------------------------------------------------------------------

    def batch_get(self, keys: Sequence[Hashable]) -> List[Optional[Any]]:
        """Point lookups: delta first (shadowing), then one fence-routed
        block probe per miss."""
        return run_batch(self.machine, _LSMGetOp(self, keys))

    def batch_successor(self, keys: Sequence[Hashable],
                        ) -> List[Optional[Tuple[Hashable, Any]]]:
        """Min of the delta's successor and the run's successor.

        The run side routes each query to one block (possibly spilling
        to the next block when the first holds nothing at/after the
        key) -- a range-partitioned access pattern with the imbalance
        that entails under adversarial batches.
        """
        return run_batch(self.machine, _LSMSuccessorOp(self, keys))

    def _delta_successor_skipping_tombstones(self, keys):
        """Delta successors, stepping over tombstoned entries."""
        res = self.delta.batch_successor(list(keys))
        out = []
        for key, cand in zip(keys, res):
            probe = key
            while cand is not None and cand[1] == TOMBSTONE:
                probe = cand[0]
                nxt = self.delta.batch_successor([self._just_above(probe)])
                cand = nxt[0]
            out.append(cand)
        return out

    def _resolve_shadowed(self, keys, merged):
        """A run successor may be tombstoned or shadowed in the delta."""
        out = []
        for key, cand in zip(keys, merged):
            while cand is not None:
                dv = self.delta.batch_get([cand[0]])[0]
                if dv == TOMBSTONE:
                    nxt = self.batch_successor_one_past(cand[0])
                    cand = nxt
                    continue
                if dv is not None:
                    cand = (cand[0], dv)
                break
            out.append(cand)
        return out

    def batch_successor_one_past(self, key: Hashable,
                                 ) -> Optional[Tuple[Hashable, Any]]:
        """Successor strictly after ``key`` (tombstone-skipping helper)."""
        return self.batch_successor([self._just_above(key)])[0]

    @staticmethod
    def _just_above(key: Hashable):
        from repro.core.probes import just_above
        return just_above(key)

    def batch_range(self, ops: Sequence[Tuple[Hashable, Hashable]],
                    ) -> List[List[Tuple[Hashable, Any]]]:
        """Merge delta ranges with block scans, dropping tombstones."""
        return run_batch(self.machine, _LSMRangeOp(self, ops))

    #: Batch ops replayable through :meth:`apply_batch`.
    BATCH_CAPS = frozenset({"get", "successor", "upsert", "delete", "range"})

    def apply_batch(self, op: str, payload: Sequence) -> Optional[list]:
        """Uniform batch dispatch (contract: see
        :meth:`repro.core.skiplist.PIMSkipList.apply_batch`)."""
        if op == "get":
            return self.batch_get(list(payload))
        if op == "successor":
            return self.batch_successor(list(payload))
        if op == "upsert":
            if payload:
                self.batch_upsert(list(payload))
            return None
        if op == "delete":
            if payload:
                self.batch_delete(list(payload))
            return None
        if op == "range":
            return self.batch_range(list(payload)) if payload else []
        raise ValueError(f"apply_batch: unknown op {op!r}")

    # ------------------------------------------------------------------
    # compaction
    # ------------------------------------------------------------------

    def compact(self) -> None:
        """Merge delta into the run; rewrite hashed blocks; clear delta."""
        run_batch(self.machine, _LSMCompactOp(self))

    def _min_key_probe(self):
        # smallest key present in the delta
        first = self.delta.successor(self._neg_probe())
        return first[0] if first else 0

    def _max_key_probe(self):
        last = self.delta.predecessor(self._pos_probe())
        return last[0] if last else 0

    @staticmethod
    def _neg_probe():
        from repro.core.probes import BELOW_ALL
        return BELOW_ALL

    @staticmethod
    def _pos_probe():
        from repro.core.probes import ABOVE_ALL
        return ABOVE_ALL


class _LSMOp(BatchOp):
    """Base for the store's ops: block handlers are registered by the
    store's constructor (guarded by name), so ops contribute none."""

    def __init__(self, lsm: PIMLSMStore, suffix: str) -> None:
        self.lsm = lsm
        self.name = f"{lsm.name}:{suffix}"


class _LSMGetOp(_LSMOp):
    def __init__(self, lsm: PIMLSMStore, keys: Sequence[Hashable]) -> None:
        super().__init__(lsm, "batch_get")
        self.keys = keys

    def route(self, machine, plan):
        lsm, keys = self.lsm, self.keys
        groups = group_by(machine.cpu, list(range(len(keys))),
                          key=lambda i: keys[i])
        out: List[Optional[Any]] = [None] * len(keys)
        delta_vals = lsm.delta.batch_get(list(groups))
        delta_hit: Dict[Hashable, Any] = {}
        misses: List[Hashable] = []
        for key, dv in zip(groups, delta_vals):
            if dv is not None:
                delta_hit[key] = None if dv == TOMBSTONE else dv
            else:
                misses.append(key)
        msgs = []
        fn_get = f"{lsm.name}:blk_get"
        for key in misses:
            bid = lsm._block_of(key)
            if bid is None:
                delta_hit[key] = None
                continue
            msgs.append((lsm.block_owner[bid], fn_get, (bid, key), None))
        replies = yield msgs
        for r in replies:
            _, key, value, hit = r.payload
            delta_hit[key] = value if hit else None
        for key, idxs in groups.items():
            for i in idxs:
                out[i] = delta_hit.get(key)
        machine.cpu.charge(len(keys), max(1.0, math.log2(len(keys) + 1)))
        return out


class _LSMSuccessorOp(_LSMOp):
    def __init__(self, lsm: PIMLSMStore, keys: Sequence[Hashable]) -> None:
        super().__init__(lsm, "batch_successor")
        self.keys = keys

    def route(self, machine, plan):
        lsm, keys = self.lsm, self.keys
        n = len(keys)
        delta_succ = lsm._delta_successor_skipping_tombstones(keys)
        run_succ: List[Optional[Tuple[Hashable, Any]]] = [None] * n
        pending: Dict[int, int] = {}
        fn_succ = f"{lsm.name}:blk_succ"
        msgs = []
        for i, key in enumerate(keys):
            bid = lsm._block_of(key)
            if bid is None:
                continue
            msgs.append((lsm.block_owner[bid], fn_succ, (bid, key, i),
                         None))
            pending[i] = bid
        replies = yield msgs
        # spill rounds: a block holding nothing at/after the key forwards
        # the probe to its right neighbour, one extra stage per hop
        while pending:
            spills = []
            for r in replies:
                _, opid, found = r.payload
                bid = pending.pop(opid)
                if found is not None:
                    run_succ[opid] = found
                elif bid + 1 < len(lsm.block_owner):
                    spills.append((lsm.block_owner[bid + 1], fn_succ,
                                   (bid + 1, keys[opid], opid), None))
                    pending[opid] = bid + 1
            if pending:
                replies = yield spills
        out: List[Optional[Tuple[Hashable, Any]]] = []
        for i, key in enumerate(keys):
            cands = [c for c in (delta_succ[i], run_succ[i])
                     if c is not None]
            if not cands:
                out.append(None)
                continue
            best = min(cands, key=lambda kv: kv[0])
            out.append(best)
        machine.cpu.charge(2 * n, max(1.0, math.log2(n + 1)))
        return lsm._resolve_shadowed(keys, out)


class _LSMRangeOp(_LSMOp):
    def __init__(self, lsm: PIMLSMStore,
                 ops: Sequence[Tuple[Hashable, Hashable]]) -> None:
        super().__init__(lsm, "batch_range")
        self.ops = ops

    def route(self, machine, plan):
        lsm, ops = self.lsm, self.ops
        delta_res = lsm.delta.batch_range(list(ops))
        run_parts: Dict[int, Dict[int, List]] = {}
        fn_scan = f"{lsm.name}:blk_scan"
        msgs = []
        for i, (lo, hi) in enumerate(ops):
            b0 = lsm._block_of(lo)
            if b0 is None:
                continue
            b1 = lsm._block_of(hi)
            for bid in range(b0, (b1 if b1 is not None else b0) + 1):
                msgs.append((lsm.block_owner[bid], fn_scan,
                             (bid, lo, hi, i), None))
        replies = yield msgs
        for r in replies:
            _, opid, bid, items = r.payload
            run_parts.setdefault(opid, {})[bid] = items
        out: List[List[Tuple[Hashable, Any]]] = []
        work = 0
        for i, (lo, hi) in enumerate(ops):
            run_items: List[Tuple[Hashable, Any]] = []
            for bid in sorted(run_parts.get(i, {})):
                run_items.extend(run_parts[i][bid])
            delta_items = delta_res[i].values
            delta_map = dict(delta_items)
            merged: List[Tuple[Hashable, Any]] = []
            for k, v in run_items:
                if k in delta_map:
                    continue  # shadowed (update or tombstone)
                merged.append((k, v))
            merged.extend((k, v) for k, v in delta_items
                          if v != TOMBSTONE)
            merged.sort(key=lambda kv: kv[0])
            work += len(merged) + 1
            out.append(merged)
        machine.cpu.charge(
            work * max(1.0, math.log2(work + 1)),
            max(1.0, math.log2(work + 1)),
        )
        return out


class _LSMCompactOp(_LSMOp):
    def __init__(self, lsm: PIMLSMStore) -> None:
        super().__init__(lsm, "compact")

    def route(self, machine, plan):
        lsm = self.lsm
        # 1. stream the old blocks back (balanced: each block one reply)
        old_blocks: Dict[int, List] = {}
        replies = yield ((owner, f"{lsm.name}:blk_dump", (bid,), None)
                         for bid, owner in enumerate(lsm.block_owner))
        for r in replies:
            _, bid, block = r.payload
            old_blocks[bid] = block
        run_items: List[Tuple[Hashable, Any]] = []
        for bid in sorted(old_blocks):
            run_items.extend(old_blocks[bid])
        # 2. delta contents, sorted, via a full-range read
        delta_items = []
        if lsm.delta.size:
            res = lsm.delta.range_broadcast(
                lsm._min_key_probe(), lsm._max_key_probe())
            delta_items = res.values
        # 3. CPU merge with shadowing + tombstone elimination
        merged: List[Tuple[Hashable, Any]] = []
        di = dict(delta_items)
        for k, v in run_items:
            if k not in di:
                merged.append((k, v))
        merged.extend((k, v) for k, v in delta_items if v != TOMBSTONE)
        merged.sort(key=lambda kv: kv[0])
        n = len(merged)
        machine.cpu.charge(n * max(1.0, math.log2(n + 1)),
                           max(1.0, math.log2(n + 1)))
        # 4. rewrite fresh blocks under a new generation
        yield ((owner, f"{lsm.name}:blk_drop", (bid,), None)
               for bid, owner in enumerate(lsm.block_owner))
        lsm.generation += 1
        lsm.fences = []
        lsm.block_owner = []
        store_msgs = []
        fn_store = f"{lsm.name}:blk_store"
        for start in range(0, n, lsm.block_size):
            block = merged[start:start + lsm.block_size]
            bid = len(lsm.fences)
            owner = lsm.hash.module_of((lsm.generation, bid))
            lsm.fences.append(block[0][0])
            lsm.block_owner.append(owner)
            store_msgs.append((owner, fn_store, (bid, block), None,
                               max(1, len(block))))
        yield store_msgs
        lsm.run_size = n
        # 5. clear the delta
        if lsm.delta.size:
            remaining = [k for k, _ in delta_items]
            lsm.delta.batch_delete(remaining)
