"""Additional batch-parallel data structures on the PIM model.

§2.2 notes that Choe et al. studied PIM-aware linked lists, FIFO queues,
and skip lists empirically.  This package provides model-native versions
of the simpler structures, built on the same placement ideas as the
skip list (hash placement for balance, CPU-side coordination state):

- :class:`~repro.structures.fifo.PIMQueue` -- a batch-parallel FIFO
  queue with exact FIFO semantics and PIM-balanced batches;
- :class:`~repro.structures.priority_queue.PIMPriorityQueue` -- a
  batch-parallel min-priority queue composed on the PIM skip list,
  hot-spot-free even under colliding priorities;
- :class:`~repro.structures.lsm.PIMLSMStore` -- an LSM-style ordered
  store (skip-list delta + hashed static blocks + compaction), built as
  a foil: its run side is range-partitioned, so adversarial successor
  batches serialize exactly the way §2.2 predicts;
- :class:`~repro.structures.pimtree.PIMTree` -- the authors' follow-up
  skew-resistant successor index (PIM-tree, PVLDB 2022): push-pull
  search plus shadow subtrees, the answer to the hot-path serialization
  the skip list and the LSM foil both suffer under adversarial batches.
"""

from repro.structures.fifo import PIMQueue
from repro.structures.lsm import PIMLSMStore
from repro.structures.pimtree import PIMTree
from repro.structures.priority_queue import PIMPriorityQueue

__all__ = ["PIMLSMStore", "PIMPriorityQueue", "PIMQueue", "PIMTree"]
