"""A batch-parallel FIFO queue on the PIM model.

Design: every enqueued item gets a global sequence number from a CPU-side
tail counter; the item is stored on the module chosen by hashing its
sequence number.  Dequeues read off a CPU-side head counter.  Because
consecutive sequence numbers hash to uniformly random modules, *any*
batch of ``B = Omega(P log P)`` enqueues or dequeues touches every module
``O(B/P)`` times whp (Lemma 2.1) -- there is no hot tail module, the
classic scalability failure of centralized queues.

Costs per batch of ``B``: ``O(B/P)`` whp IO time, ``O(B/P)`` whp PIM
time, O(1) rounds, O(B) CPU work, O(log B) CPU depth.  FIFO semantics
are exact (the sequence counter orders items globally; batches are the
unit of concurrency, as everywhere in the model).
"""

from __future__ import annotations

import math
from typing import Any, Dict, List, Optional, Sequence

from repro.balls.hashing import KeyLevelHash
from repro.ops import BatchOp, run_batch
from repro.sim.machine import PIMMachine


class PIMQueue:
    """Batch-parallel FIFO queue with hash-placed slots."""

    def __init__(self, machine: PIMMachine, name: str = "fifo") -> None:
        self.machine = machine
        self.name = name
        self.head = 0  # next sequence number to dequeue
        self.tail = 0  # next sequence number to assign
        self.hash = KeyLevelHash(
            machine.num_modules,
            seed=machine.spawn_rng(0xF1F0).getrandbits(32),
        )
        for module in machine.modules:
            module.state.setdefault(name, {})
        if f"{name}:store" not in machine._handlers:
            machine.register_all(self._handlers())

    def _handlers(self) -> Dict[str, Any]:
        name = self.name

        def h_store(ctx, seq, value, tag=None):
            ctx.charge(1)
            ctx.module.state[name][seq] = value
            ctx.module.alloc_words(2)
            ctx.reply(("ack",), tag=tag)

        def h_take(ctx, seq, tag=None):
            ctx.charge(1)
            slots = ctx.module.state[name]
            if seq not in slots:
                raise KeyError(f"queue slot {seq} missing (counter bug)")
            value = slots.pop(seq)
            ctx.module.free_words(2)
            ctx.reply(("item", seq, value), tag=tag)

        return {f"{name}:store": h_store, f"{name}:take": h_take}

    def _owner(self, seq: int) -> int:
        return self.hash.module_of(("fifo", seq))

    def __len__(self) -> int:
        return self.tail - self.head

    def enqueue_batch(self, values: Sequence[Any]) -> None:
        """Append ``values`` in order (one balanced round)."""
        run_batch(self.machine, _EnqueueOp(self, values))

    def dequeue_batch(self, count: int) -> List[Any]:
        """Remove and return up to ``count`` oldest items, in order."""
        return run_batch(self.machine, _DequeueOp(self, count))

    def peek_depth(self) -> int:
        """Items currently queued (CPU-side counters; free)."""
        return len(self)


class _QueueOp(BatchOp):
    """Base for the queue's ops: handlers are registered by the queue's
    constructor (guarded by name), so ops contribute none themselves."""

    def __init__(self, q: PIMQueue, suffix: str) -> None:
        self.q = q
        self.name = f"{q.name}:{suffix}"


class _EnqueueOp(_QueueOp):
    def __init__(self, q: PIMQueue, values: Sequence[Any]) -> None:
        super().__init__(q, "enqueue")
        self.values = values

    def route(self, machine, plan):
        q, values = self.q, self.values
        base = q.tail
        q.tail += len(values)
        machine.cpu.charge(len(values),
                           max(1.0, math.log2(len(values) + 1)))
        fn_store = f"{q.name}:store"
        yield ((q._owner(base + i), fn_store, (base + i, value), None)
               for i, value in enumerate(values))


class _DequeueOp(_QueueOp):
    def __init__(self, q: PIMQueue, count: int) -> None:
        super().__init__(q, "dequeue")
        self.count = count

    def route(self, machine, plan):
        q = self.q
        count = min(self.count, len(q))
        if count == 0:
            return []
        base = q.head
        q.head += count
        machine.cpu.charge(count, max(1.0, math.log2(count + 1)))
        fn_take = f"{q.name}:take"
        replies = yield ((q._owner(base + i), fn_take, (base + i,), None)
                         for i in range(count))
        out: List[Optional[Any]] = [None] * count
        for r in replies:
            _, seq, value = r.payload
            out[seq - base] = value
        return out
