"""A batch-parallel FIFO queue on the PIM model.

Design: every enqueued item gets a global sequence number from a CPU-side
tail counter; the item is stored on the module chosen by hashing its
sequence number.  Dequeues read off a CPU-side head counter.  Because
consecutive sequence numbers hash to uniformly random modules, *any*
batch of ``B = Omega(P log P)`` enqueues or dequeues touches every module
``O(B/P)`` times whp (Lemma 2.1) -- there is no hot tail module, the
classic scalability failure of centralized queues.

Costs per batch of ``B``: ``O(B/P)`` whp IO time, ``O(B/P)`` whp PIM
time, O(1) rounds, O(B) CPU work, O(log B) CPU depth.  FIFO semantics
are exact (the sequence counter orders items globally; batches are the
unit of concurrency, as everywhere in the model).
"""

from __future__ import annotations

import math
from typing import Any, Dict, List, Optional, Sequence

from repro.balls.hashing import KeyLevelHash
from repro.sim.machine import PIMMachine


class PIMQueue:
    """Batch-parallel FIFO queue with hash-placed slots."""

    def __init__(self, machine: PIMMachine, name: str = "fifo") -> None:
        self.machine = machine
        self.name = name
        self.head = 0  # next sequence number to dequeue
        self.tail = 0  # next sequence number to assign
        self.hash = KeyLevelHash(
            machine.num_modules,
            seed=machine.spawn_rng(0xF1F0).getrandbits(32),
        )
        for module in machine.modules:
            module.state.setdefault(name, {})
        if f"{name}:store" not in machine._handlers:
            machine.register_all(self._handlers())

    def _handlers(self) -> Dict[str, Any]:
        name = self.name

        def h_store(ctx, seq, value, tag=None):
            ctx.charge(1)
            ctx.module.state[name][seq] = value
            ctx.module.alloc_words(2)
            ctx.reply(("ack",), tag=tag)

        def h_take(ctx, seq, tag=None):
            ctx.charge(1)
            slots = ctx.module.state[name]
            if seq not in slots:
                raise KeyError(f"queue slot {seq} missing (counter bug)")
            value = slots.pop(seq)
            ctx.module.free_words(2)
            ctx.reply(("item", seq, value), tag=tag)

        return {f"{name}:store": h_store, f"{name}:take": h_take}

    def _owner(self, seq: int) -> int:
        return self.hash.module_of(("fifo", seq))

    def __len__(self) -> int:
        return self.tail - self.head

    def enqueue_batch(self, values: Sequence[Any]) -> None:
        """Append ``values`` in order (one balanced round)."""
        machine = self.machine
        base = self.tail
        self.tail += len(values)
        machine.cpu.charge(len(values),
                           max(1.0, math.log2(len(values) + 1)))
        for i, value in enumerate(values):
            seq = base + i
            machine.send(self._owner(seq), f"{self.name}:store",
                         (seq, value))
        machine.drain()

    def dequeue_batch(self, count: int) -> List[Any]:
        """Remove and return up to ``count`` oldest items, in order."""
        count = min(count, len(self))
        if count == 0:
            return []
        machine = self.machine
        base = self.head
        self.head += count
        machine.cpu.charge(count, max(1.0, math.log2(count + 1)))
        for i in range(count):
            seq = base + i
            machine.send(self._owner(seq), f"{self.name}:take", (seq,))
        out: List[Optional[Any]] = [None] * count
        for r in machine.drain():
            _, seq, value = r.payload
            out[seq - base] = value
        return out

    def peek_depth(self) -> int:
        """Items currently queued (CPU-side counters; free)."""
        return len(self)
