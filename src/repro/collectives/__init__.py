"""BSP-style collectives on the PIM model.

The machine model implies a family of communication primitives whose
costs follow directly from the h-relation accounting: scatter/gather
(h = per-module payload), broadcast (h = 1 down, or message-size for
fat values), reductions and scans (one gather + CPU combine + optional
scatter), all-to-all exchanges (h = max row/column mass of the transfer
matrix), and a PIM-balanced histogram.  These are the building blocks
"other algorithms for the PIM model" (the paper's future work) are made
of; :mod:`repro.algorithms` uses them for distributed sorting and the
PRAM-emulation comparison.

All collectives run against per-module *slots*: each module holds one
value (any Python object) per collective instance, in its local state.
"""

from repro.collectives.core import Collectives

__all__ = ["Collectives"]
