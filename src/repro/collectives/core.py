"""Collective operations over per-module value slots."""

from __future__ import annotations

import math
from collections import Counter
from typing import Any, Callable, Dict, Hashable, List, Optional, Sequence

from repro.ops import BatchOp, Broadcast, run_batch
from repro.sim.machine import PIMMachine


class Collectives:
    """A collective-communication context on a PIM machine.

    Each module holds one *slot* (an arbitrary value) per context.  The
    collectives move and combine slots with the model's costs:

    - :meth:`scatter` / :meth:`gather`: CPU <-> modules, ``h`` = the
      largest per-module payload;
    - :meth:`broadcast`: one (possibly fat) message per module;
    - :meth:`reduce` / :meth:`allreduce`: gather local values, combine on
      the CPU with an ``O(P)``-work, ``O(log P)``-depth tree;
    - :meth:`exscan`: exclusive prefix across module ids -- gather,
      CPU scan, scatter;
    - :meth:`alltoall`: module-to-module exchange of a payload matrix;
      ``h`` = the max over modules of (words sent + received), matching
      the h-relation definition exactly;
    - :meth:`map_slots`: run a local function on every slot (PIM work
      charged per module via the function's returned cost).
    """

    def __init__(self, machine: PIMMachine, name: str = "coll") -> None:
        self.machine = machine
        self.name = name
        self.num_modules = machine.num_modules
        for module in machine.modules:
            module.state.setdefault(name, {"slot": None, "inbox": []})
        # Handlers are stateless w.r.t. this instance (all state lives in
        # the modules), so re-creating a context with the same name on
        # the same machine is allowed.
        if f"{name}:put" not in machine._handlers:
            machine.register_all(self._handlers())

    # -- handlers ----------------------------------------------------------

    def _handlers(self) -> Dict[str, Any]:
        name = self.name
        fn_recv_piece = f"{name}:recv_piece"

        def st(ctx):
            return ctx.module.state[name]

        def h_put(ctx, value, tag=None):
            ctx.charge(1)
            st(ctx)["slot"] = value
            ctx.reply(("ack",), tag=tag)

        def h_get(ctx, tag=None):
            ctx.charge(1)
            ctx.reply(("slot", ctx.mid, st(ctx)["slot"]),
                      size=_words(st(ctx)["slot"]), tag=tag)

        def h_apply(ctx, fn, tag=None):
            slot = st(ctx)["slot"]
            out, cost = fn(ctx.mid, slot)
            ctx.charge(max(1, cost))
            st(ctx)["slot"] = out
            ctx.reply(("ack",), tag=tag)

        def h_send_row(ctx, row, tag=None):
            # all-to-all phase 1: this module forwards its row pieces.
            ctx.charge(len(row) + 1)
            for dest, piece in row.items():
                if piece:
                    ctx.forward(dest, fn_recv_piece, (piece,),
                                size=_words(piece))
            ctx.reply(("ack",), tag=tag)

        def h_recv_piece(ctx, piece, tag=None):
            ctx.charge(max(1, _words(piece)))
            st(ctx)["inbox"].append(piece)

        def h_collect_inbox(ctx, tag=None):
            inbox = st(ctx)["inbox"]
            ctx.charge(len(inbox) + 1)
            st(ctx)["inbox"] = []
            ctx.reply(("inbox", ctx.mid, inbox),
                      size=max(1, sum(_words(p) for p in inbox)), tag=tag)

        return {
            f"{name}:put": h_put,
            f"{name}:get": h_get,
            f"{name}:apply": h_apply,
            f"{name}:send_row": h_send_row,
            fn_recv_piece: h_recv_piece,
            f"{name}:collect_inbox": h_collect_inbox,
        }

    # -- data movement -----------------------------------------------------

    def scatter(self, values: Sequence[Any]) -> None:
        """Store ``values[i]`` into module ``i``'s slot."""
        if len(values) != self.num_modules:
            raise ValueError("scatter needs one value per module")
        run_batch(self.machine, _ScatterOp(self, values))

    def gather(self) -> List[Any]:
        """Return every module's slot (ordered by module id)."""
        return run_batch(self.machine, _GatherOp(self))

    def broadcast(self, value: Any) -> None:
        """Store ``value`` into every module's slot."""
        run_batch(self.machine, _BroadcastOp(self, value))

    def map_slots(self, fn: Callable[[int, Any], Any]) -> None:
        """Apply ``fn(mid, slot) -> (new_slot, pim_work)`` on each module."""
        run_batch(self.machine, _MapSlotsOp(self, fn))

    # -- combining collectives --------------------------------------------

    def reduce(self, op: Callable[[Any, Any], Any], identity: Any) -> Any:
        """Combine all slots on the CPU (O(P) work, O(log P) depth)."""
        values = self.gather()
        acc = identity
        for v in values:
            acc = op(acc, v)
        self.machine.cpu.charge(self.num_modules,
                                max(1.0, math.log2(self.num_modules)))
        return acc

    def allreduce(self, op: Callable[[Any, Any], Any], identity: Any) -> Any:
        """Reduce, then broadcast the result back to every slot."""
        total = self.reduce(op, identity)
        self.broadcast(total)
        return total

    def exscan(self, op: Callable[[Any, Any], Any], identity: Any,
               ) -> List[Any]:
        """Exclusive prefix over module ids; result lands in each slot.

        Module ``i`` receives ``op(slot_0, ..., slot_{i-1})``.  Two
        rounds: gather + scatter (the CPU scan is O(P)/O(log P)).
        """
        values = self.gather()
        prefixes: List[Any] = []
        acc = identity
        for v in values:
            prefixes.append(acc)
            acc = op(acc, v)
        self.machine.cpu.charge(2 * self.num_modules,
                                2 * max(1.0, math.log2(self.num_modules)))
        self.scatter(prefixes)
        return prefixes

    # -- all-to-all ---------------------------------------------------------

    def alltoall(self, matrix: Sequence[Dict[int, Any]]) -> List[List[Any]]:
        """Exchange ``matrix[i][j]`` from module ``i`` to module ``j``.

        Phase 1 scatters each row to its source module; phase 2 the
        sources forward the pieces (this is the charged exchange: ``h`` =
        max over modules of words sent + received); phase 3 gathers each
        module's inbox back to the CPU for inspection.  Returns the
        received pieces per destination module.
        """
        if len(matrix) != self.num_modules:
            raise ValueError("alltoall needs one row per module")
        return run_batch(self.machine, _AllToAllOp(self, matrix))

    # -- histogram ------------------------------------------------------------

    def histogram(self, records: Sequence[Hashable],
                  placement: Callable[[Hashable], int]) -> Counter:
        """PIM-balanced counting: scatter records by ``placement``, count
        locally, gather the partial counters.

        With a hash placement, Lemma 2.1 makes both the scatter and the
        local work balanced whp for any input distribution.
        """
        name = self.name
        fn_count = f"{name}:hist_count"
        fn_flush = f"{name}:hist_flush"
        if fn_count not in self.machine._handlers:
            def h_count(ctx, bucket, tag=None):
                ctx.charge(1)
                counts = ctx.module.state[name].setdefault(
                    "hist", Counter())
                counts[bucket] += 1

            def h_flush(ctx, tag=None):
                counts = ctx.module.state[name].pop("hist", Counter())
                ctx.charge(len(counts) + 1)
                ctx.reply(("hist", dict(counts)),
                          size=max(1, len(counts)), tag=tag)

            self.machine.register(fn_count, h_count)
            self.machine.register(fn_flush, h_flush)
        return run_batch(self.machine,
                         _HistogramOp(self, records, placement))


class _CollectiveOp(BatchOp):
    """Base for the collectives: handlers are registered by the context's
    constructor (guarded by name), so ops contribute none themselves."""

    def __init__(self, coll: Collectives, suffix: str) -> None:
        self.coll = coll
        self.name = f"{coll.name}:{suffix}"


class _ScatterOp(_CollectiveOp):
    def __init__(self, coll: Collectives, values: Sequence[Any]) -> None:
        super().__init__(coll, "scatter")
        self.values = values

    def route(self, machine, plan):
        fn_put = f"{self.coll.name}:put"
        yield ((mid, fn_put, (value,), None, _words(value))
               for mid, value in enumerate(self.values))


class _GatherOp(_CollectiveOp):
    def __init__(self, coll: Collectives) -> None:
        super().__init__(coll, "gather")

    def route(self, machine, plan):
        coll = self.coll
        replies = yield [Broadcast(f"{coll.name}:get", ())]
        out: List[Any] = [None] * coll.num_modules
        for r in replies:
            _, mid, value = r.payload
            out[mid] = value
        machine.cpu.charge(coll.num_modules,
                           max(1.0, math.log2(coll.num_modules)))
        return out


class _BroadcastOp(_CollectiveOp):
    def __init__(self, coll: Collectives, value: Any) -> None:
        super().__init__(coll, "broadcast")
        self.value = value

    def route(self, machine, plan):
        yield [Broadcast(f"{self.coll.name}:put", (self.value,),
                         size=_words(self.value))]


class _MapSlotsOp(_CollectiveOp):
    def __init__(self, coll: Collectives,
                 fn: Callable[[int, Any], Any]) -> None:
        super().__init__(coll, "map_slots")
        self.fn = fn

    def route(self, machine, plan):
        yield [Broadcast(f"{self.coll.name}:apply", (self.fn,))]


class _AllToAllOp(_CollectiveOp):
    def __init__(self, coll: Collectives,
                 matrix: Sequence[Dict[int, Any]]) -> None:
        super().__init__(coll, "alltoall")
        self.matrix = matrix

    def route(self, machine, plan):
        coll = self.coll
        fn_send_row = f"{coll.name}:send_row"
        yield ((mid, fn_send_row, (dict(row),), None,
                max(1, sum(_words(v) for v in row.values())))
               for mid, row in enumerate(self.matrix))
        replies = yield [Broadcast(f"{coll.name}:collect_inbox", ())]
        out: List[List[Any]] = [[] for _ in range(coll.num_modules)]
        for r in replies:
            _, mid, inbox = r.payload
            out[mid] = inbox
        return out


class _HistogramOp(_CollectiveOp):
    def __init__(self, coll: Collectives, records: Sequence[Hashable],
                 placement: Callable[[Hashable], int]) -> None:
        super().__init__(coll, "histogram")
        self.records = records
        self.placement = placement

    def route(self, machine, plan):
        coll, records = self.coll, self.records
        placement = self.placement
        fn_count = f"{coll.name}:hist_count"
        fn_flush = f"{coll.name}:hist_flush"
        yield ((placement(rec), fn_count, (rec,), None) for rec in records)
        replies = yield [Broadcast(fn_flush, ())]
        total: Counter = Counter()
        for r in replies:
            total.update(r.payload[1])
        machine.cpu.charge(
            len(records) // max(1, coll.num_modules) + coll.num_modules,
            max(1.0, math.log2(len(records) + 2)),
        )
        return total


def _words(value: Any) -> int:
    """Accounted message size of a payload, in constant-size units."""
    if value is None:
        return 1
    if isinstance(value, (list, tuple, set, frozenset)):
        return max(1, len(value))
    if isinstance(value, dict):
        return max(1, len(value))
    return 1
