"""ASCII table rendering for benchmark output."""

from __future__ import annotations

from typing import Any, List, Optional, Sequence


def _fmt(v: Any) -> str:
    if isinstance(v, float):
        if v == 0:
            return "0"
        if abs(v) >= 1000 or abs(v) < 0.01:
            return f"{v:.3g}"
        return f"{v:.2f}"
    return str(v)


def render_table(headers: Sequence[str], rows: Sequence[Sequence[Any]],
                 title: Optional[str] = None) -> str:
    """Render an ASCII table (used by every benchmark's report)."""
    cells = [[_fmt(v) for v in row] for row in rows]
    widths = [
        max(len(h), *(len(r[i]) for r in cells)) if cells else len(h)
        for i, h in enumerate(headers)
    ]
    lines: List[str] = []
    if title:
        lines.append(title)
    sep = "-+-".join("-" * w for w in widths)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for row in cells:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)
