"""A small experiment runner for parameter sweeps over the simulator.

Benchmarks and notebooks share the same pattern: build a machine per
parameter point, run an operation, snapshot the metric delta, tabulate.
:class:`Sweep` packages that pattern with deterministic seeding, repeat
handling (whp envelopes need several seeds), and CSV/table export.

Example::

    sweep = Sweep("get-io", params=[8, 16, 32], repeats=5)

    @sweep.point
    def run(p, seed):
        machine, sl, keys = build(p, seed)
        before = machine.snapshot()
        sl.batch_get(keys[: p * 4])
        return machine.delta_since(before)

    table = sweep.run()
    table.median("io_time")      # per-parameter medians
    table.envelope("io_time")    # (min, median, max) per parameter
    table.to_csv(path)
"""

from __future__ import annotations

import csv
import statistics
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.ops import BatchOp, run_batch
from repro.sim.machine import PIMMachine
from repro.sim.metrics import MetricsDelta

Runner = Callable[[Any, int], MetricsDelta]


def measure_batch(machine: PIMMachine, op: BatchOp, batch: Any = None,
                  ) -> Tuple[Any, MetricsDelta]:
    """Drive one :class:`~repro.ops.BatchOp` and measure its cost.

    Wraps :func:`repro.ops.run_batch` in the snapshot/delta idiom every
    experiment repeats; returns ``(result, delta)``.  Structure methods
    (``batch_get`` etc.) already run through the same driver, so sweeps
    may measure either a method call or a raw op -- the charged costs are
    identical.
    """
    before = machine.snapshot()
    result = run_batch(machine, op, batch)
    return result, machine.delta_since(before)


@dataclass
class SweepTable:
    """Results of one sweep: rows of (param, seed, metric dict)."""

    name: str
    rows: List[Tuple[Any, int, Dict[str, float]]] = field(
        default_factory=list)

    @property
    def params(self) -> List[Any]:
        seen: List[Any] = []
        for p, _, _ in self.rows:
            if p not in seen:
                seen.append(p)
        return seen

    def values(self, param: Any, metric: str) -> List[float]:
        return [m[metric] for p, _, m in self.rows if p == param]

    def median(self, metric: str) -> Dict[Any, float]:
        """Per-parameter median of ``metric``."""
        return {p: statistics.median(self.values(p, metric))
                for p in self.params}

    def envelope(self, metric: str) -> Dict[Any, Tuple[float, float, float]]:
        """Per-parameter (min, median, max) -- the whp-envelope readout."""
        out = {}
        for p in self.params:
            vals = self.values(p, metric)
            out[p] = (min(vals), statistics.median(vals), max(vals))
        return out

    def to_csv(self, path: str) -> None:
        metrics = sorted(self.rows[0][2]) if self.rows else []
        with open(path, "w", newline="") as f:
            writer = csv.writer(f)
            writer.writerow(["param", "seed"] + metrics)
            for p, seed, m in self.rows:
                writer.writerow([p, seed] + [m[k] for k in metrics])

    def column_rows(self, metrics: Sequence[str]):
        """Rows for :func:`repro.analysis.tables.render_table`: one per
        parameter, median of each requested metric."""
        meds = {metric: self.median(metric) for metric in metrics}
        return [[p] + [meds[metric][p] for metric in metrics]
                for p in self.params]


class Sweep:
    """Declarative parameter sweep with repeats and deterministic seeds."""

    def __init__(self, name: str, params: Sequence[Any],
                 repeats: int = 1, base_seed: int = 0) -> None:
        if repeats < 1:
            raise ValueError("repeats must be >= 1")
        self.name = name
        self.params = list(params)
        self.repeats = repeats
        self.base_seed = base_seed
        self._runner: Optional[Runner] = None

    def point(self, fn: Runner) -> Runner:
        """Decorator registering the per-point runner
        ``fn(param, seed) -> MetricsDelta``."""
        self._runner = fn
        return fn

    def run(self) -> SweepTable:
        if self._runner is None:
            raise RuntimeError("no runner registered; use @sweep.point")
        table = SweepTable(name=self.name)
        for i, param in enumerate(self.params):
            for r in range(self.repeats):
                seed = self.base_seed + 1000 * i + r
                delta = self._runner(param, seed)
                table.rows.append((param, seed, delta.as_dict()))
        return table
