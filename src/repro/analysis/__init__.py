"""Analysis utilities for the benchmark harness.

The paper states asymptotic bounds (Table 1, Theorems 3.1-5.2); the
benchmarks validate the *shape* of measured metrics rather than absolute
constants:

- :func:`~repro.analysis.fit.fit_power` / :func:`~repro.analysis.fit.fit_polylog`
  -- least-squares growth-exponent estimation of a metric against ``P``
  or ``log P``;
- :func:`~repro.analysis.fit.normalized_curve` -- metric divided by its
  predicted bound: flat means the bound's shape holds;
- :mod:`repro.analysis.tables` -- ASCII renderers producing the
  paper-style rows the benchmarks print (one per table/figure).
"""

from repro.analysis.experiments import Sweep, SweepTable
from repro.analysis.export import export_delta, export_rounds, read_jsonl
from repro.analysis.fit import (
    fit_polylog,
    fit_power,
    growth_ratios,
    normalized_curve,
)
from repro.analysis.tables import render_table
from repro.analysis.structure_viz import layout_summary, render_structure
from repro.analysis.trace_report import (
    TraceSummary,
    hotspot_rounds,
    render_timeline,
    summarize,
)

__all__ = [
    "Sweep",
    "SweepTable",
    "export_delta",
    "export_rounds",
    "layout_summary",
    "read_jsonl",
    "render_structure",
    "TraceSummary",
    "fit_polylog",
    "fit_power",
    "growth_ratios",
    "hotspot_rounds",
    "normalized_curve",
    "render_table",
    "render_timeline",
    "summarize",
]
