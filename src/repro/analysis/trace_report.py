"""Round-timeline reports from the machine's tracer.

After a measured region, the tracer's :class:`RoundLog` records tell the
execution's story: where the h-relations spiked, which rounds were
compute-heavy, how contention evolved.  This module renders those logs
as text (a terminal-friendly bar timeline plus summary statistics), the
debugging view used when a batch misbehaves.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.sim.tracing import RoundLog


@dataclass(frozen=True)
class TraceSummary:
    """Aggregates of a run's rounds."""

    rounds: int
    io_time: float
    max_h: float
    mean_h: float
    busiest_round: int
    pim_time: float
    tasks: int

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (f"rounds={self.rounds} io={self.io_time:.0f} "
                f"max_h={self.max_h:.0f} (round {self.busiest_round}) "
                f"pim={self.pim_time:.0f} tasks={self.tasks}")


def summarize(rounds: Sequence[RoundLog]) -> TraceSummary:
    """Summary statistics of a slice of round logs."""
    if not rounds:
        return TraceSummary(0, 0.0, 0.0, 0.0, -1, 0.0, 0)
    hs = [r.h for r in rounds]
    busiest = max(range(len(rounds)), key=lambda i: hs[i])
    return TraceSummary(
        rounds=len(rounds),
        io_time=float(sum(hs)),
        max_h=float(max(hs)),
        mean_h=sum(hs) / len(rounds),
        busiest_round=rounds[busiest].index,
        pim_time=float(sum(r.pim_work_max for r in rounds)),
        tasks=sum(r.tasks_executed for r in rounds),
    )


def render_timeline(rounds: Sequence[RoundLog], width: int = 50,
                    max_rows: int = 40) -> str:
    """A text bar chart: one row per round, bar length ~ that round's h.

    Long runs are bucketed down to ``max_rows`` rows (each row then shows
    the bucket's max h and total tasks), so pathologies stay visible
    without kilometer-long output.
    """
    if not rounds:
        return "(no rounds)"
    buckets: List[List[RoundLog]] = []
    if len(rounds) <= max_rows:
        buckets = [[r] for r in rounds]
    else:
        per = math.ceil(len(rounds) / max_rows)
        for i in range(0, len(rounds), per):
            buckets.append(list(rounds[i:i + per]))
    peak = max(max(r.h for r in b) for b in buckets)
    peak = max(peak, 1)
    lines = []
    for b in buckets:
        h = max(r.h for r in b)
        tasks = sum(r.tasks_executed for r in b)
        label = (f"r{b[0].index}" if len(b) == 1
                 else f"r{b[0].index}-{b[-1].index}")
        bar = "#" * max(1, round(width * h / peak)) if h else ""
        lines.append(f"{label:>12} |{bar:<{width}}| h={h:<6g} tasks={tasks}")
    return "\n".join(lines)


def hotspot_rounds(rounds: Sequence[RoundLog], top: int = 5,
                   ) -> List[RoundLog]:
    """The ``top`` rounds by h (ties broken by earliest round)."""
    return sorted(rounds, key=lambda r: (-r.h, r.index))[:top]
