"""JSONL export of runs: metric deltas and round logs.

Benchmarks archive human tables; this module archives *machine-readable*
runs, one JSON object per line, so results can be diffed between
revisions or plotted externally:

- :func:`export_delta` — one measured region's scalar metrics;
- :func:`export_rounds` — the per-round h / work / task series;
- :func:`read_jsonl` — load either back.

The format is deliberately boring: flat dicts, stable keys, an explicit
``kind`` discriminator, and a free-form ``meta`` field for workload
parameters.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterable, List, Optional, Sequence

from repro.sim.metrics import MetricsDelta
from repro.sim.tracing import RoundLog


def export_delta(path: str, label: str, delta: MetricsDelta,
                 meta: Optional[Dict[str, Any]] = None,
                 append: bool = True) -> None:
    """Append one measured region to a JSONL file."""
    record = {
        "kind": "delta",
        "label": label,
        "meta": meta or {},
        "metrics": delta.as_dict(),
        "num_modules": delta.num_modules,
        "pim_work_per_module": list(delta.pim_work_per_module),
    }
    with open(path, "a" if append else "w") as f:
        f.write(json.dumps(record, sort_keys=True) + "\n")


def export_rounds(path: str, label: str, rounds: Sequence[RoundLog],
                  meta: Optional[Dict[str, Any]] = None,
                  append: bool = True) -> None:
    """Append a round-log series to a JSONL file (one line per run)."""
    record = {
        "kind": "rounds",
        "label": label,
        "meta": meta or {},
        "series": [
            {"index": r.index, "h": r.h, "messages": r.messages,
             "pim_work_max": r.pim_work_max, "tasks": r.tasks_executed}
            for r in rounds
        ],
    }
    with open(path, "a" if append else "w") as f:
        f.write(json.dumps(record, sort_keys=True) + "\n")


def read_jsonl(path: str, kind: Optional[str] = None,
               ) -> List[Dict[str, Any]]:
    """Load exported records, optionally filtered by ``kind``."""
    out: List[Dict[str, Any]] = []
    with open(path) as f:
        for line in f:
            line = line.strip()
            if not line:
                continue
            record = json.loads(line)
            if kind is None or record.get("kind") == kind:
                out.append(record)
    return out
