"""Growth-law fitting for measured model metrics."""

from __future__ import annotations

import math
from typing import Callable, List, Sequence, Tuple

import numpy as np


def fit_power(xs: Sequence[float], ys: Sequence[float]) -> Tuple[float, float]:
    """Least-squares fit of ``y = c * x^k``; returns ``(k, c)``.

    Zero/negative values are rejected (they have no log).
    """
    x = np.asarray(xs, dtype=np.float64)
    y = np.asarray(ys, dtype=np.float64)
    if np.any(x <= 0) or np.any(y <= 0):
        raise ValueError("fit_power requires positive data")
    k, logc = np.polyfit(np.log(x), np.log(y), 1)
    return float(k), float(math.exp(logc))


def fit_polylog(ps: Sequence[int], ys: Sequence[float]) -> Tuple[float, float]:
    """Least-squares fit of ``y = c * (log2 P)^k``; returns ``(k, c)``.

    This is the natural fit for Table 1's ``O(log^k P)`` IO/PIM-time
    bounds measured across machine sizes.
    """
    logs = [math.log2(p) for p in ps]
    if any(v <= 0 for v in logs):
        raise ValueError("fit_polylog requires P >= 2")
    return fit_power(logs, ys)


def normalized_curve(ps: Sequence[int], ys: Sequence[float],
                     bound: Callable[[int], float]) -> List[float]:
    """``y / bound(P)`` for each point: flat (bounded) means the bound's
    shape holds; growth means the measurement outpaces the bound."""
    return [y / bound(p) for p, y in zip(ps, ys)]


def growth_ratios(ys: Sequence[float]) -> List[float]:
    """Consecutive ratios ``y[i+1]/y[i]`` (doubling-experiment readout)."""
    return [b / a if a else float("inf") for a, b in zip(ys, ys[1:])]
