"""Text rendering of the skip list's layout -- Fig. 2, executable.

The paper's Fig. 2 drawing encodes the design: levels stacked bottom-up,
upper-part nodes replicated (white), lower-part nodes colored by module,
plus the dashed local-leaf-list / next-leaf pointers.  This module
renders the *actual* structure the same way, in text: one row per level,
each node shown as ``key/owner`` (``R`` for replicated), with per-module
local leaf lists printed below.

Used by ``bench_fig2_layout.py`` (archiving the layout of a small
structure as the Fig. 2 artifact) and handy when debugging a structure
in a REPL.
"""

from __future__ import annotations

from typing import List

from repro.core.node import UPPER
from repro.core.structure import SkipListStructure


def render_structure(struct: SkipListStructure,
                     max_keys: int = 24) -> str:
    """Fig. 2-style text rendering (levels top-down, owners labeled).

    Structures wider than ``max_keys`` are elided in the middle -- the
    rendering is for inspection, not bulk export.
    """
    leaves = list(struct.iter_level(0))
    keys = [leaf.key for leaf in leaves]
    if len(keys) > max_keys:
        half = max_keys // 2
        shown = keys[:half] + keys[-half:]
        elided = True
    else:
        shown = keys
        elided = False
    columns = {key: i for i, key in enumerate(shown)}
    width = max([len(_cell(k, 0)) for k in shown] + [6]) + 1

    lines: List[str] = []
    for lvl in range(struct.top_level, -1, -1):
        cells = [" " * width] * len(shown)
        count = 0
        for node in struct.iter_level(lvl):
            count += 1
            if node.key in columns:
                cells[columns[node.key]] = _cell(
                    node.key, 0, node.owner).ljust(width)
        marker = "U" if struct.is_upper_level(lvl) else "L"
        lines.append(f"level {lvl:>2} [{marker}] -inf "
                     + "".join(cells)
                     + (f"  (+{count - sum(1 for c in cells if c.strip())}"
                        " elided)" if elided and count else ""))
    lines.append("")
    lines.append(f"h_low = {struct.h_low} (levels >= h_low are replicated"
                 " in every module; below, owner = hash(key, level))")
    lines.append("")
    for mid in range(struct.num_modules):
        ml = struct.mlocal(mid)
        chain = []
        leaf = ml.first_leaf
        while leaf is not None and len(chain) <= max_keys:
            chain.append(str(leaf.key))
            leaf = leaf.local_right
        lines.append(f"module {mid} local leaf list: "
                     + " -> ".join(chain[:max_keys])
                     + (" ..." if len(chain) > max_keys else ""))
    return "\n".join(lines)


def _cell(key, _lvl, owner=None) -> str:
    if owner is None:
        return str(key)
    tag = "R" if owner == UPPER else str(owner)
    return f"{key}/{tag}"


def layout_summary(struct: SkipListStructure) -> dict:
    """Counts behind the picture: nodes per level, upper/lower split,
    per-module leaf counts."""
    per_level = {}
    upper_nodes = 0
    lower_nodes = 0
    for lvl in range(struct.top_level + 1):
        cnt = sum(1 for _ in struct.iter_level(lvl))
        per_level[lvl] = cnt
        if struct.is_upper_level(lvl):
            upper_nodes += cnt
        else:
            lower_nodes += cnt
    return {
        "per_level": per_level,
        "upper_nodes": upper_nodes,
        "lower_nodes": lower_nodes,
        "leaves_per_module": [struct.mlocal(m).leaf_count
                              for m in range(struct.num_modules)],
        "h_low": struct.h_low,
        "top_level": struct.top_level,
    }
