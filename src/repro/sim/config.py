"""Machine configuration for the PIM simulator."""

from __future__ import annotations

import math
import os
from dataclasses import dataclass, field
from typing import Optional

#: Environment variable overriding the round-engine backend for machines
#: constructed without an explicit ``backend=`` argument.  Accepted
#: values: ``"object"`` or ``"columnar"``.  Lets a whole test suite or
#: benchmark run flip engines without touching call sites.
BACKEND_ENV_VAR = "REPRO_SIM_BACKEND"

#: The two round-engine backends (see :mod:`repro.sim.fastpath`).
BACKENDS = ("object", "columnar")


def resolve_backend(backend: Optional[str]) -> str:
    """Resolve a backend selection to ``"object"`` or ``"columnar"``.

    ``None`` (unspecified) consults :data:`BACKEND_ENV_VAR`, defaulting
    to ``"object"``.  An explicit argument always wins over the
    environment.  Unknown names raise ``ValueError`` either way.
    """
    origin = "backend"
    if backend is None:
        backend = os.environ.get(BACKEND_ENV_VAR) or "object"
        origin = BACKEND_ENV_VAR
    if backend not in BACKENDS:
        raise ValueError(
            f"unknown round-engine backend {backend!r} (from {origin}); "
            f"expected one of {', '.join(BACKENDS)}")
    return backend


def default_shared_memory_words(num_modules: int) -> int:
    """Default CPU-side shared memory size ``M`` in words.

    The paper restricts ``M`` to be independent of ``n`` and at most
    ``Theta(P log^2 P)``; the batched operations need ``Theta(P log^2 P)``
    shared memory (Table 1).  We default to ``32 * P * ceil(log2 P)^2``
    (with log2 floored at 1 so tiny machines still get a usable cache);
    the constant 32 covers the largest declared footprint at canonical
    batch sizes -- batched Delete's list-contraction copy (each of ~1.75B
    marked nodes plus its two run boundaries, 4 words per copied node;
    see ``tests/test_shared_memory_honesty.py``).
    """
    log_p = max(1, math.ceil(math.log2(max(2, num_modules))))
    return 32 * num_modules * log_p * log_p


@dataclass(frozen=True)
class MachineConfig:
    """Static configuration of a :class:`repro.sim.machine.PIMMachine`.

    Parameters
    ----------
    num_modules:
        ``P``, the number of PIM modules.  Must be >= 1.
    shared_memory_words:
        ``M``, the CPU-side shared memory size in words.  ``None`` selects
        :func:`default_shared_memory_words`.
    local_memory_words:
        Per-module local memory budget in words, or ``None`` for untracked
        enforcement (usage is still recorded).  The model sets this to
        ``Theta(n/P)``; because ``n`` varies over a structure's lifetime we
        leave enforcement opt-in.
    enforce_shared_memory:
        If true, :class:`repro.sim.errors.SharedMemoryExceeded` is raised
        when CPU-side allocations exceed ``M``.
    enforce_local_memory:
        If true, :class:`repro.sim.errors.LocalMemoryExceeded` is raised
        when a module's footprint exceeds ``local_memory_words``.
    seed:
        Seed for the machine's deterministic random stream (used by data
        structures for hashing and coin flips).
    trace_accesses:
        If true, per-round per-object access counts are recorded in
        :class:`repro.sim.tracing.AccessTrace` (needed by the Lemma 4.2
        contention experiments; small overhead otherwise).
    trace_rounds:
        If true (the default), every round appends a
        :class:`repro.sim.tracing.RoundLog` to the machine's tracer (the
        round-timeline reports need them).  Disable for pure-throughput
        runs -- the wall-clock benchmarks turn this off -- where the
        per-round log object and its unbounded list are wasted work;
        model metrics are unaffected either way.
    contention_model:
        ``"none"`` (default) or ``"qrqw"``.  The paper's §2.1 Discussion
        sketches a queue-read/queue-write variant where ``k`` accesses to
        one location cost ``k`` time; under ``"qrqw"`` a module's
        effective work in a round is at least the access count of its
        hottest object (handlers mark accesses with ``ctx.touch``), and
        PIM time accumulates the effective per-round maxima.
    max_delivery_attempts:
        Reliable-delivery protocol (:mod:`repro.ops.pipeline`): how many
        times a CPU->module envelope is (re)sent before the driver raises
        :class:`repro.sim.errors.DeliveryTimeout`.  Only consulted when a
        fault plan is installed (see :mod:`repro.sim.chaos`); the
        fault-free path never retries.
    retry_backoff_base / retry_backoff_cap:
        Capped exponential backoff between delivery attempts, measured in
        bulk-synchronous rounds: attempt ``k`` waits
        ``min(base * 2**(k-1), cap)`` idle rounds (each charged one round
        plus ``log2 P`` sync cost -- waiting is not free).
    backend:
        Round-engine backend: ``"object"`` (the reference slotted-object
        engine), ``"columnar"`` (the array-native engine of
        :mod:`repro.sim.fastpath`), or ``None`` to consult the
        :data:`BACKEND_ENV_VAR` environment variable (default
        ``"object"``).  Model metrics are certified bit-identical across
        backends by ``repro.verify.differ``; only wall-clock behaviour
        differs.
    """

    num_modules: int
    shared_memory_words: Optional[int] = None
    local_memory_words: Optional[int] = None
    enforce_shared_memory: bool = False
    enforce_local_memory: bool = False
    seed: int = 0
    trace_accesses: bool = False
    trace_rounds: bool = True
    contention_model: str = "none"
    max_delivery_attempts: int = 8
    retry_backoff_base: int = 1
    retry_backoff_cap: int = 8
    backend: Optional[str] = None

    def __post_init__(self) -> None:
        if self.backend is not None and self.backend not in BACKENDS:
            raise ValueError(
                f"unknown round-engine backend {self.backend!r}; "
                f"expected one of {', '.join(BACKENDS)} (or None for the "
                f"{BACKEND_ENV_VAR} environment default)")
        if self.num_modules < 1:
            raise ValueError("num_modules must be >= 1")
        if self.shared_memory_words is not None and self.shared_memory_words < 1:
            raise ValueError("shared_memory_words must be positive")
        if self.local_memory_words is not None and self.local_memory_words < 1:
            raise ValueError("local_memory_words must be positive")
        if self.contention_model not in ("none", "qrqw"):
            raise ValueError("contention_model must be 'none' or 'qrqw'")
        if self.max_delivery_attempts < 1:
            raise ValueError("max_delivery_attempts must be >= 1")
        if self.retry_backoff_base < 1 or self.retry_backoff_cap < 1:
            raise ValueError("retry backoff rounds must be >= 1")

    @property
    def resolved_backend(self) -> str:
        """The backend after applying the environment default."""
        return resolve_backend(self.backend)

    @property
    def resolved_shared_memory_words(self) -> int:
        """``M`` after applying the default when unset."""
        if self.shared_memory_words is not None:
            return self.shared_memory_words
        return default_shared_memory_words(self.num_modules)

    @property
    def log_p(self) -> float:
        """``log2 P``, floored at 1.0 (sync cost per round, etc.)."""
        return max(1.0, math.log2(self.num_modules))
