"""Tasks and messages.

A CPU core offloads work to a PIM core with a ``TaskSend`` instruction that
names a PIM-module id and a task (function id + arguments).  The network
routes the task to the module's queue.  Tasks specify where to put their
return value; in the simulator, return values come back to the CPU side as
:class:`Reply` objects from :meth:`repro.sim.machine.PIMMachine.step`.

Messages have a ``size`` in constant-size message units: the model's
messages carry a constant number of words, so a payload of ``k`` words is
accounted as ``k`` messages (used e.g. when a pivot search streams its
lower-part path back to shared memory).

These are plain ``__slots__`` value classes, not dataclasses: the round
engine creates them (``Reply``) or their flattened equivalents at very
high rates, and the per-instance dict plus dataclass machinery showed up
as a measurable share of simulator wall time.  The engine's internal
queues carry pre-resolved ``(handler, args, tag, fn)`` entries;
:class:`Task` and :class:`Message` remain the public value types for code
that builds or inspects messages explicitly.
"""

from __future__ import annotations

from typing import Any, Optional, Tuple

CPU_SIDE = -1
"""Pseudo module id for the CPU side (the shared memory)."""


class Task:
    """A unit of offloaded work: a function id plus arguments.

    ``fn`` must name a handler registered on the machine (see
    :meth:`repro.sim.machine.PIMMachine.register`).  ``args`` is an
    arbitrary tuple passed to the handler.  ``tag`` is an opaque value the
    issuer can use to match replies to requests (e.g. the index of the
    operation within a batch).
    """

    __slots__ = ("fn", "args", "tag")

    def __init__(self, fn: str, args: Tuple[Any, ...] = (),
                 tag: Any = None) -> None:
        self.fn = fn
        self.args = args
        self.tag = tag

    def __eq__(self, other: Any) -> bool:
        if not isinstance(other, Task):
            return NotImplemented
        return (self.fn == other.fn and self.args == other.args
                and self.tag == other.tag)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Task(fn={self.fn!r}, args={self.args!r}, tag={self.tag!r})"


class Message:
    """A routed message: a task headed to ``dest`` of a given ``size``.

    ``src`` is the sending side: :data:`CPU_SIDE` for CPU-issued offloads or
    a module id for module-to-module continuations (which the paper routes
    via the shared memory; the simulator accounts them as one send at the
    source round and one receive at the destination round).
    """

    __slots__ = ("dest", "task", "size", "src")

    def __init__(self, dest: int, task: Task, size: int = 1,
                 src: int = CPU_SIDE) -> None:
        self.dest = dest
        self.task = task
        self.size = size
        self.src = src

    def __eq__(self, other: Any) -> bool:
        if not isinstance(other, Message):
            return NotImplemented
        return (self.dest == other.dest and self.task == other.task
                and self.size == other.size and self.src == other.src)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"Message(dest={self.dest}, task={self.task!r}, "
                f"size={self.size}, src={self.src})")


class Reply:
    """A task's return value, written back to CPU-side shared memory.

    ``payload`` is the returned value, ``tag`` echoes the originating
    task's tag, and ``src`` is the module that produced the reply.
    """

    __slots__ = ("payload", "tag", "src")

    def __init__(self, payload: Any, tag: Any = None,
                 src: int = CPU_SIDE) -> None:
        self.payload = payload
        self.tag = tag
        self.src = src

    def __eq__(self, other: Any) -> bool:
        if not isinstance(other, Reply):
            return NotImplemented
        return (self.payload == other.payload and self.tag == other.tag
                and self.src == other.src)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"Reply(payload={self.payload!r}, tag={self.tag!r}, "
                f"src={self.src})")
