"""Tasks and messages.

A CPU core offloads work to a PIM core with a ``TaskSend`` instruction that
names a PIM-module id and a task (function id + arguments).  The network
routes the task to the module's queue.  Tasks specify where to put their
return value; in the simulator, return values come back to the CPU side as
:class:`Reply` objects from :meth:`repro.sim.machine.PIMMachine.step`.

Messages have a ``size`` in constant-size message units: the model's
messages carry a constant number of words, so a payload of ``k`` words is
accounted as ``k`` messages (used e.g. when a pivot search streams its
lower-part path back to shared memory).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional, Tuple

CPU_SIDE = -1
"""Pseudo module id for the CPU side (the shared memory)."""


@dataclass
class Task:
    """A unit of offloaded work: a function id plus arguments.

    ``fn`` must name a handler registered on the machine (see
    :meth:`repro.sim.machine.PIMMachine.register`).  ``args`` is an
    arbitrary tuple passed to the handler.  ``tag`` is an opaque value the
    issuer can use to match replies to requests (e.g. the index of the
    operation within a batch).
    """

    fn: str
    args: Tuple[Any, ...] = ()
    tag: Any = None


@dataclass
class Message:
    """A routed message: a task headed to ``dest`` of a given ``size``.

    ``src`` is the sending side: :data:`CPU_SIDE` for CPU-issued offloads or
    a module id for module-to-module continuations (which the paper routes
    via the shared memory; the simulator accounts them as one send at the
    source round and one receive at the destination round).
    """

    dest: int
    task: Task
    size: int = 1
    src: int = CPU_SIDE


@dataclass
class Reply:
    """A task's return value, written back to CPU-side shared memory.

    ``payload`` is the returned value, ``tag`` echoes the originating
    task's tag, and ``src`` is the module that produced the reply.
    """

    payload: Any
    tag: Any = None
    src: int = CPU_SIDE
