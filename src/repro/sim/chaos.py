"""Seeded, deterministic fault injection for the PIM machine.

Real PIM deployments are not the perfect machine of the model: UPMEM
measurements put stragglers and lossy host<->DPU transfer among the
first-order systems concerns (Gomez-Luna et al., arXiv:2105.03814), and
analytical models such as Bitlet (arXiv:2107.10308) parameterize exactly
these non-idealities.  This module supplies the *failure model*: a
:class:`FaultPlan` the round engine consults to

- **drop**, **duplicate**, **delay** (reorder across rounds) or
  **corrupt** individual CPU->module messages, and
- **crash** (fail-stop), **crash-and-wipe**, **stall** (straggler
  rounds) or **restart** whole PIM modules;

all derived from a single fault seed with counter-based hashing, so a
rerun of the same (workload seed, fault seed) pair replays the *exact*
same fault sequence -- the property the differential chaos harness
(:mod:`repro.verify.chaos`) builds its bit-identical-rerun check on.

Fault scope
-----------

Message-level faults apply only to CPU->module messages travelling under
the reliable-delivery protocol (:mod:`repro.ops.pipeline` wraps every
batch-op message in a sequence-numbered envelope; the engine recognizes
envelopes by the :data:`DELIVER_FN` function id).  Module->CPU replies
and module->module forwards model on-chip/DMA paths and stay reliable --
that asymmetry is what makes the ack/retry protocol end-to-end sound:
an unacknowledged envelope is *known* lost, and an acknowledged one is
*known* executed exactly once (replay guards dedup redelivery).

Module-level faults apply to everything: a message of any kind arriving
at a crashed module is lost if it is a protocol envelope (the sender's
ack timeout will notice) and raises
:class:`~repro.sim.errors.ModuleCrashed` otherwise (no retry path
exists, so it is a hard fault the recovery layer must handle).

Rounds are counted relative to the install point
(:meth:`repro.sim.machine.PIMMachine.install_fault_plan`), so "crash at
round 12" means 12 rounds into the chaos window regardless of how much
fault-free history the machine already has.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.sim.errors import ModuleCrashed

__all__ = [
    "DELIVER_FN",
    "ChaosStats",
    "CrashEvent",
    "FaultPlan",
    "FaultSpec",
    "MACHINE_SCHEDULES",
    "StallEvent",
    "build_schedule",
]

#: Function id of the reliable-delivery envelope handler.  Defined here
#: (not in :mod:`repro.ops.pipeline`) so the engine-side chaos filter and
#: the CPU-side protocol agree on the wire format without a layering
#: cycle.  Envelope args are ``(seq, inner_fn, inner_args, inner_tag,
#: size)``; the chaos filter may append a truthy 6th element to mark the
#: payload corrupted in flight.
DELIVER_FN = "__reliable_deliver__"


def _mix(*vals: int) -> int:
    """A splitmix64-style integer hash over a tuple of ints.

    Python's ``hash`` is salted for strings and ``random`` would couple
    fault draws to call order; a counter-keyed pure mix gives the
    stateless, platform-stable draws the bit-identical-rerun contract
    needs.
    """
    h = 0x9E3779B97F4A7C15
    for v in vals:
        h = (h ^ (v & 0xFFFFFFFFFFFFFFFF)) * 0xBF58476D1CE4E5B9 % (1 << 64)
        h = (h ^ (h >> 27)) * 0x94D049BB133111EB % (1 << 64)
        h ^= h >> 31
    return h


def _unit(*vals: int) -> float:
    """A deterministic draw in ``[0, 1)`` keyed on ``vals``."""
    return _mix(*vals) / float(1 << 64)


@dataclass(frozen=True)
class CrashEvent:
    """Fail-stop crash of module ``mid`` at chaos round ``at_round``.

    While crashed the module executes nothing; protocol envelopes
    addressed to it are lost (the sender retries), anything else raises
    :class:`~repro.sim.errors.ModuleCrashed`.  ``restart_round`` (None =
    never) brings the module back; with ``wipe=True`` the crash also
    clears the module's local state and replay guards -- the DRAM-loss
    flavor that requires checkpoint/restore (:mod:`repro.recovery`),
    whereas the default fail-stop keeps local DRAM contents intact
    across the outage.
    """

    mid: int
    at_round: int
    restart_round: Optional[int] = None
    wipe: bool = False

    def __post_init__(self) -> None:
        if self.restart_round is not None and self.restart_round <= self.at_round:
            raise ValueError("restart_round must be after at_round")


@dataclass(frozen=True)
class StallEvent:
    """Module ``mid`` is a straggler for rounds ``[at_round, at_round + rounds)``.

    A stalled module's incoming messages sit in the network: the whole
    per-destination slot is deferred to the next round (charged when it
    finally lands), modelling the UPMEM straggler-DPU effect.
    """

    mid: int
    at_round: int
    rounds: int

    def __post_init__(self) -> None:
        if self.rounds < 1:
            raise ValueError("stall must last >= 1 round")


@dataclass(frozen=True)
class FaultSpec:
    """Declarative fault mix: message-fault rates plus module events.

    Message rates are per-transmission probabilities (a retransmission
    draws afresh, so a dropped envelope is not doomed forever); they
    must sum to at most 1.  ``delay_rounds`` bounds how many rounds a
    delayed message is held (the actual hold is drawn in ``[1,
    delay_rounds]``).
    """

    drop: float = 0.0
    dup: float = 0.0
    delay: float = 0.0
    corrupt: float = 0.0
    delay_rounds: int = 3
    crashes: Tuple[CrashEvent, ...] = ()
    stalls: Tuple[StallEvent, ...] = ()

    def __post_init__(self) -> None:
        total = self.drop + self.dup + self.delay + self.corrupt
        if not 0.0 <= total <= 1.0:
            raise ValueError("message-fault rates must sum to [0, 1]")
        if self.delay_rounds < 1:
            raise ValueError("delay_rounds must be >= 1")


@dataclass
class ChaosStats:
    """What the chaos layer actually did (all counters cumulative)."""

    transmissions: int = 0  # protocol envelopes seen by the filter
    drops: int = 0
    dups: int = 0
    delays: int = 0
    corrupts: int = 0
    dead_drops: int = 0     # envelopes lost to a crashed destination
    stalled_slots: int = 0  # per-destination slots deferred by a stall
    idle_rounds: int = 0    # empty rounds charged (delays, stalls, backoff)
    retransmissions: int = 0  # re-sends issued by the delivery protocol
    crashes: int = 0
    restarts: int = 0
    wipes: int = 0

    def faults_injected(self) -> int:
        """Total individual fault events (for overhead envelopes)."""
        return (self.drops + self.dups + self.delays + self.corrupts
                + self.dead_drops + self.stalled_slots + self.crashes)

    def as_dict(self) -> Dict[str, int]:
        return {f.name: getattr(self, f.name) for f in fields(self)}


class FaultPlan:
    """A seeded, deterministic schedule of faults.

    The plan is *pure*: every decision is a hash of ``(seed, counter)``
    or ``(seed, event index)``, never of wall time or call order, so two
    runs that transmit the same message sequence experience the same
    faults.  Install on a machine with
    :meth:`repro.sim.machine.PIMMachine.install_fault_plan`.
    """

    def __init__(self, spec: FaultSpec, seed: int) -> None:
        self.spec = spec
        self.seed = seed
        # Per-module lifecycle windows, precomputed for O(1) queries.
        self._crashes_by_mid: Dict[int, List[CrashEvent]] = {}
        for ev in spec.crashes:
            self._crashes_by_mid.setdefault(ev.mid, []).append(ev)
        self._stalls_by_mid: Dict[int, List[StallEvent]] = {}
        for ev in spec.stalls:
            self._stalls_by_mid.setdefault(ev.mid, []).append(ev)

    # -- message faults --------------------------------------------------

    def message_action(self, transmission: int) -> str:
        """The fate of the ``transmission``-th protocol envelope seen.

        One of ``deliver | drop | dup | delay | corrupt``.  Keyed on a
        transmission counter (not the sequence number) so retries of the
        same envelope draw independently.
        """
        spec = self.spec
        u = _unit(self.seed, 0x5EED, transmission)
        if u < spec.drop:
            return "drop"
        u -= spec.drop
        if u < spec.dup:
            return "dup"
        u -= spec.dup
        if u < spec.delay:
            return "delay"
        u -= spec.delay
        if u < spec.corrupt:
            return "corrupt"
        return "deliver"

    def delay_for(self, transmission: int) -> int:
        """How many rounds the ``transmission``-th envelope is held."""
        return 1 + _mix(self.seed, 0xDE1A, transmission) % self.spec.delay_rounds

    # -- module lifecycle ------------------------------------------------

    def is_dead(self, mid: int, rnd: int) -> bool:
        for ev in self._crashes_by_mid.get(mid, ()):
            if ev.at_round <= rnd and (ev.restart_round is None
                                       or rnd < ev.restart_round):
                return True
        return False

    def is_stalled(self, mid: int, rnd: int) -> bool:
        for ev in self._stalls_by_mid.get(mid, ()):
            if ev.at_round <= rnd < ev.at_round + ev.rounds:
                return True
        return False

    def max_event_round(self) -> int:
        """The last chaos round at which any module event transitions."""
        last = 0
        for ev in self.spec.crashes:
            last = max(last, ev.at_round, ev.restart_round or 0)
        for ev in self.spec.stalls:
            last = max(last, ev.at_round + ev.rounds)
        return last


class ChaosState:
    """Runtime state of an installed :class:`FaultPlan`.

    Owned by the machine (one per install); holds the delayed-message
    buffer, fired lifecycle transitions and fault statistics.  All
    methods are called from the engine's chaos round path only -- the
    fault-free path never touches this class.
    """

    def __init__(self, plan: FaultPlan, base_round: int) -> None:
        self.plan = plan
        self.base_round = base_round
        self.stats = ChaosStats()
        self.transmissions = 0
        # (due_round, dest, entry, size); kept in insertion order --
        # re-injection sorts by (due, insertion) implicitly via scan.
        self.delayed: List[Tuple[int, int, tuple, int]] = []
        self._fired: set = set()  # (kind, event) lifecycle transitions

    # -- pending work ----------------------------------------------------

    def has_pending(self) -> bool:
        """True when chaos holds messages the drain loop must wait for."""
        return bool(self.delayed)

    def describe(self, rnd: int) -> str:
        """Chaos-side context for drain/livelock diagnostics."""
        plan = self.plan
        mids = set(plan._crashes_by_mid) | set(plan._stalls_by_mid)
        dead = sorted(m for m in mids if plan.is_dead(m, rnd))
        stalled = sorted(m for m in mids if plan.is_stalled(m, rnd))
        parts = [f"chaos round {rnd}"]
        if self.delayed:
            parts.append(f"{len(self.delayed)} delayed message(s) in flight")
        if dead:
            parts.append(f"crashed modules: {dead}")
        if stalled:
            parts.append(f"stalled modules: {stalled}")
        return "; ".join(parts)

    # -- lifecycle -------------------------------------------------------

    def begin_round(self, machine: Any, rnd: int) -> None:
        """Fire module lifecycle transitions scheduled at round ``rnd``.

        Transitions are edge-triggered and idempotent (a round index may
        be observed more than once when no round is ultimately charged).
        """
        for ev in self.plan.spec.crashes:
            if ev.at_round <= rnd and ("crash", ev) not in self._fired:
                self._fired.add(("crash", ev))
                self.stats.crashes += 1
                if ev.wipe:
                    self.stats.wipes += 1
                    machine.wipe_module(ev.mid)
            if (ev.restart_round is not None and rnd >= ev.restart_round
                    and ("restart", ev) not in self._fired):
                self._fired.add(("restart", ev))
                self.stats.restarts += 1

    # -- the per-round message filter ------------------------------------

    def filter_round(self, machine: Any, staged: Dict[int, list],
                     rnd: int) -> Dict[int, list]:
        """Apply the fault plan to one round's staged messages.

        Returns the slots to actually deliver this round.  Side effects:
        stalled slots are pushed back into ``machine._staged`` (they
        arrive in a later round), delayed envelopes move into
        :attr:`delayed`, and due delayed envelopes are re-injected.
        """
        plan = self.plan
        stats = self.stats
        out: Dict[int, list] = {}

        wiped = machine.wiped_modules

        # Re-inject delayed envelopes that come due this round.
        if self.delayed:
            still: List[Tuple[int, int, tuple, int]] = []
            for due, dest, entry, size in self.delayed:
                if due > rnd:
                    still.append((due, dest, entry, size))
                    continue
                if plan.is_dead(dest, rnd) or dest in wiped:
                    stats.dead_drops += 1
                    continue
                if plan.is_stalled(dest, rnd):
                    # Arrived at a straggler: hold one more round.
                    still.append((rnd + 1, dest, entry, size))
                    continue
                slot = out.get(dest)
                if slot is None:
                    out[dest] = [size, [entry], []]
                else:
                    slot[0] += size
                    slot[1].append(entry)
            self.delayed = still

        for mid, slot in sorted(staged.items()):
            if plan.is_stalled(mid, rnd):
                stats.stalled_slots += 1
                self._defer(machine, mid, slot)
                continue
            if plan.is_dead(mid, rnd) or mid in wiped:
                self._deliver_to_dead(mid, slot, stats,
                                      wiped=mid in wiped)
                continue
            units = slot[0]
            cpu_q: List[tuple] = []
            for entry in slot[1]:
                if entry[3] != DELIVER_FN:
                    cpu_q.append(entry)
                    continue
                units -= self._fault_entry(entry, mid, rnd, cpu_q)
            dst = out.get(mid)
            if dst is None:
                if cpu_q or slot[2]:
                    out[mid] = [units, cpu_q, slot[2]]
            else:
                dst[0] += units
                dst[1] = cpu_q + dst[1]  # delayed arrivals go after fresh
                dst[2].extend(slot[2])
                # Reorder: keep CPU-before-forward delivery order but put
                # this round's fresh sends ahead of re-injected stragglers.
                out[mid] = [dst[0], dst[1], dst[2]]
        return out

    def _fault_entry(self, entry: tuple, mid: int, rnd: int,
                     cpu_q: List[tuple]) -> int:
        """Apply a message fault to one protocol envelope.

        Appends the (possibly duplicated/corrupted) entry to ``cpu_q``
        and returns how many message units to *subtract* from the slot
        (positive for drop/delay, negative for dup).
        """
        plan = self.plan
        stats = self.stats
        size = entry[1][4]
        t = self.transmissions
        self.transmissions += 1
        stats.transmissions += 1
        action = plan.message_action(t)
        if action == "drop":
            stats.drops += 1
            return size
        if action == "delay":
            stats.delays += 1
            self.delayed.append((rnd + plan.delay_for(t), mid, entry, size))
            return size
        if action == "dup":
            stats.dups += 1
            cpu_q.append(entry)
            cpu_q.append(entry)
            return -size
        if action == "corrupt":
            stats.corrupts += 1
            handler, args, tag, fn = entry
            cpu_q.append((handler, args + (True,), tag, fn))
            return 0
        cpu_q.append(entry)
        return 0

    def _defer(self, machine: Any, mid: int, slot: list) -> None:
        """Push a stalled destination's whole slot to the next round."""
        staged = machine._staged
        nxt = staged.get(mid)
        if nxt is None:
            staged[mid] = slot
        else:
            nxt[0] += slot[0]
            nxt[1].extend(slot[1])
            nxt[2].extend(slot[2])

    def _deliver_to_dead(self, mid: int, slot: list, stats: ChaosStats,
                         wiped: bool = False) -> None:
        """Messages arriving at a crashed (or wiped-and-unrepaired)
        module: envelopes are lost, anything else is a hard fault."""
        why = ("lost its DRAM and awaits repair" if wiped
               else "crashed (fail-stop)")
        for q in (slot[1], slot[2]):
            for entry in q:
                if entry[3] == DELIVER_FN:
                    stats.dead_drops += 1
                else:
                    raise ModuleCrashed(
                        f"module {mid} {why} with task "
                        f"{entry[3]!r} in flight to it; unprotected "
                        f"messages have no retry path", mid=mid)


# -- named fault schedules ------------------------------------------------
#
# Each builder maps (fault seed, num_modules) to a FaultPlan; module ids
# and event rounds are drawn deterministically from the seed.  These are
# the machine-level entries of the unified fault registry
# (repro.verify.faults) and the schedules the chaos harness sweeps.

def _pick_mid(seed: int, salt: int, num_modules: int) -> int:
    return _mix(seed, salt) % num_modules


def _sched_drop(seed: int, num_modules: int) -> FaultPlan:
    return FaultPlan(FaultSpec(drop=0.15), seed)


def _sched_dup_delay(seed: int, num_modules: int) -> FaultPlan:
    return FaultPlan(FaultSpec(dup=0.10, delay=0.15, delay_rounds=3), seed)


def _sched_corrupt(seed: int, num_modules: int) -> FaultPlan:
    return FaultPlan(FaultSpec(corrupt=0.12), seed)


def _sched_stall(seed: int, num_modules: int) -> FaultPlan:
    stalls = []
    for i in range(2):
        mid = _pick_mid(seed, 0x57A11 + i, num_modules)
        at = 3 + _mix(seed, 0xA7 + i) % 12
        stalls.append(StallEvent(mid=mid, at_round=at,
                                 rounds=2 + _mix(seed, 0xB0 + i) % 4))
    return FaultPlan(FaultSpec(stalls=tuple(stalls)), seed)


def _sched_crash_restart(seed: int, num_modules: int) -> FaultPlan:
    mid = _pick_mid(seed, 0xC0A5, num_modules)
    at = 4 + _mix(seed, 0xC1) % 10
    return FaultPlan(FaultSpec(crashes=(
        CrashEvent(mid=mid, at_round=at,
                   restart_round=at + 3 + _mix(seed, 0xC2) % 5),)), seed)


def _sched_crash_wipe(seed: int, num_modules: int) -> FaultPlan:
    mid = _pick_mid(seed, 0xDEAD, num_modules)
    at = 4 + _mix(seed, 0xD1) % 10
    return FaultPlan(FaultSpec(crashes=(
        CrashEvent(mid=mid, at_round=at, restart_round=at + 4,
                   wipe=True),)), seed)


def _sched_intermittent(seed: int, num_modules: int) -> FaultPlan:
    """One module flaps -- repeated short crash/restart cycles with
    state intact -- under light message loss.  The serving layer's
    circuit-breaker/failover path is aimed at exactly this shape: the
    module is *usually* back before the retry budget runs out, but not
    always."""
    mid = _pick_mid(seed, 0x17E2, num_modules)
    crashes = []
    at = 3 + _mix(seed, 0xE1) % 6
    for i in range(3):
        restart = at + 2 + _mix(seed, 0xE2 + i) % 3
        crashes.append(CrashEvent(mid=mid, at_round=at,
                                  restart_round=restart))
        at = restart + 3 + _mix(seed, 0xE5 + i) % 6
    return FaultPlan(FaultSpec(drop=0.04, crashes=tuple(crashes)), seed)


def _sched_mixed(seed: int, num_modules: int) -> FaultPlan:
    mid = _pick_mid(seed, 0x111, num_modules)
    at = 5 + _mix(seed, 0x112) % 10
    return FaultPlan(FaultSpec(
        drop=0.05, dup=0.04, delay=0.06, corrupt=0.03, delay_rounds=2,
        stalls=(StallEvent(mid=mid, at_round=at, rounds=3),)), seed)


#: Machine-level fault schedules: name -> builder(seed, num_modules).
#: Registered (collision-checked, alongside the adapter-level mutation
#: faults) in :mod:`repro.verify.faults`.
MACHINE_SCHEDULES: Dict[str, Callable[[int, int], FaultPlan]] = {
    "drop": _sched_drop,
    "dup_delay": _sched_dup_delay,
    "corrupt": _sched_corrupt,
    "stall": _sched_stall,
    "crash_restart": _sched_crash_restart,
    "crash_wipe": _sched_crash_wipe,
    "mixed": _sched_mixed,
    "intermittent": _sched_intermittent,
}


def build_schedule(name: str, seed: int, num_modules: int) -> FaultPlan:
    """Instantiate the named machine-level fault schedule."""
    builder = MACHINE_SCHEDULES.get(name)
    if builder is None:
        raise ValueError(f"unknown fault schedule {name!r}; known: "
                         f"{', '.join(sorted(MACHINE_SCHEDULES))}")
    return builder(seed, num_modules)
