"""The CPU side: work/depth accounting and shared-memory tracking.

The paper analyzes the CPU side with work--depth analysis (assuming a
work-stealing scheduler, so time on ``P'`` cores is ``O(W/P' + D)``).  The
simulator therefore executes CPU-side code sequentially but charges
``(work, depth)`` pairs that compose the way the analysis composes them:

- sequential composition adds both components;
- parallel composition adds work and takes the max depth.

:class:`WorkDepth` is a small value type supporting these compositions
(``+`` for sequential, ``|`` for parallel); the parallel primitives in
:mod:`repro.cpuside` compute real results *and* the canonical work/depth
of the algorithm that would produce them, then charge the total here.

Shared memory is the model's small ``M``-word CPU-side memory.  CPU code
declares footprints with :meth:`CPUSide.alloc` / :meth:`CPUSide.free` (or
the :meth:`CPUSide.region` context manager); the peak is the "minimum M
needed" column of Table 1.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass
from typing import Iterator, Optional

from repro.sim.errors import SharedMemoryExceeded


@dataclass(frozen=True)
class WorkDepth:
    """An immutable (work, depth) pair with the standard compositions.

    ``a + b`` is sequential composition (work and depth both add);
    ``a | b`` is parallel composition (work adds, depth maxes);
    ``wd * k`` scales both components (``k`` repetitions in sequence).
    """

    work: float = 0.0
    depth: float = 0.0

    def __add__(self, other: "WorkDepth") -> "WorkDepth":
        return WorkDepth(self.work + other.work, self.depth + other.depth)

    def __or__(self, other: "WorkDepth") -> "WorkDepth":
        return WorkDepth(self.work + other.work, max(self.depth, other.depth))

    def __mul__(self, k: float) -> "WorkDepth":
        return WorkDepth(self.work * k, self.depth * k)

    __rmul__ = __mul__

    @staticmethod
    def zero() -> "WorkDepth":
        return WorkDepth(0.0, 0.0)

    @staticmethod
    def unit(w: float = 1.0) -> "WorkDepth":
        """A sequential block of ``w`` unit instructions."""
        return WorkDepth(w, w)

    @staticmethod
    def flat(work: float, depth: float) -> "WorkDepth":
        return WorkDepth(work, depth)


class CPUSide:
    """Accounting state for the CPU side of a PIM machine."""

    def __init__(self, metrics: "Metrics", shared_memory_words: int,  # noqa: F821
                 enforce: bool = False) -> None:
        self.metrics = metrics
        self.shared_memory_words = shared_memory_words
        self.enforce = enforce

    # -- work/depth -----------------------------------------------------

    def charge(self, work: float, depth: Optional[float] = None) -> None:
        """Charge CPU work and depth.

        ``depth`` defaults to ``work`` (a sequential block).  Parallel
        CPU-side algorithms compute a :class:`WorkDepth` and call
        :meth:`charge_wd`.
        """
        if depth is None:
            depth = work
        self.metrics.cpu_work += work
        self.metrics.cpu_depth += depth

    def charge_wd(self, wd: WorkDepth) -> None:
        """Charge a composed :class:`WorkDepth` value."""
        self.metrics.cpu_work += wd.work
        self.metrics.cpu_depth += wd.depth

    # -- shared memory -----------------------------------------------------

    def alloc(self, words: int) -> None:
        """Claim ``words`` of CPU-side shared memory."""
        self.metrics.shared_mem_in_use += words
        if self.metrics.shared_mem_in_use > self.metrics.shared_mem_peak:
            self.metrics.shared_mem_peak = self.metrics.shared_mem_in_use
        if self.enforce and self.metrics.shared_mem_in_use > self.shared_memory_words:
            raise SharedMemoryExceeded(
                f"{self.metrics.shared_mem_in_use} words in use, "
                f"M = {self.shared_memory_words}"
            )

    def free(self, words: int) -> None:
        """Release ``words`` of CPU-side shared memory."""
        self.metrics.shared_mem_in_use -= words
        if self.metrics.shared_mem_in_use < 0:
            raise ValueError("negative shared memory usage")

    @contextmanager
    def region(self, words: int) -> Iterator[None]:
        """Scoped allocation: ``with cpu.region(n): ...``."""
        self.alloc(words)
        try:
            yield
        finally:
            self.free(words)

    def reset_peak(self) -> None:
        """Reset the shared-memory high-water mark to current usage.

        Call before a measured region so the region's reported peak is its
        own (peaks are high-water marks and do not subtract).
        """
        self.metrics.shared_mem_peak = self.metrics.shared_mem_in_use
