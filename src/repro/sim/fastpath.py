"""The array-native (columnar) round engine.

The reference engine (:class:`repro.sim.machine.PIMMachine`) stages one
pre-resolved entry tuple per message into per-destination queues and
dispatches one Python call per task.  That is exact but object-bound: the
wall-clock cost of a round is dominated by per-task allocation and
dispatch, not by the model quantities the paper charges.  This module
provides :class:`ColumnarPIMMachine`, a drop-in backend
(``PIMMachine(backend="columnar")``) in which a round is a batch
operation over flat buffers:

Columnar layout
---------------

Staged traffic is a sequence of **chunks**, each one function id's
contiguous run of messages, in two streams mirroring the reference
engine's CPU-before-forward delivery order::

    _cq (CPU-issued)   [ chunk(fn=A) | chunk(fn=B) | ... ]
    _fq (continuations) [ chunk(fn=A) | ... ]

    chunk kinds
      rows:  rows = [(dest, args, tag, size), ...]   (scalar issue path)
      cols:  dests = int array; cols = tuple of payload column arrays
             (numpy, emitted by vectorized batch handlers)
      bcast: one (args, tag, size) delivered to every module

Per-destination receive totals (the ``h``-relation's incoming half) are
accumulated *at append time* into a pooled flat counter array
(``_recv``), so a round never scans or re-buckets messages; column
chunks accumulate through one ``bincount`` per emission.

Grouped dispatch
----------------

A round groups its chunks by function id.  Functions with a **batch
handler** (:meth:`repro.sim.machine.PIMMachine.register_batch`) execute
as ONE call per function over all of its chunks -- the handler loops (or
numpy-vectorizes) over contiguous slices, charging work and sends into
flat per-module accumulators on the shared :class:`BatchRound` context.
All remaining tasks fall back to per-task scalar execution in exactly
the reference engine's order: destinations ascending, CPU-issued before
forwarded, arrival order within a queue.

Execution contract for batch handlers
-------------------------------------

Within a round, all model metrics (h, message count, per-module work
sums, the per-round PIM maximum) are order-independent, and the
per-destination multisets staged for the next round are preserved under
any execution order.  Batch handlers are therefore required to be:

- **order-insensitive** across the round's tasks (no observable
  dependence on intra-round execution order),
- **read-only with respect to shared replicated structure** (handlers
  like ``link_upper_node``, whose first executor pays different charges,
  must stay scalar), and
- **RNG-free** (the machine's seeded stream must be consumed in the
  same order as under the object engine).

The contract is not just documented -- it is *certified empirically*:
``repro.verify.differ`` replays fuzz sessions and the golden 13-workload
suite on both backends and requires bit-identical per-op metric streams
and results.

Typed fallback
--------------

Features that are inherently per-task keep the reference semantics by
falling back to the object engine, with a typed :class:`FallbackEvent`
recorded on the machine (``machine.fallback_events``):

- ``fault_plan`` -- chaos schedules and the reliable-delivery protocol
  rewrite per-destination queues in place; entered on
  :meth:`install_fault_plan`, exited on :meth:`uninstall_fault_plan`.
- ``profiler`` -- per-handler wall-time attribution needs per-task
  clock reads; entered/exited via :meth:`set_profiler`.
- ``qrqw`` / ``trace_accesses`` -- per-object access accounting is
  per-task by definition; permanent for the machine's lifetime.

Entering a fallback converts pending columnar chunks into the object
engine's staged slots (preserving per-destination arrival order);
exiting converts back.  Aggregate per-destination message units are
preserved exactly in both directions, so the model metrics are
unaffected by when a fallback triggers.

numpy is optional: without it, column chunks are never produced (batch
handlers consult :data:`HAVE_NUMPY`) and all accounting stays in plain
Python -- the backend remains available and exact, just less vectorized.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from repro.sim.chaos import ChaosState, FaultPlan
from repro.sim.errors import LivelockError, MalformedMessageError, \
    UnknownHandlerError
from repro.sim.machine import PIMMachine, _CPU_Q, _FWD_Q
from repro.sim.module import ModuleContext
from repro.sim.task import Reply
from repro.sim.tracing import RoundLog

try:  # numpy is an accelerator, not a dependency
    import numpy as _np
except ImportError:  # pragma: no cover - the container bakes numpy in
    _np = None

HAVE_NUMPY = _np is not None

# Chunk kinds.
ROWS, COLS, BCAST = 0, 1, 2

# Fallback reasons (FallbackEvent.reason).
FALLBACK_FAULT_PLAN = "fault_plan"
FALLBACK_PROFILER = "profiler"
FALLBACK_QRQW = "qrqw"
FALLBACK_TRACE_ACCESSES = "trace_accesses"


class FallbackEvent:
    """A typed record of one columnar->object engine fallback.

    ``reason`` is one of the ``FALLBACK_*`` constants, ``detail`` a
    human-readable amplification, and ``at_round`` the machine's
    cumulative round counter when the fallback engaged.
    """

    __slots__ = ("reason", "detail", "at_round")

    def __init__(self, reason: str, detail: str, at_round: int) -> None:
        self.reason = reason
        self.detail = detail
        self.at_round = at_round

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"FallbackEvent(reason={self.reason!r}, "
                f"at_round={self.at_round}, detail={self.detail!r})")


class _Chunk:
    """One function id's contiguous run of staged messages."""

    __slots__ = ("fn", "handler", "kind", "rows", "dests", "cols",
                 "args", "tag", "size")

    def __init__(self, fn: str, handler: Any, kind: int) -> None:
        self.fn = fn
        self.handler = handler
        self.kind = kind
        self.rows: Optional[list] = None   # ROWS: [(dest, args, tag, size)]
        self.dests: Any = None             # COLS: int array of destinations
        self.cols: Any = None              # COLS: tuple of payload columns
        self.args: Any = None              # BCAST: the shared args tuple
        self.tag: Any = None               # BCAST: the shared tag
        self.size: int = 1                 # COLS/BCAST: uniform message size

    def task_count(self, num_modules: int) -> int:
        if self.kind == ROWS:
            return len(self.rows)
        if self.kind == COLS:
            return len(self.dests)
        return num_modules


class ColumnarContext(ModuleContext):
    """A :class:`ModuleContext` whose forwards stage into columnar
    chunks.  Used for scalar-task execution inside columnar rounds; the
    reply path and all accounting are inherited unchanged."""

    __slots__ = ()

    def forward(self, dest: int, fn: str, args: tuple = (), tag: Any = None,
                size: int = 1) -> None:
        if not 0 <= dest < self.num_modules:
            raise ValueError(f"bad module id {dest}")
        handler = self._handlers.get(fn)
        if handler is None:
            raise UnknownHandlerError(
                f"no handler for {fn!r} (resolved at forward time)")
        self.machine._stage_row(self.machine._fq, fn, handler,
                                dest, args, tag, size)
        self._sent_size += size


class BatchRound:
    """Per-round context handed to batch handlers.

    One instance lives on the machine and is re-armed each round; the
    flat per-module accumulators (:attr:`work`, :attr:`sent` --
    length-P lists indexed by module id) are pooled and slice-reset on
    re-arm, part of the zero-allocation steady state.  A batch handler:

    - reads its tasks from the chunks it is passed;
    - appends :class:`~repro.sim.task.Reply` objects to :attr:`replies`
      (bumping ``sent[mid]`` for the executing module);
    - charges local work into ``work[mid]`` and message sends into
      ``sent[mid]`` -- only for modules that received tasks this round
      (the executing module of some task; charging elsewhere violates
      the execution contract) -- or, for vectorized handlers, into flat
      per-module arrays via :meth:`add_work_array` /
      :meth:`add_sent_array`;
    - stages next-round continuations with :meth:`stage_rows` /
      :meth:`stage_cols`.

    Work values must be integer-valued (the model charges unit RAM
    instructions), which keeps float64 array summation exact and the
    cross-backend metric streams bit-identical.
    """

    __slots__ = ("machine", "num_modules", "replies", "work", "sent",
                 "_work_np", "_sent_np")

    def __init__(self, machine: "ColumnarPIMMachine") -> None:
        self.machine = machine
        self.num_modules = machine.num_modules
        self.replies: list = []
        self.work: List[float] = [0.0] * machine.num_modules
        self.sent: List[int] = [0] * machine.num_modules
        self._work_np: Any = None
        self._sent_np: Any = None

    def _arm(self, replies: list) -> None:
        self.replies = replies
        # Slice-reset the pooled accumulators (C-level copy from the zero
        # templates -- no reallocation).
        self.work[:] = self.machine._zeros_f
        self.sent[:] = self.machine._zeros_i
        self._work_np = None
        self._sent_np = None

    # -- scalar-ish accumulation ------------------------------------------

    def reply(self, mid: int, payload: Any, tag: Any = None,
              size: int = 1) -> None:
        """Emit one reply from module ``mid`` (accounts the send)."""
        self.replies.append(Reply(payload, tag, mid))
        self.sent[mid] += size

    # -- vectorized accumulation ------------------------------------------

    def add_work_array(self, work: Any) -> None:
        """Fold a length-P float array of per-module work charges in."""
        if self._work_np is None:
            self._work_np = work.astype("float64", copy=True)
        else:
            self._work_np += work

    def add_sent_array(self, sent: Any) -> None:
        """Fold a length-P int array of per-module sent units in."""
        if self._sent_np is None:
            self._sent_np = sent.astype("int64", copy=True)
        else:
            self._sent_np += sent

    # -- staging continuations --------------------------------------------

    def stage_rows(self, fn: str, rows: list) -> None:
        """Stage continuation rows ``[(dest, args, tag, size), ...]``
        for the next round (receive accounting included).  The sender
        side must be charged by the handler via :attr:`sent`."""
        self.machine._stage_fwd_rows(fn, rows)

    def stage_cols(self, fn: str, dests: Any, cols: Tuple[Any, ...],
                   size: int = 1) -> None:
        """Stage a column chunk of continuations (numpy path)."""
        self.machine._stage_fwd_cols(fn, dests, cols, size)


class ColumnarPIMMachine(PIMMachine):
    """The array-native backend behind ``PIMMachine(backend="columnar")``.

    Public surface, metrics and reply semantics are identical to the
    base class; see the module docstring for the execution model and
    the fallback rules.
    """

    def __init__(self, num_modules: Optional[int] = None,
                 config: Any = None, **kwargs: Any) -> None:
        super().__init__(num_modules, config, **kwargs)
        P = self.num_modules
        # Columnar staging state (see module docstring).
        self._cq: List[_Chunk] = []
        self._fq: List[_Chunk] = []
        self._recv: List[int] = [0] * P
        self._recv_spare: Optional[List[int]] = None  # pooled buffer
        self._recv_np: Any = None
        self._active: List[int] = []
        self._bcast_units: int = 0
        self._incoming_total: int = 0
        self._bct = BatchRound(self)
        # Zero templates for slice-resetting the pooled flat accumulators
        # on the (numpy) accounting path.
        self._zeros_f: List[float] = [0.0] * P
        self._zeros_i: List[int] = [0] * P
        # Shared all-zero receive vector for rounds with no row-staged
        # traffic (never mutated -- arithmetic on it allocates fresh).
        self._zero_np: Any = (_np.zeros(P, dtype="int64")
                              if _np is not None else None)
        # Deferred per-module batch work (float64 vector): the numpy
        # accounting path accumulates here instead of touching P module
        # objects per round; folded into ``module.work`` lazily at
        # measurement points (``_sync_pim_work``).  Integer-valued
        # charges keep the float64 sums exact, so the deferral cannot
        # perturb the metric stream.
        self._work_acc: Any = None
        # Scalar execution inside columnar rounds uses contexts whose
        # forward() stages into chunks; the inherited _contexts remain
        # in use for fallback (object-engine) rounds.
        self._ccontexts: List[ColumnarContext] = [
            ColumnarContext(self, m) for m in self.modules
        ]
        #: Typed fallback history (list of :class:`FallbackEvent`).
        self.fallback_events: List[FallbackEvent] = []
        self._fallback_reasons: set = set()
        if self.qrqw:
            self._enter_fallback(
                FALLBACK_QRQW,
                "qrqw contention accounting is per-task by definition")
        if self.config.trace_accesses:
            self._enter_fallback(
                FALLBACK_TRACE_ACCESSES,
                "per-object access tracing is per-task by definition")

    @property
    def backend(self) -> str:
        return "columnar"

    @property
    def columnar_active(self) -> bool:
        """True when rounds execute on the columnar path (no fallback
        reason is currently engaged)."""
        return not self._fallback_reasons

    # -- fallback machinery -------------------------------------------------

    def _enter_fallback(self, reason: str, detail: str) -> None:
        if reason in self._fallback_reasons:
            return
        first = not self._fallback_reasons
        self._fallback_reasons.add(reason)
        self.fallback_events.append(
            FallbackEvent(reason, detail, self.metrics.rounds))
        if first:
            self._columnar_to_staged()

    def _exit_fallback(self, reason: str) -> None:
        if reason not in self._fallback_reasons:
            return
        self._fallback_reasons.discard(reason)
        if not self._fallback_reasons:
            self._staged_to_columnar()

    def _columnar_to_staged(self) -> None:
        """Convert pending chunks into object-engine staged slots,
        preserving per-destination arrival order and aggregate units."""
        staged = self._staged
        for q, chunks in ((_CPU_Q, self._cq), (_FWD_Q, self._fq)):
            for ch in chunks:
                for dest, args, tag, size in self._iter_chunk(ch):
                    slot = staged.get(dest)
                    if slot is None:
                        slot = staged[dest] = [0, [], []]
                    slot[0] += size
                    slot[q].append((ch.handler, args, tag, ch.fn))
        self._reset_staging()

    def _staged_to_columnar(self) -> None:
        """Convert object-engine staged slots back into chunks.

        Per-entry sizes inside a slot are not individually recorded by
        the object engine (only the slot total), so sizes are assigned
        to preserve the slot's aggregate units exactly: every row gets
        size 1 and the first row absorbs the remainder.  All model
        metrics depend only on the aggregates.
        """
        staged = self._staged
        self._staged = {}
        for mid in sorted(staged):
            slot = staged[mid]
            entries = len(slot[_CPU_Q]) + len(slot[_FWD_Q])
            extra = slot[0] - entries  # remainder of aggregate units
            for q, out in ((_CPU_Q, self._cq), (_FWD_Q, self._fq)):
                for handler, args, tag, fn in slot[q]:
                    size = 1 + extra
                    extra = 0
                    self._stage_row(out, fn, handler, mid, args, tag, size)

    def _iter_chunk(self, ch: _Chunk):
        """Yield ``(dest, args, tag, size)`` rows of any chunk kind."""
        if ch.kind == ROWS:
            yield from ch.rows
        elif ch.kind == COLS:
            size = ch.size
            dests = ch.dests.tolist()
            cols = [c.tolist() for c in ch.cols]
            for i, dest in enumerate(dests):
                yield dest, tuple(c[i] for c in cols), None, size
        else:  # BCAST
            for mid in range(self.num_modules):
                yield mid, ch.args, ch.tag, ch.size

    # -- staging helpers ----------------------------------------------------

    def _reset_staging(self) -> None:
        self._cq = []
        self._fq = []
        recv = self._recv
        for mid in self._active:
            recv[mid] = 0
        self._active = []
        self._recv_np = None
        self._bcast_units = 0
        self._incoming_total = 0

    def _stage_row(self, queue: List[_Chunk], fn: str, handler: Any,
                   dest: int, args: tuple, tag: Any, size: int) -> None:
        """Append one message row (receive accounting included)."""
        recv = self._recv
        if recv[dest] == 0:
            self._active.append(dest)
        recv[dest] += size
        self._incoming_total += size
        if queue:
            tail = queue[-1]
            if tail.fn == fn and tail.kind == ROWS:
                tail.rows.append((dest, args, tag, size))
                return
        ch = _Chunk(fn, handler, ROWS)
        ch.rows = [(dest, args, tag, size)]
        queue.append(ch)

    def _stage_fwd_rows(self, fn: str, rows: list) -> None:
        """Bulk-append continuation rows (used by batch handlers)."""
        if not rows:
            return
        handler = self._handlers.get(fn)
        if handler is None:
            raise UnknownHandlerError(
                f"no handler for {fn!r} (resolved at forward time)")
        recv = self._recv
        active = self._active
        inc = 0
        for dest, _args, _tag, size in rows:
            if recv[dest] == 0:
                active.append(dest)
            recv[dest] += size
            inc += size
        self._incoming_total += inc
        fq = self._fq
        if fq:
            tail = fq[-1]
            if tail.fn == fn and tail.kind == ROWS:
                tail.rows.extend(rows)
                return
        ch = _Chunk(fn, handler, ROWS)
        ch.rows = rows
        fq.append(ch)

    def _stage_cols_into(self, queue: List[_Chunk], fn: str, dests: Any,
                         cols: Tuple[Any, ...], size: int) -> None:
        """Stage one vectorized column chunk (receive accounting
        included) into ``queue``."""
        if _np is None:
            raise RuntimeError("column chunks require numpy; "
                               "check repro.sim.fastpath.HAVE_NUMPY")
        n = len(dests)
        if n == 0:
            return
        handler = self._handlers.get(fn)
        if handler is None:
            raise UnknownHandlerError(
                f"no handler for {fn!r} (resolved at forward time)")
        # bincount yields a fresh int64 vector we own -- adopt it.
        counts = _np.bincount(dests, minlength=self.num_modules)
        if size != 1:
            counts *= size
        if self._recv_np is None:
            self._recv_np = counts
        else:
            self._recv_np += counts
        self._incoming_total += n * size
        ch = _Chunk(fn, handler, COLS)
        ch.dests = dests
        ch.cols = tuple(cols)
        ch.size = size
        queue.append(ch)

    def _stage_fwd_cols(self, fn: str, dests: Any, cols: Tuple[Any, ...],
                        size: int = 1) -> None:
        """Stage a vectorized column chunk of continuations."""
        self._stage_cols_into(self._fq, fn, dests, cols, size)

    @property
    def can_send_cols(self) -> bool:
        """Whether :meth:`send_cols` is usable right now.

        False while the engine runs in scalar fallback (profiling, no
        numpy): there the round loop never dispatches batch handlers,
        and a column chunk's args are only meaningful to those.
        Callers must also keep column sends off the reliable-delivery
        protocol (chaos plans wrap every CPU-issued *scalar* message in
        an envelope; a column chunk would bypass that accounting).
        """
        return _np is not None and not self._fallback_reasons

    def send_cols(self, fn: str, dests: Any, cols: Tuple[Any, ...],
                  size: int = 1) -> None:
        """Issue one CPU-side batch of messages as a column chunk.

        The vectorized twin of :meth:`send_all` for homogeneous batches:
        ``dests`` (int64 array) and the parallel ``cols`` arrays land as
        one chunk that ``fn``'s registered batch handler consumes
        natively next round.  Receive accounting (h-relation units,
        task counts) is identical to sending the rows one by one, so
        metric streams do not depend on which form a caller uses.  Only
        available on the columnar engine outside scalar fallback --
        check :attr:`can_send_cols` first.
        """
        if not self.can_send_cols:
            raise RuntimeError(
                "send_cols unavailable: columnar engine is in scalar "
                f"fallback ({[e.reason for e in self._fallback_reasons]})"
                if self._fallback_reasons else
                "send_cols unavailable: numpy is not importable")
        self._stage_cols_into(self._cq, fn, dests, cols, size)

    # -- message issue (columnar overrides) ---------------------------------

    def send(self, dest: int, fn: str, args: tuple = (), tag: Any = None,
             size: int = 1) -> None:
        if self._fallback_reasons:
            super().send(dest, fn, args, tag, size)
            return
        if not 0 <= dest < self.num_modules:
            raise ValueError(f"bad module id {dest}")
        handler = self._handlers.get(fn)
        if handler is None:
            raise UnknownHandlerError(
                f"no handler for {fn!r} (resolved at send time)")
        self._stage_row(self._cq, fn, handler, dest, args, tag, size)

    def send_all(self, messages: Any) -> None:
        if self._fallback_reasons:
            super().send_all(messages)
            return
        n = self.num_modules
        handlers = self._handlers
        cq = self._cq
        recv = self._recv
        active = self._active
        inc = 0
        tail = cq[-1] if cq else None
        if tail is not None and tail.kind != ROWS:
            tail = None
        for msg in messages:
            if len(msg) == 4:
                dest, fn, args, tag = msg
                size = 1
            elif len(msg) == 5:
                dest, fn, args, tag, size = msg
                if type(size) is not int or size < 1:
                    raise MalformedMessageError(
                        f"send_all message {(dest, fn)} has invalid size "
                        f"{size!r}: the optional 5th element must be a "
                        f"positive int (constant-size message units)")
            else:
                raise MalformedMessageError(
                    f"send_all message has {len(msg)} elements; expected "
                    f"(dest, fn, args, tag) or (dest, fn, args, tag, size): "
                    f"{msg!r}")
            if not 0 <= dest < n:
                raise ValueError(f"bad module id {dest}")
            if recv[dest] == 0:
                active.append(dest)
            recv[dest] += size
            inc += size
            if tail is not None and tail.fn == fn:
                tail.rows.append((dest, args, tag, size))
                continue
            handler = handlers.get(fn)
            if handler is None:
                raise UnknownHandlerError(
                    f"no handler for {fn!r} (resolved at send time)")
            tail = _Chunk(fn, handler, ROWS)
            tail.rows = [(dest, args, tag, size)]
            cq.append(tail)
        self._incoming_total += inc

    def broadcast(self, fn: str, args: tuple = (), tag: Any = None,
                  size: int = 1) -> None:
        if self._fallback_reasons:
            super().broadcast(fn, args, tag, size)
            return
        handler = self._handlers.get(fn)
        if handler is None:
            raise UnknownHandlerError(
                f"no handler for {fn!r} (resolved at send time)")
        ch = _Chunk(fn, handler, BCAST)
        ch.args = args
        ch.tag = tag
        ch.size = size
        self._cq.append(ch)
        self._bcast_units += size
        self._incoming_total += size * self.num_modules

    # -- round execution ----------------------------------------------------

    def step(self) -> List[Reply]:
        if self._fallback_reasons:
            return super().step()
        if not (self._cq or self._fq):
            return []
        return self._columnar_round()

    def _columnar_round(self) -> List[Reply]:
        P = self.num_modules
        cq = self._cq
        fq = self._fq
        recv = self._recv
        active = self._active
        recv_np = self._recv_np
        bcast_units = self._bcast_units
        incoming_total = self._incoming_total
        # Install fresh staging (pooled recv buffer) for the messages
        # this round's handlers emit toward the NEXT round.
        spare = self._recv_spare
        if spare is None:
            spare = [0] * P
        else:
            self._recv_spare = None
        self._cq = []
        self._fq = []
        self._recv = spare
        self._active = []
        self._recv_np = None
        self._bcast_units = 0
        self._incoming_total = 0

        replies: List[Reply] = []
        batch_handlers = self._batch_handlers
        by_fn: Dict[str, List[_Chunk]] = {}
        slots: Dict[int, list] = {}
        tasks = 0
        bcast_all = False
        for chunks, q in ((cq, _CPU_Q), (fq, _FWD_Q)):
            for ch in chunks:
                tasks += ch.task_count(P)
                if ch.fn in batch_handlers:
                    lst = by_fn.get(ch.fn)
                    if lst is None:
                        by_fn[ch.fn] = [ch]
                    else:
                        lst.append(ch)
                else:
                    if ch.kind == BCAST:
                        bcast_all = True
                    qi = 0 if q == _CPU_Q else 1
                    for dest, args, tag, _size in self._iter_chunk(ch):
                        pair = slots.get(dest)
                        if pair is None:
                            pair = slots[dest] = ([], [])
                        pair[qi].append((ch.handler, args, tag))

        # Scalar tasks first, in the reference engine's order: module id
        # ascending, CPU-issued before forwarded, arrival order within.
        modules = self.modules
        scalar_sent: Optional[Dict[int, int]] = None
        if slots:
            ccontexts = self._ccontexts
            scalar_sent = {}
            for mid in sorted(slots):
                cpu_q, fwd_q = slots[mid]
                ctx = ccontexts[mid]
                ctx._replies = replies
                ctx._sent_size = 0
                modules[mid].round_work = 0.0
                for handler, args, tag in cpu_q:
                    handler(ctx, *args, tag=tag)
                for handler, args, tag in fwd_q:
                    handler(ctx, *args, tag=tag)
                scalar_sent[mid] = ctx._sent_size

        # Grouped dispatch: one call per function id over its chunks.
        bct = self._bct
        bct._arm(replies)
        for fn, fn_chunks in by_fn.items():
            batch_handlers[fn](bct, fn_chunks)

        # Scalar handlers that inline their forwards straight into the
        # object engine's staging dict (ops_search does) are absorbed
        # into next-round chunks here; aggregate units are preserved.
        if self._staged:
            self._staged_to_columnar()

        # -- round accounting (exact; see module docstring) ----------------
        # Batch charges are folded into cumulative per-module work here
        # (scalar charges already went through ctx.charge) and the pooled
        # flat accumulators are zeroed in the same pass -- round_work keeps
        # mirroring the object engine's "last active round" reading.
        work_np = bct._work_np
        sent_np = bct._sent_np
        bwork = bct.work
        bsent = bct.sent
        if recv_np is not None or work_np is not None or sent_np is not None:
            h, round_pim_max, sent_total = self._finish_np(
                recv, recv_np, bcast_units, scalar_sent, slots,
                bwork, bsent, work_np, sent_np, active)
        else:
            h = 0
            round_pim_max = 0.0
            sent_total = 0
            mids = range(P) if (bcast_units or bcast_all) else active
            scalar = scalar_sent is not None
            for mid in mids:
                s = bsent[mid]
                w = bwork[mid]
                if w:
                    module = modules[mid]
                    module.work += w
                    if scalar and mid in slots:
                        module.round_work += w
                        w = module.round_work
                    else:
                        module.round_work = w
                elif scalar and mid in slots:
                    w = modules[mid].round_work
                r = recv[mid] + bcast_units
                if r == 0:
                    continue
                if scalar:
                    s += scalar_sent.get(mid, 0)
                sent_total += s
                hm = r + s
                if hm > h:
                    h = hm
                if w > round_pim_max:
                    round_pim_max = w

        metrics = self.metrics
        metrics.io_time += h
        metrics.rounds += 1
        metrics.messages += incoming_total + sent_total
        metrics.sync_cost += self._log_p
        metrics.pim_time += round_pim_max
        self.tasks_executed += tasks
        if self._trace_rounds:
            self.tracer.log_round(
                RoundLog(
                    index=metrics.rounds - 1,
                    h=h,
                    messages=incoming_total + sent_total,
                    pim_work_max=round_pim_max,
                    tasks_executed=tasks,
                )
            )
        # Return the consumed recv buffer to the pool, zeroed.
        for mid in active:
            recv[mid] = 0
        if self._recv_spare is None:
            self._recv_spare = recv
        return replies

    def _finish_np(self, recv, recv_np, bcast_units, scalar_sent, slots,
                   bwork, bsent, work_np, sent_np, active):
        """Vectorized round accounting (any numpy accumulator present).

        Also flushes the batch work charges into the modules (the
        pure-python branch of ``_columnar_round`` does the same inline).
        The pooled flat lists are only converted when they can hold
        charges: row-delivered tasks imply a non-empty ``active`` set, so
        with ``active`` and ``slots`` both empty a cheap all-zero scan
        decides whether the lists can be skipped entirely (a handler may
        still have walked a column chunk via ``_iter_chunk`` and charged
        the lists directly).
        """
        modules = self.modules
        if active:
            rv = _np.asarray(recv, dtype="int64")
            if recv_np is not None:
                rv = rv + recv_np
        elif recv_np is not None:
            rv = recv_np
        else:
            rv = self._zero_np
        if bcast_units:
            rv = rv + bcast_units
        lists_live = (bool(active) or bool(slots)
                      or any(bsent) or any(bwork))
        if lists_live:
            sv = _np.asarray(bsent, dtype="int64")
            if sent_np is not None:
                sv = sv + sent_np
            if scalar_sent:
                for mid, s in scalar_sent.items():
                    sv[mid] += s
            wv = _np.asarray(bwork, dtype="float64")
            if work_np is not None:
                wv = wv + work_np
        else:
            sv = sent_np
            wv = work_np
        # h: senders are receivers under the execution contract, so the
        # max of rv+sv over all modules IS the max over receiving ones
        # (and an all-quiet round maxes to 0 either way).
        if sv is None:
            h = int(rv.max())
            sent_total = 0
        else:
            h = int((rv + sv).max())
            sent_total = int(sv.sum())
        # Per-module round totals for the PIM-time max: batch charges plus
        # the scalar charges already sitting in round_work.
        if wv is None:
            return h, 0.0, sent_total
        wtot = wv
        if slots:
            wtot = wv.copy()
            for mid in slots:
                wtot[mid] += modules[mid].round_work
        round_pim_max = float(wtot.max())
        # Defer the per-module flush: one vector add per round instead of
        # a python loop over charged modules.  ``wv`` is freshly built
        # (or owned by the round's BatchRound, which forgets it on the
        # next arm), so adopting or mutating it is safe.
        acc = self._work_acc
        if acc is None:
            self._work_acc = wv
        else:
            acc += wv
        return h, round_pim_max, sent_total

    def _flush_work_acc(self) -> None:
        """Fold the deferred batch-work vector into the module objects."""
        acc = self._work_acc
        if acc is None:
            return
        self._work_acc = None
        modules = self.modules
        for mid in _np.nonzero(acc)[0].tolist():
            modules[mid].work += float(acc[mid])

    def _sync_pim_work(self) -> None:
        self._flush_work_acc()
        super()._sync_pim_work()

    # -- drain / pending ----------------------------------------------------

    def drain(self, max_rounds: int = 1_000_000,
              label: Optional[str] = None) -> List[Reply]:
        if self._fallback_reasons:
            return super().drain(max_rounds, label)
        # A fault plan always holds a fallback reason, so chaos-held
        # messages cannot be pending here: the staging queues alone
        # decide quiescence, and rounds run without the step() detour.
        replies: List[Reply] = []
        rounds = 0
        while self._cq or self._fq or self._staged:
            if rounds >= max_rounds:
                raise LivelockError(
                    self._livelock_report(rounds, max_rounds, label))
            replies.extend(self._columnar_round())
            rounds += 1
        return replies

    @property
    def pending(self) -> bool:
        if self._cq or self._fq or self._staged:
            return True
        chaos = self._chaos
        return chaos is not None and chaos.has_pending()

    def _pending_stats(self) -> tuple:
        """Chunk-aware pending diagnostics (same shape as the base)."""
        pending: Dict[int, int] = {}
        by_fn: Dict[str, int] = {}
        for chunks in (self._cq, self._fq):
            for ch in chunks:
                if ch.kind == ROWS:
                    by_fn[ch.fn] = by_fn.get(ch.fn, 0) + len(ch.rows)
                    for dest, _args, _tag, _size in ch.rows:
                        pending[dest] = pending.get(dest, 0) + 1
                elif ch.kind == COLS:
                    by_fn[ch.fn] = by_fn.get(ch.fn, 0) + len(ch.dests)
                    for dest in ch.dests.tolist():
                        pending[dest] = pending.get(dest, 0) + 1
                else:  # BCAST
                    by_fn[ch.fn] = by_fn.get(ch.fn, 0) + self.num_modules
                    for mid in range(self.num_modules):
                        pending[mid] = pending.get(mid, 0) + 1
        if self._staged:
            base_pending, base_by_fn = super()._pending_stats()
            for mid, cnt in base_pending.items():
                pending[mid] = pending.get(mid, 0) + cnt
            for fn, cnt in base_by_fn.items():
                by_fn[fn] = by_fn.get(fn, 0) + cnt
        return dict(sorted(pending.items())), by_fn

    # -- fallback triggers --------------------------------------------------

    def set_profiler(self, profiler: Optional[Any]) -> None:
        super().set_profiler(profiler)
        if self._profiler is not None:
            self._enter_fallback(
                FALLBACK_PROFILER,
                "per-handler wall-time attribution requires per-task "
                "clock reads")
        else:
            self._exit_fallback(FALLBACK_PROFILER)

    def install_fault_plan(self, plan: FaultPlan) -> ChaosState:
        self._enter_fallback(
            FALLBACK_FAULT_PLAN,
            "chaos schedules and reliable delivery rewrite per-"
            "destination queues in place")
        try:
            return super().install_fault_plan(plan)
        except Exception:
            # Plan rejected (e.g. pending delayed messages): restore the
            # columnar path rather than stranding the machine.
            self._exit_fallback(FALLBACK_FAULT_PLAN)
            raise

    def uninstall_fault_plan(self) -> Optional[ChaosState]:
        chaos = super().uninstall_fault_plan()
        self._exit_fallback(FALLBACK_FAULT_PLAN)
        return chaos

    def wipe_module(self, mid: int) -> None:
        super().wipe_module(mid)
        self._ccontexts[mid].reset_replay_guard()
