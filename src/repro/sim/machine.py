"""The PIM machine: modules + CPU side + bulk-synchronous network.

Execution model
---------------

Algorithms are CPU-side orchestration code that:

1. enqueues ``TaskSend`` messages with :meth:`PIMMachine.send` (or
   :meth:`PIMMachine.send_all` / :meth:`PIMMachine.broadcast`);
2. advances the network one bulk-synchronous round with
   :meth:`PIMMachine.step`, which delivers the pending messages, runs every
   delivered task on its module (charging PIM work), collects replies, and
   accounts the round's ``h``-relation toward IO time;
3. or calls :meth:`PIMMachine.drain` to step until quiescence, collecting
   all replies (continuation tasks forwarded module-to-module keep the
   network busy for multiple rounds, exactly like the paper's step-by-step
   "push each query one node further" execution).

Handlers are plain functions ``handler(ctx, *args) -> None`` registered
under a function id; they receive a :class:`repro.sim.module.ModuleContext`.
"""

from __future__ import annotations

import random
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.sim.config import MachineConfig
from repro.sim.cpu import CPUSide
from repro.sim.errors import UnknownHandlerError
from repro.sim.metrics import Metrics, MetricsDelta
from repro.sim.module import ModuleContext, PIMModule
from repro.sim.task import CPU_SIDE, Message, Reply, Task
from repro.sim.tracing import RoundLog, Tracer

Handler = Callable[..., None]


class PIMMachine:
    """A simulated PIM system with ``P`` modules and an ``M``-word cache.

    Parameters mirror :class:`repro.sim.config.MachineConfig`; pass either a
    config or keyword arguments.

    Examples
    --------
    >>> m = PIMMachine(num_modules=4, seed=1)
    >>> def hello(ctx, x, tag=None):  # handlers must accept tag
    ...     ctx.charge(1)
    ...     ctx.reply(x * 2, tag=tag)
    >>> m.register("hello", hello)
    >>> m.send(2, "hello", (21,))
    >>> [r.payload for r in m.drain()]
    [42]
    """

    def __init__(self, num_modules: Optional[int] = None,
                 config: Optional[MachineConfig] = None, **kwargs: Any) -> None:
        if config is None:
            if num_modules is None:
                raise ValueError("num_modules or config required")
            config = MachineConfig(num_modules=num_modules, **kwargs)
        elif num_modules is not None and num_modules != config.num_modules:
            raise ValueError("num_modules conflicts with config")
        self.config = config
        self.num_modules = config.num_modules
        self.rng = random.Random(config.seed)
        self.metrics = Metrics(num_modules=self.num_modules)
        self.cpu = CPUSide(
            self.metrics,
            shared_memory_words=config.resolved_shared_memory_words,
            enforce=config.enforce_shared_memory,
        )
        self.modules: List[PIMModule] = [
            PIMModule(
                mid,
                local_memory_words=config.local_memory_words,
                enforce=config.enforce_local_memory,
            )
            for mid in range(self.num_modules)
        ]
        self.tracer = Tracer(trace_accesses=config.trace_accesses)
        self.qrqw = config.contention_model == "qrqw"
        self._handlers: Dict[str, Handler] = {}
        self._outbox: List[Message] = []      # CPU->PIM, next round
        self._forwards: List[Message] = []    # module->module, next round

    # -- handler registry ---------------------------------------------------

    def register(self, fn: str, handler: Handler) -> None:
        """Register ``handler`` under function id ``fn``.

        Re-registering the same id with a different handler is an error
        (two structures must not collide on a function id); re-registering
        the identical handler is a no-op so structures can be constructed
        repeatedly on one machine.
        """
        existing = self._handlers.get(fn)
        if existing is not None and existing is not handler:
            raise ValueError(f"handler id {fn!r} already registered")
        self._handlers[fn] = handler

    def register_all(self, handlers: Dict[str, Handler]) -> None:
        """Register every (function id, handler) pair in ``handlers``."""
        for fn, h in handlers.items():
            self.register(fn, h)

    # -- message issue ----------------------------------------------------

    def send(self, dest: int, fn: str, args: tuple = (), tag: Any = None,
             size: int = 1) -> None:
        """Queue a ``TaskSend`` from the CPU side to module ``dest``."""
        if not (0 <= dest < self.num_modules):
            raise ValueError(f"bad module id {dest}")
        self._outbox.append(
            Message(dest=dest, task=Task(fn=fn, args=args, tag=tag), size=size)
        )

    def send_all(self, messages: Iterable[Tuple[int, str, tuple, Any]]) -> None:
        """Queue many CPU->PIM messages: iterable of (dest, fn, args, tag)."""
        for dest, fn, args, tag in messages:
            self.send(dest, fn, args, tag)

    def broadcast(self, fn: str, args: tuple = (), tag: Any = None,
                  size: int = 1) -> None:
        """Queue one message to every module (an h=1 relation by itself)."""
        for mid in range(self.num_modules):
            self.send(mid, fn, args, tag=tag, size=size)

    # -- round execution -----------------------------------------------------

    def step(self) -> List[Reply]:
        """Execute one bulk-synchronous round; return replies to the CPU.

        Delivers all pending messages (CPU-issued plus continuations
        forwarded during the previous round), executes each module's tasks,
        and charges the round's ``h``-relation: ``h`` is the maximum over
        modules of messages sent plus received this round (the CPU side is
        not counted, per the model).  Also charges ``log2 P`` of barrier
        synchronization cost and advances the per-round PIM-time maximum.
        """
        incoming, self._outbox, self._forwards = (
            self._outbox + self._forwards, [], []
        )
        if not incoming:
            return []

        recv = [0] * self.num_modules
        sent = [0] * self.num_modules
        queues: List[List[Task]] = [[] for _ in range(self.num_modules)]
        for msg in incoming:
            recv[msg.dest] += msg.size
            queues[msg.dest].append(msg.task)

        for module in self.modules:
            module.round_work = 0.0
            if self.qrqw:
                module.round_touch.clear()

        replies: List[Reply] = []
        tasks_executed = 0
        for mid, queue in enumerate(queues):
            if not queue:
                continue
            module = self.modules[mid]
            ctx = ModuleContext(self, module)
            for task in queue:
                handler = self._handlers.get(task.fn)
                if handler is None:
                    raise UnknownHandlerError(f"no handler for {task.fn!r}")
                handler(ctx, *task.args, tag=task.tag)
                tasks_executed += 1
            replies.extend(ctx._replies)
            self._forwards.extend(ctx._forwards)
            sent[mid] += ctx._sent_size

        h = max(r + s for r, s in zip(recv, sent))
        # A module->module forward is counted once at send (in `sent` this
        # round) and once at receive (in the round it is delivered).
        total_msgs = sum(msg.size for msg in incoming) + sum(sent)
        if self.qrqw:
            # Queue-write variant (paper §2.1 Discussion): a module's
            # effective round time is at least its hottest object's
            # access-queue length.
            round_pim_max = max(
                max(m.round_work,
                    max(m.round_touch.values()) if m.round_touch else 0.0)
                for m in self.modules
            )
        else:
            round_pim_max = max(m.round_work for m in self.modules)

        self.metrics.io_time += h
        self.metrics.rounds += 1
        self.metrics.messages += total_msgs
        self.metrics.sync_cost += self.config.log_p
        self.metrics.pim_time += round_pim_max
        for mid, module in enumerate(self.modules):
            self.metrics.pim_work_per_module[mid] = module.work

        self.tracer.log_round(
            RoundLog(
                index=self.metrics.rounds - 1,
                h=h,
                messages=total_msgs,
                pim_work_max=round_pim_max,
                tasks_executed=tasks_executed,
            )
        )
        return replies

    def drain(self, max_rounds: int = 1_000_000) -> List[Reply]:
        """Step until the network is quiescent; return all replies."""
        replies: List[Reply] = []
        rounds = 0
        while self._outbox or self._forwards:
            replies.extend(self.step())
            rounds += 1
            if rounds > max_rounds:
                raise RuntimeError("drain exceeded max_rounds; livelock?")
        return replies

    @property
    def pending(self) -> bool:
        """True if messages await delivery in a future round."""
        return bool(self._outbox or self._forwards)

    # -- measurement helpers ------------------------------------------------

    def _sync_pim_work(self) -> None:
        """Pull per-module cumulative work into the metrics accumulator.

        Work can be charged outside a network round (e.g. bulk
        construction charges module work directly); syncing here keeps
        snapshots exact.
        """
        for mid, module in enumerate(self.modules):
            self.metrics.pim_work_per_module[mid] = module.work

    def snapshot(self) -> MetricsDelta:
        """Snapshot metrics (see :meth:`repro.sim.metrics.Metrics.snapshot`)."""
        self._sync_pim_work()
        return self.metrics.snapshot()

    def delta_since(self, before: MetricsDelta) -> MetricsDelta:
        """Metrics accumulated since ``before`` (a prior snapshot)."""
        self._sync_pim_work()
        return self.metrics.delta_since(before)

    # -- randomness ---------------------------------------------------------

    def random_module(self) -> int:
        """A uniformly random module id (from the machine's seeded stream)."""
        return self.rng.randrange(self.num_modules)

    def spawn_rng(self, salt: int) -> random.Random:
        """A deterministic child RNG (for structures sharing the machine)."""
        return random.Random((self.config.seed << 20) ^ salt)
