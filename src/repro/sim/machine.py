"""The PIM machine: modules + CPU side + bulk-synchronous network.

Execution model
---------------

Algorithms are CPU-side orchestration code that:

1. enqueues ``TaskSend`` messages with :meth:`PIMMachine.send` (or
   :meth:`PIMMachine.send_all` / :meth:`PIMMachine.broadcast`);
2. advances the network one bulk-synchronous round with
   :meth:`PIMMachine.step`, which delivers the pending messages, runs every
   delivered task on its module (charging PIM work), collects replies, and
   accounts the round's ``h``-relation toward IO time;
3. or calls :meth:`PIMMachine.drain` to step until quiescence, collecting
   all replies (continuation tasks forwarded module-to-module keep the
   network busy for multiple rounds, exactly like the paper's step-by-step
   "push each query one node further" execution).

Handlers are plain functions ``handler(ctx, *args) -> None`` registered
under a function id; they receive a :class:`repro.sim.module.ModuleContext`.

Engine fast path
----------------

The round engine is the hot loop of every benchmark, so it is built around
three invariants that keep a round touching ``k`` modules at ``O(k + tasks)``
Python work rather than ``O(P)``:

- **Staged delivery.**  ``send``/``send_all``/``broadcast``/``forward``
  route directly into per-destination queues (``_staged``), so ``step``
  never scans or re-buckets a message list.  Each staged entry carries its
  handler *callable*, resolved at issue time (an unknown function id
  raises :class:`~repro.sim.errors.UnknownHandlerError` when the message
  is issued, not a round later).  CPU-issued messages are delivered before
  module-to-module continuations within a destination queue, mirroring the
  historical ``outbox + forwards`` concatenation order.
- **Active-module scheduling.**  A round iterates only the modules that
  received messages (in module-id order, for reply-order stability).
  Per-round work/contention state lives on the per-module
  :class:`~repro.sim.module.ModuleContext`, re-armed on activation, so
  nothing is reset machine-wide.
- **Gated bookkeeping.**  Round logs (``trace_rounds``), access tracing
  (``trace_accesses``) and qrqw queue accounting are no-ops when disabled:
  the flags are folded into the context at construction and checked once
  per call or per round.

All *model* metrics (IO time, rounds, messages, sync cost, PIM time,
per-module work) are accounted exactly as before; the golden-metrics
regression suite (``tests/test_golden_metrics.py``) pins the values the
pre-fast-path engine produced on seed workloads.
"""

from __future__ import annotations

import random
from time import perf_counter
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence

from repro.sim.chaos import ChaosState, FaultPlan
from repro.sim.config import MachineConfig, resolve_backend
from repro.sim.cpu import CPUSide
from repro.sim.errors import (LivelockError, MalformedMessageError,
                              UnknownHandlerError)
from repro.sim.metrics import Metrics, MetricsDelta
from repro.sim.module import ModuleContext, PIMModule
from repro.sim.task import Reply
from repro.sim.tracing import RoundLog, Tracer

Handler = Callable[..., None]

# A staged per-destination slot: [units_in, cpu_entries, forward_entries]
# where each entry is (handler, args, tag, fn).
_CPU_Q, _FWD_Q = 1, 2


class PIMMachine:
    """A simulated PIM system with ``P`` modules and an ``M``-word cache.

    Parameters mirror :class:`repro.sim.config.MachineConfig`; pass either a
    config or keyword arguments.

    Examples
    --------
    >>> m = PIMMachine(num_modules=4, seed=1)
    >>> def hello(ctx, x, tag=None):  # handlers must accept tag
    ...     ctx.charge(1)
    ...     ctx.reply(x * 2, tag=tag)
    >>> m.register("hello", hello)
    >>> m.send(2, "hello", (21,))
    >>> [r.payload for r in m.drain()]
    [42]

    Two round-engine backends exist behind this constructor:
    ``PIMMachine(..., backend="object")`` (this class -- the reference
    slotted-object engine) and ``backend="columnar"`` (the array-native
    engine, :class:`repro.sim.fastpath.ColumnarPIMMachine`).  With no
    explicit backend the ``REPRO_SIM_BACKEND`` environment variable
    decides, defaulting to ``"object"``.  Both backends produce
    bit-identical model metrics (certified by ``repro.verify.differ``).
    """

    def __new__(cls, num_modules: Optional[int] = None,
                config: Optional[MachineConfig] = None,
                **kwargs: Any) -> "PIMMachine":
        # Backend dispatch happens only for direct PIMMachine(...) calls
        # with construction arguments; subclasses and argument-less
        # allocation (copy protocols) get the class they asked for.
        if cls is PIMMachine and (num_modules is not None
                                  or config is not None or kwargs):
            backend = kwargs.get("backend")
            if backend is None and config is not None:
                backend = config.backend
            if resolve_backend(backend) == "columnar":
                from repro.sim.fastpath import ColumnarPIMMachine
                return object.__new__(ColumnarPIMMachine)
        return object.__new__(cls)

    def __init__(self, num_modules: Optional[int] = None,
                 config: Optional[MachineConfig] = None, **kwargs: Any) -> None:
        if config is None:
            if num_modules is None:
                raise ValueError("num_modules or config required")
            config = MachineConfig(num_modules=num_modules, **kwargs)
        elif num_modules is not None and num_modules != config.num_modules:
            raise ValueError("num_modules conflicts with config")
        self.config = config
        self.num_modules = config.num_modules
        self.rng = random.Random(config.seed)
        self.metrics = Metrics(num_modules=self.num_modules)
        self.cpu = CPUSide(
            self.metrics,
            shared_memory_words=config.resolved_shared_memory_words,
            enforce=config.enforce_shared_memory,
        )
        self.modules: List[PIMModule] = [
            PIMModule(
                mid,
                local_memory_words=config.local_memory_words,
                enforce=config.enforce_local_memory,
            )
            for mid in range(self.num_modules)
        ]
        self.tracer = Tracer(trace_accesses=config.trace_accesses)
        self.qrqw = config.contention_model == "qrqw"
        self.tasks_executed = 0  # cumulative, across all rounds
        #: Optional per-batch metric feed: when set to a callable
        #: ``observer(op_name, delta)``, the op-pipeline driver
        #: (:func:`repro.ops.run_batch`) reports every completed op's
        #: :class:`~repro.sim.metrics.MetricsDelta`.  Used by
        #: ``repro.verify`` to check cost invariants batch by batch;
        #: observers must be passive (no sends, no charging).
        self.batch_observer: Optional[Callable[[str, MetricsDelta], None]] = None
        self._handlers: Dict[str, Handler] = {}
        # fn -> batch handler (see register_batch).  The object engine
        # never consults this; the columnar backend dispatches a round's
        # tasks for a registered fn as ONE call over contiguous chunks.
        self._batch_handlers: Dict[str, Callable[..., None]] = {}
        # mid -> [units_in, cpu_entries, forward_entries]; see module doc.
        self._staged: Dict[int, list] = {}
        self._log_p = config.log_p
        self._trace_rounds = config.trace_rounds
        self._trace_access = config.trace_accesses
        self._profiler: Optional[Any] = None
        self._contexts: List[ModuleContext] = [
            ModuleContext(self, m) for m in self.modules
        ]
        # Installed fault plan (see repro.sim.chaos).  None on the
        # fault-free path: the round loop pays exactly one attribute
        # check per round for the chaos capability.
        self._chaos: Optional[ChaosState] = None
        # Modules whose DRAM was wiped and not yet repaired.  The chaos
        # filter keeps them unreachable (typed faults, not KeyErrors on
        # missing state) until recovery calls :meth:`mark_repaired`.
        self.wiped_modules: set = set()

    # -- handler registry ---------------------------------------------------

    def register(self, fn: str, handler: Handler) -> None:
        """Register ``handler`` under function id ``fn``.

        Re-registering the same id with a different handler is an error
        (two structures must not collide on a function id); re-registering
        the identical handler is a no-op so structures can be constructed
        repeatedly on one machine.
        """
        existing = self._handlers.get(fn)
        if existing is not None and existing is not handler:
            raise ValueError(f"handler id {fn!r} already registered")
        self._handlers[fn] = handler

    def register_all(self, handlers: Dict[str, Handler]) -> None:
        """Register every (function id, handler) pair in ``handlers``."""
        for fn, h in handlers.items():
            self.register(fn, h)

    def register_batch(self, fn: str,
                       batch_handler: Callable[..., None]) -> None:
        """Register a *batch* variant of the handler for ``fn``.

        A batch handler ``batch_handler(bct, chunks)`` processes one
        round's entire task population for ``fn`` in a single call over
        contiguous chunk buffers (see
        :class:`repro.sim.fastpath.BatchRound`); the columnar backend
        dispatches it instead of calling the scalar handler per task.
        On the object backend the registration is inert -- the scalar
        handler remains the reference semantics, and the differential
        oracle certifies the two produce bit-identical metric streams.

        Batch handlers must be behaviourally equivalent to their scalar
        handler under the columnar execution contract: order-insensitive
        within a round, no reads of the machine RNG, and no mutation of
        shared replicated structure (see ``repro/sim/fastpath.py``).

        Same collision rule as :meth:`register`: re-registering a
        different callable under an existing id is an error, the
        identical callable is a no-op.
        """
        existing = self._batch_handlers.get(fn)
        if existing is not None and existing is not batch_handler:
            raise ValueError(f"batch handler id {fn!r} already registered")
        self._batch_handlers[fn] = batch_handler

    @property
    def backend(self) -> str:
        """The round-engine backend this machine runs (``"object"``)."""
        return "object"

    # -- profiling ----------------------------------------------------------

    def set_profiler(self, profiler: Optional[Any]) -> None:
        """Attach (or detach, with ``None``) a per-handler time profiler.

        The profiler must expose ``add(fn, seconds)``; see
        :class:`repro.sim.profiling.HandlerProfile`.  While attached, the
        engine times every handler invocation -- attach only when
        attributing wall time, as the two clock reads per task cost more
        than dispatching most handlers.

        A profiler whose ``enabled`` attribute is false is dropped here:
        the round loop then runs its unprofiled path with zero per-task
        attribute lookups or callable checks, identical to having no
        profiler installed.
        """
        if profiler is not None and not getattr(profiler, "enabled", True):
            profiler = None
        self._profiler = profiler

    # -- message issue ----------------------------------------------------

    def send(self, dest: int, fn: str, args: tuple = (), tag: Any = None,
             size: int = 1) -> None:
        """Queue a ``TaskSend`` from the CPU side to module ``dest``."""
        if not 0 <= dest < self.num_modules:
            raise ValueError(f"bad module id {dest}")
        handler = self._handlers.get(fn)
        if handler is None:
            raise UnknownHandlerError(
                f"no handler for {fn!r} (resolved at send time)")
        slot = self._staged.get(dest)
        if slot is None:
            self._staged[dest] = [size, [(handler, args, tag, fn)], []]
        else:
            slot[0] += size
            slot[1].append((handler, args, tag, fn))

    def send_all(self, messages: Iterable[Sequence]) -> None:
        """Queue many CPU->PIM messages in one call.

        Each message is ``(dest, fn, args, tag)`` or, with an explicit
        message size in constant-size units, ``(dest, fn, args, tag,
        size)``.  This is the allocation-light bulk path: handlers are
        resolved once per message and staged directly into the
        per-destination queues.  Malformed messages -- wrong arity, or a
        size element that is not a positive ``int`` -- raise
        :class:`~repro.sim.errors.MalformedMessageError` here, at issue
        time, rather than corrupting the round accounting.
        """
        staged = self._staged
        handlers = self._handlers
        n = self.num_modules
        for msg in messages:
            if len(msg) == 4:
                dest, fn, args, tag = msg
                size = 1
            elif len(msg) == 5:
                dest, fn, args, tag, size = msg
                if type(size) is not int or size < 1:
                    raise MalformedMessageError(
                        f"send_all message {(dest, fn)} has invalid size "
                        f"{size!r}: the optional 5th element must be a "
                        f"positive int (constant-size message units)")
            else:
                raise MalformedMessageError(
                    f"send_all message has {len(msg)} elements; expected "
                    f"(dest, fn, args, tag) or (dest, fn, args, tag, size): "
                    f"{msg!r}")
            if not 0 <= dest < n:
                raise ValueError(f"bad module id {dest}")
            handler = handlers.get(fn)
            if handler is None:
                raise UnknownHandlerError(
                    f"no handler for {fn!r} (resolved at send time)")
            slot = staged.get(dest)
            if slot is None:
                staged[dest] = [size, [(handler, args, tag, fn)], []]
            else:
                slot[0] += size
                slot[1].append((handler, args, tag, fn))

    def broadcast(self, fn: str, args: tuple = (), tag: Any = None,
                  size: int = 1) -> None:
        """Queue one message to every module (an h=1 relation by itself)."""
        handler = self._handlers.get(fn)
        if handler is None:
            raise UnknownHandlerError(
                f"no handler for {fn!r} (resolved at send time)")
        staged = self._staged
        entry = (handler, args, tag, fn)
        for mid in range(self.num_modules):
            slot = staged.get(mid)
            if slot is None:
                staged[mid] = [size, [entry], []]
            else:
                slot[0] += size
                slot[1].append(entry)

    # -- round execution -----------------------------------------------------

    def step(self) -> List[Reply]:
        """Execute one bulk-synchronous round; return replies to the CPU.

        Delivers all pending messages (CPU-issued plus continuations
        forwarded during the previous round), executes each module's tasks,
        and charges the round's ``h``-relation: ``h`` is the maximum over
        modules of messages sent plus received this round (the CPU side is
        not counted, per the model).  Also charges ``log2 P`` of barrier
        synchronization cost and advances the per-round PIM-time maximum.

        With a fault plan installed (:meth:`install_fault_plan`) the
        round is routed through the chaos filter first; the fault-free
        path is otherwise untouched.
        """
        if self._chaos is not None:
            return self._chaos_round()
        staged = self._staged
        if not staged:
            return []
        # Swap in a fresh staging dict: handlers forwarding during this
        # round stage messages for the NEXT round.
        self._staged = {}
        return self._run_round(staged)

    def _run_round(self, staged: Dict[int, list]) -> List[Reply]:
        """Deliver and execute one round's already-unstaged slots."""
        incoming_total = 0

        qrqw = self.qrqw
        profiler = self._profiler
        contexts = self._contexts
        modules = self.modules
        replies: List[Reply] = []
        h = 0
        sent_total = 0
        round_pim_max = 0.0
        tasks = 0
        for mid, slot in sorted(staged.items()):
            incoming_total += slot[0]
            ctx = contexts[mid]
            ctx._replies = replies
            ctx._sent_size = 0
            module = modules[mid]
            module.round_work = 0.0
            if qrqw:
                module.round_touch.clear()
            cpu_q = slot[_CPU_Q]
            fwd_q = slot[_FWD_Q]
            tasks += len(cpu_q) + len(fwd_q)
            if profiler is None:
                for handler, args, tag, _fn in cpu_q:
                    handler(ctx, *args, tag=tag)
                for handler, args, tag, _fn in fwd_q:
                    handler(ctx, *args, tag=tag)
            else:
                for queue in (cpu_q, fwd_q):
                    for handler, args, tag, fn in queue:
                        t0 = perf_counter()
                        handler(ctx, *args, tag=tag)
                        profiler.add(fn, perf_counter() - t0)
            module_round = module.round_work
            if qrqw and module.round_touch:
                # Queue-write variant (paper §2.1 Discussion): a module's
                # effective round time is at least its hottest object's
                # access-queue length.
                hottest = max(module.round_touch.values())
                if hottest > module_round:
                    module_round = hottest
            if module_round > round_pim_max:
                round_pim_max = module_round
            sent = ctx._sent_size
            sent_total += sent
            # A module->module forward is counted once at send (in `sent`
            # this round) and once at receive (in the round it is
            # delivered).
            h_mod = slot[0] + sent
            if h_mod > h:
                h = h_mod

        total_msgs = incoming_total + sent_total
        metrics = self.metrics
        metrics.io_time += h
        metrics.rounds += 1
        metrics.messages += total_msgs
        metrics.sync_cost += self._log_p
        metrics.pim_time += round_pim_max
        # metrics.pim_work_per_module is synced lazily from the modules at
        # measurement points (snapshot / delta_since), not per round.
        self.tasks_executed += tasks

        if self._trace_rounds:
            self.tracer.log_round(
                RoundLog(
                    index=metrics.rounds - 1,
                    h=h,
                    messages=total_msgs,
                    pim_work_max=round_pim_max,
                    tasks_executed=tasks,
                )
            )
        elif self._trace_access:
            self.tracer.access.end_round()
        return replies

    # -- unreliable execution (chaos) ---------------------------------------

    def _chaos_round(self) -> List[Reply]:
        """One round under an installed fault plan.

        The chaos filter decides each staged message's fate (deliver,
        drop, duplicate, delay, corrupt; whole slots defer on stalls and
        are lost or hard-fault on crashes); whatever survives runs
        through the ordinary round executor so all cost accounting is
        identical.  A round with nothing deliverable but work still in
        flight (delayed messages, stalled slots) is charged as an *idle*
        round -- waiting on the network is not free.
        """
        chaos = self._chaos
        assert chaos is not None
        rnd = self.metrics.rounds - chaos.base_round
        chaos.begin_round(self, rnd)
        staged = self._staged
        self._staged = {}
        deliver = chaos.filter_round(self, staged, rnd)
        if deliver:
            return self._run_round(deliver)
        if self._staged or chaos.has_pending():
            self._charge_idle_round()
        return []

    def _charge_idle_round(self) -> None:
        """Advance one round in which nothing is delivered.

        Charges the barrier synchronization cost (``log2 P``) and the
        round count, but no IO, messages or PIM work -- the honest price
        of a straggler wait or a retry backoff window.
        """
        metrics = self.metrics
        metrics.rounds += 1
        metrics.sync_cost += self._log_p
        if self._chaos is not None:
            self._chaos.stats.idle_rounds += 1
        if self._trace_rounds:
            self.tracer.log_round(
                RoundLog(index=metrics.rounds - 1, h=0, messages=0,
                         pim_work_max=0.0, tasks_executed=0))
        elif self._trace_access:
            self.tracer.access.end_round()

    def idle_rounds(self, count: int) -> None:
        """Charge ``count`` idle rounds (retry backoff windows)."""
        for _ in range(count):
            self._charge_idle_round()

    # -- fault plan lifecycle -----------------------------------------------

    def install_fault_plan(self, plan: FaultPlan) -> ChaosState:
        """Arm a :class:`~repro.sim.chaos.FaultPlan` on this machine.

        Event rounds in the plan are interpreted relative to the install
        point.  Installing also makes :func:`repro.ops.run_batch` wrap
        every CPU->module message in the reliable-delivery protocol.
        Returns the runtime :class:`~repro.sim.chaos.ChaosState` (fault
        statistics, delayed-message buffer).
        """
        if self._chaos is not None and self._chaos.has_pending():
            raise RuntimeError("cannot replace a fault plan with delayed "
                               "messages still in flight; drain first")
        self._chaos = ChaosState(plan, base_round=self.metrics.rounds)
        return self._chaos

    def uninstall_fault_plan(self) -> Optional[ChaosState]:
        """Disarm the fault plan, restoring the perfect network.

        Refuses while chaos-held (delayed) messages are in flight --
        uninstalling then would silently lose them.
        """
        chaos = self._chaos
        if chaos is not None and chaos.has_pending():
            raise RuntimeError("fault plan holds delayed messages; "
                               "drain before uninstalling")
        self._chaos = None
        return chaos

    def wipe_module(self, mid: int) -> None:
        """Simulate total local-DRAM loss on module ``mid``.

        Clears the module's structure state, its footprint accounting
        and its replay guards (a wiped module cannot remember which
        deliveries it executed -- safe, because an acknowledged envelope
        was executed *before* the wipe destroyed its guard, and the
        recovery layer rebuilds state rather than replaying messages).
        Used by crash-and-wipe fault schedules and recovery tests.
        """
        module = self.modules[mid]
        module.state.clear()
        module.words_used = 0
        self._contexts[mid].reset_replay_guard()
        # Under a fault plan the module stays unreachable (protocol
        # envelopes are dead-dropped, anything else is a typed
        # ModuleCrashed) until recovery declares it repaired -- a blank
        # module serving traffic would fault on missing state instead
        # of failing typed.
        self.wiped_modules.add(mid)

    def mark_repaired(self, mid: int) -> None:
        """Declare a wiped module's state re-replicated and routable again
        (see :func:`repro.recovery.repair.reattach_module`)."""
        self.wiped_modules.discard(mid)

    def drain(self, max_rounds: int = 1_000_000,
              label: Optional[str] = None) -> List[Reply]:
        """Step until the network is quiescent; return all replies.

        Executes at most ``max_rounds`` rounds; if messages are still
        pending after exactly that many, raises
        :class:`~repro.sim.errors.LivelockError` naming the originating
        op (``label``, supplied by the op-pipeline driver) and the
        pending handler function ids -- the usual cause is a livelocked
        forwarding cycle, and the handler id is what identifies it.
        """
        replies: List[Reply] = []
        rounds = 0
        chaos = self._chaos
        if chaos is None:
            while self._staged:
                if rounds >= max_rounds:
                    raise LivelockError(
                        self._livelock_report(rounds, max_rounds, label))
                replies.extend(self.step())
                rounds += 1
            return replies
        # Chaos drain: delayed messages held by the fault plan count as
        # pending work, and the report separates genuinely stuck ops
        # from in-flight protocol retries / chaos-held traffic.
        while self._staged or chaos.has_pending():
            if rounds >= max_rounds:
                extra = chaos.describe(self.metrics.rounds - chaos.base_round)
                rdp = getattr(self, "_rdp", None)
                if rdp is not None and rdp.inflight:
                    extra += "; " + rdp.describe()
                raise LivelockError(
                    self._livelock_report(rounds, max_rounds, label)
                    + "; " + extra)
            replies.extend(self.step())
            rounds += 1
        return replies

    def _pending_stats(self) -> tuple:
        """Pending-queue diagnostics: ``({mid: tasks}, {fn: tasks})``,
        module ids in ascending order.  Backends with their own staging
        representation override this; the report formatting is shared."""
        pending = {
            mid: len(slot[_CPU_Q]) + len(slot[_FWD_Q])
            for mid, slot in sorted(self._staged.items())
        }
        by_fn: Dict[str, int] = {}
        for slot in self._staged.values():
            for entry in slot[_CPU_Q]:
                by_fn[entry[3]] = by_fn.get(entry[3], 0) + 1
            for entry in slot[_FWD_Q]:
                by_fn[entry[3]] = by_fn.get(entry[3], 0) + 1
        return pending, by_fn

    def _livelock_report(self, rounds: int, max_rounds: int,
                         label: Optional[str]) -> str:
        """The drain-exhaustion report: op label, handlers, queue depths."""
        pending, by_fn = self._pending_stats()
        total = sum(pending.values())
        shown = dict(list(pending.items())[:8])
        more = "" if len(pending) <= 8 else \
            f" (+{len(pending) - 8} more modules)"
        fn_list = sorted(by_fn.items(), key=lambda kv: -kv[1])
        fn_shown = ", ".join(f"{fn}={cnt}" for fn, cnt in fn_list[:8])
        fn_more = "" if len(fn_list) <= 8 else \
            f" (+{len(fn_list) - 8} more handler ids)"
        origin = f" during op {label!r}" if label else ""
        return (
            f"drain{origin} executed {rounds} rounds (max_rounds="
            f"{max_rounds}) with {total} tasks still pending; "
            f"livelock?  pending handlers: {fn_shown}{fn_more}; "
            f"pending tasks per module: {shown}{more}"
        )

    @property
    def pending(self) -> bool:
        """True if messages await delivery in a future round (including
        messages the fault plan is holding back for later rounds)."""
        if self._staged:
            return True
        chaos = self._chaos
        return chaos is not None and chaos.has_pending()

    # -- measurement helpers ------------------------------------------------

    def _sync_pim_work(self) -> None:
        """Pull per-module cumulative work into the metrics accumulator.

        Work can be charged outside a network round (e.g. bulk
        construction charges module work directly); syncing here keeps
        snapshots exact.
        """
        for mid, module in enumerate(self.modules):
            self.metrics.pim_work_per_module[mid] = module.work

    def snapshot(self) -> MetricsDelta:
        """Snapshot metrics (see :meth:`repro.sim.metrics.Metrics.snapshot`)."""
        self._sync_pim_work()
        return self.metrics.snapshot()

    def delta_since(self, before: MetricsDelta) -> MetricsDelta:
        """Metrics accumulated since ``before`` (a prior snapshot)."""
        self._sync_pim_work()
        return self.metrics.delta_since(before)

    # -- randomness ---------------------------------------------------------

    def random_module(self) -> int:
        """A uniformly random module id (from the machine's seeded stream)."""
        return self.rng.randrange(self.num_modules)

    def spawn_rng(self, salt: int) -> random.Random:
        """A deterministic child RNG (for structures sharing the machine)."""
        return random.Random((self.config.seed << 20) ^ salt)
