"""Cost metrics of the PIM model.

The model (paper §2.1) analyzes an algorithm by four primary quantities:

- **CPU work** -- total work summed over all CPU cores.
- **CPU depth** -- work on the CPU-side critical path (a.k.a. CPU span).
- **PIM time** -- the maximum local work on any one PIM core.  With
  bulk-synchronous barriers, the elapsed quantity the paper's per-phase
  proofs bound is the *sum over rounds of the per-round maximum*; we track
  that as :attr:`Metrics.pim_time` and additionally expose
  :attr:`Metrics.pim_work_max` (maximum cumulative work on one module) and
  :attr:`Metrics.pim_work_total` (sum over modules, the ``W`` in the
  PIM-balance definition).
- **IO time** -- the network operates in bulk-synchronous rounds; round
  ``i`` realizes an ``h_i``-relation where ``h_i`` is the maximum number of
  messages to/from any one PIM module (the CPU side is ignored).  IO time
  is ``sum_i h_i``.

Secondary quantities: the number of rounds, the synchronization cost
``rounds * log2(P)``, the total message count ``I`` (for PIM-balance:
an algorithm is PIM-balanced if PIM time is ``O(W/P)`` and IO time is
``O(I/P)``), and the peak CPU-side shared memory usage in words (the
"minimum M needed" column of Table 1).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List


@dataclass
class Metrics:
    """Mutable accumulator for the model's cost metrics.

    One instance lives on each :class:`repro.sim.machine.PIMMachine`; the
    machine and the CPU side charge into it as the simulation progresses.
    Use :meth:`snapshot` / :meth:`delta_since` to measure a region of a
    program (e.g. one batch operation).
    """

    num_modules: int
    cpu_work: float = 0.0
    cpu_depth: float = 0.0
    io_time: float = 0.0
    rounds: int = 0
    messages: int = 0
    sync_cost: float = 0.0
    pim_time: float = 0.0
    pim_work_per_module: List[float] = field(default_factory=list)
    shared_mem_in_use: int = 0
    shared_mem_peak: int = 0

    def __post_init__(self) -> None:
        if not self.pim_work_per_module:
            self.pim_work_per_module = [0.0] * self.num_modules

    # -- PIM-side aggregates ------------------------------------------------

    @property
    def pim_work_total(self) -> float:
        """Total PIM work ``W`` summed over all modules."""
        return float(sum(self.pim_work_per_module))

    @property
    def pim_work_max(self) -> float:
        """Maximum cumulative local work on any one PIM module."""
        return float(max(self.pim_work_per_module)) if self.pim_work_per_module else 0.0

    @property
    def pim_balance_ratio(self) -> float:
        """``max / mean`` of per-module PIM work; ~1 means perfectly balanced.

        A PIM-balanced algorithm keeps this O(1); a serialized one drives it
        toward ``P``.
        """
        total = self.pim_work_total
        if total == 0:
            return 1.0
        mean = total / self.num_modules
        return self.pim_work_max / mean

    # -- snapshots ----------------------------------------------------------

    def snapshot(self) -> "MetricsDelta":
        """Freeze current values (as a delta from zero)."""
        return MetricsDelta(
            num_modules=self.num_modules,
            cpu_work=self.cpu_work,
            cpu_depth=self.cpu_depth,
            io_time=self.io_time,
            rounds=self.rounds,
            messages=self.messages,
            sync_cost=self.sync_cost,
            pim_time=self.pim_time,
            pim_work_per_module=tuple(self.pim_work_per_module),
            shared_mem_peak=self.shared_mem_peak,
        )

    def delta_since(self, before: "MetricsDelta") -> "MetricsDelta":
        """Metrics accumulated since ``before`` (a prior :meth:`snapshot`)."""
        now = self.snapshot()
        return now - before


@dataclass(frozen=True)
class MetricsDelta:
    """Immutable metric values: either a snapshot or a difference of two.

    Subtraction is componentwise; ``shared_mem_peak`` is the *end* peak (a
    high-water mark does not subtract meaningfully, so deltas carry the
    later peak -- callers that need the peak within a region should reset
    the peak via :meth:`repro.sim.cpu.CPUSide.reset_peak` first).
    """

    num_modules: int
    cpu_work: float
    cpu_depth: float
    io_time: float
    rounds: int
    messages: int
    sync_cost: float
    pim_time: float
    pim_work_per_module: tuple
    shared_mem_peak: int

    @property
    def pim_work_total(self) -> float:
        return float(sum(self.pim_work_per_module))

    @property
    def pim_work_max(self) -> float:
        return float(max(self.pim_work_per_module)) if self.pim_work_per_module else 0.0

    @property
    def pim_balance_ratio(self) -> float:
        total = self.pim_work_total
        if total == 0:
            return 1.0
        return self.pim_work_max / (total / self.num_modules)

    @property
    def io_balance_bound(self) -> float:
        """``I / P``: the IO time a PIM-balanced execution would achieve."""
        return self.messages / self.num_modules

    def __sub__(self, other: "MetricsDelta") -> "MetricsDelta":
        if self.num_modules != other.num_modules:
            raise ValueError("cannot subtract metrics from different machines")
        return MetricsDelta(
            num_modules=self.num_modules,
            cpu_work=self.cpu_work - other.cpu_work,
            cpu_depth=self.cpu_depth - other.cpu_depth,
            io_time=self.io_time - other.io_time,
            rounds=self.rounds - other.rounds,
            messages=self.messages - other.messages,
            sync_cost=self.sync_cost - other.sync_cost,
            pim_time=self.pim_time - other.pim_time,
            pim_work_per_module=tuple(
                a - b for a, b in zip(self.pim_work_per_module, other.pim_work_per_module)
            ),
            shared_mem_peak=self.shared_mem_peak,
        )

    def as_dict(self) -> dict:
        """Flat dictionary of scalar metrics (for tables and CSV output)."""
        return {
            "cpu_work": self.cpu_work,
            "cpu_depth": self.cpu_depth,
            "io_time": self.io_time,
            "rounds": self.rounds,
            "messages": self.messages,
            "sync_cost": self.sync_cost,
            "pim_time": self.pim_time,
            "pim_work_total": self.pim_work_total,
            "pim_work_max": self.pim_work_max,
            "pim_balance_ratio": self.pim_balance_ratio,
            "shared_mem_peak": self.shared_mem_peak,
        }

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"MetricsDelta(io_time={self.io_time:.0f}, pim_time={self.pim_time:.0f}, "
            f"cpu_work={self.cpu_work:.0f}, cpu_depth={self.cpu_depth:.0f}, "
            f"rounds={self.rounds}, messages={self.messages}, "
            f"balance={self.pim_balance_ratio:.2f})"
        )
