"""Wall-clock instrumentation for the simulator itself.

The model metrics (:mod:`repro.sim.metrics`) measure the *simulated*
machine -- rounds, h-relations, PIM time.  This module measures the
*simulator*: how many wall-clock seconds a scenario takes, how many
handler tasks and bulk-synchronous rounds the engine retires per second,
and (opt-in, it costs two ``perf_counter`` calls per task) where the
handler time goes per function id.

Used by ``benchmarks/perf/bench_wallclock.py``; nothing here touches the
model's accounting.
"""

from __future__ import annotations

from time import perf_counter
from typing import Any, Dict, Optional


class WallTimer:
    """Context manager capturing elapsed wall-clock seconds.

    >>> with WallTimer() as t:
    ...     work()
    >>> t.elapsed  # seconds, float

    Constructed with ``enabled=False`` the timer is a true no-op: enter
    and exit read no clocks and ``elapsed`` stays 0.0, so instrumented
    call sites can be left in place on hot paths.
    """

    __slots__ = ("start", "elapsed", "enabled")

    def __init__(self, enabled: bool = True) -> None:
        self.start = 0.0
        self.elapsed = 0.0
        self.enabled = enabled

    def __enter__(self) -> "WallTimer":
        if self.enabled:
            self.start = perf_counter()
        return self

    def __exit__(self, *exc: Any) -> None:
        if self.enabled:
            self.elapsed = perf_counter() - self.start


class ThroughputProbe:
    """Tasks/sec and rounds/sec for a region of driver code.

    Snapshots the machine's task and round counters on entry and computes
    rates on exit.  ``tasks_executed`` is read with a ``getattr`` fallback
    so the probe degrades gracefully on engines that don't expose it
    (rates then report 0 tasks).  With ``enabled=False`` enter/exit read
    no clocks and no counters (all rates stay 0) -- a true no-op.
    """

    __slots__ = ("machine", "_timer", "_tasks0", "_rounds0",
                 "tasks", "rounds", "seconds", "enabled")

    def __init__(self, machine: Any, enabled: bool = True) -> None:
        self.machine = machine
        self._timer = WallTimer(enabled)
        self._tasks0 = 0
        self._rounds0 = 0
        self.tasks = 0
        self.rounds = 0
        self.seconds = 0.0
        self.enabled = enabled

    def __enter__(self) -> "ThroughputProbe":
        if self.enabled:
            self._tasks0 = getattr(self.machine, "tasks_executed", 0)
            self._rounds0 = self.machine.metrics.rounds
            self._timer.__enter__()
        return self

    def __exit__(self, *exc: Any) -> None:
        if not self.enabled:
            return
        self._timer.__exit__(*exc)
        self.seconds = self._timer.elapsed
        self.tasks = getattr(self.machine, "tasks_executed", 0) - self._tasks0
        self.rounds = self.machine.metrics.rounds - self._rounds0

    @property
    def tasks_per_sec(self) -> float:
        return self.tasks / self.seconds if self.seconds > 0 else 0.0

    @property
    def rounds_per_sec(self) -> float:
        return self.rounds / self.seconds if self.seconds > 0 else 0.0

    def as_dict(self) -> Dict[str, float]:
        return {
            "seconds": self.seconds,
            "tasks": float(self.tasks),
            "rounds": float(self.rounds),
            "tasks_per_sec": self.tasks_per_sec,
            "rounds_per_sec": self.rounds_per_sec,
        }


class HandlerProfile:
    """Per-handler wall-time attribution.

    Install with :meth:`repro.sim.machine.PIMMachine.set_profiler`; the
    engine then times every handler invocation and calls :meth:`add`.
    Slows the run (two clock reads per task), so keep it off for
    throughput numbers and on for "where does the time go" questions.

    A profile constructed with ``enabled=False`` is *dropped* by
    ``set_profiler`` -- the round loop runs its unprofiled path with zero
    per-task lookups, exactly as if no profiler were installed (and the
    columnar backend does not fall back to the object engine for it).
    """

    __slots__ = ("seconds", "calls", "enabled")

    def __init__(self, enabled: bool = True) -> None:
        self.seconds: Dict[str, float] = {}
        self.calls: Dict[str, int] = {}
        self.enabled = enabled

    def add(self, fn: str, dt: float) -> None:
        self.seconds[fn] = self.seconds.get(fn, 0.0) + dt
        self.calls[fn] = self.calls.get(fn, 0) + 1

    def as_dict(self) -> Dict[str, Dict[str, float]]:
        return {
            fn: {"seconds": self.seconds[fn], "calls": float(self.calls[fn])}
            for fn in sorted(self.seconds, key=self.seconds.get, reverse=True)
        }

    def top(self, k: int = 10) -> str:
        """A small human-readable table of the ``k`` hottest handlers."""
        lines = [f"{'handler':<40} {'calls':>10} {'seconds':>10}"]
        for fn in sorted(self.seconds, key=self.seconds.get,
                         reverse=True)[:k]:
            lines.append(
                f"{fn:<40} {self.calls[fn]:>10} {self.seconds[fn]:>10.4f}")
        return "\n".join(lines)


def profile_region(machine: Any,
                   profiler: Optional[HandlerProfile] = None) -> ThroughputProbe:
    """Convenience: a :class:`ThroughputProbe`, optionally installing a
    :class:`HandlerProfile` on the machine for the region's duration.

    >>> with profile_region(machine) as probe:
    ...     structure.batch_get(keys)
    >>> probe.tasks_per_sec
    """
    if profiler is not None:
        machine.set_profiler(profiler)
    return ThroughputProbe(machine)
