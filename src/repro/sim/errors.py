"""Exception types raised by the PIM machine simulator."""


class SimulationError(RuntimeError):
    """Base class for all simulator errors."""


class SharedMemoryExceeded(SimulationError):
    """Raised when CPU-side shared memory usage would exceed ``M`` words.

    The PIM model assumes the CPU-side shared memory is small (it models
    the last-level cache): ``M = O(n/P)`` and ``M = Omega(P polylog P)``.
    Algorithms declare their shared-memory footprint through
    :meth:`repro.sim.cpu.CPUSide.alloc`, and machines constructed with
    ``enforce_shared_memory=True`` raise this error on overflow.
    """


class LocalMemoryExceeded(SimulationError):
    """Raised when a PIM module's local memory exceeds its budget.

    Each PIM module has ``Theta(n/P)`` words of local memory.  Enforcement
    is optional (see :class:`repro.sim.config.MachineConfig`) because the
    constant in the Theta is an engineering choice, but the footprint is
    always tracked so tests can assert Theorem 3.1's O(n/P)-per-module
    bound.
    """


class UnknownHandlerError(SimulationError):
    """Raised when a task names a function id with no registered handler."""


class MalformedMessageError(SimulationError):
    """Raised at *issue* time for a structurally invalid ``send_all`` message.

    A message must be ``(dest, fn, args, tag)`` or ``(dest, fn, args,
    tag, size)`` with ``size`` a positive ``int`` (the accounted message
    size in constant-size units).  Validating at issue keeps the failure
    at the offending ``send_all`` call instead of surfacing as an opaque
    unpacking or arithmetic error deep inside the round loop.
    """


class LivelockError(SimulationError):
    """Raised when ``drain(max_rounds)`` exhausts its round budget.

    The message names the originating op (the drain's ``label``) and the
    pending handler function ids, so a forwarding cycle can be traced to
    the op/handler that spins, not just to anonymous queue depths.
    """


class ModuleCrashed(SimulationError):
    """Raised when a message reaches a crashed (fail-stop) PIM module.

    Only *unprotected* deliveries raise: messages sent outside the
    reliable-delivery protocol (:mod:`repro.ops.pipeline`) have no retry
    path, so delivering to a dead module is a hard fault.  Protocol
    envelopes to a dead module are silently lost instead -- the sender's
    ack timeout notices and retries (or escalates to
    :class:`DeliveryTimeout`).  ``mid`` is the crashed module's id.
    """

    def __init__(self, message: str, mid: int = -1) -> None:
        super().__init__(message)
        self.mid = mid


class DeliveryTimeout(SimulationError):
    """Raised when the reliable-delivery protocol exhausts its retries.

    The message names the originating op (drain label), the attempt
    count, and the undelivered handler function ids with destination
    modules -- partitioned into messages **stuck on dead module(s)**
    (the destination is crashed right now; only failover can help) and
    messages **still retrying (transient faults)** (the destination is
    alive; a larger ``max_delivery_attempts`` -- see
    :class:`repro.sim.config.MachineConfig` -- might have landed them).
    The ``stuck`` / ``retrying`` attributes carry the two counts.
    """

    def __init__(self, message: str, op: str = "", attempts: int = 0,
                 undelivered: int = 0, stuck: int = 0,
                 retrying: int = 0) -> None:
        super().__init__(message)
        self.op = op
        self.attempts = attempts
        self.undelivered = undelivered
        self.stuck = stuck
        self.retrying = retrying


class InvalidBatchError(SimulationError):
    """Raised when a batch violates the model's batch constraints.

    The paper requires (i) all operations in a batch have the same type and
    (ii) a minimum batch size, typically ``P polylog(P)``.  Data structures
    raise this error when asked to run a batch that violates a constraint
    they rely on for their bounds (callers may opt out via
    ``enforce_batch_size=False`` to run ablations).
    """
