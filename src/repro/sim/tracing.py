"""Execution tracing: per-round access counts and round logs.

The contention argument at the heart of the paper's pivot-based Successor
algorithm (Lemma 4.2: *no node is accessed more than 3 times in each phase
of stage 1*) is a statement about per-round access multiplicity.  The
simulator can record, for every bulk-synchronous round, how many tasks
touched each traced object, so tests and benchmarks can verify the lemma
directly and exhibit the Θ(batch) contention of the naive algorithm.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Any, Dict, Hashable, List


@dataclass
class RoundLog:
    """Accounting for one bulk-synchronous round."""

    index: int
    h: int
    messages: int
    pim_work_max: float
    tasks_executed: int


class AccessTrace:
    """Records per-round access counts for traced objects.

    Handlers call :meth:`repro.sim.module.ModuleContext.touch` with a
    hashable object key; the trace accumulates a ``Counter`` per round.
    Tracing is enabled via ``MachineConfig(trace_accesses=True)``; when
    disabled, ``touch`` is a no-op and no memory is used.
    """

    def __init__(self, enabled: bool = False) -> None:
        self.enabled = enabled
        self._rounds: List[Counter] = []
        self._current: Counter = Counter()

    def touch(self, obj: Hashable, count: int = 1) -> None:
        """Record ``count`` accesses to ``obj`` in the current round."""
        if self.enabled:
            self._current[obj] += count

    def end_round(self) -> None:
        """Seal the current round's counter (called by the machine)."""
        if self.enabled:
            self._rounds.append(self._current)
            self._current = Counter()

    # -- queries --------------------------------------------------------

    @property
    def num_rounds(self) -> int:
        return len(self._rounds)

    def round_counter(self, i: int) -> Counter:
        """Access counter for round ``i`` (0-indexed)."""
        return self._rounds[i]

    def max_contention_per_round(self) -> List[int]:
        """For each round, the maximum access count on any single object."""
        return [max(c.values()) if c else 0 for c in self._rounds]

    def max_contention(self, start_round: int = 0, end_round: int = None) -> int:
        """Max per-object access count over rounds ``[start, end)``."""
        per_round = self.max_contention_per_round()[start_round:end_round]
        return max(per_round) if per_round else 0

    def total_accesses(self) -> Counter:
        """Aggregate access counts over all rounds."""
        total: Counter = Counter()
        for c in self._rounds:
            total.update(c)
        return total

    def reset(self) -> None:
        self._rounds = []
        self._current = Counter()


class Tracer:
    """Aggregates the machine's trace state: round logs + access trace."""

    def __init__(self, trace_accesses: bool = False) -> None:
        self.rounds: List[RoundLog] = []
        self.access = AccessTrace(enabled=trace_accesses)

    def log_round(self, log: RoundLog) -> None:
        self.rounds.append(log)
        self.access.end_round()

    def reset(self) -> None:
        self.rounds = []
        self.access.reset()
