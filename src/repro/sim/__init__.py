"""The PIM machine simulator.

This package is an executable instantiation of the Processing-in-Memory
model of Kang et al. (SPAA 2021).  It provides:

- :class:`~repro.sim.machine.PIMMachine` -- the machine: ``P`` PIM modules,
  a CPU side with a small shared memory of ``M`` words, and a
  bulk-synchronous network between the two sides.
- :class:`~repro.sim.metrics.Metrics` -- the model's cost metrics (CPU
  work, CPU depth, PIM time, IO time, rounds, synchronization cost,
  shared-memory footprint), charged exactly as the paper defines them.
- :class:`~repro.sim.module.PIMModule` / :class:`~repro.sim.module.ModuleContext`
  -- a PIM module's local memory, task queue and handler registry.
- :class:`~repro.sim.cpu.CPUSide` -- work/depth accounting and shared
  memory allocation for the CPU side.

Algorithms are written as CPU-side orchestration code that offloads
``(function id, args)`` tasks to PIM modules via ``TaskSend`` messages; the
machine executes one bulk-synchronous round per :meth:`PIMMachine.step`
call and accounts the round's ``h``-relation toward IO time.
"""

from repro.sim.chaos import (
    MACHINE_SCHEDULES,
    ChaosStats,
    CrashEvent,
    FaultPlan,
    FaultSpec,
    StallEvent,
    build_schedule,
)
from repro.sim.config import MachineConfig
from repro.sim.cpu import CPUSide, WorkDepth
from repro.sim.errors import (
    DeliveryTimeout,
    LocalMemoryExceeded,
    ModuleCrashed,
    SharedMemoryExceeded,
    SimulationError,
    UnknownHandlerError,
)
from repro.sim.machine import PIMMachine
from repro.sim.metrics import Metrics, MetricsDelta
from repro.sim.module import ModuleContext, PIMModule
from repro.sim.profiling import HandlerProfile, ThroughputProbe, WallTimer
from repro.sim.task import Message, Reply, Task
from repro.sim.tracing import AccessTrace, RoundLog

__all__ = [
    "AccessTrace",
    "CPUSide",
    "ChaosStats",
    "CrashEvent",
    "DeliveryTimeout",
    "FaultPlan",
    "FaultSpec",
    "HandlerProfile",
    "LocalMemoryExceeded",
    "MACHINE_SCHEDULES",
    "MachineConfig",
    "ModuleCrashed",
    "StallEvent",
    "build_schedule",
    "Message",
    "Metrics",
    "MetricsDelta",
    "ModuleContext",
    "PIMMachine",
    "PIMModule",
    "Reply",
    "RoundLog",
    "SharedMemoryExceeded",
    "SimulationError",
    "Task",
    "ThroughputProbe",
    "UnknownHandlerError",
    "WallTimer",
    "WorkDepth",
]
