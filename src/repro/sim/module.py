"""PIM modules and the handler execution context.

Each PIM module has a core and a local memory of ``Theta(n/P)`` words.  A
module repeatedly pops tasks from its queue and executes them; handlers
charge local work explicitly (one unit per RAM instruction at the model's
granularity -- in practice one unit per pointer hop / probe / node touch),
and may emit replies to the CPU side or forward continuation tasks to other
modules.

Both classes use ``__slots__``: the context's methods (``charge``,
``touch``, ``reply``, ``forward``) are the hottest calls in the whole
simulator, and one :class:`ModuleContext` per module is created once and
reused across rounds by the engine rather than allocated per round.
"""

from __future__ import annotations

from collections import Counter
from typing import Any, Dict, Hashable, Optional

from repro.sim.errors import LocalMemoryExceeded, UnknownHandlerError
from repro.sim.task import Reply


class PIMModule:
    """State of one PIM module: local memory accounting + structure state.

    Data structures keep their per-module local state (node stores, hash
    tables, list heads, ...) in :attr:`state`, a dict keyed by structure
    name.  The module only tracks the *footprint* in words; structures call
    :meth:`alloc_words` / :meth:`free_words` when they create or destroy
    local objects.
    """

    __slots__ = ("mid", "local_memory_words", "enforce", "words_used",
                 "words_peak", "work", "round_work", "round_touch", "state")

    def __init__(self, mid: int, local_memory_words: Optional[int] = None,
                 enforce: bool = False) -> None:
        self.mid = mid
        self.local_memory_words = local_memory_words
        self.enforce = enforce
        self.words_used = 0
        self.words_peak = 0
        self.work = 0.0          # cumulative local work
        # Work in the module's current (or last active) round.  The engine
        # resets it lazily, when the module receives tasks in a round.
        self.round_work = 0.0
        # Per-round object access queue lengths under the qrqw contention
        # model.  The engine clears this lazily: only when the module
        # receives tasks in a round, so after a round it holds the touches
        # of this module's *last active* round.
        self.round_touch: Counter = Counter()
        self.state: Dict[str, Any] = {}

    # -- memory ----------------------------------------------------------

    def alloc_words(self, n: int) -> None:
        """Charge ``n`` words of local memory to this module."""
        self.words_used += n
        if self.words_used > self.words_peak:
            self.words_peak = self.words_used
        if (
            self.enforce
            and self.local_memory_words is not None
            and self.words_used > self.local_memory_words
        ):
            raise LocalMemoryExceeded(
                f"module {self.mid}: {self.words_used} words used, "
                f"budget {self.local_memory_words}"
            )

    def free_words(self, n: int) -> None:
        """Release ``n`` words of local memory."""
        self.words_used -= n
        if self.words_used < 0:
            raise ValueError(f"module {self.mid}: negative local memory")

    # -- work --------------------------------------------------------------

    def charge(self, w: float = 1.0) -> None:
        """Charge ``w`` units of local work to this module's core.

        Callable both from handlers (e.g. as a bound charge callback
        handed to local data structures) and from out-of-round code such
        as bulk construction.  In-round charges feed the engine's
        per-round PIM-time maximum via :attr:`round_work`; out-of-round
        charges are wiped by the reset when the module next becomes
        active, so they count toward cumulative :attr:`work` only
        (matching the model: bulk construction bills no network round).
        """
        self.work += w
        self.round_work += w

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"PIMModule(mid={self.mid}, words={self.words_used}, work={self.work:.0f})"


class ModuleContext:
    """Handler-facing view of a module during one task execution.

    Provides work charging, access tracing, reply emission (a message back
    to the CPU-side shared memory) and continuation forwarding (a message
    to another module, routed via the CPU side per the paper, accounted as
    one send now + one receive next round).

    One context per module lives for the machine's lifetime; the engine
    re-arms it (``_replies``, ``_sent_size``) each round the module is
    active.  Tracing and qrqw flags are frozen from the machine config at
    construction so the disabled paths cost one attribute check.
    """

    __slots__ = ("machine", "module", "mid", "num_modules", "tracing",
                 "_replies", "_sent_size", "_access", "_trace_access",
                 "_qrqw", "_handlers", "_seen_seqs")

    def __init__(self, machine: "PIMMachine", module: PIMModule) -> None:  # noqa: F821
        self.machine = machine
        self.module = module
        self.mid = module.mid
        self.num_modules = machine.num_modules
        self._replies: list = []
        self._sent_size = 0
        self._access = machine.tracer.access
        self._trace_access = self._access.enabled
        self._qrqw = machine.qrqw
        # The registry dict is mutated in place, never rebound, so the
        # direct reference stays valid -- forward() is the hottest engine
        # call and skips one machine indirection per hop.
        self._handlers = machine._handlers
        # True when ctx.touch does anything.  Hot handlers check this to
        # skip per-node touch calls (and their key-tuple allocations) in
        # tight walks when neither access tracing nor qrqw is on.
        self.tracing = self._trace_access or self._qrqw
        # Reliable-delivery replay guard: sequence numbers of protocol
        # envelopes this module already executed.  Lazily allocated --
        # the fault-free path never touches it.
        self._seen_seqs: Optional[set] = None

    # -- reliable-delivery replay guard --------------------------------------

    def first_delivery(self, seq: int) -> bool:
        """True exactly once per envelope sequence number.

        The idempotence guard of the reliable-delivery protocol
        (:mod:`repro.ops.pipeline`): a duplicated or retried envelope
        whose payload already executed is acknowledged again but *not*
        re-executed.  Guards live in module-local memory; a wiped module
        loses them (see :meth:`PIMMachine.wipe_module`), which is safe
        because an acknowledged envelope was executed before the wipe and
        recovery rebuilds state rather than redelivering old traffic.
        """
        seen = self._seen_seqs
        if seen is None:
            self._seen_seqs = seen = set()
        if seq in seen:
            return False
        seen.add(seq)
        return True

    def reset_replay_guard(self) -> None:
        """Forget all delivery history (module wipe/restart)."""
        self._seen_seqs = None

    # -- cost accounting ----------------------------------------------------

    def charge(self, w: float = 1.0) -> None:
        """Charge ``w`` units of PIM local work."""
        module = self.module
        module.work += w
        module.round_work += w

    def touch(self, obj: Hashable, count: int = 1) -> None:
        """Record an access to ``obj`` for contention tracing and, under
        the qrqw contention model, for this module's queue accounting."""
        if self._trace_access:
            self._access._current[obj] += count
        if self._qrqw:
            self.module.round_touch[obj] += count

    # -- local state ----------------------------------------------------------

    def state(self, structure: str) -> Any:
        """Fetch this module's local state for ``structure``."""
        return self.module.state[structure]

    # -- communication -------------------------------------------------------

    def reply(self, payload: Any, tag: Any = None, size: int = 1) -> None:
        """Send a return value (``size`` message units) back to the CPU side."""
        self._replies.append(Reply(payload, tag, self.mid))
        self._sent_size += size

    def forward(self, dest: int, fn: str, args: tuple = (), tag: Any = None,
                size: int = 1) -> None:
        """Offload a continuation task to module ``dest``.

        Per the paper, module-to-module offload is performed by returning a
        value to shared memory which triggers a ``TaskSend`` from the CPU
        side; the simulator accounts it as one message sent by this module
        this round and one received by ``dest`` next round.  The handler
        for ``fn`` is resolved here, at issue time.
        """
        if not 0 <= dest < self.num_modules:
            raise ValueError(f"bad module id {dest}")
        handler = self._handlers.get(fn)
        if handler is None:
            raise UnknownHandlerError(
                f"no handler for {fn!r} (resolved at forward time)")
        staged = self.machine._staged
        slot = staged.get(dest)
        if slot is None:
            staged[dest] = [size, [], [(handler, args, tag, fn)]]
        else:
            slot[0] += size
            slot[2].append((handler, args, tag, fn))
        self._sent_size += size
