"""PIM modules and the handler execution context.

Each PIM module has a core and a local memory of ``Theta(n/P)`` words.  A
module repeatedly pops tasks from its queue and executes them; handlers
charge local work explicitly (one unit per RAM instruction at the model's
granularity -- in practice one unit per pointer hop / probe / node touch),
and may emit replies to the CPU side or forward continuation tasks to other
modules.
"""

from __future__ import annotations

from collections import Counter
from typing import Any, Dict, Hashable, List, Optional

from repro.sim.errors import LocalMemoryExceeded
from repro.sim.task import CPU_SIDE, Message, Reply, Task


class PIMModule:
    """State of one PIM module: local memory accounting + structure state.

    Data structures keep their per-module local state (node stores, hash
    tables, list heads, ...) in :attr:`state`, a dict keyed by structure
    name.  The module only tracks the *footprint* in words; structures call
    :meth:`alloc_words` / :meth:`free_words` when they create or destroy
    local objects.
    """

    def __init__(self, mid: int, local_memory_words: Optional[int] = None,
                 enforce: bool = False) -> None:
        self.mid = mid
        self.local_memory_words = local_memory_words
        self.enforce = enforce
        self.words_used = 0
        self.words_peak = 0
        self.work = 0.0          # cumulative local work
        self.round_work = 0.0    # work in the current round (machine resets)
        self.round_touch: Counter = Counter()  # per-round object accesses
        self.state: Dict[str, Any] = {}

    # -- memory ----------------------------------------------------------

    def alloc_words(self, n: int) -> None:
        """Charge ``n`` words of local memory to this module."""
        self.words_used += n
        if self.words_used > self.words_peak:
            self.words_peak = self.words_used
        if (
            self.enforce
            and self.local_memory_words is not None
            and self.words_used > self.local_memory_words
        ):
            raise LocalMemoryExceeded(
                f"module {self.mid}: {self.words_used} words used, "
                f"budget {self.local_memory_words}"
            )

    def free_words(self, n: int) -> None:
        """Release ``n`` words of local memory."""
        self.words_used -= n
        if self.words_used < 0:
            raise ValueError(f"module {self.mid}: negative local memory")

    # -- work --------------------------------------------------------------

    def charge(self, w: float = 1.0) -> None:
        """Charge ``w`` units of local work to this module's core."""
        self.work += w
        self.round_work += w

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"PIMModule(mid={self.mid}, words={self.words_used}, work={self.work:.0f})"


class ModuleContext:
    """Handler-facing view of a module during one task execution.

    Provides work charging, access tracing, reply emission (a message back
    to the CPU-side shared memory) and continuation forwarding (a message
    to another module, routed via the CPU side per the paper, accounted as
    one send now + one receive next round).
    """

    def __init__(self, machine: "PIMMachine", module: PIMModule) -> None:  # noqa: F821
        self.machine = machine
        self.module = module
        self._replies: List[Reply] = []
        self._forwards: List[Message] = []
        self._sent_size = 0

    # -- identity ---------------------------------------------------------

    @property
    def mid(self) -> int:
        """This module's id."""
        return self.module.mid

    @property
    def num_modules(self) -> int:
        return self.machine.num_modules

    # -- cost accounting ----------------------------------------------------

    def charge(self, w: float = 1.0) -> None:
        """Charge ``w`` units of PIM local work."""
        self.module.charge(w)

    def touch(self, obj: Hashable, count: int = 1) -> None:
        """Record an access to ``obj`` for contention tracing and, under
        the qrqw contention model, for this module's queue accounting."""
        self.machine.tracer.access.touch(obj, count)
        if self.machine.qrqw:
            self.module.round_touch[obj] += count

    # -- local state ----------------------------------------------------------

    def state(self, structure: str) -> Any:
        """Fetch this module's local state for ``structure``."""
        return self.module.state[structure]

    # -- communication -------------------------------------------------------

    def reply(self, payload: Any, tag: Any = None, size: int = 1) -> None:
        """Send a return value (``size`` message units) back to the CPU side."""
        self._replies.append(Reply(payload=payload, tag=tag, src=self.mid))
        self._sent_size += size

    def forward(self, dest: int, fn: str, args: tuple = (), tag: Any = None,
                size: int = 1) -> None:
        """Offload a continuation task to module ``dest``.

        Per the paper, module-to-module offload is performed by returning a
        value to shared memory which triggers a ``TaskSend`` from the CPU
        side; the simulator accounts it as one message sent by this module
        this round and one received by ``dest`` next round.
        """
        self._forwards.append(
            Message(dest=dest, task=Task(fn=fn, args=args, tag=tag), size=size,
                    src=self.mid)
        )
        self._sent_size += size
