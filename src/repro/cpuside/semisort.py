"""CPU-side semisorting (grouping by key) and batch deduplication.

A semisort gathers equal keys together without fully ordering distinct
keys.  The paper uses it to deduplicate Get/Update batches: semisorting
``B`` records costs ``O(B)`` expected CPU work and ``O(log B)`` whp depth
(Gu et al. [18], Blelloch et al. [9]).

The simulator groups through a Python dict (a stand-in for the parallel
hash-based semisort) and charges the canonical cost.
"""

from __future__ import annotations

import math
from typing import Any, Callable, Dict, Hashable, List, Sequence, Tuple, TypeVar

from repro.sim.cpu import CPUSide, WorkDepth

T = TypeVar("T")


def _log2(n: int) -> float:
    return max(1.0, math.log2(n)) if n > 1 else 1.0


def semisort(cpu: CPUSide, items: Sequence[T],
             key: Callable[[T], Hashable]) -> List[T]:
    """Reorder ``items`` so records with equal keys are adjacent.

    ``O(n)`` expected work, ``O(log n)`` whp depth.
    """
    groups = group_by(cpu, items, key)
    out: List[T] = []
    for _, grp in groups.items():
        out.extend(grp)
    return out


def group_by(cpu: CPUSide, items: Sequence[T],
             key: Callable[[T], Hashable]) -> "Dict[Hashable, List[T]]":
    """Group ``items`` by ``key`` (semisort + boundary detection).

    ``O(n)`` expected work, ``O(log n)`` whp depth.  Insertion order of
    first occurrence is preserved (deterministic for testing).
    """
    out: Dict[Hashable, List[T]] = {}
    for x in items:
        out.setdefault(key(x), []).append(x)
    n = len(items)
    if n:
        cpu.charge_wd(WorkDepth(2 * n, _log2(n)))
    return out


def dedup(cpu: CPUSide, items: Sequence[T],
          key: Callable[[T], Hashable]) -> Tuple[List[T], Dict[Hashable, List[T]]]:
    """Deduplicate a batch by ``key``.

    Returns ``(representatives, groups)``: one representative per distinct
    key (the first occurrence) plus the full groups, so the caller can
    scatter one query per distinct key and then fan results back out to
    every duplicate.  ``O(n)`` expected work, ``O(log n)`` whp depth.
    """
    groups = group_by(cpu, items, key)
    reps = [grp[0] for grp in groups.values()]
    n = len(items)
    if n:
        cpu.charge_wd(WorkDepth(n, _log2(n)))
    return reps, groups
