"""Randomized parallel list contraction on the CPU side.

Batched Delete (paper §4.4) must splice runs of deleted nodes out of the
horizontal linked lists.  Up to the whole batch can be *consecutive* nodes
of one list, so independent parallel splicing would conflict.  The paper's
solution: copy the marked nodes (plus the flanking unmarked node at each
end of every run) into shared memory, run a randomized parallel list
contraction there (``O(B)`` expected work, ``O(log B)`` whp depth, Shun et
al. [28] / Blelloch et al. [9]), and then splice remotely in parallel.

This module implements the shared-memory contraction with the classic
random-mate scheme: in each round every still-live marked node flips a
coin, and a marked node splices itself out when its coin is heads and its
left neighbor is either unmarked or flipped tails.  Adjacent marked nodes
never splice in the same round, so all updates are conflict-free; each
live node leaves with probability >= 1/4 per round, giving ``O(log B)``
rounds whp.

The simulator executes the rounds for real (so correctness is tested, not
assumed) and charges the *measured* work (sum of live nodes over rounds)
and depth (rounds + fork-tree ``log``), which realizes the canonical
bounds.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Any, Dict, Hashable, List, Optional, Sequence, Tuple

from repro.sim.cpu import CPUSide, WorkDepth


@dataclass
class _CNode:
    ident: Hashable
    marked: bool
    left: Optional["_CNode"] = None
    right: Optional["_CNode"] = None
    alive: bool = True


@dataclass
class ContractionStats:
    """Measured cost of one contraction run."""

    rounds: int
    work: int
    spliced: int


class ContractionList:
    """A collection of doubly linked chains of (ident, marked) nodes.

    Build with :meth:`add_chain` (each chain is an independent linked list
    segment, e.g. the copied region of one skip-list level), then call
    :meth:`contract`.
    """

    def __init__(self) -> None:
        self._nodes: List[_CNode] = []
        self._by_ident: Dict[Hashable, _CNode] = {}

    def add_chain(self, chain: Sequence[Tuple[Hashable, bool]]) -> None:
        """Append a chain of ``(ident, marked)`` pairs, linked in order.

        Idents must be globally unique across chains.
        """
        prev: Optional[_CNode] = None
        for ident, marked in chain:
            if ident in self._by_ident:
                raise ValueError(f"duplicate ident {ident!r}")
            node = _CNode(ident=ident, marked=marked)
            self._by_ident[ident] = node
            self._nodes.append(node)
            if prev is not None:
                prev.right = node
                node.left = prev
            prev = node

    def add_adjacency(
        self,
        entries: Sequence[Tuple[Hashable, Optional[Hashable], Optional[Hashable]]],
    ) -> None:
        """Build chains from *marked-node adjacency* records.

        Each entry is ``(ident, left_ident, right_ident)`` for one marked
        node; idents referenced as neighbors but not present as entries
        are created as unmarked boundary nodes.  This is how batched
        Delete assembles its chains: each marking task reports its node's
        neighbors, and no sequential run-walking is needed (O(B) work,
        O(log B) depth on the CPU side).
        """
        # First pass: create all marked nodes.
        for ident, _, _ in entries:
            if ident in self._by_ident:
                raise ValueError(f"duplicate ident {ident!r}")
            node = _CNode(ident=ident, marked=True)
            self._by_ident[ident] = node
            self._nodes.append(node)
        # Second pass: link, creating unmarked boundaries on demand.
        for ident, left, right in entries:
            node = self._by_ident[ident]
            if left is not None:
                lnode = self._by_ident.get(left)
                if lnode is None:
                    lnode = _CNode(ident=left, marked=False)
                    self._by_ident[left] = lnode
                    self._nodes.append(lnode)
                node.left = lnode
                lnode.right = node
            if right is not None:
                rnode = self._by_ident.get(right)
                if rnode is None:
                    rnode = _CNode(ident=right, marked=False)
                    self._by_ident[right] = rnode
                    self._nodes.append(rnode)
                node.right = rnode
                rnode.left = node

    def __len__(self) -> int:
        return len(self._nodes)

    def contract(self, rng: random.Random) -> ContractionStats:
        """Splice out all marked nodes; returns measured cost.

        After contraction, surviving (unmarked) nodes' ``left``/``right``
        pointers bypass every marked node.  Query the result with
        :meth:`links`.
        """
        live = [n for n in self._nodes if n.marked]
        rounds = 0
        work = 0
        spliced_total = 0
        while live:
            rounds += 1
            coins = {id(n): rng.getrandbits(1) for n in live}
            work += len(live)
            to_splice: List[_CNode] = []
            for n in live:
                if not coins[id(n)]:
                    continue  # tails: wait this round
                lf = n.left
                if lf is not None and lf.marked and coins.get(id(lf), 0):
                    continue  # left marked neighbor also heads: defer to it
                to_splice.append(n)
            for n in to_splice:
                lf, rt = n.left, n.right
                if lf is not None:
                    lf.right = rt
                if rt is not None:
                    rt.left = lf
                n.alive = False
            spliced_total += len(to_splice)
            live = [n for n in live if n.alive]
        return ContractionStats(rounds=rounds, work=work, spliced=spliced_total)

    def links(self) -> List[Tuple[Optional[Hashable], Optional[Hashable]]]:
        """New (left_ident, right_ident) adjacencies between survivors.

        One pair per surviving node and its (possibly new) right neighbor,
        including ``(ident, None)`` for chain tails -- exactly the remote
        pointer writes batched Delete must issue.
        """
        out: List[Tuple[Optional[Hashable], Optional[Hashable]]] = []
        for n in self._nodes:
            if n.marked or not n.alive:
                continue
            rt = n.right
            out.append((n.ident, rt.ident if rt is not None else None))
        return out

    def neighbor_of(self, ident: Hashable) -> Tuple[Optional[Hashable], Optional[Hashable]]:
        """Post-contraction (left, right) neighbor idents of a survivor."""
        n = self._by_ident[ident]
        if n.marked:
            raise ValueError("marked nodes have no post-contraction neighbors")
        lf = n.left.ident if n.left is not None else None
        rt = n.right.ident if n.right is not None else None
        return lf, rt


def splice_out_marked(
    cpu: CPUSide,
    rng: random.Random,
    chains: Sequence[Sequence[Tuple[Hashable, bool]]],
) -> Tuple[List[Tuple[Optional[Hashable], Optional[Hashable]]], ContractionStats]:
    """Contract ``chains`` in shared memory; return new links + stats.

    Charges the measured contraction work and ``rounds + log2(total)``
    depth to the CPU accountant, and accounts the shared-memory footprint
    of the copied nodes for the duration of the call.
    """
    clist = ContractionList()
    total = 0
    for chain in chains:
        clist.add_chain(chain)
        total += len(chain)
    words = 4 * total  # ident + left + right + mark per copied node
    with cpu.region(words):
        stats = clist.contract(rng)
        links = clist.links()
    logt = max(1.0, math.log2(total)) if total > 1 else 1.0
    cpu.charge_wd(WorkDepth(max(total, stats.work), stats.rounds + logt))
    return links, stats
