"""CPU-side parallel substrate.

The paper's batched algorithms rely on a handful of shared-memory parallel
primitives with known work/depth bounds in the binary-forking model it
cites (Blelloch et al. [9]):

- parallel map / filter / reduce / scan (:mod:`repro.cpuside.primitives`);
- comparison sorting with ``O(n log n)`` expected work and ``O(log n)``
  whp depth (:mod:`repro.cpuside.sort`);
- semisorting / grouping by hash with ``O(n)`` expected work and
  ``O(log n)`` whp depth, used to deduplicate batches
  (:mod:`repro.cpuside.semisort`);
- randomized parallel list contraction with ``O(n)`` expected work and
  ``O(log n)`` whp depth, used by batched Delete to splice runs of deleted
  nodes out of the horizontal linked lists
  (:mod:`repro.cpuside.list_contraction`).

Each primitive *executes* the real computation (sequentially, in Python)
and *charges* the canonical work/depth of the parallel algorithm to the
machine's CPU-side accountant -- the same separation the paper's analysis
uses (real results, model costs).
"""

from repro.cpuside.list_contraction import ContractionList, splice_out_marked
from repro.cpuside.primitives import (
    pfilter,
    pflatten,
    pmap,
    preduce,
    pscan_exclusive,
    ppack,
)
from repro.cpuside.semisort import dedup, group_by, semisort
from repro.cpuside.sort import merge_sorted, parallel_sort

__all__ = [
    "ContractionList",
    "dedup",
    "group_by",
    "merge_sorted",
    "parallel_sort",
    "pfilter",
    "pflatten",
    "pmap",
    "ppack",
    "preduce",
    "pscan_exclusive",
    "semisort",
    "splice_out_marked",
]
