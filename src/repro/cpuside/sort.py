"""CPU-side parallel comparison sorting.

The paper charges sorting a batch of ``B`` keys ``O(B log B)`` expected
CPU work and ``O(log B)`` whp depth (sample sort in the binary-forking
model, Blelloch et al. [9]).  For a batch of ``P log^2 P`` keys this is
the ``O(P log^3 P)`` expected work / ``O(log P)`` whp depth the Successor
analysis quotes.

The simulator executes Python's Timsort and charges the sample-sort cost.
"""

from __future__ import annotations

import math
from typing import Any, Callable, List, Optional, Sequence, TypeVar

from repro.sim.cpu import CPUSide, WorkDepth

T = TypeVar("T")


def _log2(n: int) -> float:
    return max(1.0, math.log2(n)) if n > 1 else 1.0


def parallel_sort(cpu: CPUSide, items: Sequence[T],
                  key: Optional[Callable[[T], Any]] = None,
                  reverse: bool = False) -> List[T]:
    """Sort ``items``: ``O(n log n)`` expected work, ``O(log n)`` whp depth."""
    out = sorted(items, key=key, reverse=reverse)
    n = len(items)
    if n:
        cpu.charge_wd(WorkDepth(n * _log2(n), _log2(n)))
    return out


def merge_sorted(cpu: CPUSide, a: Sequence[T], b: Sequence[T],
                 key: Optional[Callable[[T], Any]] = None) -> List[T]:
    """Merge two sorted sequences: ``O(n)`` work, ``O(log n)`` depth.

    (Parallel merge by dual binary search; the simulator executes the
    sequential two-finger merge and charges the parallel cost.)
    """
    keyf = key if key is not None else (lambda x: x)
    out: List[T] = []
    i = j = 0
    while i < len(a) and j < len(b):
        if keyf(a[i]) <= keyf(b[j]):
            out.append(a[i])
            i += 1
        else:
            out.append(b[j])
            j += 1
    out.extend(a[i:])
    out.extend(b[j:])
    n = len(out)
    if n:
        cpu.charge_wd(WorkDepth(n, _log2(n)))
    return out
