"""Basic CPU-side parallel primitives with work/depth accounting.

All primitives follow the binary-forking model's canonical bounds: a
parallel loop of ``n`` constant-work iterations costs ``O(n)`` work and
``O(log n)`` depth (the fork tree); reductions and scans cost ``O(n)``
work and ``O(log n)`` depth.

Every function takes the machine's :class:`repro.sim.cpu.CPUSide`
accountant as its first argument, performs the real computation, and
charges the canonical cost.
"""

from __future__ import annotations

import math
from typing import Any, Callable, Iterable, List, Optional, Sequence, Tuple, TypeVar

from repro.sim.cpu import CPUSide, WorkDepth

T = TypeVar("T")
U = TypeVar("U")


def _log2(n: int) -> float:
    """``log2(n)`` floored at 1.0 (fork-tree depth of an n-way loop)."""
    return max(1.0, math.log2(n)) if n > 1 else 1.0


def pmap(cpu: CPUSide, items: Sequence[T], fn: Callable[[T], U],
         work_per_item: float = 1.0) -> List[U]:
    """Parallel map: ``O(n * w)`` work, ``O(log n + w)`` depth."""
    out = [fn(x) for x in items]
    n = len(items)
    if n:
        cpu.charge_wd(WorkDepth(n * work_per_item, _log2(n) + work_per_item))
    return out


def pfilter(cpu: CPUSide, items: Sequence[T], pred: Callable[[T], bool],
            work_per_item: float = 1.0) -> List[T]:
    """Parallel filter (map + pack): ``O(n)`` work, ``O(log n)`` depth."""
    out = [x for x in items if pred(x)]
    n = len(items)
    if n:
        cpu.charge_wd(WorkDepth(n * (work_per_item + 1), _log2(n) + work_per_item))
    return out


def ppack(cpu: CPUSide, items: Sequence[T], flags: Sequence[bool]) -> List[T]:
    """Pack the items whose flag is set: ``O(n)`` work, ``O(log n)`` depth."""
    if len(items) != len(flags):
        raise ValueError("items and flags must have equal length")
    out = [x for x, f in zip(items, flags) if f]
    n = len(items)
    if n:
        cpu.charge_wd(WorkDepth(n, _log2(n)))
    return out


def preduce(cpu: CPUSide, items: Sequence[T], fn: Callable[[T, T], T],
            identity: T, work_per_combine: float = 1.0) -> T:
    """Parallel reduction: ``O(n)`` work, ``O(log n)`` depth."""
    acc = identity
    for x in items:
        acc = fn(acc, x)
    n = len(items)
    if n:
        cpu.charge_wd(WorkDepth(n * work_per_combine, _log2(n) * work_per_combine))
    return acc


def pscan_exclusive(cpu: CPUSide, items: Sequence[float]) -> Tuple[List[float], float]:
    """Exclusive prefix sum: returns (prefixes, total).

    ``O(n)`` work, ``O(log n)`` depth (Blelloch scan).
    """
    out: List[float] = []
    acc = 0.0
    for x in items:
        out.append(acc)
        acc += x
    n = len(items)
    if n:
        cpu.charge_wd(WorkDepth(2 * n, 2 * _log2(n)))
    return out, acc


def pflatten(cpu: CPUSide, lists: Sequence[Sequence[T]]) -> List[T]:
    """Flatten nested sequences: scan over sizes + parallel copy.

    ``O(total)`` work, ``O(log total)`` depth.
    """
    out: List[T] = []
    for sub in lists:
        out.extend(sub)
    total = len(out) + len(lists)
    if total:
        cpu.charge_wd(WorkDepth(total, _log2(total)))
    return out
