"""Reproduction of "The Processing-in-Memory Model" (Kang et al., SPAA 2021).

This library is an executable instantiation of the paper's PIM machine
model together with its PIM-balanced batch-parallel skip list:

- :mod:`repro.sim` -- the PIM machine simulator: ``P`` modules with local
  memories, a CPU side with an ``M``-word shared memory, a
  bulk-synchronous network, and exact accounting of the model's cost
  metrics (CPU work/depth, PIM time, IO time, rounds).
- :mod:`repro.ops` -- the batched-operation pipeline: the
  :class:`~repro.ops.BatchOp` plan/route/execute/aggregate protocol and
  the :func:`~repro.ops.run_batch` driver every batched op (core,
  baselines, collectives, structures) runs through.
- :mod:`repro.core` -- the paper's contribution: the skip list with
  replicated upper part + hashed lower part, supporting batched Get,
  Update, Predecessor, Successor, Upsert, Delete, and RangeOperation.
- :mod:`repro.cpuside` -- CPU-side parallel substrate (sort, semisort,
  list contraction, scans) with canonical work/depth charging.
- :mod:`repro.balls` -- hash families and the balls-in-bins lemmas.
- :mod:`repro.baselines` -- the comparison structures the paper argues
  against (range/hash partitioning, fine-grained placement, pivot-free
  batching).
- :mod:`repro.workloads` -- workload generators, including the paper's
  adversarial patterns.
- :mod:`repro.analysis` -- scaling-law fits and table renderers used by
  the benchmark harness.

Quick start::

    from repro import PIMMachine, PIMSkipList

    machine = PIMMachine(num_modules=16, seed=1)
    sl = PIMSkipList(machine)
    sl.build((k, k * 10) for k in range(0, 4096, 2))
    before = machine.snapshot()
    print(sl.batch_successor([5, 11, 300])[:3])
    print(machine.delta_since(before))
"""

from repro.core.skiplist import PIMSkipList
from repro.sim.machine import PIMMachine
from repro.sim.metrics import Metrics, MetricsDelta

__version__ = "1.0.0"

__all__ = ["PIMMachine", "PIMSkipList", "Metrics", "MetricsDelta", "__version__"]
