"""The pivot-free batched search on the paper's own structure (§4.2).

"PIM-imbalanced batch execution": send every query's search into the
structure at once, each stepping one node per round.  Correct -- but an
adversarial same-successor batch funnels all ``B = P log^2 P`` searches
through the same ``O(log P)`` lower-part nodes, so single nodes see
``Theta(B)`` contention, one module does ``Theta(B)`` of the work, and IO
time degenerates to ``Theta(B)`` (no parallelism).  The Fig. 3 / Lemma
4.2 benchmark contrasts this directly with the two-stage pivot algorithm.
"""

from __future__ import annotations

from typing import Any, Hashable, List, Optional, Sequence, Tuple

from repro.core.ops_search import handlers_for, search_message
from repro.core.structure import SkipListStructure
from repro.ops import BatchOp, run_batch


class _NaiveBatchSearchOp(BatchOp):
    """One stage carrying every query; contention is the whole point."""

    def __init__(self, sl: SkipListStructure,
                 keys: Sequence[Hashable]) -> None:
        self.sl = sl
        self.keys = keys
        self.name = f"{sl.name}:naive_batch_search"

    def handlers(self):
        return handlers_for(self.sl)

    def route(self, machine, plan):
        sl, keys = self.sl, self.keys
        replies = yield [search_message(sl, key, opid=i, record=False)
                         for i, key in enumerate(keys)]
        results: List[Optional[Tuple[Any, Any]]] = [None] * len(keys)
        for r in replies:
            payload = r.payload
            if payload[0] == "done":
                _, opid, pred, right = payload
                results[opid] = (pred, right)
        return results


def naive_batch_search(sl: SkipListStructure, keys: Sequence[Hashable]):
    """All searches at once, no pivots, no hints.  Returns (pred, right)
    pairs aligned with ``keys``."""
    return run_batch(sl.machine, _NaiveBatchSearchOp(sl, keys))


def naive_batch_successor(sl: SkipListStructure, keys: Sequence[Hashable],
                          ) -> List[Optional[Tuple[Hashable, Any]]]:
    """Successor semantics over :func:`naive_batch_search`."""
    out: List[Optional[Tuple[Hashable, Any]]] = []
    for key, (pred, right) in zip(keys, naive_batch_search(sl, keys)):
        if not pred.is_sentinel and pred.key == key:
            out.append((pred.key, pred.value))
        elif right is not None:
            out.append((right.key, right.value))
        else:
            out.append(None)
    return out
