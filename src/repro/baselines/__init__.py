"""Baseline structures the paper compares against (§2.2, §3.1).

Each baseline runs on the same :class:`repro.sim.machine.PIMMachine` with
the same cost accounting, so the comparative claims can be measured:

- :class:`~repro.baselines.range_partition.RangePartitionedSkipList` --
  coarse partitioning by disjoint key ranges (Choe et al. [11], Liu et
  al. [19]).  Great on uniform workloads, serializes when an adversarial
  batch falls inside one partition's range.
- :class:`~repro.baselines.hash_partition.HashPartitionedMap` -- coarse
  partitioning by key hash (Ziegler et al. [34]'s hash scheme).  Point
  operations balance even under skew, but every ordered query
  (successor/range) must broadcast to all ``P`` modules.
- :class:`~repro.baselines.fine_grained.FineGrainedSkipList` -- every
  node placed on a random module with no replication (Ziegler et al.'s
  fine-grained scheme).  Balanced, but every search pays ``Theta(log n)``
  messages because each pointer hop crosses modules.
- :func:`~repro.baselines.naive_batch.naive_batch_successor` -- the
  pivot-free batched search on the *paper's own structure* (§4.2's
  "PIM-imbalanced batch execution"), the contention strawman that
  motivates the two-stage algorithm.
"""

from repro.baselines.fine_grained import FineGrainedSkipList
from repro.baselines.hash_partition import HashPartitionedMap
from repro.baselines.local_skiplist import LocalSkipList
from repro.baselines.naive_batch import naive_batch_successor
from repro.baselines.range_partition import RangePartitionedSkipList

__all__ = [
    "FineGrainedSkipList",
    "HashPartitionedMap",
    "LocalSkipList",
    "RangePartitionedSkipList",
    "naive_batch_successor",
]
