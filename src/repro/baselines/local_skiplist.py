"""A classic sequential skip list (runs *inside* one PIM module).

The coarse-partitioning baselines keep an ordinary ordered structure in
each module's local memory; this is that structure.  Work is charged per
node touched through the same ``charge`` hook the cuckoo table uses, so a
local operation costs ``O(log n_local)`` PIM work as in the papers the
baselines reimplement.
"""

from __future__ import annotations

import random
from typing import Any, Callable, Hashable, Iterator, List, Optional, Tuple

MAX_LEVEL = 48


class _LNode:
    __slots__ = ("key", "value", "nexts")

    def __init__(self, key: Any, value: Any, height: int) -> None:
        self.key = key
        self.value = value
        self.nexts: List[Optional[_LNode]] = [None] * (height + 1)


class _Head:
    __slots__ = ("nexts",)

    def __init__(self) -> None:
        self.nexts: List[Optional[_LNode]] = [None]


class LocalSkipList:
    """Sequential skip list with per-probe work charging."""

    def __init__(self, rng: random.Random,
                 charge: Optional[Callable[[float], None]] = None) -> None:
        self._rng = rng
        self._charge = charge if charge is not None else (lambda w: None)
        self._head = _Head()
        self._size = 0

    def __len__(self) -> int:
        return self._size

    @property
    def level(self) -> int:
        return len(self._head.nexts) - 1

    def _draw_height(self) -> int:
        h = 0
        while h < MAX_LEVEL and self._rng.random() < 0.5:
            h += 1
        return h

    def _find_preds(self, key: Hashable) -> List[Any]:
        """Node-before-key at every level, top-down; charges per hop."""
        preds: List[Any] = [None] * (self.level + 1)
        x: Any = self._head
        for lvl in range(self.level, -1, -1):
            self._charge(1)
            while x.nexts[lvl] is not None and x.nexts[lvl].key < key:
                x = x.nexts[lvl]
                self._charge(1)
            preds[lvl] = x
        return preds

    # -- queries -----------------------------------------------------------

    def get(self, key: Hashable, default: Any = None) -> Any:
        node = self._at(key)
        return node.value if node is not None else default

    def _at(self, key: Hashable) -> Optional[_LNode]:
        preds = self._find_preds(key)
        cand = preds[0].nexts[0]
        if cand is not None and cand.key == key:
            return cand
        return None

    def successor(self, key: Hashable) -> Optional[Tuple[Hashable, Any]]:
        """Smallest (key, value) with key >= the argument."""
        preds = self._find_preds(key)
        cand = preds[0].nexts[0]
        return (cand.key, cand.value) if cand is not None else None

    def predecessor(self, key: Hashable) -> Optional[Tuple[Hashable, Any]]:
        """Largest (key, value) with key <= the argument."""
        preds = self._find_preds(key)
        cand = preds[0].nexts[0]
        if cand is not None and cand.key == key:
            return (cand.key, cand.value)
        p = preds[0]
        if isinstance(p, _Head):
            return None
        return (p.key, p.value)

    def range_scan(self, lkey: Hashable, rkey: Hashable,
                   ) -> List[Tuple[Hashable, Any]]:
        """All (key, value) with lkey <= key <= rkey, ascending."""
        preds = self._find_preds(lkey)
        x = preds[0].nexts[0]
        out: List[Tuple[Hashable, Any]] = []
        while x is not None and x.key <= rkey:
            self._charge(1)
            out.append((x.key, x.value))
            x = x.nexts[0]
        return out

    def items(self) -> Iterator[Tuple[Hashable, Any]]:
        x = self._head.nexts[0]
        while x is not None:
            yield (x.key, x.value)
            x = x.nexts[0]

    # -- differential-verification conformance surface ---------------------

    #: Batch ops replayable through :meth:`apply_batch` (sequentially).
    BATCH_CAPS = frozenset({"get", "successor", "upsert", "delete", "range"})

    def apply_batch(self, op: str, payload) -> Optional[List[Any]]:
        """Uniform batch dispatch (contract: see
        :meth:`repro.core.skiplist.PIMSkipList.apply_batch`).

        Sequential: the batch is applied element by element, which is
        exactly what makes this structure a useful second oracle for the
        differential verifier.
        """
        if op == "get":
            return [self.get(k) for k in payload]
        if op == "successor":
            return [self.successor(k) for k in payload]
        if op == "upsert":
            for k, v in payload:
                self.upsert(k, v)
            return None
        if op == "delete":
            for k in payload:
                self.delete(k)
            return None
        if op == "range":
            return [self.range_scan(lo, hi) for lo, hi in payload]
        raise ValueError(f"apply_batch: unknown op {op!r}")

    # -- updates -----------------------------------------------------------

    def upsert(self, key: Hashable, value: Any) -> bool:
        """Insert or overwrite; returns True if the key was new."""
        preds = self._find_preds(key)
        cand = preds[0].nexts[0]
        if cand is not None and cand.key == key:
            cand.value = value
            self._charge(1)
            return False
        h = self._draw_height()
        while self.level < h:
            self._head.nexts.append(None)
            preds.append(self._head)
            self._charge(1)
        node = _LNode(key, value, h)
        for lvl in range(h + 1):
            node.nexts[lvl] = preds[lvl].nexts[lvl]
            preds[lvl].nexts[lvl] = node
            self._charge(1)
        self._size += 1
        return True

    def delete(self, key: Hashable) -> bool:
        preds = self._find_preds(key)
        cand = preds[0].nexts[0]
        if cand is None or cand.key != key:
            return False
        for lvl in range(len(cand.nexts)):
            if preds[lvl].nexts[lvl] is cand:
                preds[lvl].nexts[lvl] = cand.nexts[lvl]
                self._charge(1)
        self._size -= 1
        return True
