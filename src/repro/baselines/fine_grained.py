"""Fine-grained random placement baseline (Ziegler et al. [34]).

One global skip list whose *every* node -- including the topmost levels
and the sentinel tower -- lives on a uniformly random module, with no
replication.  Load is perfectly balanced (that part the paper's structure
keeps for its lower part), but a search from the root crosses a module
boundary on essentially every one of its ``Theta(log n)`` hops: per-query
IO is ``Theta(log n)`` messages instead of the ``O(log P)`` the replicated
upper part buys.  This is §3.1's "fine-grained partitioning causes too
much IO because every key search would access nodes in many different PIM
modules."

Only the operations the comparison benchmarks need are implemented:
build, batched Get (search-based -- no leaf hash shortcut exists in the
cited design), and batched Successor.
"""

from __future__ import annotations

import random
from typing import Any, Dict, Hashable, Iterable, List, Optional, Sequence, Tuple

from repro.balls.hashing import KeyLevelHash
from repro.core.node import NEG_INF, NODE_WORDS, Node
from repro.ops import BatchOp, run_batch
from repro.sim.machine import PIMMachine


class FineGrainedSkipList:
    """Globally distributed skip list, random node placement, no replicas."""

    def __init__(self, machine: PIMMachine, name: str = "finegrained") -> None:
        self.machine = machine
        self.name = name
        self.hash = KeyLevelHash(machine.num_modules,
                                 seed=machine.spawn_rng(0xF1E).getrandbits(32))
        self.rng: random.Random = machine.spawn_rng(0xF2A)
        self.num_keys = 0
        self.sentinels: List[Node] = []
        self.top_level = 0
        # One stable handler dict per map: the ops' handlers() return it,
        # so the driver's re-registration is a no-op.
        self._handler_map = self._handlers()
        machine.register_all(self._handler_map)

    # -- structure ------------------------------------------------------------

    def _owner(self, key: Hashable, level: int) -> int:
        return self.hash.module_of(("fg", key), level)

    def build(self, items: Iterable[Tuple[Hashable, Any]]) -> None:
        """Initialize from sorted unique (key, value) pairs."""
        items = list(items)
        heights = []
        for _ in items:
            h = 0
            while h < 48 and self.rng.random() < 0.5:
                h += 1
            heights.append(h)
        self.top_level = max(heights, default=0) + 1
        prev_s: Optional[Node] = None
        for lvl in range(self.top_level + 1):
            s = Node(NEG_INF, lvl, owner=self._owner("SENTINEL", lvl))
            self.machine.modules[s.owner].alloc_words(NODE_WORDS)
            if prev_s is not None:
                s.down = prev_s
                prev_s.up = s
            self.sentinels.append(s)
            prev_s = s
        tails: List[Node] = list(self.sentinels)
        for (key, value), h in zip(items, heights):
            below: Optional[Node] = None
            for lvl in range(h + 1):
                node = Node(key, lvl, owner=self._owner(key, lvl),
                            value=value if lvl == 0 else None)
                self.machine.modules[node.owner].alloc_words(NODE_WORDS)
                tails[lvl].right = node
                node.left = tails[lvl]
                tails[lvl] = node
                if below is not None:
                    below.up = node
                    node.down = below
                below = node
        self.num_keys = len(items)

    @property
    def root(self) -> Node:
        return self.sentinels[-1]

    # -- search ---------------------------------------------------------------

    def _handlers(self) -> Dict[str, Any]:
        name = self.name
        fn_step = f"{name}:step"

        def h_step(ctx, node, key, opid, tag=None):
            x = node
            hops = 0
            tracing = ctx.tracing
            while True:
                hops += 1
                if tracing:
                    ctx.touch(("fg", x.nid))
                if x.right is not None and x.right.key <= key:
                    nxt = x.right
                elif x.level > 0:
                    nxt = x.down
                else:
                    ctx.charge(hops)
                    ctx.reply(("done", opid, x, x.right), size=1)
                    return
                if nxt.owner == ctx.mid:
                    x = nxt
                else:
                    ctx.charge(hops)
                    ctx.forward(nxt.owner, fn_step, (nxt, key, opid))
                    return

        return {fn_step: h_step}

    def _batch_search(self, keys: Sequence[Hashable]) -> List[Node]:
        return run_batch(self.machine, _FineGrainedSearchOp(self, keys))

    def batch_get(self, keys: Sequence[Hashable]) -> List[Optional[Any]]:
        out: List[Optional[Any]] = []
        for key, (pred, _right) in zip(keys, self._batch_search(keys)):
            out.append(pred.value if (not pred.is_sentinel and pred.key == key)
                       else None)
        return out

    def batch_successor(self, keys: Sequence[Hashable],
                        ) -> List[Optional[Tuple[Hashable, Any]]]:
        out: List[Optional[Tuple[Hashable, Any]]] = []
        for key, (pred, right) in zip(keys, self._batch_search(keys)):
            if not pred.is_sentinel and pred.key == key:
                out.append((pred.key, pred.value))
            elif right is not None:
                out.append((right.key, right.value))
            else:
                out.append(None)
        return out

    #: Read-only: the cited design is build-once (no mutation path).
    BATCH_CAPS = frozenset({"get", "successor"})

    def apply_batch(self, op: str, payload: Sequence) -> List[Any]:
        """Uniform batch dispatch (contract: see
        :meth:`repro.core.skiplist.PIMSkipList.apply_batch`)."""
        if op == "get":
            return self.batch_get(list(payload))
        if op == "successor":
            return self.batch_successor(list(payload))
        raise ValueError(f"apply_batch: unsupported op {op!r} "
                         f"(fine-grained baseline is read-only)")


class _FineGrainedSearchOp(BatchOp):
    """All searches launched at the (unreplicated) root in one stage."""

    def __init__(self, fg: FineGrainedSkipList,
                 keys: Sequence[Hashable]) -> None:
        self.fg = fg
        self.keys = keys
        self.name = f"{fg.name}:batch_search"

    def handlers(self):
        return self.fg._handler_map

    def route(self, machine, plan):
        fg, keys = self.fg, self.keys
        root = fg.root
        fn_step = f"{fg.name}:step"
        replies = yield ((root.owner, fn_step, (root, key, i), None)
                         for i, key in enumerate(keys))
        results: List[Optional[Tuple[Node, Optional[Node]]]] = \
            [None] * len(keys)
        for r in replies:
            _, opid, pred, right = r.payload
            results[opid] = (pred, right)
        return results  # type: ignore[return-value]
