"""Hash-partitioned ordered map baseline (Ziegler et al. [34]'s coarse
partitioning by hash).

Every key hashes to one module, which keeps a sequential skip list over
its (scattered) keys.  Point operations are perfectly balanced even under
adversarial skew -- the same property our structure gets for its lower
part -- but *order* is destroyed: a Successor query cannot be routed, so
it must broadcast to all ``P`` modules and min-combine the local answers;
likewise every range scan touches all modules no matter how small the
range.  This is §3.1's "coarse-grain partitioning by hash has low range
query performance because range queries must be broadcasted."
"""

from __future__ import annotations

import math
from typing import Any, Dict, Hashable, Iterable, List, Optional, Sequence, Tuple

from repro.balls.hashing import KeyLevelHash
from repro.baselines.local_skiplist import LocalSkipList
from repro.cpuside.semisort import group_by
from repro.ops import BatchOp, Broadcast, run_batch
from repro.sim.machine import PIMMachine


class HashPartitionedMap:
    """Coarse partitioning by key hash with per-module skip lists."""

    def __init__(self, machine: PIMMachine, name: str = "hashpart") -> None:
        self.machine = machine
        self.name = name
        self.num_modules = machine.num_modules
        self.hash = KeyLevelHash(machine.num_modules,
                                 seed=machine.spawn_rng(0x4A5).getrandbits(32))
        self.num_keys = 0
        for mid in range(machine.num_modules):
            module = machine.modules[mid]
            module.state[name] = LocalSkipList(
                rng=machine.spawn_rng(0x9B0 + mid), charge=module.charge,
            )
        # One stable handler dict per map: the ops' handlers() return it,
        # so the driver's re-registration is a no-op.
        self._handler_map = self._handlers()
        machine.register_all(self._handler_map)

    def _handlers(self) -> Dict[str, Any]:
        name = self.name

        def h_get(ctx, key, tag=None):
            ctx.charge(1)
            ctx.reply((key, ctx.state(name).get(key)), tag=tag)

        def h_upsert(ctx, key, value, tag=None):
            ctx.charge(1)
            created = ctx.state(name).upsert(key, value)
            if created:
                ctx.module.alloc_words(4)
            ctx.reply((key, created), tag=tag)

        def h_delete(ctx, key, tag=None):
            ctx.charge(1)
            removed = ctx.state(name).delete(key)
            if removed:
                ctx.module.free_words(4)
            ctx.reply((key, removed), tag=tag)

        def h_local_succ(ctx, key, opid, tag=None):
            ctx.charge(1)
            ctx.reply(("succ", opid, ctx.state(name).successor(key)), tag=tag)

        def h_range(ctx, lkey, rkey, opid, tag=None):
            ctx.charge(1)
            vals = ctx.state(name).range_scan(lkey, rkey)
            ctx.reply(("range", opid, vals), size=max(1, len(vals)), tag=tag)

        return {
            f"{name}:get": h_get,
            f"{name}:upsert": h_upsert,
            f"{name}:delete": h_delete,
            f"{name}:lsucc": h_local_succ,
            f"{name}:range": h_range,
        }

    def owner(self, key: Hashable) -> int:
        return self.hash.module_of(key)

    def build(self, items: Iterable[Tuple[Hashable, Any]]) -> None:
        for k, v in items:
            mid = self.owner(k)
            self.machine.modules[mid].state[self.name].upsert(k, v)
            self.machine.modules[mid].alloc_words(4)
            self.num_keys += 1

    # -- batched operations -------------------------------------------------

    def batch_get(self, keys: Sequence[Hashable]) -> List[Optional[Any]]:
        return run_batch(self.machine, _HashGetOp(self, keys))

    def batch_upsert(self, pairs: Sequence[Tuple[Hashable, Any]]) -> int:
        return run_batch(self.machine, _HashUpsertOp(self, pairs))

    def batch_delete(self, keys: Sequence[Hashable]) -> int:
        return run_batch(self.machine, _HashDeleteOp(self, keys))

    def batch_successor(self, keys: Sequence[Hashable],
                        ) -> List[Optional[Tuple[Hashable, Any]]]:
        """Every query broadcasts: P messages out + P local searches + P
        answers back, then a CPU min-combine.  IO ~ B (not B/P)."""
        return run_batch(self.machine, _HashSuccessorOp(self, keys))

    def batch_range(self, ops: Sequence[Tuple[Hashable, Hashable]],
                    ) -> List[List[Tuple[Hashable, Any]]]:
        """Every range op broadcasts to all modules; the CPU merge-sorts
        the scattered partial results."""
        return run_batch(self.machine, _HashRangeOp(self, ops))

    #: Batch ops replayable through :meth:`apply_batch`.
    BATCH_CAPS = frozenset({"get", "successor", "upsert", "delete", "range"})

    def apply_batch(self, op: str, payload: Sequence) -> Optional[list]:
        """Uniform batch dispatch (contract: see
        :meth:`repro.core.skiplist.PIMSkipList.apply_batch`)."""
        if op == "get":
            return self.batch_get(list(payload))
        if op == "successor":
            return self.batch_successor(list(payload))
        if op == "upsert":
            if payload:
                self.batch_upsert(list(payload))
            return None
        if op == "delete":
            if payload:
                self.batch_delete(list(payload))
            return None
        if op == "range":
            return self.batch_range(list(payload)) if payload else []
        raise ValueError(f"apply_batch: unknown op {op!r}")


class _HashPartOp(BatchOp):
    """Base for the map's ops: handlers come from the host's stable dict."""

    def __init__(self, hp: HashPartitionedMap, batch: Any,
                 suffix: str) -> None:
        self.hp = hp
        self.batch = batch
        self.name = f"{hp.name}:{suffix}"

    def handlers(self):
        return self.hp._handler_map


class _HashGetOp(_HashPartOp):
    def __init__(self, hp: HashPartitionedMap,
                 keys: Sequence[Hashable]) -> None:
        super().__init__(hp, keys, "batch_get")

    def route(self, machine, plan):
        hp, keys = self.hp, self.batch
        groups = group_by(machine.cpu, list(range(len(keys))),
                          key=lambda i: keys[i])
        fn_get = f"{hp.name}:get"
        replies = yield ((hp.owner(key), fn_get, (key,), None)
                         for key in groups)
        results: List[Optional[Any]] = [None] * len(keys)
        for r in replies:
            key, value = r.payload
            for i in groups[key]:
                results[i] = value
        return results


class _HashUpsertOp(_HashPartOp):
    def __init__(self, hp: HashPartitionedMap,
                 pairs: Sequence[Tuple[Hashable, Any]]) -> None:
        super().__init__(hp, pairs, "batch_upsert")

    def route(self, machine, plan):
        hp, pairs = self.hp, self.batch
        groups = group_by(machine.cpu, list(pairs), key=lambda kv: kv[0])
        fn_upsert = f"{hp.name}:upsert"
        replies = yield ((hp.owner(key), fn_upsert, (key, occ[-1][1]), None)
                         for key, occ in groups.items())
        created = sum(1 for r in replies if r.payload[1])
        hp.num_keys += created
        return created


class _HashDeleteOp(_HashPartOp):
    def __init__(self, hp: HashPartitionedMap,
                 keys: Sequence[Hashable]) -> None:
        super().__init__(hp, keys, "batch_delete")

    def route(self, machine, plan):
        hp, keys = self.hp, self.batch
        groups = group_by(machine.cpu, list(keys), key=lambda k: k)
        fn_delete = f"{hp.name}:delete"
        replies = yield ((hp.owner(key), fn_delete, (key,), None)
                         for key in groups)
        removed = sum(1 for r in replies if r.payload[1])
        hp.num_keys -= removed
        return removed


class _HashSuccessorOp(_HashPartOp):
    def __init__(self, hp: HashPartitionedMap,
                 keys: Sequence[Hashable]) -> None:
        super().__init__(hp, keys, "batch_successor")

    def route(self, machine, plan):
        hp, keys = self.hp, self.batch
        fn_lsucc = f"{hp.name}:lsucc"
        replies = yield (Broadcast(fn_lsucc, (key, i))
                         for i, key in enumerate(keys))
        best: List[Optional[Tuple[Hashable, Any]]] = [None] * len(keys)
        for r in replies:
            _, opid, res = r.payload
            if res is not None and (best[opid] is None
                                    or res[0] < best[opid][0]):
                best[opid] = res
        machine.cpu.charge(
            len(keys) * hp.num_modules,
            max(1.0, math.log2(hp.num_modules + 1)),
        )
        return best


class _HashRangeOp(_HashPartOp):
    def __init__(self, hp: HashPartitionedMap,
                 ops: Sequence[Tuple[Hashable, Hashable]]) -> None:
        super().__init__(hp, ops, "batch_range")

    def route(self, machine, plan):
        hp, ops = self.hp, self.batch
        fn_range = f"{hp.name}:range"
        replies = yield (Broadcast(fn_range, (l, r, i))
                         for i, (l, r) in enumerate(ops))
        parts: Dict[int, List[Tuple[Hashable, Any]]] = {}
        for rep in replies:
            _, opid, vals = rep.payload
            parts.setdefault(opid, []).extend(vals)
        out: List[List[Tuple[Hashable, Any]]] = []
        for i in range(len(ops)):
            vals = sorted(parts.get(i, []))
            machine.cpu.charge(
                (len(vals) + 1) * max(1.0, math.log2(len(vals) + 2)),
                max(1.0, math.log2(len(vals) + 2)),
            )
            out.append(vals)
        return out
