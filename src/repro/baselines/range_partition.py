"""Range-partitioned skip list baseline (Choe et al. [11], Liu et al. [19]).

Keys are split into ``P`` contiguous ranges by splitters chosen at build
time; each PIM module keeps an ordinary sequential skip list over its
range.  Routing is a CPU-side binary search over the splitters, so point
and ordered operations each cost one message and ``O(log n_local)`` local
work -- *if* the batch spreads across ranges.

This is exactly the design §2.2 critiques: "it would serialize (i.e., no
parallelism) ... whenever all keys fall within the range hosted by a
single PIM-module."  The ``bench_baselines`` benchmark reproduces that
serialization with a single-range adversarial batch (h-relation ~ B
instead of ~ B/P), and its strength on uniform workloads and range scans.

No dynamic repartitioning is implemented; the cited systems offer data
migration heuristics but the paper's point -- an adversary beats any
fixed range assignment -- stands regardless.
"""

from __future__ import annotations

import bisect
import math
from typing import Any, Dict, Hashable, Iterable, List, Optional, Sequence, Tuple

from repro.baselines.local_skiplist import LocalSkipList
from repro.cpuside.semisort import group_by
from repro.ops import BatchOp, run_batch
from repro.sim.machine import PIMMachine


class RangePartitionedSkipList:
    """Coarse range partitioning: module ``i`` owns keys in
    ``[splitters[i-1], splitters[i])``."""

    def __init__(self, machine: PIMMachine, name: str = "rangepart") -> None:
        self.machine = machine
        self.name = name
        self.num_modules = machine.num_modules
        self.splitters: List[Hashable] = []
        self.num_keys = 0
        for mid in range(self.num_modules):
            module = machine.modules[mid]
            module.state[name] = LocalSkipList(
                rng=machine.spawn_rng(0x2A9E + mid), charge=module.charge,
            )
        # One stable handler dict per map: the ops' handlers() return it,
        # so the driver's re-registration is a no-op.
        self._handler_map = self._handlers()
        machine.register_all(self._handler_map)

    # -- handlers -----------------------------------------------------------

    def _handlers(self) -> Dict[str, Any]:
        name = self.name
        fn_succ = f"{name}:succ"

        def local(ctx) -> LocalSkipList:
            return ctx.state(name)

        def h_get(ctx, key, tag=None):
            ctx.charge(1)
            sl = local(ctx)
            ctx.reply((key, sl.get(key)), tag=tag)

        def h_upsert(ctx, key, value, tag=None):
            ctx.charge(1)
            created = local(ctx).upsert(key, value)
            words = 4
            if created:
                ctx.module.alloc_words(words)
            ctx.reply((key, created), tag=tag)

        def h_delete(ctx, key, tag=None):
            ctx.charge(1)
            removed = local(ctx).delete(key)
            if removed:
                ctx.module.free_words(4)
            ctx.reply((key, removed), tag=tag)

        def h_succ(ctx, key, opid, tag=None):
            ctx.charge(1)
            res = local(ctx).successor(key)
            if res is None and ctx.mid + 1 < ctx.num_modules:
                # The successor lives in a later range; forward rightward.
                ctx.forward(ctx.mid + 1, fn_succ, (key, opid))
            else:
                ctx.reply(("succ", opid, res), tag=tag)

        def h_range(ctx, lkey, rkey, opid, tag=None):
            ctx.charge(1)
            vals = local(ctx).range_scan(lkey, rkey)
            ctx.reply(("range", opid, ctx.mid, vals),
                      size=max(1, len(vals)), tag=tag)

        return {
            f"{name}:get": h_get,
            f"{name}:upsert": h_upsert,
            f"{name}:delete": h_delete,
            fn_succ: h_succ,
            f"{name}:range": h_range,
        }

    # -- routing ---------------------------------------------------------------

    def route(self, key: Hashable) -> int:
        """Module owning ``key``'s range (CPU binary search, charged)."""
        self.machine.cpu.charge(max(1.0, math.log2(self.num_modules)), 1.0)
        return bisect.bisect_right(self.splitters, key)

    # -- construction ------------------------------------------------------------

    def build(self, items: Iterable[Tuple[Hashable, Any]]) -> None:
        """Initialize from sorted unique (key, value) pairs, choosing
        equal-count splitters (the best case for the baseline)."""
        items = list(items)
        p = self.num_modules
        per = max(1, math.ceil(len(items) / p))
        self.splitters = [
            items[i * per][0] for i in range(1, p) if i * per < len(items)
        ]
        for i, (k, v) in enumerate(items):
            mid = min(i // per, p - 1)
            self.machine.modules[mid].state[self.name].upsert(k, v)
            self.machine.modules[mid].alloc_words(4)
        self.num_keys = len(items)

    # -- batch operations -----------------------------------------------------------

    def batch_get(self, keys: Sequence[Hashable]) -> List[Optional[Any]]:
        return run_batch(self.machine, _RangeGetOp(self, keys))

    def batch_upsert(self, pairs: Sequence[Tuple[Hashable, Any]]) -> int:
        return run_batch(self.machine, _RangeUpsertOp(self, pairs))

    def batch_delete(self, keys: Sequence[Hashable]) -> int:
        return run_batch(self.machine, _RangeDeleteOp(self, keys))

    def batch_successor(self, keys: Sequence[Hashable],
                        ) -> List[Optional[Tuple[Hashable, Any]]]:
        return run_batch(self.machine, _RangeSuccessorOp(self, keys))

    def batch_range(self, ops: Sequence[Tuple[Hashable, Hashable]],
                    ) -> List[List[Tuple[Hashable, Any]]]:
        """Range scans; each op contacts only the modules its range spans
        (the baseline's strong suit)."""
        return run_batch(self.machine, _RangeScanOp(self, ops))

    #: Batch ops replayable through :meth:`apply_batch`.
    BATCH_CAPS = frozenset({"get", "successor", "upsert", "delete", "range"})

    def apply_batch(self, op: str, payload: Sequence) -> Optional[list]:
        """Uniform batch dispatch (contract: see
        :meth:`repro.core.skiplist.PIMSkipList.apply_batch`)."""
        if op == "get":
            return self.batch_get(list(payload))
        if op == "successor":
            return self.batch_successor(list(payload))
        if op == "upsert":
            if payload:
                self.batch_upsert(list(payload))
            return None
        if op == "delete":
            if payload:
                self.batch_delete(list(payload))
            return None
        if op == "range":
            return self.batch_range(list(payload)) if payload else []
        raise ValueError(f"apply_batch: unknown op {op!r}")


class _RangePartOp(BatchOp):
    """Base for the map's ops: handlers come from the host's stable dict."""

    def __init__(self, rp: RangePartitionedSkipList, batch: Any,
                 suffix: str) -> None:
        self.rp = rp
        self.batch = batch
        self.name = f"{rp.name}:{suffix}"

    def handlers(self):
        return self.rp._handler_map


class _RangeGetOp(_RangePartOp):
    def __init__(self, rp: RangePartitionedSkipList,
                 keys: Sequence[Hashable]) -> None:
        super().__init__(rp, keys, "batch_get")

    def route(self, machine, plan):
        rp, keys = self.rp, self.batch
        groups = group_by(machine.cpu, list(range(len(keys))),
                          key=lambda i: keys[i])
        fn_get = f"{rp.name}:get"
        replies = yield ((rp.route(key), fn_get, (key,), None)
                         for key in groups)
        results: List[Optional[Any]] = [None] * len(keys)
        for r in replies:
            key, value = r.payload
            for i in groups[key]:
                results[i] = value
        return results


class _RangeUpsertOp(_RangePartOp):
    def __init__(self, rp: RangePartitionedSkipList,
                 pairs: Sequence[Tuple[Hashable, Any]]) -> None:
        super().__init__(rp, pairs, "batch_upsert")

    def route(self, machine, plan):
        rp, pairs = self.rp, self.batch
        groups = group_by(machine.cpu, list(pairs), key=lambda kv: kv[0])
        fn_upsert = f"{rp.name}:upsert"
        replies = yield ((rp.route(key), fn_upsert, (key, occ[-1][1]), None)
                         for key, occ in groups.items())
        created = sum(1 for r in replies if r.payload[1])
        rp.num_keys += created
        return created


class _RangeDeleteOp(_RangePartOp):
    def __init__(self, rp: RangePartitionedSkipList,
                 keys: Sequence[Hashable]) -> None:
        super().__init__(rp, keys, "batch_delete")

    def route(self, machine, plan):
        rp, keys = self.rp, self.batch
        groups = group_by(machine.cpu, list(keys), key=lambda k: k)
        fn_delete = f"{rp.name}:delete"
        replies = yield ((rp.route(key), fn_delete, (key,), None)
                         for key in groups)
        removed = sum(1 for r in replies if r.payload[1])
        rp.num_keys -= removed
        return removed


class _RangeSuccessorOp(_RangePartOp):
    def __init__(self, rp: RangePartitionedSkipList,
                 keys: Sequence[Hashable]) -> None:
        super().__init__(rp, keys, "batch_successor")

    def route(self, machine, plan):
        rp, keys = self.rp, self.batch
        fn_succ = f"{rp.name}:succ"
        replies = yield ((rp.route(key), fn_succ, (key, i), None)
                         for i, key in enumerate(keys))
        results: List[Optional[Tuple[Hashable, Any]]] = [None] * len(keys)
        for r in replies:
            _, opid, res = r.payload
            results[opid] = res
        return results


class _RangeScanOp(_RangePartOp):
    def __init__(self, rp: RangePartitionedSkipList,
                 ops: Sequence[Tuple[Hashable, Hashable]]) -> None:
        super().__init__(rp, ops, "batch_range")

    def route(self, machine, plan):
        rp, ops = self.rp, self.batch
        fn_range = f"{rp.name}:range"

        def messages():
            for i, (l, r) in enumerate(ops):
                lo, hi = rp.route(l), rp.route(r)
                for mid in range(lo, hi + 1):
                    yield (mid, fn_range, (l, r, i), None)

        replies = yield messages()
        parts: Dict[int, List[Tuple[int, List]]] = {}
        for rep in replies:
            _, opid, mid, vals = rep.payload
            parts.setdefault(opid, []).append((mid, vals))
        out: List[List[Tuple[Hashable, Any]]] = []
        for i in range(len(ops)):
            chunks = sorted(parts.get(i, []))
            merged: List[Tuple[Hashable, Any]] = []
            for _, vals in chunks:
                merged.extend(vals)
            machine.cpu.charge(len(merged) + 1,
                               max(1.0, math.log2(len(merged) + 2)))
            out.append(merged)
        return out
