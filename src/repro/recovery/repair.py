"""In-place repair of a wiped module's share of a structure.

The alternative to full rebuild-on-standby
(:class:`repro.recovery.manager.RecoveryManager`): when one module lost
its DRAM (``PIMMachine.wipe_module``) but the rest of the machine is
healthy, re-replicate only that module's share in place.

For the skip list (paper §3.1 placement) a module owns three things:

1. its replica of the upper part (levels >= ``h_low``, incl. the
   sentinel tower) plus its ``next_leaf`` slot on every upper leaf,
2. the lower-part nodes hashed to it -- in particular the leaves, whose
   *values* are the only data that cannot be recomputed from surviving
   replicas and must come from a checkpoint,
3. its private search state: local leaf list links, cuckoo hash table.

:func:`reattach_module` rebuilds all three.  Topology is recovered from
the surviving replicated upper part and the other modules' lower nodes
(every lost node is reachable from a healthy neighbor); values come from
the caller's checkpoint mapping.  Work and words are charged on the
repaired module; like ``bulk_build``, the re-replication stream itself
arrives over the out-of-band bulk channel and bills no network rounds.

:func:`reattach_lsm_module` composes the skip-list repair of the LSM's
delta with a re-store of the run blocks the module owned, validated
against the checkpoint generation (a compaction after the checkpoint
moves blocks; repair then refuses and the caller falls back to a full
rebuild).
"""

from __future__ import annotations

from typing import Any, Hashable, Mapping, Optional

from repro.core.hash_table import CuckooHashTable
from repro.core.node import NODE_WORDS, Node
from repro.core.structure import ModuleLocal, SkipListStructure
from repro.recovery.checkpoint import Checkpoint
from repro.structures.lsm import PIMLSMStore

__all__ = ["RepairError", "reattach_lsm_module", "reattach_module"]


class RepairError(RuntimeError):
    """In-place repair cannot reconstruct the module's share."""


def reattach_module(struct: SkipListStructure, mid: int,
                    values: Mapping[Hashable, Any]) -> int:
    """Rebuild module ``mid``'s share of ``struct`` after a wipe.

    ``values`` maps key -> value for (at least) the leaves module
    ``mid`` owns; raises :class:`RepairError` when a leaf's value is
    missing (the caller then either rebuilds from an older full
    checkpoint or degrades).  Returns the number of leaves reattached.
    Post-condition: ``struct.check_integrity()`` passes.
    """
    machine = struct.machine
    module = machine.modules[mid]
    if struct.name in module.state:
        raise RepairError(
            f"module {mid} still holds state for {struct.name!r}; "
            "reattach_module expects a wiped module")

    # Leaves the module owns, in key order, and the values they lost.
    chain = [leaf for leaf in struct.iter_level(0) if leaf.owner == mid]
    missing = [leaf.key for leaf in chain if leaf.key not in values]
    if missing:
        raise RepairError(
            f"checkpoint misses {len(missing)} value(s) for module {mid} "
            f"(first: {missing[0]!r})")

    # 1. Fresh private state (same rng salt as construction keeps the
    #    cuckoo draw stream deterministic across repairs).
    ml = ModuleLocal(table=CuckooHashTable(
        rng=machine.spawn_rng(0x7AB1E0 + mid), charge=module.charge))
    module.state[struct.name] = ml

    # 2. Re-replicate the upper part: sentinel tower share, then one
    #    share of every upper node, one work unit per copied node.
    module.alloc_words(len(struct.sentinels) * NODE_WORDS + 1)
    module.charge(len(struct.sentinels))
    for lvl in range(struct.h_low, struct.top_level + 1):
        for node in struct.iter_level(lvl):
            struct.account_upper_alloc_on(mid, node)
            module.charge(1)

    # 3. Re-materialize the lower-part nodes hashed to this module.
    #    Topology comes from surviving neighbors; leaf values from the
    #    checkpoint.
    for lvl in range(min(struct.h_low, struct.top_level + 1)):
        for node in struct.iter_level(lvl):
            if node.owner != mid:
                continue
            struct.account_lower_alloc(node)
            module.charge(1)
            if lvl == 0:
                node.value = values[node.key]
                struct.storage.set_value(node, node.value)

    # 4. Local leaf list + hash table, in key order.
    prev: Optional[Node] = None
    for leaf in chain:
        leaf.local_left = prev
        leaf.local_right = None
        if prev is not None:
            prev.local_right = leaf
        prev = leaf
        ml.table.insert(leaf.key, leaf)
        module.charge(1)
    ml.first_leaf = chain[0] if chain else None
    ml.last_leaf = chain[-1] if chain else None
    ml.leaf_count = len(chain)

    # 5. next-leaf pointers: the same descending two-pointer sweep as
    #    bulk_build, restricted to this module's slot.
    upper_leaves = ([struct.upper_leaf_sentinel]
                    + list(struct.iter_level(struct.h_low)))
    j = len(chain) - 1
    for u in reversed(upper_leaves):
        while j >= 0 and chain[j].key >= u.key:
            j -= 1
        u.next_leaf[mid] = chain[j + 1] if j + 1 < len(chain) else None
        module.charge(1)

    # Routable again.  Repair runs out-of-round, so on a machine hosting
    # several structures the caller reattaches each before any round
    # executes -- marking here is safe and covers the common case.
    machine.mark_repaired(mid)
    return len(chain)


def reattach_lsm_module(lsm: PIMLSMStore, mid: int, chk: Checkpoint) -> int:
    """Rebuild module ``mid``'s share of ``lsm`` after a wipe.

    Requires an LSM checkpoint taken at the store's *current*
    generation (no compaction in between -- block placement must not
    have moved); otherwise raises :class:`RepairError` and the caller
    falls back to a full rebuild.  Returns the number of run blocks
    re-stored.
    """
    if chk.kind != "lsm":
        raise RepairError(f"not an LSM checkpoint: {chk.kind!r}")
    if chk.payload["generation"] != lsm.generation:
        raise RepairError(
            f"stale checkpoint: generation {chk.payload['generation']} != "
            f"current {lsm.generation} (compaction moved the blocks)")
    module = lsm.machine.modules[mid]
    if lsm.name in module.state:
        raise RepairError(
            f"module {mid} still holds state for {lsm.name!r}; "
            "reattach_lsm_module expects a wiped module")

    # Delta skip list share first (values incl. tombstones come from
    # the checkpoint's delta snapshot).
    reattach_module(lsm.delta.struct, mid, dict(chk.payload["delta"]))

    # Re-store the run blocks this module owns, from the checkpoint.
    blocks = module.state.setdefault(lsm.name, {})
    restored = 0
    for bid, owner in enumerate(lsm.block_owner):
        if owner != mid:
            continue
        block = [tuple(entry) for entry in chk.payload["blocks"][bid]]
        blocks[bid] = block
        module.alloc_words(2 * len(block))
        module.charge(len(block) + 1)
        restored += 1
    lsm.machine.mark_repaired(mid)
    return restored
