"""Checkpoint/replay recovery driver for batched structures.

:class:`RecoveryManager` wraps one structure on one (possibly
fault-injected) machine and makes its batch stream survive module
crashes:

- it takes a logical checkpoint at start and after every
  ``checkpoint_every`` successful *mutating* batches,
- it logs every successful mutating batch since the last checkpoint,
- when a batch dies with :class:`~repro.sim.errors.ModuleCrashed` or
  :class:`~repro.sim.errors.DeliveryTimeout`, it rebuilds the structure
  on a *clean* standby machine (the ``rebuild`` factory), restores the
  checkpoint, replays the log, retries the failed batch there, and
  continues on the new machine.

The failed batch may have partially executed on the faulty machine
(some modules applied their slice before the crash surfaced); retrying
it against checkpoint + log is still exactly-once *semantically*
because the restored state contains no effect of the failed batch --
the faulty machine is abandoned wholesale, never read again.

Read-only batches get one cheaper escape hatch first: a
:class:`~repro.sim.errors.DeliveryTimeout` on a non-mutating batch may
be retried **in place** (``read_retry_attempts``) with backoff charged
as idle rounds, because reads leave no partial state behind.  Mutating
batches never retry in place -- a timed-out mutation may have spliced
half its pointers, and only wholesale abandonment is safe.

With ``allow_restore=False`` (or after ``max_recoveries`` failovers)
the manager degrades instead: the structure is quiesced and every
subsequent batch returns a typed :class:`DegradedResult` rather than a
possibly-wrong answer.

The serving layer (:mod:`repro.serve`) drives its circuit breaker and
health state machine off the ``on_failure`` / ``on_recovery`` /
``on_degrade`` hooks; the manager itself stays policy-free.

With a :class:`~repro.recovery.durable.store.DurableStore` attached
(``durable=``), the checkpoint + log additionally survive *host*
crashes: every successful mutating batch is appended to the on-disk
WAL **before** ``run`` returns (so an acked write is a durable write,
RPO = 0), the durable snapshot rotates in lockstep with the in-memory
checkpoint, and constructing a manager over a state dir with prior
state restores it -- checkpoint + WAL replay -- onto a fresh
``rebuild()`` structure instead of using the one passed in.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Any, Callable, List, Optional, Sequence, Tuple

from repro.recovery.checkpoint import (
    Checkpoint,
    CheckpointUnavailable,
    checkpoint_structure,
    restore_structure,
)
from repro.recovery.durable.store import DurableStore
from repro.sim.errors import DeliveryTimeout, ModuleCrashed

__all__ = ["DegradedReason", "DegradedResult", "MUTATING_OPS",
           "RecoveryEvent", "RecoveryManager"]

#: ``apply_batch`` ops that change structure state (and so must be
#: logged for replay).  Reads are never logged.
MUTATING_OPS = frozenset({"upsert", "delete"})


class DegradedReason(Enum):
    """Machine-readable reason a :class:`DegradedResult` was returned.

    - ``QUIESCED`` -- the manager already degraded earlier; every
      subsequent batch is refused without touching hardware.
    - ``RESTORE_DISABLED`` -- a batch failed and the manager was
      constructed with ``allow_restore=False``.
    - ``RECOVERY_EXHAUSTED`` -- a batch failed after ``max_recoveries``
      failovers had already been spent.
    - ``STALE_READ`` -- the serving layer answered a read from the last
      checkpoint while its circuit breaker holds the backend open
      (:mod:`repro.serve.policy`); the payload rides in ``value``.
    """

    QUIESCED = "quiesced"
    RESTORE_DISABLED = "restore_disabled"
    RECOVERY_EXHAUSTED = "recovery_exhausted"
    STALE_READ = "stale_read"


@dataclass(frozen=True)
class DegradedResult:
    """Typed refusal: a degraded answer, never a wrong one.

    This class is the *single* authoritative definition of degraded
    behaviour (DESIGN.md §12 and the serving layer reference it):

    - ``bool(DegradedResult(...))`` is **always False** -- code that
      truth-tests a batch result treats degradation as "no answer",
      even when ``value`` carries a best-effort stale payload.
    - ``op`` is the refused batch op (``get`` / ``upsert`` / ...).
    - ``reason`` is a machine-readable :class:`DegradedReason` member;
      dispatch on it, never on the human-readable ``cause``.
    - ``cause`` is free-text context (the original exception, etc.).
    - ``value`` is ``None`` except for ``STALE_READ``, where it holds
      the checkpoint-derived read results (stale by construction; the
      caller opted into them by reading while degraded).

    Returned (never raised) so a degraded batch stream stays a stream
    of values -- the contract is "a correct answer or a typed refusal,
    never a wrong answer".
    """

    op: str
    reason: DegradedReason
    cause: str = ""
    value: Any = None

    def __bool__(self) -> bool:
        return False


@dataclass(frozen=True)
class RecoveryEvent:
    """One failover: what failed, and what the rebuild replayed."""

    op: str
    cause: str
    checkpoint_items: int
    replayed_batches: int


def _default_backoff(attempt: int) -> int:
    """Capped exponential in-place retry backoff (idle rounds)."""
    return min(1 << (attempt - 1), 8)


def _wal_payload(payload: Sequence) -> list:
    """Batch payload -> JSON-safe WAL form (pair tuples become lists)."""
    return [list(p) if isinstance(p, tuple) else p for p in payload]


def _replay_payload(op: str, payload: list) -> list:
    """WAL form -> batch payload (upsert pairs back to tuples)."""
    if op == "upsert":
        return [tuple(p) if isinstance(p, list) else p for p in payload]
    return list(payload)


class RecoveryManager:
    """Run batches with crash recovery (see module docstring).

    ``rebuild`` is a zero-argument factory returning a fresh, *empty*
    structure on a clean machine (no fault plan) -- the standby
    hardware.  The structure must implement ``apply_batch(op, payload)``
    (both :class:`~repro.core.skiplist.PIMSkipList` and
    :class:`~repro.structures.lsm.PIMLSMStore` do).

    ``read_retry_attempts`` allows that many in-place retries of a
    *read* batch on :class:`~repro.sim.errors.DeliveryTimeout` before a
    failover is spent; ``retry_backoff`` maps the attempt number (1-based)
    to idle rounds charged on the structure's machine between attempts
    (default: capped exponential; the serving layer passes a jittered
    curve).  The ``on_failure(op, exc)``, ``on_recovery(event)`` and
    ``on_degrade(result)`` hooks observe the failure stream without
    being able to alter it.
    """

    def __init__(self, structure: Any, rebuild: Callable[[], Any], *,
                 checkpoint_every: int = 4, allow_restore: bool = True,
                 max_recoveries: int = 4,
                 read_retry_attempts: int = 0,
                 retry_backoff: Optional[Callable[[int], int]] = None,
                 on_failure: Optional[Callable[[str, Exception], None]] = None,
                 on_recovery: Optional[Callable[["RecoveryEvent"], None]] = None,
                 on_degrade: Optional[Callable[[DegradedResult], None]] = None,
                 durable: Optional[DurableStore] = None,
                 ) -> None:
        if checkpoint_every < 1:
            raise ValueError("checkpoint_every must be >= 1")
        if read_retry_attempts < 0:
            raise ValueError("read_retry_attempts must be >= 0")
        self.structure = structure
        self.rebuild = rebuild
        self.checkpoint_every = checkpoint_every
        self.allow_restore = allow_restore
        self.max_recoveries = max_recoveries
        self.read_retry_attempts = read_retry_attempts
        self.retry_backoff = retry_backoff or _default_backoff
        self.on_failure = on_failure
        self.on_recovery = on_recovery
        self.on_degrade = on_degrade
        self.degraded = False
        self.degraded_reason = ""
        self.events: List[RecoveryEvent] = []
        self.read_retries = 0  # in-place read retries actually spent
        self._log: List[Tuple[str, list]] = []
        self._mutations = 0
        self.durable = durable
        self.checkpoint: Checkpoint
        if durable is not None and not durable.report.created:
            # Reopened state dir: disk is the source of truth.  The
            # passed-in structure is discarded; state comes back as
            # snapshot restore + WAL replay onto clean hardware.
            standby = rebuild()
            assert durable.report.checkpoint is not None
            restore_structure(durable.report.checkpoint, standby)
            for record in durable.report.records:
                standby.apply_batch(record.op, _replay_payload(record.op,
                                                              record.payload))
            self.structure = standby
            self.checkpoint = durable.report.checkpoint
            self._log = [(r.op, _replay_payload(r.op, r.payload))
                         for r in durable.report.records]
            self._mutations = len(self._log)
            return
        self.checkpoint = checkpoint_structure(structure)
        if durable is not None:
            durable.bootstrap(self.checkpoint)

    @property
    def restored_from_disk(self) -> bool:
        """True when this manager's state came from a reopened state
        dir rather than the structure passed to the constructor."""
        return self.durable is not None and not self.durable.report.created

    # -- introspection ---------------------------------------------------

    @property
    def healthy(self) -> bool:
        """True while batches run on live (original or standby) hardware."""
        return not self.degraded

    @property
    def recoveries(self) -> int:
        """Failovers performed so far."""
        return len(self.events)

    @property
    def log_size(self) -> int:
        """Mutating batches logged since the last checkpoint."""
        return len(self._log)

    # -- batch driver ----------------------------------------------------

    def run(self, op: str, payload: Sequence) -> Any:
        """Apply one batch; recover or degrade on module failure."""
        if self.degraded:
            return DegradedResult(op, DegradedReason.QUIESCED,
                                  self.degraded_reason)
        attempt = 0
        while True:
            try:
                result = self.structure.apply_batch(op, list(payload))
            except (ModuleCrashed, DeliveryTimeout) as exc:
                if self.on_failure is not None:
                    self.on_failure(op, exc)
                if (op not in MUTATING_OPS
                        and isinstance(exc, DeliveryTimeout)
                        and attempt < self.read_retry_attempts):
                    # A timed-out read left no partial state; a cheap
                    # in-place retry may beat a full failover when the
                    # fault was transient (message loss, a straggler).
                    attempt += 1
                    self.read_retries += 1
                    self._idle(self.retry_backoff(attempt))
                    continue
                return self._recover(op, payload, exc)
            self._note_success(op, payload)
            return result

    # -- internals -------------------------------------------------------

    def _idle(self, rounds: int) -> None:
        machine = getattr(self.structure, "machine", None)
        if machine is not None and rounds > 0:
            machine.idle_rounds(rounds)

    def _note_success(self, op: str, payload: Sequence) -> None:
        if op not in MUTATING_OPS:
            return
        self._log.append((op, list(payload)))
        self._mutations += 1
        if self.durable is not None:
            # Durable-before-ack: run() only returns (and the serving
            # layer only acks) after this record survives a crash.
            self.durable.append(op, _wal_payload(payload))
        if self._mutations >= self.checkpoint_every:
            try:
                self.checkpoint = checkpoint_structure(self.structure)
            except CheckpointUnavailable:
                # A wiped module holds part of the structure and no
                # traffic has tripped failover yet.  The previous
                # checkpoint + the (still-growing) log remain a correct
                # recovery recipe; capture retries after the next
                # mutation.
                return
            self._log.clear()
            self._mutations = 0
            if self.durable is not None:
                self.durable.snapshot(self.checkpoint)

    def _recover(self, op: str, payload: Sequence, exc: Exception) -> Any:
        cause = f"{type(exc).__name__}: {exc}"
        if not self.allow_restore:
            return self._degrade(op, DegradedReason.RESTORE_DISABLED, cause)
        if self.recoveries >= self.max_recoveries:
            return self._degrade(op, DegradedReason.RECOVERY_EXHAUSTED,
                                 cause)

        standby = self.rebuild()
        restore_structure(self.checkpoint, standby)
        for logged_op, logged_payload in self._log:
            standby.apply_batch(logged_op, list(logged_payload))
        event = RecoveryEvent(
            op=op, cause=cause,
            checkpoint_items=self.checkpoint.item_count(),
            replayed_batches=len(self._log))
        self.events.append(event)
        self.structure = standby
        if self.on_recovery is not None:
            self.on_recovery(event)
        # Retry the failed batch on the standby.  A clean machine cannot
        # crash, but the factory may hand back faulty hardware; recurse
        # so a second failure consumes another recovery (or degrades).
        try:
            result = standby.apply_batch(op, list(payload))
        except (ModuleCrashed, DeliveryTimeout) as retry_exc:
            if self.on_failure is not None:
                self.on_failure(op, retry_exc)
            return self._recover(op, payload, retry_exc)
        self._note_success(op, payload)
        return result

    def _degrade(self, op: str, reason: DegradedReason,
                 cause: str) -> DegradedResult:
        self.degraded = True
        self.degraded_reason = cause
        result = DegradedResult(op, reason, cause)
        if self.on_degrade is not None:
            self.on_degrade(result)
        return result
