"""Checkpoint/replay recovery driver for batched structures.

:class:`RecoveryManager` wraps one structure on one (possibly
fault-injected) machine and makes its batch stream survive module
crashes:

- it takes a logical checkpoint at start and after every
  ``checkpoint_every`` successful *mutating* batches,
- it logs every successful mutating batch since the last checkpoint,
- when a batch dies with :class:`~repro.sim.errors.ModuleCrashed` or
  :class:`~repro.sim.errors.DeliveryTimeout`, it rebuilds the structure
  on a *clean* standby machine (the ``rebuild`` factory), restores the
  checkpoint, replays the log, retries the failed batch there, and
  continues on the new machine.

The failed batch may have partially executed on the faulty machine
(some modules applied their slice before the crash surfaced); retrying
it against checkpoint + log is still exactly-once *semantically*
because the restored state contains no effect of the failed batch --
the faulty machine is abandoned wholesale, never read again.

With ``allow_restore=False`` (or after ``max_recoveries`` failovers)
the manager degrades instead: the structure is quiesced and every
subsequent batch returns a typed :class:`DegradedResult` rather than a
possibly-wrong answer.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, List, Sequence, Tuple

from repro.recovery.checkpoint import (
    Checkpoint,
    checkpoint_structure,
    restore_structure,
)
from repro.sim.errors import DeliveryTimeout, ModuleCrashed

__all__ = ["DegradedResult", "MUTATING_OPS", "RecoveryEvent", "RecoveryManager"]

#: ``apply_batch`` ops that change structure state (and so must be
#: logged for replay).  Reads are never logged.
MUTATING_OPS = frozenset({"upsert", "delete"})


@dataclass(frozen=True)
class DegradedResult:
    """Typed refusal: the structure is quiesced and cannot answer.

    Returned (never raised) for every batch once recovery is exhausted
    or disabled -- the contract is "a correct answer or a typed
    refusal, never a wrong answer".
    """

    op: str
    reason: str
    cause: str = ""

    def __bool__(self) -> bool:
        return False


@dataclass(frozen=True)
class RecoveryEvent:
    """One failover: what failed, and what the rebuild replayed."""

    op: str
    cause: str
    checkpoint_items: int
    replayed_batches: int


class RecoveryManager:
    """Run batches with crash recovery (see module docstring).

    ``rebuild`` is a zero-argument factory returning a fresh, *empty*
    structure on a clean machine (no fault plan) -- the standby
    hardware.  The structure must implement ``apply_batch(op, payload)``
    (both :class:`~repro.core.skiplist.PIMSkipList` and
    :class:`~repro.structures.lsm.PIMLSMStore` do).
    """

    def __init__(self, structure: Any, rebuild: Callable[[], Any], *,
                 checkpoint_every: int = 4, allow_restore: bool = True,
                 max_recoveries: int = 4) -> None:
        if checkpoint_every < 1:
            raise ValueError("checkpoint_every must be >= 1")
        self.structure = structure
        self.rebuild = rebuild
        self.checkpoint_every = checkpoint_every
        self.allow_restore = allow_restore
        self.max_recoveries = max_recoveries
        self.degraded = False
        self.degraded_reason = ""
        self.events: List[RecoveryEvent] = []
        self._log: List[Tuple[str, list]] = []
        self._mutations = 0
        self.checkpoint: Checkpoint = checkpoint_structure(structure)

    # -- introspection ---------------------------------------------------

    @property
    def healthy(self) -> bool:
        """True while batches run on live (original or standby) hardware."""
        return not self.degraded

    @property
    def recoveries(self) -> int:
        """Failovers performed so far."""
        return len(self.events)

    # -- batch driver ----------------------------------------------------

    def run(self, op: str, payload: Sequence) -> Any:
        """Apply one batch; recover or degrade on module failure."""
        if self.degraded:
            return DegradedResult(op, "structure quiesced",
                                  self.degraded_reason)
        try:
            result = self.structure.apply_batch(op, list(payload))
        except (ModuleCrashed, DeliveryTimeout) as exc:
            return self._recover(op, payload, exc)
        self._note_success(op, payload)
        return result

    # -- internals -------------------------------------------------------

    def _note_success(self, op: str, payload: Sequence) -> None:
        if op not in MUTATING_OPS:
            return
        self._log.append((op, list(payload)))
        self._mutations += 1
        if self._mutations >= self.checkpoint_every:
            self.checkpoint = checkpoint_structure(self.structure)
            self._log.clear()
            self._mutations = 0

    def _recover(self, op: str, payload: Sequence, exc: Exception) -> Any:
        cause = f"{type(exc).__name__}: {exc}"
        if not self.allow_restore:
            return self._degrade(op, "restore disabled", cause)
        if self.recoveries >= self.max_recoveries:
            return self._degrade(op, "recovery budget exhausted", cause)

        standby = self.rebuild()
        restore_structure(self.checkpoint, standby)
        for logged_op, logged_payload in self._log:
            standby.apply_batch(logged_op, list(logged_payload))
        self.events.append(RecoveryEvent(
            op=op, cause=cause,
            checkpoint_items=self.checkpoint.item_count(),
            replayed_batches=len(self._log)))
        self.structure = standby
        # Retry the failed batch on the standby.  A clean machine cannot
        # crash, but the factory may hand back faulty hardware; recurse
        # so a second failure consumes another recovery (or degrades).
        try:
            result = standby.apply_batch(op, list(payload))
        except (ModuleCrashed, DeliveryTimeout) as retry_exc:
            return self._recover(op, payload, retry_exc)
        self._note_success(op, payload)
        return result

    def _degrade(self, op: str, reason: str, cause: str) -> DegradedResult:
        self.degraded = True
        self.degraded_reason = cause
        return DegradedResult(op, reason, cause)
