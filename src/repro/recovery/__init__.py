"""Checkpoint/restore and crash recovery for PIM structures.

Three layers, composable:

- :mod:`repro.recovery.checkpoint` -- logical snapshots of the four
  batched structures (skip list, LSM store, FIFO queue, priority
  queue) and charged restore into a fresh structure.
- :mod:`repro.recovery.repair` -- in-place re-replication of one wiped
  module's share (skip list and LSM) from surviving replicas plus a
  checkpoint, ending with the structure's own integrity check green.
- :mod:`repro.recovery.manager` -- the failover driver: periodic
  checkpoints + a mutating-batch log; on :class:`~repro.sim.errors.ModuleCrashed`
  or :class:`~repro.sim.errors.DeliveryTimeout` it rebuilds on standby
  hardware, replays, and retries -- or returns a typed
  :class:`~repro.recovery.manager.DegradedResult` when recovery is
  disabled or exhausted.  Never a wrong answer.
- :mod:`repro.recovery.durable` -- the host-crash half: an on-disk WAL
  plus atomic snapshots under one state dir, so the manager's
  checkpoint + log survive process death and restarts replay to
  exactly the acked prefix (RPO = 0).
"""

from repro.recovery.checkpoint import (
    Checkpoint,
    checkpoint_structure,
    merged_lsm_items,
    restore_structure,
)
from repro.recovery.durable import (
    DurabilityError,
    DurabilityPolicy,
    DurableStore,
    WalCorruption,
)
from repro.recovery.manager import (
    MUTATING_OPS,
    DegradedReason,
    DegradedResult,
    RecoveryEvent,
    RecoveryManager,
)
from repro.recovery.repair import (
    RepairError,
    reattach_lsm_module,
    reattach_module,
)

__all__ = [
    "Checkpoint",
    "DegradedReason",
    "DegradedResult",
    "DurabilityError",
    "DurabilityPolicy",
    "DurableStore",
    "WalCorruption",
    "MUTATING_OPS",
    "RecoveryEvent",
    "RecoveryManager",
    "RepairError",
    "checkpoint_structure",
    "merged_lsm_items",
    "reattach_lsm_module",
    "reattach_module",
    "restore_structure",
]
