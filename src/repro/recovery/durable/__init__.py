"""Durable crash-consistent persistence for the recovery layer.

The in-memory :class:`~repro.recovery.manager.RecoveryManager` survives
*module* crashes; this package makes its checkpoint + log survive
*host* crashes too: an on-disk WAL (:mod:`.wal`), atomic snapshot
files (:mod:`.snapshot`), the :class:`~repro.recovery.durable.store.DurableStore`
that composes them under one state dir (:mod:`.store`), and the
offline checker/repairer behind ``repro fsck`` (:mod:`.fsck`).
"""

from repro.recovery.durable.fsck import FsckFinding, FsckReport, fsck
from repro.recovery.durable.snapshot import (
    list_snapshots,
    load_snapshot,
    read_snapshot,
    write_snapshot,
)
from repro.recovery.durable.store import (
    DurabilityError,
    DurabilityPolicy,
    DurableStore,
    OpenReport,
    WalCorruption,
)
from repro.recovery.durable.wal import (
    ScanIssue,
    SegmentScan,
    WalRecord,
    WalWriter,
    list_segments,
    scan_segment,
)

__all__ = [
    "DurabilityError",
    "DurabilityPolicy",
    "DurableStore",
    "FsckFinding",
    "FsckReport",
    "OpenReport",
    "ScanIssue",
    "SegmentScan",
    "WalCorruption",
    "WalRecord",
    "WalWriter",
    "fsck",
    "list_segments",
    "list_snapshots",
    "load_snapshot",
    "read_snapshot",
    "scan_segment",
    "write_snapshot",
]
