"""Atomic on-disk snapshots of logical checkpoints.

A snapshot is one :class:`~repro.recovery.checkpoint.Checkpoint`
serialised to ``snap-<lsn>.snap``, where ``lsn`` is the last WAL
record already folded into it (0 for the bootstrap snapshot of the
initial load).  Replay after restore therefore starts at ``lsn + 1``.

Publication is the classic atomic-rename discipline: write the full
checksummed image to ``<name>.tmp``, fsync the file, ``os.replace``
onto the final name, fsync the directory.  A crash at *any* point
leaves either the old snapshot set or the new one -- never a
half-written file under a valid name.  The ``crash_before_rename``
disk fault simulates dying between the tmp write and the rename;
reopen must ignore (and fsck must sweep) orphaned ``.tmp`` files.

The body reuses the WAL's header framing (length + crc32), so a
truncated or bit-flipped snapshot fails its checksum and is skipped in
favour of an older one.  JSON round-trip notes: pair tuples come back
as lists (re-tupled on decode) and the LSM block dict's int keys come
back as strings (re-int'ed on decode).
"""

from __future__ import annotations

import json
import os
import zlib
from typing import Any, Dict, List, Optional, Tuple

from repro.recovery.checkpoint import Checkpoint
from repro.recovery.durable.wal import HEADER

__all__ = [
    "SnapshotInfo",
    "decode_checkpoint",
    "encode_checkpoint",
    "list_orphan_tmps",
    "list_snapshots",
    "load_snapshot",
    "read_snapshot",
    "snapshot_name",
    "write_snapshot",
]

_SNAP_PREFIX = "snap-"
_SNAP_SUFFIX = ".snap"
_TMP_SUFFIX = ".tmp"


def snapshot_name(lsn: int) -> str:
    """Snapshot filename covering the log up to and including ``lsn``."""
    return f"{_SNAP_PREFIX}{lsn:012d}{_SNAP_SUFFIX}"


def encode_checkpoint(chk: Checkpoint) -> Dict[str, Any]:
    """Checkpoint -> JSON-safe dict (see module docstring for caveats)."""
    payload: Any = chk.payload
    if chk.kind in ("skiplist", "pimtree", "pq"):
        payload = [list(p) for p in payload]
    elif chk.kind == "lsm":
        payload = {
            "delta": [list(p) for p in payload["delta"]],
            "blocks": {str(bid): [list(e) for e in block]
                       for bid, block in payload["blocks"].items()},
            "fences": list(payload["fences"]),
            "block_owner": list(payload["block_owner"]),
            "generation": payload["generation"],
            "run_size": payload["run_size"],
        }
    return {"kind": chk.kind, "name": chk.name, "payload": payload,
            "batches": chk.batches}


def decode_checkpoint(doc: Dict[str, Any]) -> Checkpoint:
    """Inverse of :func:`encode_checkpoint` (re-tuples pairs, re-ints
    LSM block ids)."""
    kind = doc["kind"]
    payload: Any = doc["payload"]
    if kind in ("skiplist", "pimtree", "pq"):
        payload = [tuple(p) for p in payload]
    elif kind == "lsm":
        payload = {
            "delta": [tuple(p) for p in payload["delta"]],
            "blocks": {int(bid): [tuple(e) for e in block]
                       for bid, block in payload["blocks"].items()},
            "fences": list(payload["fences"]),
            "block_owner": list(payload["block_owner"]),
            "generation": payload["generation"],
            "run_size": payload["run_size"],
        }
    return Checkpoint(kind=kind, name=doc["name"], payload=payload,
                      batches=int(doc.get("batches", 0)))


class SnapshotInfo:
    """One snapshot file on disk: covered LSN + path."""

    __slots__ = ("lsn", "path")

    def __init__(self, lsn: int, path: str) -> None:
        self.lsn = lsn
        self.path = path


def list_snapshots(root: str) -> List[SnapshotInfo]:
    """Published snapshots under ``root``, oldest first (``.tmp``
    orphans excluded -- they never finished their rename)."""
    out = []
    for name in os.listdir(root):
        if name.startswith(_SNAP_PREFIX) and name.endswith(_SNAP_SUFFIX):
            digits = name[len(_SNAP_PREFIX):-len(_SNAP_SUFFIX)]
            if digits.isdigit():
                out.append(SnapshotInfo(int(digits), os.path.join(root, name)))
    return sorted(out, key=lambda s: s.lsn)


def list_orphan_tmps(root: str) -> List[str]:
    """Leftover ``.snap.tmp`` files (crash-before-rename artifacts)."""
    return sorted(
        os.path.join(root, name) for name in os.listdir(root)
        if name.startswith(_SNAP_PREFIX)
        and name.endswith(_SNAP_SUFFIX + _TMP_SUFFIX))


def write_snapshot(root: str, lsn: int, chk: Checkpoint, *,
                   os_fsync: bool = True,
                   crash_before_rename: bool = False) -> str:
    """Atomically publish ``chk`` as ``snap-<lsn>.snap``; returns the
    final path.  ``crash_before_rename=True`` stops after the tmp
    write (fault-injection hook): the orphan ``.tmp`` stays, the final
    name never appears."""
    final = os.path.join(root, snapshot_name(lsn))
    tmp = final + _TMP_SUFFIX
    body = json.dumps({"lsn": lsn, "checkpoint": encode_checkpoint(chk)},
                      sort_keys=True, separators=(",", ":")).encode("utf-8")
    with open(tmp, "wb") as f:
        f.write(HEADER.pack(len(body), zlib.crc32(body)))
        f.write(body)
        f.flush()
        if os_fsync:
            os.fsync(f.fileno())
    if crash_before_rename:
        return tmp
    os.replace(tmp, final)
    if os_fsync:
        dir_fd = os.open(root, os.O_RDONLY)
        try:
            os.fsync(dir_fd)
        finally:
            os.close(dir_fd)
    return final


def read_snapshot(path: str) -> Optional[Tuple[int, Checkpoint]]:
    """Read and verify one snapshot file.

    Returns ``(lsn, checkpoint)`` or ``None`` when the file is
    truncated, checksum-failing or structurally invalid -- the caller
    falls back to an older snapshot.
    """
    try:
        with open(path, "rb") as f:
            data = f.read()
    except OSError:
        return None
    if len(data) < HEADER.size:
        return None
    length, crc = HEADER.unpack_from(data, 0)
    body = data[HEADER.size:]
    if len(body) != length or zlib.crc32(body) != crc:
        return None
    try:
        doc = json.loads(body.decode("utf-8"))
        return int(doc["lsn"]), decode_checkpoint(doc["checkpoint"])
    except (ValueError, KeyError, TypeError, UnicodeDecodeError):
        return None


def load_snapshot(root: str) -> Optional[Tuple[int, Checkpoint, List[str]]]:
    """Newest *valid* snapshot under ``root``.

    Returns ``(lsn, checkpoint, corrupt_paths)`` -- ``corrupt_paths``
    lists newer snapshots that failed verification and were skipped
    (fsck reports them; recovery falls back past them).  ``None`` when
    no valid snapshot exists at all.
    """
    corrupt: List[str] = []
    for info in reversed(list_snapshots(root)):
        loaded = read_snapshot(info.path)
        if loaded is not None:
            lsn, chk = loaded
            return lsn, chk, corrupt
        corrupt.append(info.path)
    return None
