"""``repro fsck``: offline check / repair of a durable state dir.

Check mode walks the snapshot set and every WAL segment with the same
scanner the reopen path uses and reports everything it finds -- torn
tails, mid-log corruption, LSN gaps, duplicate records, corrupt
snapshots, orphaned ``.snap.tmp`` files -- without touching a byte.

Repair mode makes the directory openable again and is explicit about
the cost: torn tails are truncated (free -- a torn record was never
acked), orphan tmps and corrupt-but-redundant snapshots are deleted
(free -- retention keeps an older valid snapshot plus the segments to
replay past it), and mid-log corruption is handled snapshot-aware.
Damage in a sealed segment whose every record the newest valid
snapshot already covers costs nothing: that segment is redundant for
replay, so repair drops it (plus any older snapshot that needed it)
and keeps every later segment intact.  Damage in a segment replay
*does* need is truncated *at the damage* with every later record
counted as lost -- including whole later segments, which would
otherwise start after an LSN gap.  That lost count is acked data; fsck
reports it rather than hiding it, which is exactly why the reopen path
refuses to do this silently.

A directory whose every snapshot is corrupt is unrepairable (there is
no state to replay onto); fsck says so and leaves it alone -- even
under ``--repair`` the corrupt snapshot files stay on disk, as the
only remaining material for manual recovery.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import List

from repro.recovery.durable.snapshot import (
    list_orphan_tmps,
    list_snapshots,
    read_snapshot,
)
from repro.recovery.durable.wal import list_segments, scan_segment

__all__ = ["FsckFinding", "FsckReport", "fsck"]


@dataclass(frozen=True)
class FsckFinding:
    """One problem: ``kind`` matches the scanner's issue kinds plus
    ``corrupt_snapshot`` / ``orphan_tmp`` / ``no_valid_snapshot`` /
    ``segment_gap`` / ``stranded_snapshot``; ``action`` is what repair
    did (empty in check mode)."""

    kind: str
    path: str
    detail: str
    action: str = ""


@dataclass
class FsckReport:
    """Everything one fsck pass saw (and, under ``--repair``, did)."""

    root: str
    findings: List[FsckFinding] = field(default_factory=list)
    records_ok: int = 0
    snapshots_ok: int = 0
    #: Acked records destroyed by repairing mid-log corruption.
    lost_records: int = 0
    repaired: bool = False
    #: False only when every snapshot is corrupt: nothing to repair onto.
    repairable: bool = True

    @property
    def clean(self) -> bool:
        return not self.findings

    def lines(self) -> List[str]:
        """Human-readable report body, one finding per line."""
        out = [f"fsck {self.root}: {self.snapshots_ok} snapshot(s), "
               f"{self.records_ok} record(s) ok"]
        for f in self.findings:
            line = f"  {f.kind}: {os.path.basename(f.path)} -- {f.detail}"
            if f.action:
                line += f" [{f.action}]"
            out.append(line)
        if self.lost_records:
            out.append(f"  LOST {self.lost_records} acked record(s) "
                       f"repairing mid-log corruption")
        if not self.repairable:
            out.append("  UNREPAIRABLE: no valid snapshot to recover onto")
        if self.clean:
            out.append("  clean")
        return out


def fsck(root: str, repair: bool = False) -> FsckReport:
    """Check (and with ``repair=True`` fix) the state dir at ``root``."""
    report = FsckReport(root=root, repaired=repair)
    if not os.path.isdir(root):
        report.findings.append(FsckFinding(
            kind="missing_dir", path=root, detail="state dir does not exist"))
        return report

    # Snapshots, two passes: classify them all first, then act.  Repair
    # deletes a corrupt snapshot only while a valid one remains to fall
    # back to; when every snapshot is corrupt the directory is
    # unrepairable and the files stay put -- they are the only material
    # left for manual recovery.
    valid_snaps = []
    corrupt_snaps = []
    for info in list_snapshots(root):
        if read_snapshot(info.path) is None:
            corrupt_snaps.append(info)
        else:
            valid_snaps.append(info)
    report.snapshots_ok = len(valid_snaps)
    delete_corrupt = repair and bool(valid_snaps)
    for info in corrupt_snaps:
        report.findings.append(FsckFinding(
            kind="corrupt_snapshot", path=info.path,
            detail="truncated or checksum-failing snapshot",
            action="deleted" if delete_corrupt else ""))
        if delete_corrupt:
            os.remove(info.path)
    if not valid_snaps:
        report.findings.append(FsckFinding(
            kind="no_valid_snapshot", path=root,
            detail="every snapshot is corrupt or missing"))
        report.repairable = False

    for tmp in list_orphan_tmps(root):
        report.findings.append(FsckFinding(
            kind="orphan_tmp", path=tmp,
            detail="snapshot tmp never renamed (crash before publish)",
            action="deleted" if repair else ""))
        if repair:
            os.remove(tmp)

    # Segments, in LSN order.  Hard damage in a sealed segment whose
    # every record the newest valid snapshot already covers (its
    # successor starts at or below snap_lsn + 1, so replay from that
    # snapshot never reads it) loses nothing: repair drops the
    # redundant segment -- and any older snapshot that needed it --
    # keeping every later segment.  After hard damage in a segment
    # replay *does* need, every later record is unreachable (LSN gap),
    # so repair truncates at the damage and drops the later segments
    # wholesale, counting each destroyed record as lost.
    snap_lsn = valid_snaps[-1].lsn if valid_snaps else None
    segments = list_segments(root)
    poisoned = False
    for idx, (first_lsn, path) in enumerate(segments):
        last = idx == len(segments) - 1
        if poisoned:
            scan = scan_segment(path, expect_lsn=first_lsn)
            report.lost_records += len(scan.records)
            report.findings.append(FsckFinding(
                kind="segment_gap", path=path,
                detail=f"{len(scan.records)} record(s) stranded after "
                       f"mid-log damage in an earlier segment",
                action="deleted" if repair else ""))
            if repair:
                os.remove(path)
            continue
        scan = scan_segment(path, expect_lsn=first_lsn)
        hard = [i for i in scan.issues
                if i.kind != "duplicate_lsn"
                and not (i.kind == "torn_tail" and last)]
        if hard and not last and snap_lsn is not None \
                and segments[idx + 1][0] <= snap_lsn + 1:
            next_first = segments[idx + 1][0]
            report.findings.append(FsckFinding(
                kind=hard[0].kind, path=path,
                detail=f"{hard[0].detail}; segment is redundant "
                       f"(snapshot lsn {snap_lsn} covers it)",
                action="deleted" if repair else ""))
            if repair:
                os.remove(path)
            # Older snapshots whose replay runs through this segment
            # can no longer reach the newest state.
            for info in list(valid_snaps):
                if info.lsn < next_first - 1 and info.lsn != snap_lsn:
                    report.findings.append(FsckFinding(
                        kind="stranded_snapshot", path=info.path,
                        detail=f"snapshot lsn {info.lsn} cannot replay "
                               f"past the damaged segment "
                               f"{os.path.basename(path)}",
                        action="deleted" if repair else ""))
                    if repair:
                        os.remove(info.path)
                        valid_snaps.remove(info)
                        report.snapshots_ok -= 1
            continue
        report.records_ok += len(scan.records)
        for issue in scan.issues:
            if issue.kind == "duplicate_lsn":
                # Idempotently skipped by replay; nothing to fix.
                report.findings.append(FsckFinding(
                    kind=issue.kind, path=path, detail=issue.detail))
            elif issue.kind == "torn_tail" and last:
                report.findings.append(FsckFinding(
                    kind=issue.kind, path=path, detail=issue.detail,
                    action=(f"truncated to {scan.good_size} byte(s)"
                            if repair else "")))
                if repair:
                    _truncate(path, scan.good_size)
            else:
                # corrupt_record / lsn_gap / torn data in a sealed
                # segment: acked records after this point are lost if
                # we repair; count them honestly.
                report.findings.append(FsckFinding(
                    kind=issue.kind, path=path, detail=issue.detail,
                    action=(f"truncated to {scan.good_size} byte(s)"
                            if repair else "")))
                report.lost_records += _count_records_after(
                    path, scan.good_size)
                if repair:
                    _truncate(path, scan.good_size)
                poisoned = True
    return report


def _truncate(path: str, size: int) -> None:
    with open(path, "r+b") as f:
        f.truncate(size)


def _count_records_after(path: str, good_size: int) -> int:
    """Valid records recoverable in the damaged region (the honest
    lower bound on what a repair-truncate destroys)."""
    from repro.recovery.durable.wal import _try_decode_at, _valid_record_after
    with open(path, "rb") as f:
        data = f.read()
    count = 0
    off = good_size
    while off < len(data):
        start = _valid_record_after(data, off)
        if start is None:
            break
        decoded = _try_decode_at(data, start)
        assert decoded is not None
        count += 1
        off = decoded[1]
    return count
