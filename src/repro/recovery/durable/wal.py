"""The on-disk write-ahead log: record codec, segment scan, writer.

Every mutating batch becomes one **record**: an 8-byte little-endian
header (``payload length``, ``crc32 of the payload``) followed by a
canonical-JSON payload ``{"lsn": n, "op": ..., "payload": [...]}``.
Records live in **segment** files named ``wal-<first_lsn>.log``; a new
segment starts after every durable snapshot, so old segments can be
pruned once the snapshots they back up fall out of retention.

The scanner is the torn-write-tolerant half of the ARIES discipline
(PAPERS.md: Mohan et al.): a crash can leave at most one partial
record at the *tail* of the active segment, so a structurally broken
or checksum-failing record with **nothing valid after it** is a torn
tail -- expected, truncated, reported.  The same damage with a valid
record *after* it cannot be produced by a crash on an ordered log; it
is classified as mid-log corruption (a disk fault) and recovery
refuses to silently skip it -- ``repro fsck --repair`` is the explicit
path that truncates and reports what was lost.

LSNs must increase by exactly one across the whole log.  A record
whose LSN is not above its predecessor's is a **duplicate** (a crashed
retry of an already-durable append, or the ``wal_dup_record`` disk
fault) and is skipped idempotently; an LSN *gap* means records
vanished and is treated as corruption.
"""

from __future__ import annotations

import json
import os
import struct
import zlib
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

__all__ = [
    "HEADER",
    "MAX_RECORD_BYTES",
    "ScanIssue",
    "SegmentScan",
    "WalRecord",
    "WalWriter",
    "decode_record",
    "encode_record",
    "list_segments",
    "scan_segment",
    "segment_name",
]

#: Record header: payload byte length + CRC32 of the payload bytes.
HEADER = struct.Struct("<II")

#: Sanity bound used by the scanner to reject garbage length prefixes
#: quickly (a batch of a few thousand ops is ~100KB of JSON).
MAX_RECORD_BYTES = 64 * 1024 * 1024

_SEG_PREFIX = "wal-"
_SEG_SUFFIX = ".log"


@dataclass(frozen=True)
class WalRecord:
    """One durable mutating batch: ``lsn`` orders the whole log."""

    lsn: int
    op: str
    payload: list


def encode_record(record: WalRecord) -> bytes:
    """Record -> header + canonical JSON bytes (stable across reruns)."""
    body = json.dumps(
        {"lsn": record.lsn, "op": record.op, "payload": record.payload},
        sort_keys=True, separators=(",", ":")).encode("utf-8")
    return HEADER.pack(len(body), zlib.crc32(body)) + body


def decode_record(body: bytes) -> WalRecord:
    """Payload bytes -> record; raises ``ValueError`` on malformed JSON."""
    doc = json.loads(body.decode("utf-8"))
    if not isinstance(doc, dict) or "lsn" not in doc or "op" not in doc:
        raise ValueError("record payload missing lsn/op")
    return WalRecord(lsn=int(doc["lsn"]), op=str(doc["op"]),
                     payload=list(doc.get("payload", [])))


def segment_name(first_lsn: int) -> str:
    """Segment filename for records starting at ``first_lsn``."""
    return f"{_SEG_PREFIX}{first_lsn:012d}{_SEG_SUFFIX}"


def list_segments(root: str) -> List[Tuple[int, str]]:
    """``(first_lsn, path)`` for every segment under ``root``, ordered."""
    out = []
    for name in os.listdir(root):
        if name.startswith(_SEG_PREFIX) and name.endswith(_SEG_SUFFIX):
            digits = name[len(_SEG_PREFIX):-len(_SEG_SUFFIX)]
            if digits.isdigit():
                out.append((int(digits), os.path.join(root, name)))
    return sorted(out)


@dataclass(frozen=True)
class ScanIssue:
    """One problem the scanner saw (kinds double as fsck issue kinds).

    - ``torn_tail`` -- partial/checksum-failing record at the very end
      (crash artifact; safe to truncate at ``offset``).
    - ``corrupt_record`` -- damaged record with valid data after it
      (disk fault; recovery must refuse, fsck repairs explicitly).
    - ``duplicate_lsn`` -- record whose LSN is not above its
      predecessor's (idempotently skipped).
    - ``lsn_gap`` -- LSN jumped forward: records are missing.
    """

    kind: str
    path: str
    offset: int
    detail: str


@dataclass
class SegmentScan:
    """Everything one segment scan recovered."""

    path: str
    size: int
    records: List[WalRecord] = field(default_factory=list)
    issues: List[ScanIssue] = field(default_factory=list)
    #: Byte offset of the end of the last good record: the truncation
    #: point that repairs a torn tail (and the resume point for the
    #: writer when this is the active segment).
    good_size: int = 0

    @property
    def last_lsn(self) -> Optional[int]:
        return self.records[-1].lsn if self.records else None


def _try_decode_at(data: bytes, off: int) -> Optional[Tuple[WalRecord, int]]:
    """Decode one well-formed record at ``off``, or ``None``."""
    if len(data) - off < HEADER.size:
        return None
    length, crc = HEADER.unpack_from(data, off)
    end = off + HEADER.size + length
    if length > MAX_RECORD_BYTES or end > len(data):
        return None
    body = data[off + HEADER.size:end]
    if zlib.crc32(body) != crc:
        return None
    try:
        return decode_record(body), end
    except (ValueError, UnicodeDecodeError):
        return None


def _valid_record_after(data: bytes, start: int) -> Optional[int]:
    """First offset >= ``start`` where a whole valid record decodes."""
    for cand in range(start, len(data) - HEADER.size + 1):
        if _try_decode_at(data, cand) is not None:
            return cand
    return None


def scan_segment(path: str, expect_lsn: Optional[int] = None) -> SegmentScan:
    """Scan one segment: valid records, issues, safe truncation point.

    ``expect_lsn`` is the LSN the first record must carry (the segment
    name's first LSN, or the predecessor segment's last + 1); ``None``
    skips continuity checking for the first record.
    """
    with open(path, "rb") as f:
        data = f.read()
    scan = SegmentScan(path=path, size=len(data))
    off = 0
    prev_lsn = None if expect_lsn is None else expect_lsn - 1
    while off < len(data):
        decoded = _try_decode_at(data, off)
        if decoded is None:
            # Structurally broken here.  A crash only ever damages the
            # tail, so anything decodable *after* this point means the
            # damage is mid-log -- a disk fault, not a torn write.
            resync = _valid_record_after(data, off + 1)
            kind = "torn_tail" if resync is None else "corrupt_record"
            scan.issues.append(ScanIssue(
                kind=kind, path=path, offset=off,
                detail=(f"{len(data) - off} trailing byte(s) torn"
                        if resync is None else
                        f"damaged record at offset {off} with a valid "
                        f"record at offset {resync} after it")))
            return scan
        record, end = decoded
        if prev_lsn is not None and record.lsn <= prev_lsn:
            scan.issues.append(ScanIssue(
                kind="duplicate_lsn", path=path, offset=off,
                detail=f"lsn {record.lsn} after {prev_lsn} "
                       f"(duplicate; skipped)"))
            off = end
            scan.good_size = end
            continue
        if prev_lsn is not None and record.lsn != prev_lsn + 1:
            scan.issues.append(ScanIssue(
                kind="lsn_gap", path=path, offset=off,
                detail=f"lsn jumped {prev_lsn} -> {record.lsn}: "
                       f"record(s) missing"))
            return scan
        scan.records.append(record)
        prev_lsn = record.lsn
        off = end
        scan.good_size = end
    return scan


class WalWriter:
    """Appender for the active segment, with a modeled fsync boundary.

    ``synced_size`` tracks the byte count guaranteed to survive a
    crash: it advances only on :meth:`sync` (which flushes and, when
    ``os_fsync`` is true, calls ``os.fsync``).  ``crash_truncate``
    *is* the crash model: it discards everything after the last sync
    and optionally leaves a torn fragment of the in-flight record --
    exactly what a power cut does to an ordered log.
    """

    def __init__(self, path: str, *, next_lsn: int, synced_size: int,
                 os_fsync: bool = True) -> None:
        self.path = path
        self.next_lsn = next_lsn
        self.os_fsync = os_fsync
        self.fsyncs = 0
        self._f = open(path, "ab")
        if self._f.tell() != synced_size:
            # Reopen after a torn tail: drop the tail before appending.
            self._f.truncate(synced_size)
            self._f.seek(synced_size)
        self.synced_size = synced_size
        self._pending = 0

    @property
    def pending_records(self) -> int:
        """Appended records not yet covered by a sync."""
        return self._pending

    def append(self, op: str, payload: list) -> WalRecord:
        record = WalRecord(lsn=self.next_lsn, op=op, payload=payload)
        self._f.write(encode_record(record))
        self.next_lsn += 1
        self._pending += 1
        return record

    def sync(self) -> None:
        self._f.flush()
        if self.os_fsync:
            os.fsync(self._f.fileno())
        self.fsyncs += 1
        self.synced_size = self._f.tell()
        self._pending = 0

    def crash_truncate(self, torn_bytes: bytes = b"") -> None:
        """Simulate power loss: unsynced bytes vanish, ``torn_bytes``
        (a prefix of the record that was mid-write) survive."""
        self._f.close()
        with open(self.path, "r+b") as f:
            f.truncate(self.synced_size)
            if torn_bytes:
                f.seek(self.synced_size)
                f.write(torn_bytes)

    def close(self) -> None:
        if not self._f.closed:
            if self._pending:
                self.sync()
            self._f.close()
