"""The durable store: WAL segments + snapshots under one state dir.

:class:`DurableStore` owns a directory and maintains the invariant
that *(newest valid snapshot) + (WAL records after its LSN)* is always
a complete, crash-consistent recipe for the structure's state:

- ``append`` writes one mutating batch to the active segment and
  (per :class:`DurabilityPolicy`) fsyncs before returning -- callers
  ack only after ``append`` returns, so acked writes are durable
  (RPO = 0).
- ``snapshot`` atomically publishes a checkpoint covering everything
  durable so far, rotates to a fresh segment, and prunes snapshots /
  segments that retention no longer needs.  Retention keeps the last
  ``keep_snapshots`` snapshots *and* every segment needed to replay
  from the **oldest** kept one, so a corrupt newest snapshot degrades
  to a longer replay instead of data loss.
- ``open`` is the reopen path: load the newest valid snapshot, scan
  the segments after it, auto-truncate a torn tail on the *active*
  segment (the one crash artifact the fsync model permits), and hand
  back the records to replay.  Anything else -- mid-log damage, LSN
  gaps, torn data in a sealed segment -- raises :class:`WalCorruption`
  because silently skipping it would drop acked writes; ``repro fsck
  --repair`` is the explicit path through that refusal.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.recovery.checkpoint import Checkpoint
from repro.recovery.durable.snapshot import (
    list_snapshots,
    load_snapshot,
    write_snapshot,
)
from repro.recovery.durable.wal import (
    ScanIssue,
    WalRecord,
    WalWriter,
    list_segments,
    scan_segment,
    segment_name,
)

__all__ = [
    "DurabilityError",
    "DurabilityPolicy",
    "DurableStore",
    "OpenReport",
    "WalCorruption",
]


class DurabilityError(RuntimeError):
    """Typed durability failure: the state dir cannot be recovered
    automatically (e.g. every snapshot is corrupt)."""


class WalCorruption(DurabilityError):
    """The log is damaged in a way a crash cannot produce (mid-log
    corruption, LSN gap, torn data in a sealed segment).  Automatic
    recovery refuses -- repairing would silently drop acked writes;
    ``repro fsck --repair`` does it explicitly and reports the loss."""

    def __init__(self, message: str, issues: Optional[List[ScanIssue]] = None
                 ) -> None:
        super().__init__(message)
        self.issues = issues or []


@dataclass(frozen=True)
class DurabilityPolicy:
    """Knobs for the durability/performance trade.

    - ``fsync_every`` -- sync the active segment after every N appends.
      1 (the default) is the RPO = 0 setting: every acked write is
      durable.  Larger values batch syncs; a crash may lose up to
      N - 1 *unacked* tail records (never acked ones -- ack waits for
      the covering sync).
    - ``snapshot_every`` -- advisory snapshot cadence in durable
      records, consumed by :meth:`DurableStore.should_snapshot`
      (the recovery manager drives snapshots off its own checkpoint
      boundary instead).
    - ``keep_snapshots`` -- snapshots retained; segments are kept back
      to the oldest retained snapshot's LSN.
    - ``os_fsync`` -- issue real ``os.fsync`` calls.  False keeps the
      modeled sync boundary (flush + ``synced_size``) without the
      physical-disk cost; tests and benches that crash via
      :meth:`DurableStore.crash` stay exact either way.
    """

    fsync_every: int = 1
    snapshot_every: int = 8
    keep_snapshots: int = 2
    os_fsync: bool = True

    def __post_init__(self) -> None:
        if self.fsync_every < 1:
            raise ValueError("fsync_every must be >= 1")
        if self.snapshot_every < 1:
            raise ValueError("snapshot_every must be >= 1")
        if self.keep_snapshots < 1:
            raise ValueError("keep_snapshots must be >= 1")


@dataclass
class OpenReport:
    """What :meth:`DurableStore.open` found and did."""

    created: bool
    snapshot_lsn: int
    checkpoint: Optional[Checkpoint]
    records: List[WalRecord] = field(default_factory=list)
    truncated_bytes: int = 0
    skipped_duplicates: int = 0
    corrupt_snapshots: List[str] = field(default_factory=list)
    issues: List[ScanIssue] = field(default_factory=list)


class DurableStore:
    """One state directory's WAL + snapshot set (see module docstring).

    Construct via :meth:`open`; a brand-new directory needs one
    :meth:`bootstrap` call with the initial checkpoint before appends.
    """

    def __init__(self, root: str, policy: DurabilityPolicy,
                 report: OpenReport) -> None:
        self.root = root
        self.policy = policy
        self.report = report
        self.snapshot_lsn = report.snapshot_lsn
        self.appends = 0
        self.snapshots_written = 0
        self._since_snapshot = 0
        self._fsyncs_closed = 0  # from writers already rotated out
        self._writer: Optional[WalWriter] = None
        self._closed = False

    # -- lifecycle -------------------------------------------------------

    @classmethod
    def open(cls, root: str,
             policy: Optional[DurabilityPolicy] = None) -> "DurableStore":
        """Open (or create) the state dir; recover per module docstring.

        The returned store's ``report`` carries the replayable records
        and everything noteworthy the scan saw.  ``report.created`` is
        True for a fresh dir, which needs :meth:`bootstrap` next.
        """
        policy = policy or DurabilityPolicy()
        os.makedirs(root, exist_ok=True)
        snaps = list_snapshots(root)
        segments = list_segments(root)
        if not snaps and not segments:
            report = OpenReport(created=True, snapshot_lsn=0, checkpoint=None)
            return cls(root, policy, report)

        loaded = load_snapshot(root)
        if loaded is None:
            raise DurabilityError(
                f"no valid snapshot in {root} "
                f"({len(snaps)} snapshot file(s), all corrupt)")
        snap_lsn, chk, corrupt_snaps = loaded
        report = OpenReport(created=False, snapshot_lsn=snap_lsn,
                            checkpoint=chk, corrupt_snapshots=corrupt_snaps)

        records: List[WalRecord] = []
        expect = None
        last_scan = None
        for idx, (first_lsn, path) in enumerate(segments):
            scan = scan_segment(path, expect_lsn=first_lsn)
            last = idx == len(segments) - 1
            for issue in scan.issues:
                if issue.kind == "duplicate_lsn":
                    report.skipped_duplicates += 1
                    report.issues.append(issue)
                elif issue.kind == "torn_tail" and last:
                    # The one damage shape a crash can produce: a
                    # partial record at the end of the active segment.
                    report.issues.append(issue)
                    report.truncated_bytes = scan.size - scan.good_size
                else:
                    raise WalCorruption(
                        f"{issue.kind} in {os.path.basename(path)} at "
                        f"offset {issue.offset}: {issue.detail}",
                        issues=report.issues + [issue])
            if expect is not None and scan.records:
                first = scan.records[0].lsn
                # A forward jump whose missing LSNs the restored
                # snapshot already covers is benign -- fsck repair
                # drops redundant damaged segments, leaving exactly
                # this shape.  Any other discontinuity lost replayable
                # records.
                if first != expect and not (expect < first <= snap_lsn + 1):
                    raise WalCorruption(
                        f"segment {os.path.basename(path)} starts at lsn "
                        f"{first}, expected {expect}",
                        issues=report.issues)
            if scan.records:
                expect = scan.records[-1].lsn + 1
            records.extend(r for r in scan.records if r.lsn > snap_lsn)
            if last:
                last_scan = scan
        if records and records[0].lsn != snap_lsn + 1:
            raise WalCorruption(
                f"first replayable record is lsn {records[0].lsn}, but the "
                f"restored snapshot covers only up to lsn {snap_lsn}: "
                f"record(s) missing", issues=report.issues)
        report.records = records

        store = cls(root, policy, report)
        resume_lsn = records[-1].lsn if records else snap_lsn
        if last_scan is not None and last_scan.last_lsn == resume_lsn:
            store._writer = WalWriter(
                last_scan.path, next_lsn=resume_lsn + 1,
                synced_size=last_scan.good_size, os_fsync=policy.os_fsync)
        else:
            # The active segment does not end at the resume point (an
            # empty rotated segment, or one fsck truncated below the
            # snapshot LSN): appending to it would write an LSN gap
            # that poisons every future open, so rotate to a fresh
            # segment instead.
            store._start_segment(resume_lsn + 1)
        return store

    def bootstrap(self, chk: Checkpoint) -> None:
        """First-ever open: publish the initial state as snapshot 0 and
        start the first segment.  Appends are durable from LSN 1."""
        if self._writer is not None or not self.report.created:
            raise DurabilityError("bootstrap on a non-fresh store")
        write_snapshot(self.root, 0, chk, os_fsync=self.policy.os_fsync)
        self.snapshot_lsn = 0
        self._start_segment(1)

    def close(self) -> None:
        if self._writer is not None:
            self._writer.close()
        self._closed = True

    def crash(self, torn_bytes: bytes = b"") -> None:
        """Simulate host power loss: unsynced WAL bytes vanish; an
        optional torn fragment of the in-flight record survives."""
        if self._writer is not None:
            self._writer.crash_truncate(torn_bytes)
            self._writer = None
        self._closed = True

    # -- the durable write path ------------------------------------------

    def append(self, op: str, payload: list) -> WalRecord:
        """Log one mutating batch; returns after it is durable (per
        ``fsync_every``).  The caller acks only after this returns."""
        writer = self._require_writer()
        record = writer.append(op, payload)
        self.appends += 1
        self._since_snapshot += 1
        if writer.pending_records >= self.policy.fsync_every:
            writer.sync()
        return record

    def sync(self) -> None:
        """Force the active segment durable (covers any pending tail)."""
        self._require_writer().sync()

    def should_snapshot(self) -> bool:
        """Advisory: has ``snapshot_every`` elapsed since the last one?"""
        return self._since_snapshot >= self.policy.snapshot_every

    def snapshot(self, chk: Checkpoint, *,
                 crash_before_rename: bool = False) -> str:
        """Publish ``chk`` covering all durable records, rotate the
        active segment, prune per retention.  Returns the snapshot path
        (the orphan ``.tmp`` path under ``crash_before_rename``)."""
        writer = self._require_writer()
        writer.close()
        self._fsyncs_closed += writer.fsyncs
        lsn = writer.next_lsn - 1
        path = write_snapshot(self.root, lsn, chk,
                              os_fsync=self.policy.os_fsync,
                              crash_before_rename=crash_before_rename)
        if crash_before_rename:
            # The fault-injection leg: the process "dies" here.  Reopen
            # the writer so callers can keep crashing/inspecting, but
            # the published snapshot set is unchanged.
            self._writer = WalWriter(
                writer.path, next_lsn=writer.next_lsn,
                synced_size=writer.synced_size,
                os_fsync=self.policy.os_fsync)
            return path
        self.snapshot_lsn = lsn
        self.snapshots_written += 1
        self._since_snapshot = 0
        self._start_segment(lsn + 1)
        self._prune()
        return path

    # -- introspection ---------------------------------------------------

    @property
    def next_lsn(self) -> int:
        return self._require_writer().next_lsn

    @property
    def last_durable_lsn(self) -> int:
        """Highest LSN guaranteed to survive a crash right now."""
        writer = self._require_writer()
        return writer.next_lsn - 1 - writer.pending_records

    def stats(self) -> Dict[str, Any]:
        """Counters for ``repro serve`` status reporting."""
        fsyncs = self._writer.fsyncs if self._writer is not None else 0
        return {
            "root": self.root,
            "appends": self.appends,
            "fsyncs": self._fsyncs_closed + fsyncs,
            "snapshots_written": self.snapshots_written,
            "snapshot_lsn": self.snapshot_lsn,
            "replayed_on_open": len(self.report.records),
            "truncated_bytes_on_open": self.report.truncated_bytes,
        }

    # -- internals -------------------------------------------------------

    def _require_writer(self) -> WalWriter:
        if self._closed:
            raise DurabilityError("store is closed")
        if self._writer is None:
            raise DurabilityError("store not bootstrapped")
        return self._writer

    def _start_segment(self, first_lsn: int) -> None:
        path = os.path.join(self.root, segment_name(first_lsn))
        with open(path, "wb"):
            pass
        self._writer = WalWriter(path, next_lsn=first_lsn, synced_size=0,
                                 os_fsync=self.policy.os_fsync)

    def _prune(self) -> None:
        """Drop snapshots beyond retention and segments no replay from
        the oldest kept snapshot could need."""
        snaps = list_snapshots(self.root)
        keep = snaps[-self.policy.keep_snapshots:]
        for info in snaps[:-self.policy.keep_snapshots]:
            os.remove(info.path)
        oldest_kept = keep[0].lsn if keep else 0
        segments = list_segments(self.root)
        # Segment i covers [first_i, first_{i+1} - 1]; replay from the
        # oldest kept snapshot needs lsn >= oldest_kept + 1.  The active
        # (last) segment always stays.
        for (first, path), (next_first, _) in zip(segments, segments[1:]):
            if next_first <= oldest_kept + 1:
                os.remove(path)
