"""Logical checkpoints of PIM data structures.

A checkpoint is a *logical* snapshot: the structure's contents in a
canonical, structure-specific form, not a byte image of module memory.
Capture is diagnostic and cost-free -- the model's checkpoint stream
leaves over the same out-of-band bulk channel that ``bulk_build`` uses
for initial loading (the paper assumes the input "starts evenly divided
among the PIM modules"; a checkpoint drain is the reverse of that bulk
load).  *Restore* is the opposite: it re-enters the machine through the
ordinary batched operations and is charged honestly (rounds, messages,
PIM work, words).

Canonical payloads:

- :class:`~repro.core.skiplist.PIMSkipList` -- sorted ``(key, value)``
  list.
- :class:`~repro.structures.lsm.PIMLSMStore` -- dict with the delta's
  items (tombstones included), the run blocks keyed by block id, fences,
  block ownership, generation and run size.  The extra physical detail
  exists for in-place module repair (:mod:`repro.recovery.repair`);
  logical restore uses :func:`merged_lsm_items`.
- :class:`~repro.structures.fifo.PIMQueue` -- queued values oldest
  first.  A restore re-enqueues them, so sequence counters restart at
  zero; FIFO semantics are unchanged.
- :class:`~repro.structures.priority_queue.PIMPriorityQueue` --
  ``(priority, value)`` pairs in extraction order.  A restore re-inserts
  them in that order, so fresh tiebreaks preserve FIFO among equal
  priorities.
- :class:`~repro.structures.pimtree.PIMTree` -- sorted ``(key, value)``
  list, drained leaf by leaf along the chain.  A restore bulk-loads an
  empty tree (shadow promotions restart cold -- they are a cache).
  Unlike the skip list (whose object graph is CPU-visible), the tree's
  leaves live *only* in module DRAM, so capture from a machine with a
  wiped-and-unrepaired module raises :class:`CheckpointUnavailable`;
  the recovery manager keeps its previous checkpoint + log instead.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Tuple

from repro.core.skiplist import PIMSkipList
from repro.structures.fifo import PIMQueue
from repro.structures.lsm import TOMBSTONE, PIMLSMStore
from repro.structures.pimtree import PIMTree
from repro.structures.priority_queue import PIMPriorityQueue

__all__ = [
    "Checkpoint",
    "CheckpointUnavailable",
    "checkpoint_structure",
    "merged_lsm_items",
    "restore_structure",
]


class CheckpointUnavailable(RuntimeError):
    """Capture would read a wiped (unreadable) module; the caller should
    keep its previous checkpoint and try again after the next batch."""


@dataclass(frozen=True)
class Checkpoint:
    """One logical snapshot of one structure.

    ``kind`` names the structure family (``skiplist`` / ``lsm`` /
    ``fifo`` / ``pq``), ``name`` is the instance name on its machine,
    ``payload`` the canonical contents (see module docstring), and
    ``batches`` the number of mutating batches the owner had applied at
    capture time (bookkeeping for :class:`repro.recovery.manager.RecoveryManager`).
    """

    kind: str
    name: str
    payload: Any
    batches: int = 0

    def item_count(self) -> int:
        """Logical item count (merged and tombstone-free for LSM)."""
        if self.kind == "lsm":
            return len(merged_lsm_items(self))
        return len(self.payload)


def checkpoint_structure(obj: Any, batches: int = 0) -> Checkpoint:
    """Capture a logical checkpoint of ``obj`` (diagnostic, cost-free)."""
    if isinstance(obj, PIMSkipList):
        items = [(n.key, n.value) for n in obj.struct.iter_level(0)]
        return Checkpoint("skiplist", obj.struct.name, items, batches)
    if isinstance(obj, PIMLSMStore):
        blocks: Dict[int, List[Tuple[Any, Any]]] = {}
        for module in obj.machine.modules:
            for bid, block in module.state.get(obj.name, {}).items():
                blocks[bid] = [tuple(entry) for entry in block]
        payload = {
            "delta": [(n.key, n.value) for n in obj.delta.struct.iter_level(0)],
            "blocks": blocks,
            "fences": list(obj.fences),
            "block_owner": list(obj.block_owner),
            "generation": obj.generation,
            "run_size": obj.run_size,
        }
        return Checkpoint("lsm", obj.name, payload, batches)
    if isinstance(obj, PIMQueue):
        values = [
            obj.machine.modules[obj._owner(seq)].state[obj.name][seq]
            for seq in range(obj.head, obj.tail)
        ]
        return Checkpoint("fifo", obj.name, values, batches)
    if isinstance(obj, PIMPriorityQueue):
        pairs = [(n.key[0], n.value) for n in obj.sl.struct.iter_level(0)]
        return Checkpoint("pq", obj.name, pairs, batches)
    if isinstance(obj, PIMTree):
        items: List[Tuple[Any, Any]] = []
        lid = obj.first_leaf
        while lid is not None:
            owner = obj.leaf_owner[lid]
            if owner in obj.machine.wiped_modules:
                raise CheckpointUnavailable(
                    f"pimtree leaf {lid} lives on wiped module {owner}")
            state = obj.machine.modules[owner].state.get(obj.name)
            if state is None or lid not in state["leaf"]:
                raise CheckpointUnavailable(
                    f"pimtree leaf {lid} unreadable on module {owner}")
            items.extend(tuple(p) for p in state["leaf"][lid])
            lid = obj.leaf_next[lid]
        return Checkpoint("pimtree", obj.name, items, batches)
    raise TypeError(f"no checkpoint support for {type(obj).__name__}")


def merged_lsm_items(chk: Checkpoint) -> List[Tuple[Any, Any]]:
    """An LSM checkpoint's logical contents: run blocks merged with the
    delta, delta shadowing the run, tombstones dropped; sorted."""
    if chk.kind != "lsm":
        raise ValueError(f"not an LSM checkpoint: {chk.kind!r}")
    merged: Dict[Any, Any] = {}
    for bid in sorted(chk.payload["blocks"]):
        for key, value in chk.payload["blocks"][bid]:
            merged[key] = value
    for key, value in chk.payload["delta"]:
        if value == TOMBSTONE:
            merged.pop(key, None)
        else:
            merged[key] = value
    return sorted(merged.items())


def restore_structure(chk: Checkpoint, target: Any) -> int:
    """Load ``chk`` into the freshly built, *empty* structure ``target``.

    Restore re-enters the machine through the structure's ordinary
    batched operations, so it is charged honestly on ``target``'s
    machine (this is the "re-replicate onto standby hardware" leg of
    recovery -- run it on a clean machine).  Returns the number of
    logical items restored.
    """
    if isinstance(target, PIMSkipList):
        if chk.kind != "skiplist":
            raise ValueError(f"checkpoint kind {chk.kind!r} != skiplist")
        if target.size != 0:
            raise ValueError("restore requires an empty structure")
        if chk.payload:
            target.batch_upsert(list(chk.payload))
        return len(chk.payload)
    if isinstance(target, PIMLSMStore):
        if chk.kind != "lsm":
            raise ValueError(f"checkpoint kind {chk.kind!r} != lsm")
        if target.size_estimate != 0:
            raise ValueError("restore requires an empty structure")
        items = merged_lsm_items(chk)
        if items:
            target.batch_upsert(items)
        return len(items)
    if isinstance(target, PIMQueue):
        if chk.kind != "fifo":
            raise ValueError(f"checkpoint kind {chk.kind!r} != fifo")
        if len(target) != 0:
            raise ValueError("restore requires an empty queue")
        if chk.payload:
            target.enqueue_batch(list(chk.payload))
        return len(chk.payload)
    if isinstance(target, PIMPriorityQueue):
        if chk.kind != "pq":
            raise ValueError(f"checkpoint kind {chk.kind!r} != pq")
        if len(target) != 0:
            raise ValueError("restore requires an empty queue")
        if chk.payload:
            target.insert_batch(list(chk.payload))
        return len(chk.payload)
    if isinstance(target, PIMTree):
        if chk.kind != "pimtree":
            raise ValueError(f"checkpoint kind {chk.kind!r} != pimtree")
        if target.first_leaf is not None:
            raise ValueError("restore requires an empty tree")
        if chk.payload:
            target.build(list(chk.payload))
        return len(chk.payload)
    raise TypeError(f"no restore support for {type(target).__name__}")
