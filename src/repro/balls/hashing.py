"""Deterministic hash families for placing structure nodes on modules.

The skip list distributes its lower-part nodes by "a hash function on the
(key, level) pairs" (paper §3.1).  The adversary may choose any keys but
*cannot* see the algorithm's random choices, so a seeded hash family drawn
once per structure suffices.  Determinism matters for reproducibility: we
avoid Python's per-process salted ``hash`` for strings and instead use a
splitmix64-style integer mixer (fast path for int keys) or blake2b of the
key's repr (stable fallback for anything else).
"""

from __future__ import annotations

import hashlib
from typing import Hashable

_MASK = (1 << 64) - 1


def mix64(x: int) -> int:
    """The splitmix64 finalizer: a strong 64-bit mixing permutation."""
    x &= _MASK
    x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9 & _MASK
    x = (x ^ (x >> 27)) * 0x94D049BB133111EB & _MASK
    return (x ^ (x >> 31)) & _MASK


def stable_hash(obj: Hashable, seed: int = 0) -> int:
    """A process-stable 64-bit hash of ``obj``.

    Ints take the mixer fast path; everything else is hashed via blake2b
    of its ``repr`` (stable across processes, unlike ``hash(str)``).
    """
    if isinstance(obj, bool):  # bool is an int subclass; disambiguate
        obj = ("bool", int(obj))
    if isinstance(obj, int):
        return mix64(obj ^ mix64(seed))
    digest = hashlib.blake2b(
        repr(obj).encode("utf-8"), digest_size=8,
        key=seed.to_bytes(8, "little", signed=False),
    ).digest()
    return int.from_bytes(digest, "little")


class KeyLevelHash:
    """Seeded hash family mapping ``(key, level)`` pairs to module ids.

    One instance is drawn per structure (from the machine's seed); the
    adversary's keys are fixed before the draw, so placements are uniform
    and independent of the workload -- the precondition of Lemmas 2.1/2.2.
    """

    def __init__(self, num_modules: int, seed: int) -> None:
        if num_modules < 1:
            raise ValueError("num_modules must be >= 1")
        self.num_modules = num_modules
        self.seed = mix64(seed ^ 0x9E3779B97F4A7C15)

    def module_of(self, key: Hashable, level: int = 0) -> int:
        """The module that owns the node for ``key`` at ``level``."""
        h = stable_hash(key, seed=self.seed)
        return mix64(h ^ mix64(level ^ self.seed)) % self.num_modules

    def __call__(self, key: Hashable, level: int = 0) -> int:
        return self.module_of(key, level)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"KeyLevelHash(P={self.num_modules}, seed={self.seed:#x})"
