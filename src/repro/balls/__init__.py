"""Balls-in-bins machinery: hash families and the paper's load lemmas.

The PIM skip list's load-balance guarantees rest on two balls-in-bins
facts (paper §2.1):

- **Lemma 2.1** (Raab & Steger): throwing ``T = Omega(P log P)`` balls
  into ``P`` bins uniformly yields ``Theta(T/P)`` balls in every bin whp.
- **Lemma 2.2** (weighted): throwing balls of total weight ``W`` with
  per-ball weight at most ``W/(P log P)`` yields ``O(W/P)`` weight in
  every bin whp (the paper proves the whp version via Bernstein's
  inequality in its appendix).

:mod:`repro.balls.hashing` provides the deterministic hash family used to
map ``(key, level)`` pairs to PIM modules; :mod:`repro.balls.lemmas`
provides experiment harnesses that measure max/mean load envelopes across
seeds, which the tests and the ``bench_balls_in_bins`` benchmark use to
check both lemmas empirically.
"""

from repro.balls.hashing import KeyLevelHash, mix64, stable_hash
from repro.balls.lemmas import (
    BallsResult,
    bernstein_tail_bound,
    lemma21_experiment,
    lemma22_experiment,
    throw_balls,
    throw_weighted_balls,
)

__all__ = [
    "BallsResult",
    "KeyLevelHash",
    "bernstein_tail_bound",
    "lemma21_experiment",
    "lemma22_experiment",
    "mix64",
    "stable_hash",
    "throw_balls",
    "throw_weighted_balls",
]
