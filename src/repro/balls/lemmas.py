"""Empirical harnesses for the paper's balls-in-bins lemmas.

These functions throw (possibly weighted) balls into bins with NumPy and
summarize the load distribution, so tests and benchmarks can check:

- Lemma 2.1: ``T = Omega(P log P)`` uniform balls give every bin
  ``Theta(T/P)`` whp -- i.e. max/mean and mean/min stay bounded by small
  constants across seeds;
- Lemma 2.2: weighted balls with per-ball cap ``W/(P log P)`` give every
  bin ``O(W/P)`` whp -- i.e. max/mean stays bounded even for adversarial
  weight profiles that respect the cap;
- the *failure* mode the paper warns about: only ``P`` balls (small
  balls-to-bins ratio) drives the max load to ``Theta(log P / log log P)``
  -- motivating minimum batch sizes.

Also provides the Bernstein tail bound used in the paper's appendix proof,
for plotting the analytic envelope next to the measurements.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence

import numpy as np


@dataclass(frozen=True)
class BallsResult:
    """Summary of one balls-in-bins trial."""

    num_bins: int
    num_balls: int
    total_weight: float
    max_load: float
    min_load: float
    mean_load: float

    @property
    def max_over_mean(self) -> float:
        return self.max_load / self.mean_load if self.mean_load else float("inf")

    @property
    def min_over_mean(self) -> float:
        return self.min_load / self.mean_load if self.mean_load else 0.0


def throw_balls(num_bins: int, num_balls: int, rng: np.random.Generator) -> np.ndarray:
    """Throw ``num_balls`` unit balls uniformly; return per-bin counts."""
    choices = rng.integers(0, num_bins, size=num_balls)
    return np.bincount(choices, minlength=num_bins)


def throw_weighted_balls(num_bins: int, weights: Sequence[float],
                         rng: np.random.Generator) -> np.ndarray:
    """Throw one ball per weight uniformly; return per-bin total weights."""
    w = np.asarray(weights, dtype=np.float64)
    choices = rng.integers(0, num_bins, size=len(w))
    return np.bincount(choices, weights=w, minlength=num_bins)


def _summarize(loads: np.ndarray, num_balls: int) -> BallsResult:
    return BallsResult(
        num_bins=len(loads),
        num_balls=num_balls,
        total_weight=float(loads.sum()),
        max_load=float(loads.max()),
        min_load=float(loads.min()),
        mean_load=float(loads.mean()),
    )


def lemma21_experiment(num_bins: int, balls_per_bin_log: float = 1.0,
                       trials: int = 20, seed: int = 0) -> List[BallsResult]:
    """Run Lemma 2.1 trials: ``T = c * P log P`` balls into ``P`` bins.

    ``balls_per_bin_log`` is the constant ``c``; the lemma needs
    ``T = Omega(P log P)``, and the returned per-trial summaries let the
    caller check the ``Theta(T/P)`` envelope (max/mean and min/mean ratios
    bounded away from ``log P`` growth).
    """
    log_p = max(1.0, math.log2(num_bins))
    num_balls = max(1, int(round(balls_per_bin_log * num_bins * log_p)))
    out = []
    for t in range(trials):
        rng = np.random.default_rng(seed + t)
        loads = throw_balls(num_bins, num_balls, rng)
        out.append(_summarize(loads, num_balls))
    return out


def lemma22_experiment(num_bins: int, weight_profile: str = "max-cap",
                       total_weight: float = 1.0, trials: int = 20,
                       seed: int = 0) -> List[BallsResult]:
    """Run Lemma 2.2 trials: weighted balls with cap ``W/(P log P)``.

    ``weight_profile`` selects the adversary's weight vector (all profiles
    respect the lemma's cap):

    - ``"max-cap"``: every ball at the cap (fewest, heaviest balls --
      the extremal case for the Bernstein bound);
    - ``"uniform"``: many equal small balls;
    - ``"geometric"``: geometrically decreasing weights, truncated at the
      cap (a skewed profile like skip-list path lengths).
    """
    log_p = max(1.0, math.log2(num_bins))
    cap = total_weight / (num_bins * log_p)
    if weight_profile == "max-cap":
        k = int(math.ceil(total_weight / cap))
        weights = [cap] * k
    elif weight_profile == "uniform":
        k = 16 * int(math.ceil(total_weight / cap))
        weights = [total_weight / k] * k
    elif weight_profile == "geometric":
        weights = []
        remaining = total_weight
        w = cap
        while remaining > 1e-12 * total_weight:
            w = min(w, remaining)
            weights.append(w)
            remaining -= w
            w = max(w * 0.999, cap / 1024)
    else:
        raise ValueError(f"unknown weight_profile {weight_profile!r}")
    out = []
    for t in range(trials):
        rng = np.random.default_rng(seed + t)
        loads = throw_weighted_balls(num_bins, weights, rng)
        out.append(_summarize(loads, len(weights)))
    return out


def bernstein_tail_bound(total_weight: float, num_bins: int,
                         deviation_factor: float) -> float:
    """Bernstein tail bound from the paper's appendix proof of Lemma 2.2.

    Probability that one fixed bin's weight deviates from its mean
    ``S = W/P`` by more than ``c * 2S``, with ball-weight cap
    ``R = W/(P log P)``: at most ``exp(-c log P)`` = ``P^{-c}``.
    Returns the union bound over all ``P`` bins.
    """
    c = deviation_factor
    log_p = max(1.0, math.log2(num_bins))
    per_bin = math.exp(-c * log_p)
    return min(1.0, num_bins * per_bin)


def small_batch_max_load(num_bins: int, trials: int = 50,
                         seed: int = 0) -> List[int]:
    """Max load when throwing only ``P`` balls into ``P`` bins.

    Exhibits the ``Theta(log P / log log P)`` max load the paper cites as
    the reason random offloading of only ``P`` tasks is *not* PIM-balanced
    (§2.1) -- the motivation for minimum batch sizes.
    """
    out = []
    for t in range(trials):
        rng = np.random.default_rng(seed + t)
        loads = throw_balls(num_bins, num_bins, rng)
        out.append(int(loads.max()))
    return out
