"""Command-line interface: ``python -m repro <command>``.

Commands
--------

- ``info`` — versions, model defaults, the experiment index.
- ``demo`` — a one-minute tour: build a machine + skip list, run one
  batch of each operation, print measured model costs.
- ``reproduce [-k EXPR] [--out DIR]`` — regenerate the paper's tables
  (runs the benchmark harness's experiment functions through pytest
  with timing disabled; tables land in ``benchmarks/out/``).
- ``selftest`` — run the full unit/property test suite.
- ``verify fuzz|replay|shrink|chaos|soak`` — the differential
  verification subsystem: fuzz seeded adversarial sessions against
  every implementation, replay recorded repro files, shrink failures,
  chaos-sweep fault schedules, soak the serving layer
  (see ``repro.verify``).
- ``serve [--clients N] [--chaos SCHEDULE]`` — drive the resilient
  serving layer with N concurrent clients (optionally under a fault
  schedule) and verify the serving SLO (see ``repro.serve``).
- ``fsck DIR [--repair]`` — check (and optionally repair) a durable
  WAL+snapshot state dir (see ``repro.recovery.durable``): torn
  tails, mid-log corruption, LSN gaps, corrupt snapshots, orphan
  tmps.  ``--selftest`` damages a scratch store and round-trips
  check → repair → reopen.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional

EXPERIMENTS = [
    ("T1-get", "Table 1 row 1: batched Get/Update", "bench_table1_get_update"),
    ("T1-succ", "Table 1 row 2: batched Successor/Predecessor",
     "bench_table1_successor"),
    ("T1-upsert", "Table 1 row 3: batched Upsert", "bench_table1_upsert"),
    ("T1-delete", "Table 1 row 4: batched Delete", "bench_table1_delete"),
    ("THM31", "Theorem 3.1: space usage", "bench_space_thm31"),
    ("L21/L22", "Lemmas 2.1/2.2: balls in bins", "bench_balls_in_bins"),
    ("FIG3/L42", "Fig. 3 + Lemma 4.2: contention", "bench_fig3_contention"),
    ("FIG4", "Fig. 4: batch pointer construction/splicing",
     "bench_fig4_batch_pointers"),
    ("THM51", "Theorem 5.1: broadcast ranges", "bench_range_broadcast"),
    ("THM52", "Theorem 5.2: tree ranges", "bench_range_tree"),
    ("BASE", "SS2.2/SS3.1 baseline comparisons", "bench_baselines"),
    ("MODEL", "SS2.1 model mechanics", "bench_model_mechanics"),
    ("ABL", "design-choice ablations", "bench_ablations"),
    ("EXT", "future-work extensions", "bench_extensions"),
    ("SKEW", "the skew spectrum, uniform -> Zipf -> adversarial",
     "bench_skew_spectrum"),
    ("LSM", "the log-structured foil vs the skip list", "bench_lsm"),
    ("FIG2", "Fig. 2: the pointer structure, rendered live",
     "bench_fig2_layout"),
    ("SESSION", "mixed-workload macro-benchmark", "bench_sessions"),
    ("WHP", "whp concentration envelopes across seeds",
     "bench_whp_envelopes"),
    ("OSTAT", "order statistics: rank and distributed selection",
     "bench_order_statistics"),
]


def _repo_benchmarks_dir() -> Optional[str]:
    """The benchmarks/ directory of a source checkout, if present."""
    here = os.path.dirname(os.path.dirname(os.path.dirname(
        os.path.abspath(__file__))))
    cand = os.path.join(here, "benchmarks")
    if os.path.isdir(cand):
        return cand
    cand = os.path.join(os.getcwd(), "benchmarks")
    if os.path.isdir(cand):
        return cand
    return None


def cmd_info(_args: argparse.Namespace) -> int:
    import repro
    from repro.sim.config import default_shared_memory_words

    print(f"repro {repro.__version__} -- executable reproduction of")
    print("'The Processing-in-Memory Model' (Kang et al., SPAA 2021)\n")
    print("model defaults:")
    for p in (8, 64, 512):
        print(f"  P={p:<4} M = {default_shared_memory_words(p)} words, "
              f"min batches: point={p * max(1, p.bit_length() - 1)}, "
              f"search={p * max(1, p.bit_length() - 1) ** 2}")
    print("\nexperiment index (run with: python -m repro reproduce -k ID):")
    for ident, desc, module in EXPERIMENTS:
        print(f"  {ident:<10} {desc:<48} [{module}]")
    return 0


def cmd_demo(_args: argparse.Namespace) -> int:
    import random

    from repro import PIMMachine, PIMSkipList

    machine = PIMMachine(num_modules=16, seed=1)
    sl = PIMSkipList(machine)
    sl.build((k, k) for k in range(0, 50_000, 5))
    rng = random.Random(0)
    print(f"machine: P={machine.num_modules}, "
          f"M={machine.cpu.shared_memory_words} words; "
          f"skip list with {sl.size} keys\n")

    def show(label, fn):
        before = machine.snapshot()
        fn()
        d = machine.delta_since(before)
        print(f"  {label:<30} io={d.io_time:7.0f} pim={d.pim_time:7.0f} "
              f"rounds={d.rounds:4d} balance={d.pim_balance_ratio:5.2f}")

    stored = list(range(0, 50_000, 5))
    show("batch_get x64",
         lambda: sl.batch_get(rng.sample(stored, 64)))
    show("batch_successor x256",
         lambda: sl.batch_successor([rng.randrange(50_000)
                                     for _ in range(256)]))
    show("batch_upsert x256",
         lambda: sl.batch_upsert([(rng.randrange(500_000) * 5 + 1, 0)
                                  for _ in range(256)]))
    show("batch_delete x256",
         lambda: sl.batch_delete(rng.sample(stored, 256)))
    show("range_broadcast K~2000",
         lambda: sl.range_broadcast(10_000, 20_000, func="count"))
    sl.check_integrity()
    print("\nintegrity verified; try `python -m repro reproduce`")
    return 0


def cmd_reproduce(args: argparse.Namespace) -> int:
    bench_dir = _repo_benchmarks_dir()
    if bench_dir is None:
        print("benchmarks/ not found: `reproduce` needs a source checkout",
              file=sys.stderr)
        return 2
    import pytest

    argv: List[str] = [bench_dir, "--benchmark-disable", "-q", "-s"]
    if args.k:
        argv += ["-k", args.k]
    rc = pytest.main(argv)
    out_dir = os.path.join(bench_dir, "out")
    if os.path.isdir(out_dir):
        print(f"\ntables archived under {out_dir}")
    return int(rc)


def cmd_selftest(_args: argparse.Namespace) -> int:
    import pytest

    here = os.path.dirname(os.path.dirname(os.path.dirname(
        os.path.abspath(__file__))))
    tests = os.path.join(here, "tests")
    if not os.path.isdir(tests):
        tests = os.path.join(os.getcwd(), "tests")
    if not os.path.isdir(tests):
        print("tests/ not found: `selftest` needs a source checkout",
              file=sys.stderr)
        return 2
    return int(pytest.main([tests, "-q"]))


def cmd_verify(args: argparse.Namespace) -> int:
    from repro.verify.cli import main as verify_main

    return verify_main(list(args.rest))


def cmd_serve(args: argparse.Namespace) -> int:
    from repro.serve.cli import main as serve_main

    return serve_main(list(args.rest))


def _fsck_selftest() -> int:
    """Damage a scratch store, then round-trip check -> repair ->
    reopen.  Exercises the same code paths CI's smoke needs without
    touching any real state dir."""
    import shutil
    import tempfile

    from repro.recovery import Checkpoint
    from repro.recovery.durable import (
        DurabilityPolicy,
        DurableStore,
        fsck,
    )

    root = tempfile.mkdtemp(prefix="repro-fsck-selftest-")
    try:
        policy = DurabilityPolicy(snapshot_every=4, os_fsync=False)
        store = DurableStore.open(root, policy)
        store.bootstrap(Checkpoint(kind="skiplist", name="selftest",
                                   payload=[(0, 0)]))
        for i in range(6):
            store.append("upsert", [[i, i]])
        store.crash(b"\x07\x03")  # power cut mid-record: torn tail
        report = fsck(root)
        if report.clean or not any(f.kind == "torn_tail"
                                   for f in report.findings):
            print("fsck selftest FAILED: torn tail not detected")
            return 1
        repaired = fsck(root, repair=True)
        for line in repaired.lines():
            print(line)
        if not repaired.repairable or repaired.lost_records:
            print("fsck selftest FAILED: torn-tail repair should be free")
            return 1
        reopened = DurableStore.open(root, policy)
        records = reopened.report.records
        reopened.close()
        after = fsck(root)
        if not after.clean:
            print("fsck selftest FAILED: dir not clean after repair")
            return 1
        print(f"fsck selftest ok: torn tail detected, repaired, "
              f"reopened with {len(records)} replayable record(s)")
        return 0
    finally:
        shutil.rmtree(root, ignore_errors=True)


def cmd_fsck(args: argparse.Namespace) -> int:
    if args.selftest:
        return _fsck_selftest()
    if args.state_dir is None:
        print("fsck needs a state dir (or --selftest)", file=sys.stderr)
        return 2
    from repro.recovery.durable import fsck

    report = fsck(args.state_dir, repair=args.repair)
    for line in report.lines():
        print(line)
    if report.clean:
        return 0
    if args.repair and report.repairable:
        # Repaired: the dir is openable again; lost records (if any)
        # were reported above.
        return 0
    return 1


def main(argv: Optional[List[str]] = None) -> int:
    argv = list(sys.argv[1:]) if argv is None else list(argv)
    # argparse.REMAINDER refuses to swallow a leading flag
    # (`serve --clients 100`), so hand the serve CLI its argv directly.
    if argv and argv[0] == "serve":
        from repro.serve.cli import main as serve_main

        return serve_main(argv[1:])
    parser = argparse.ArgumentParser(
        prog="repro",
        description="The Processing-in-Memory Model, executable.",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("info", help="versions, defaults, experiment index")
    sub.add_parser("demo", help="one-minute measured tour")
    rep = sub.add_parser("reproduce", help="regenerate the paper's tables")
    rep.add_argument("-k", default=None,
                     help="pytest -k filter (e.g. 'succ or fig3')")
    sub.add_parser("selftest", help="run the test suite")
    ver = sub.add_parser(
        "verify", help="differential verification: fuzz, replay, shrink")
    ver.add_argument("rest", nargs=argparse.REMAINDER,
                     help="verify subcommand and flags "
                          "(try: verify fuzz --help)")
    srv = sub.add_parser(
        "serve", help="drive the resilient serving layer "
                      "(try: serve --clients 100 --chaos intermittent)")
    srv.add_argument("rest", nargs=argparse.REMAINDER,
                     help="serve flags (try: serve --help)")
    fsk = sub.add_parser(
        "fsck", help="check/repair a durable WAL+snapshot state dir")
    fsk.add_argument("state_dir", nargs="?", default=None,
                     help="durable state dir (as given to "
                          "serve --state-dir)")
    fsk.add_argument("--repair", action="store_true",
                     help="truncate torn tails, delete orphan tmps and "
                          "corrupt-but-redundant snapshots; mid-log "
                          "damage is truncated with lost records "
                          "counted honestly")
    fsk.add_argument("--selftest", action="store_true",
                     help="damage a scratch store and round-trip "
                          "check -> repair -> reopen")
    args = parser.parse_args(argv)
    return {
        "info": cmd_info,
        "demo": cmd_demo,
        "reproduce": cmd_reproduce,
        "selftest": cmd_selftest,
        "verify": cmd_verify,
        "serve": cmd_serve,
        "fsck": cmd_fsck,
    }[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
