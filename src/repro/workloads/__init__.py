"""Workload generators, including the paper's adversarial patterns.

The model's batches are adversary-controlled subject to three constraints
(paper §2.1): one operation type per batch, a minimum batch size, and no
dependence on the algorithm's random choices.  These generators produce
exactly the workloads the paper reasons about:

- uniform batches (the *easy* case all partitioning schemes handle);
- duplicate-heavy Get batches (defeated by semisort deduplication);
- same-successor batches -- distinct keys that share one successor,
  the adversarial pattern that serializes naive batched search (§4.2);
- single-range batches -- keys concentrated in one contiguous key
  interval, the pattern that serializes range-partitioned structures
  (§2.2/§3.1);
- Zipf-skewed batches (a realistic middle ground);
- contiguous insert/delete runs (the worst case for batch pointer
  construction and splicing, Fig. 4).

:mod:`repro.workloads.skew` combines these into the skew-spectrum
registry: every ordered structure with a flatness expectation, swept by
the experiment scripts and the regression gate from one list.
"""

from repro.workloads.sessions import (
    Session,
    SessionBatch,
    generate_session,
    replay_session,
    summarize_replay,
)
from repro.workloads.generators import (
    build_items,
    contiguous_run,
    duplicate_heavy_batch,
    same_successor_batch,
    single_range_batch,
    uniform_batch,
    uniform_fresh_keys,
    zipf_batch,
)
from repro.workloads.skew import (
    SKEW_STRUCTURES,
    SkewEntry,
    flatness,
    skew_get_batches,
    sweep_get,
)

__all__ = [
    "SKEW_STRUCTURES",
    "Session",
    "SessionBatch",
    "SkewEntry",
    "build_items",
    "flatness",
    "skew_get_batches",
    "sweep_get",
    "generate_session",
    "replay_session",
    "summarize_replay",
    "contiguous_run",
    "duplicate_heavy_batch",
    "same_successor_batch",
    "single_range_batch",
    "uniform_batch",
    "uniform_fresh_keys",
    "zipf_batch",
]
