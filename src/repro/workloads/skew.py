"""The skew-spectrum registry: structures x skew levels, one sweep.

The paper's guarantees are *distribution-independent*; each baseline's
failure mode grows with some flavour of skew.  This module names the
contestants once -- the experiment scripts and the regression gate used
to hard-code their own structure lists, which is how a new structure
(the PIM-tree) ships without ever facing the adversary.  Anything
registered here is swept automatically.

Each :class:`SkewEntry` carries its *flatness expectation*: flatness is
``max(io) / io(uniform)`` across the skew levels of one sweep -- "what
does skew cost, relative to the easy case?".  Skew-resistant structures
bound it (``max_flatness``); skew-sensitive ones are pinned *above* a
floor (``min_flatness``), so the sweep doubles as a canary that the
adversarial workloads still bite.  A registry whose adversary stops
hurting the strawmen is broken in a way a green run would hide.

The sweep itself (:func:`sweep_get`) is measurement-only: build each
structure from the same items on its own machine, replay the same
batches, record the IO-time delta per skew level.  Assertions belong to
the callers (benchmarks, the smoke test); the library just reports.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.baselines import (
    FineGrainedSkipList,
    HashPartitionedMap,
    RangePartitionedSkipList,
)
from repro.core.skiplist import PIMSkipList
from repro.sim.machine import PIMMachine
from repro.structures.pimtree import PIMTree
from repro.workloads.generators import same_successor_batch, zipf_batch

__all__ = [
    "SKEW_STRUCTURES",
    "SkewEntry",
    "flatness",
    "skew_get_batches",
    "sweep_get",
]


@dataclass(frozen=True)
class SkewEntry:
    """One contestant in the skew sweep.

    ``factory`` builds an *empty* structure on ``machine`` (items are
    loaded by the sweep, so every contestant sees the same data).
    ``max_flatness`` bounds ``max(io)/io(uniform)`` for skew-resistant
    structures; ``min_flatness`` floors it for the skew-sensitive ones
    whose blow-up is the experiment's point.  At most one is set.
    """

    name: str
    factory: Callable[[PIMMachine], Any]
    max_flatness: Optional[float] = None
    min_flatness: Optional[float] = None


#: name -> entry.  Ordering is presentation order in the reports.
SKEW_STRUCTURES: Dict[str, SkewEntry] = {}


def register_skew_structure(entry: SkewEntry) -> None:
    """Add one contestant (collision-checked; tests sweep everything)."""
    if entry.name in SKEW_STRUCTURES:
        raise ValueError(f"skew structure {entry.name!r} registered twice")
    if entry.max_flatness is not None and entry.min_flatness is not None:
        raise ValueError(f"{entry.name!r}: max_flatness and min_flatness "
                         f"are mutually exclusive")
    SKEW_STRUCTURES[entry.name] = entry


register_skew_structure(SkewEntry(
    "ours", lambda m: PIMSkipList(m), max_flatness=1.5))
register_skew_structure(SkewEntry(
    "pimtree", lambda m: PIMTree(m), max_flatness=1.5))
register_skew_structure(SkewEntry(
    "range-part", lambda m: RangePartitionedSkipList(m), min_flatness=2.0))
register_skew_structure(SkewEntry(
    "hash-part", lambda m: HashPartitionedMap(m), max_flatness=1.5))
# Fine-grained placement balances *storage*, not *traffic*: same-succ
# queries funnel through one path's modules, so its flatness blows up
# with the coarse partitionings (measured ~3.7x at P=32).
register_skew_structure(SkewEntry(
    "fine-grained", lambda m: FineGrainedSkipList(m), min_flatness=2.0))


def skew_get_batches(keys: Sequence, b: int,
                     seed: int) -> Dict[str, List]:
    """The Get skew spectrum: uniform -> Zipf -> adversarial.

    Zipf ranks over the *stored key order*, so skew concentrates on a
    contiguous key region (poison for range partitioning).  The two
    adversarial endpoints: every query the same key (one-hot, defeated
    by dedup) and distinct keys sharing one successor's neighbourhood
    (same-succ, the §4.2 pattern dedup cannot touch).
    """
    rng = random.Random(seed)
    return {
        "uniform": [rng.choice(keys) for _ in range(b)],
        "zipf-1.2": zipf_batch(b, keys, alpha=1.2, seed=seed),
        "zipf-2.0": zipf_batch(b, keys, alpha=2.0, seed=seed),
        "same-succ": same_successor_batch(keys, b, random.Random(seed)),
        "one-hot": [keys[0]] * b,
    }


def flatness(ios: Dict[str, float]) -> float:
    """``max(io) / io(uniform)``: what does skew cost vs the easy case?"""
    return max(ios.values()) / max(1.0, ios["uniform"])


def sweep_get(items: Sequence[Tuple], batches: Dict[str, List], *,
              num_modules: int, seed: int,
              names: Optional[Sequence[str]] = None,
              ) -> Dict[str, Dict[str, float]]:
    """Replay every batch against every registered structure.

    Returns ``{structure: {skew: io_time}}`` in registry order.  Each
    structure gets its own machine (same seed) and a fresh build of the
    same items, so the rows are directly comparable.
    """
    out: Dict[str, Dict[str, float]] = {}
    for name in (names if names is not None else SKEW_STRUCTURES):
        entry = SKEW_STRUCTURES[name]  # KeyError on unknown names
        machine = PIMMachine(num_modules=num_modules, seed=seed)
        struct = entry.factory(machine)
        struct.build(list(items))
        ios: Dict[str, float] = {}
        for skew, batch in batches.items():
            before = machine.snapshot()
            struct.apply_batch("get", list(batch))
            ios[skew] = machine.delta_since(before).io_time
        out[name] = ios
    return out
