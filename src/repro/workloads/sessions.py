"""Mixed-operation session generation and replay.

A *session* is a reproducible sequence of batches (each of one operation
type, as the model requires) drawn from a configurable mix -- the
workload shape of a long-lived ordered store: mostly reads, steady
ingestion, periodic range analytics, occasional retention deletes.

``generate_session`` produces a plain data description (so sessions can
be saved, inspected, or replayed against *different* structures for
comparison); ``replay_session`` runs one against anything exposing the
batch API and returns per-batch metric deltas.

Sessions never touch the machine's message API: every batch dispatches
to a structure method, and every structure method is a
:class:`~repro.ops.BatchOp` driven by :func:`repro.ops.run_batch` -- the
replay loop below is pure dispatch + metric snapshots.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.sim.machine import PIMMachine
from repro.sim.metrics import MetricsDelta

DEFAULT_MIX = {
    "get": 0.40,
    "successor": 0.20,
    "upsert": 0.20,
    "delete": 0.10,
    "range": 0.10,
}


@dataclass
class SessionBatch:
    """One batch: an operation type plus its payload."""

    op: str
    payload: Any


@dataclass
class Session:
    """A reproducible batch sequence plus the key universe it assumes."""

    batches: List[SessionBatch]
    initial_keys: List[int]
    seed: int

    def __len__(self) -> int:
        return len(self.batches)

    def op_counts(self) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for b in self.batches:
            out[b.op] = out.get(b.op, 0) + 1
        return out


def generate_session(initial_keys: Sequence[int], num_batches: int,
                     batch_size: int, seed: int = 0,
                     mix: Optional[Dict[str, float]] = None,
                     key_space: Optional[int] = None) -> Session:
    """Draw a session against a live key universe.

    The generator tracks which keys exist (inserts add, deletes remove),
    so Get batches mostly hit, Deletes target live keys, and Upserts mix
    updates with fresh inserts -- a coherent workload rather than noise.
    """
    mix = dict(DEFAULT_MIX if mix is None else mix)
    total = sum(mix.values())
    if total <= 0:
        raise ValueError("mix must have positive total weight")
    ops = list(mix)
    weights = [mix[o] / total for o in ops]
    rng = random.Random(seed)
    live = sorted(initial_keys)
    live_set = set(live)
    space = key_space if key_space is not None else (
        (max(live) if live else 0) + 10 * batch_size * num_batches + 10
    )
    batches: List[SessionBatch] = []
    fresh_counter = space  # fresh keys drawn above the space

    for _ in range(num_batches):
        op = rng.choices(ops, weights)[0]
        if op == "get":
            payload = [rng.choice(live) if live and rng.random() < 0.8
                       else rng.randrange(space)
                       for _ in range(batch_size)]
        elif op == "successor":
            payload = [rng.randrange(space) for _ in range(batch_size)]
        elif op == "upsert":
            payload = []
            for _ in range(batch_size):
                if live and rng.random() < 0.5:
                    payload.append((rng.choice(live), rng.randrange(1000)))
                else:
                    fresh_counter += 1 + rng.randrange(3)
                    payload.append((fresh_counter, rng.randrange(1000)))
                    live.append(fresh_counter)
                    live_set.add(fresh_counter)
        elif op == "delete":
            k = min(batch_size, len(live))
            payload = rng.sample(live, k) if k else []
            for key in payload:
                live_set.discard(key)
            live = [x for x in live if x in live_set]
        elif op == "range":
            payload = []
            for _ in range(max(1, batch_size // 8)):
                a = rng.randrange(space)
                payload.append((a, a + rng.randrange(1, space // 10 + 2)))
        else:
            raise ValueError(f"unknown op {op!r} in mix")
        batches.append(SessionBatch(op=op, payload=payload))
    return Session(batches=batches, initial_keys=sorted(initial_keys),
                   seed=seed)


def replay_session(machine: PIMMachine, structure: Any, session: Session,
                   ) -> List[Tuple[str, MetricsDelta]]:
    """Run a session against ``structure``; returns (op, delta) per batch.

    ``structure`` must expose ``batch_get/batch_successor/batch_upsert/
    batch_delete`` and ``batch_range``; the skip list, and the baselines
    (with their range signature differences papered over), qualify.
    """
    out: List[Tuple[str, MetricsDelta]] = []
    for batch in session.batches:
        before = machine.snapshot()
        if batch.op == "get":
            structure.batch_get(batch.payload)
        elif batch.op == "successor":
            structure.batch_successor(batch.payload)
        elif batch.op == "upsert":
            structure.batch_upsert(batch.payload)
        elif batch.op == "delete":
            structure.batch_delete(batch.payload)
        elif batch.op == "range":
            structure.batch_range(batch.payload)
        else:  # pragma: no cover - generator guards this
            raise ValueError(f"unknown op {batch.op!r}")
        out.append((batch.op, machine.delta_since(before)))
    return out


def summarize_replay(deltas: Sequence[Tuple[str, MetricsDelta]],
                     ) -> Dict[str, Dict[str, float]]:
    """Per-op totals of io/pim/rounds over a replay."""
    out: Dict[str, Dict[str, float]] = {}
    for op, d in deltas:
        agg = out.setdefault(op, {"batches": 0, "io_time": 0.0,
                                  "pim_time": 0.0, "rounds": 0.0})
        agg["batches"] += 1
        agg["io_time"] += d.io_time
        agg["pim_time"] += d.pim_time
        agg["rounds"] += d.rounds
    return out
