"""Concrete workload generators (see package docstring)."""

from __future__ import annotations

import random
from typing import List, Optional, Sequence, Tuple

import numpy as np

KEY_STRIDE = 1 << 20
"""Default spacing between built keys: leaves room for 2^20 adversarial
in-gap keys between any two stored keys."""


def build_items(n: int, stride: int = KEY_STRIDE, value_of=lambda k: k,
                ) -> List[Tuple[int, int]]:
    """``n`` sorted (key, value) pairs spaced ``stride`` apart.

    Wide spacing lets adversarial generators place arbitrarily many
    distinct query keys inside a single gap.
    """
    return [(i * stride, value_of(i * stride)) for i in range(1, n + 1)]


def uniform_batch(batch_size: int, key_space: int, rng: random.Random,
                  ) -> List[int]:
    """Uniformly random (possibly repeating) keys in [0, key_space)."""
    return [rng.randrange(key_space) for _ in range(batch_size)]


def uniform_fresh_keys(batch_size: int, existing: Sequence[int],
                       rng: random.Random, key_space: Optional[int] = None,
                       ) -> List[int]:
    """``batch_size`` distinct keys not present in ``existing``."""
    taken = set(existing)
    space = key_space if key_space is not None else (
        (max(taken) if taken else 0) + KEY_STRIDE * (batch_size + 1)
    )
    out: set = set()
    while len(out) < batch_size:
        k = rng.randrange(space)
        if k not in taken and k not in out:
            out.add(k)
    return sorted(out)


def duplicate_heavy_batch(batch_size: int, hot_key: int,
                          rng: random.Random, distinct: int = 1,
                          ) -> List[int]:
    """A Get batch dominated by one (or a few) hot keys.

    Without semisort deduplication, every duplicate lands on the hot
    key's module: PIM time and IO time degenerate to ``Theta(B)``.
    """
    if distinct <= 1:
        return [hot_key] * batch_size
    keys = [hot_key + i for i in range(distinct)]
    return [keys[rng.randrange(distinct)] for _ in range(batch_size)]


def same_successor_batch(stored_keys: Sequence[int], batch_size: int,
                         rng: random.Random) -> List[int]:
    """Distinct keys that all share one successor (paper §4.2's adversary).

    Picks a gap between adjacent stored keys wide enough for the batch
    and draws distinct keys inside it: every Successor search funnels
    into the same path, which serializes the naive batched algorithm
    while the pivot algorithm stays PIM-balanced.
    """
    ks = sorted(stored_keys)
    gaps = [(ks[0] - 0, 0, ks[0])] if ks and ks[0] > batch_size else []
    for a, b in zip(ks, ks[1:]):
        if b - a - 1 >= batch_size:
            gaps.append((b - a, a + 1, b))
    if not gaps:
        raise ValueError("no gap wide enough for the adversarial batch")
    _, lo, hi = gaps[rng.randrange(len(gaps))]
    if hi - lo == batch_size:
        return list(range(lo, hi))
    out: set = set()
    while len(out) < batch_size:
        out.add(rng.randrange(lo, hi))
    return sorted(out)


def single_range_batch(batch_size: int, lo: int, hi: int,
                       rng: random.Random, distinct: bool = True,
                       ) -> List[int]:
    """Keys concentrated inside one key interval [lo, hi).

    Against a range-partitioned structure, the whole batch routes to the
    single module owning that interval (§2.2's serialization argument).
    """
    if distinct:
        if hi - lo < batch_size:
            raise ValueError("interval too narrow for distinct keys")
        out: set = set()
        while len(out) < batch_size:
            out.add(rng.randrange(lo, hi))
        return sorted(out)
    return [rng.randrange(lo, hi) for _ in range(batch_size)]


def zipf_batch(batch_size: int, stored_keys: Sequence[int], alpha: float,
               seed: int) -> List[int]:
    """Zipf-distributed references over the stored keys (rank-skewed)."""
    ks = list(stored_keys)
    n = len(ks)
    rng = np.random.default_rng(seed)
    ranks = rng.zipf(alpha, size=batch_size)
    return [ks[min(int(r) - 1, n - 1)] for r in ranks]


def contiguous_run(start: int, count: int, step: int = 1) -> List[int]:
    """``count`` consecutive keys from ``start`` (worst case for batch
    pointer construction / splicing: all new nodes are neighbors)."""
    return [start + i * step for i in range(count)]
