"""The batched-operation pipeline: plan -> route -> execute -> aggregate.

Every bound in the paper (Theorems 4.1-4.5, 5.1-5.2) has the same shape:
some CPU-side planning, one or more bulk-synchronous message rounds
against the PIM modules, and a CPU-side reduction of the replies.  This
module factors that shape into a single reusable driver so the skip-list
ops, the baselines, the collectives and the container structures all
share one dispatch/transfer substrate instead of hand-rolled staging
loops.

The four phases of a :class:`BatchOp`:

- **plan** -- CPU-side preparation (dedup, sort, grouping); charged via
  ``machine.cpu`` exactly as before.  Returns an opaque plan object that
  the later phases receive.
- **route** -- a *generator* that yields message **stages**.  A stage is
  an iterable of ``send_all``-format tuples (``(dest, fn, args, tag)`` or
  ``(dest, fn, args, tag, size)``) and/or :class:`Broadcast` markers, in
  issue order.  After each stage the driver issues the messages, drains
  the network to quiescence, and sends the collected replies back into
  the generator (``replies = yield stage``).  The generator's return
  value becomes the routed result.  Between stages the machine is
  quiescent, so a route may invoke *other* ops (nested ``run_batch``) as
  plain calls -- that is how composite ops (upsert's embedded search, the
  LSM's delta probes) are built.
- **execute** -- the PIM side: the handler functions returned by
  :meth:`BatchOp.handlers`, registered by the driver and run by the round
  engine on the modules.
- **aggregate** -- the final CPU-side reduction from the routed result to
  the op's return value.

The driver (:func:`run_batch`) owns handler registration, staged-queue
issue, round draining (labelled with the op name, so a livelock report
names its originating op) and leaves all metric charging to the phases
and the round engine -- the cost model is unchanged.

Backends and observability hook in here: a different driver (e.g. one
that ships stages to multiprocess shards, or charges an alternative cost
model) can run any existing op unmodified, because ops never touch the
machine's message API directly.  A machine may carry a
``batch_observer`` callable (see :attr:`PIMMachine.batch_observer`);
when set, the driver snapshots the machine around every op and reports
``(op.name, MetricsDelta)`` after a successful run -- the per-batch
metric feed the differential-verification subsystem (:mod:`repro.verify`)
checks its cost invariants against.  Nested ops report too (inner ops
first, since they complete first); observers must not issue messages or
charge costs.

Design notes for op authors
---------------------------

- ``route`` must be a generator function.  A stage-free op can
  ``return value`` before any ``yield`` (use the ``if False: yield``
  idiom to force generator-ness if there is no other yield).
- An *empty* stage is legal and free: draining a quiescent machine is a
  no-op, so conditional stages may simply yield nothing.
- Hold shared-memory allocations across stages with ``try/finally`` (or
  ``with cpu.region(...)``) inside the generator; on an exception the
  driver closes the generator, which runs the ``finally`` blocks.  Never
  yield from inside a ``finally`` -- cleanup *messages* must be a normal
  success-path stage.
- Handler dicts must be stable: :meth:`PIMMachine.register` treats
  re-registration of the identical handler object as a no-op but rejects
  a different object under the same id, so :meth:`BatchOp.handlers` must
  return a cached dict (see :func:`cached_handlers`), or ``{}`` when the
  owning structure registered its handlers at construction time.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional

from repro.sim.chaos import DELIVER_FN
from repro.sim.errors import (DeliveryTimeout, MalformedMessageError,
                              UnknownHandlerError)
from repro.sim.machine import Handler, PIMMachine

__all__ = ["ACK_TAG", "BatchOp", "Broadcast", "cached_handlers",
           "run_batch"]


class Broadcast:
    """A stage element that goes to *every* module (one copy each).

    Equivalent to :meth:`PIMMachine.broadcast`; the ``size`` is the
    accounted per-copy message size in constant-size units.
    """

    __slots__ = ("fn", "args", "tag", "size")

    def __init__(self, fn: str, args: tuple = (), tag: Any = None,
                 size: int = 1) -> None:
        self.fn = fn
        self.args = args
        self.tag = tag
        self.size = size

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"Broadcast(fn={self.fn!r}, args={self.args!r}, "
                f"tag={self.tag!r}, size={self.size!r})")


class BatchOp:
    """One batched operation, split into its pipeline phases.

    Subclasses override the phases they need; the defaults make the
    trivial op (no handlers, plan is the batch, no stages, aggregate is
    the routed value) a no-op.
    """

    #: Human-readable op id; names the drain in livelock reports.
    name = "op"
    #: Round bound passed to ``drain`` for every stage of this op.
    max_rounds = 1_000_000

    def handlers(self) -> Dict[str, Handler]:
        """The execute phase: function-id -> handler dict to register.

        Must return a *stable* dict (same object every call) -- see the
        module docstring -- or ``{}`` when the host structure registers
        its handlers itself at construction time.
        """
        return {}

    def plan(self, machine: PIMMachine, batch: Any) -> Any:
        """CPU-side planning; returns the plan passed to route/aggregate."""
        return batch

    def route(self, machine: PIMMachine, plan: Any):
        """Generator yielding message stages; returns the routed result."""
        return plan
        yield  # pragma: no cover - marks this default as a generator

    def aggregate(self, machine: PIMMachine, plan: Any, routed: Any) -> Any:
        """Final CPU-side reduction; defaults to the routed result."""
        return routed


def cached_handlers(host: Any, key: str, factory) -> Dict[str, Handler]:
    """Create a handler dict once per ``host`` object and memoise it.

    The machine requires re-registration to present the *same* handler
    objects, so handler factories (which build fresh closures) must run
    at most once per host structure.  The cache lives on the host under
    ``_handler_cache`` (hosts are plain objects without ``__slots__``).
    """
    cache = getattr(host, "_handler_cache", None)
    if cache is None:
        cache = {}
        host._handler_cache = cache
    h = cache.get(key)
    if h is None:
        h = factory()
        cache[key] = h
    return h


# -- reliable delivery ----------------------------------------------------
#
# With a fault plan installed (machine.install_fault_plan) the driver
# wraps every CPU->module message of every stage in a sequence-numbered
# envelope (function id repro.sim.chaos.DELIVER_FN).  The module-side
# wrapper acknowledges each arrival with a one-unit reply and executes
# the inner handler exactly once (ModuleContext.first_delivery dedups
# redelivery); the CPU side retries unacknowledged envelopes after each
# drain with capped exponential backoff charged as idle rounds, and
# escalates to DeliveryTimeout when config.max_delivery_attempts is
# exhausted.  Every protocol byte is charged to the ordinary metrics:
# envelopes and retransmissions enter the h-relation like any message,
# acks are one-unit replies, and backoff burns rounds + sync cost.
# Replies and forwards stay outside the protocol -- the chaos layer
# never faults them (see repro.sim.chaos for why that makes the
# protocol end-to-end exactly-once).


class _AckTag:
    """Identity tag of protocol acknowledgements (never user-visible)."""

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "<ack>"


ACK_TAG = _AckTag()


def _deliver(ctx, seq, fn, args, inner_tag, size, corrupt=False, tag=None):
    """Module-side envelope handler: ack, dedup, run the inner task."""
    if corrupt:
        # Payload failed its checksum in flight: discard without acking;
        # the sender's retry carries a fresh copy.
        ctx.charge(1)
        return
    ctx.reply(seq, tag=ACK_TAG, size=1)
    if not ctx.first_delivery(seq):
        return
    ctx._handlers[fn](ctx, *args, tag=inner_tag)


class _ReliableChannel:
    """Per-machine protocol state: sequence counter + in-flight table."""

    def __init__(self, machine: PIMMachine) -> None:
        machine.register(DELIVER_FN, _deliver)
        self.next_seq = 0
        # seq -> [dest, fn, attempt]; populated while a stage is being
        # delivered, so drain diagnostics can tell an in-flight retry
        # from a genuinely stuck op.
        self.inflight: Dict[int, list] = {}

    def describe(self) -> str:
        parts = [f"{fn}->module {dest} (seq {seq}, retry attempt {att})"
                 for seq, (dest, fn, att) in
                 sorted(self.inflight.items())[:6]]
        more = "" if len(self.inflight) <= 6 else \
            f" (+{len(self.inflight) - 6} more)"
        return ("in-flight protocol retries, not stuck ops: "
                + ", ".join(parts) + more)


def _channel(machine: PIMMachine) -> _ReliableChannel:
    chan = getattr(machine, "_rdp", None)
    if chan is None:
        chan = machine._rdp = _ReliableChannel(machine)
    return chan


def _reliable_stage(machine: PIMMachine, op: "BatchOp",
                    stage: Optional[Iterable]) -> list:
    """Issue one stage under the reliable-delivery protocol and drain to
    quiescence, retrying lost envelopes; returns the inner replies."""
    chan = _channel(machine)
    pending: Dict[int, tuple] = {}  # seq -> envelope send tuple
    if stage is not None:
        handlers = machine._handlers

        def wrap(dest: int, fn: str, args: tuple, tag: Any,
                 size: int) -> None:
            if fn not in handlers:
                raise UnknownHandlerError(
                    f"no handler for {fn!r} (resolved at send time)")
            seq = chan.next_seq
            chan.next_seq += 1
            pending[seq] = (dest, DELIVER_FN, (seq, fn, args, tag, size),
                            None, size)
            chan.inflight[seq] = [dest, fn, 1]

        for item in stage:
            if item.__class__ is Broadcast:
                for mid in range(machine.num_modules):
                    wrap(mid, item.fn, item.args, item.tag, item.size)
            elif len(item) == 4:
                dest, fn, args, tag = item
                wrap(dest, fn, args, tag, 1)
            elif len(item) == 5:
                wrap(*item)
            else:
                raise MalformedMessageError(
                    f"send_all message has {len(item)} elements; expected "
                    f"(dest, fn, args, tag) or (dest, fn, args, tag, size): "
                    f"{item!r}")
        if pending:
            machine.send_all(pending.values())
    inner: List[Any] = []
    attempt = 1
    cfg = machine.config
    while True:
        for r in machine.drain(op.max_rounds, label=op.name):
            if r.tag is ACK_TAG:
                if pending.pop(r.payload, None) is not None:
                    chan.inflight.pop(r.payload, None)
            else:
                inner.append(r)
        if not pending:
            return inner
        if attempt >= cfg.max_delivery_attempts:
            # Partition the undelivered envelopes by destination
            # liveness: a message to a currently-dead module is *stuck*
            # (no retry budget would ever land it), while one to a live
            # module is an in-flight retry that merely ran out of
            # attempts under transient faults (drops, corruption).  The
            # two populations call for different operator responses
            # (failover vs a larger max_delivery_attempts), so the
            # diagnostics list them separately.
            chaos = machine._chaos
            rnd = (machine.metrics.rounds - chaos.base_round
                   if chaos is not None else 0)
            stuck: List[str] = []
            retrying: List[str] = []
            for seq, (dest, fn, _a) in sorted(chan.inflight.items()):
                if seq not in pending:
                    continue
                label = f"{fn}->module {dest} (seq {seq})"
                if dest in machine.wiped_modules or (
                        chaos is not None
                        and chaos.plan.is_dead(dest, rnd)):
                    stuck.append(label)
                else:
                    retrying.append(label)
            sections = []
            for kind, group in (("stuck on dead module(s)", stuck),
                                ("still retrying (transient faults)",
                                 retrying)):
                if not group:
                    continue
                more = ("" if len(group) <= 6
                        else f" (+{len(group) - 6} more)")
                sections.append(f"{len(group)} {kind}: "
                                f"{', '.join(group[:6])}{more}")
            for seq in pending:
                chan.inflight.pop(seq, None)
            raise DeliveryTimeout(
                f"op {op.name!r}: {len(pending)} message(s) undelivered "
                f"after {attempt} attempts (max_delivery_attempts="
                f"{cfg.max_delivery_attempts}): {'; '.join(sections)}",
                op=op.name, attempts=attempt, undelivered=len(pending),
                stuck=len(stuck), retrying=len(retrying))
        backoff = min(cfg.retry_backoff_base << (attempt - 1),
                      cfg.retry_backoff_cap)
        machine.idle_rounds(backoff)
        attempt += 1
        for seq in pending:
            chan.inflight[seq][2] = attempt
        chaos = machine._chaos
        if chaos is not None:
            chaos.stats.retransmissions += len(pending)
        machine.send_all(list(pending.values()))


def _issue(machine: PIMMachine, stage: Optional[Iterable]) -> None:
    """Issue one stage: runs of send tuples via ``send_all``, broadcasts
    in place, preserving the stage's element order exactly."""
    if stage is None:
        return
    run = []
    for item in stage:
        if item.__class__ is Broadcast:
            if run:
                machine.send_all(run)
                run = []
            machine.broadcast(item.fn, item.args, item.tag, item.size)
        else:
            run.append(item)
    if run:
        machine.send_all(run)


def run_batch(machine: PIMMachine, op: BatchOp, batch: Any = None) -> Any:
    """Drive one :class:`BatchOp` to completion and return its result.

    Registers the op's handlers (idempotent), runs ``plan``, then
    alternates ``route`` stages with network drains, and finishes with
    ``aggregate``.  Draining an empty network is free, so the driver
    drains unconditionally after every stage -- the op's yield points
    alone determine the round structure.

    With a fault plan installed on the machine, every stage is issued
    through the reliable-delivery protocol instead (see the module
    comment above): ops are written against a perfect network and
    survive message-level faults without changes.
    """
    observer = getattr(machine, "batch_observer", None)
    before = machine.snapshot() if observer is not None else None
    handlers = op.handlers()
    if handlers:
        machine.register_all(handlers)
    plan = op.plan(machine, batch)
    gen = op.route(machine, plan)
    replies: Any = None
    try:
        while True:
            try:
                stage = gen.send(replies)
            except StopIteration as stop:
                routed = stop.value
                break
            if machine._chaos is None:
                _issue(machine, stage)
                replies = machine.drain(op.max_rounds, label=op.name)
            else:
                replies = _reliable_stage(machine, op, stage)
    except BaseException:
        gen.close()
        raise
    result = op.aggregate(machine, plan, routed)
    if observer is not None:
        machine.batch_observer = None
        try:
            observer(op.name, machine.delta_since(before))
        finally:
            machine.batch_observer = observer
    return result
