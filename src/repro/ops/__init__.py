"""The batched-operation pipeline layer (plan/route/execute/aggregate).

See :mod:`repro.ops.pipeline` for the :class:`BatchOp` protocol and the
:func:`run_batch` driver that every batched op in the repository runs
through.
"""

from repro.ops.pipeline import BatchOp, Broadcast, cached_handlers, run_batch

__all__ = ["BatchOp", "Broadcast", "cached_handlers", "run_batch"]
