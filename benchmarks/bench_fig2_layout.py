"""Experiment FIG2: the pointer structure of Fig. 2, regenerated.

Renders a small live structure exactly the way the paper draws it
(levels bottom-up, upper part replicated, lower nodes labeled with their
hash-assigned module, per-module local leaf lists), and checks the
quantitative facts the figure encodes: the upper part is the high
levels, lower nodes' owners match the (key, level) hash, and the local
leaf lists partition the leaves in key order.
"""

from repro import PIMMachine, PIMSkipList
from repro.analysis.structure_viz import layout_summary, render_structure
from repro.core.node import UPPER

from conftest import report


def test_fig2_layout(benchmark):
    machine = PIMMachine(num_modules=4, seed=2)
    sl = PIMSkipList(machine)
    keys = [0, 2, 6, 7, 15, 20, 25, 33]  # the figure's own key set
    sl.build([(k, "V") for k in keys])
    struct = sl.struct

    picture = render_structure(struct)
    print("\n" + picture)
    summary = layout_summary(struct)
    report(
        "FIG2: structure layout facts (P=4, the figure's key set)",
        ["level", "nodes", "part"],
        [[lvl, cnt, "upper" if lvl >= summary["h_low"] else "lower"]
         for lvl, cnt in sorted(summary["per_level"].items())],
        notes=f"h_low={summary['h_low']}; leaves per module="
              f"{summary['leaves_per_module']}\n\n{picture}",
    )

    # the figure's structural facts
    assert summary["per_level"][0] == len(keys)
    for lvl in range(summary["h_low"]):
        for node in struct.iter_level(lvl):
            assert node.owner == struct.owner_of(node.key, lvl)
    for lvl in range(summary["h_low"], summary["top_level"] + 1):
        for node in struct.iter_level(lvl):
            assert node.owner == UPPER
    assert sum(summary["leaves_per_module"]) == len(keys)
    sl.check_integrity()

    benchmark(lambda: render_structure(struct))
