"""Ablations of the design choices DESIGN.md calls out.

1. **Semisort deduplication** (Get): with dedup disabled, a hot-key
   batch concentrates on one module -- IO time Theta(B) vs O(log P).
2. **Pivot count** (Successor stage 1): fewer pivots means longer
   segments, more stage-2 contention and IO on adversarial batches.
3. **Upper/lower split height** h_low: lower split (more replication)
   saves search IO but multiplies memory; higher split saves memory but
   pays more remote hops per search -- the paper's log2 P balances them.
4. **Broadcast vs tree** execution for range ops as K grows (the
   crossover, complementing THM52b).
"""

import math
import random

from repro import PIMMachine, PIMSkipList
from repro.workloads import build_items, duplicate_heavy_batch, same_successor_batch

from conftest import built_skiplist, log2i, measure, report


def test_ablation_dedup(benchmark):
    """Send the raw hot-key batch without semisort dedup."""
    p = 16
    machine, sl, keys = built_skiplist(p, n=800, seed=1)
    rng = random.Random(1)
    b = p * log2i(p) * 4
    hot = duplicate_heavy_batch(b, keys[3], rng)

    d_with = measure(machine, lambda: sl.batch_get(hot))

    def no_dedup():
        for key in hot:
            machine.send(sl.struct.leaf_owner(key),
                         f"{sl.struct.name}:pt_get", (key,))
        machine.drain()

    d_without = measure(machine, no_dedup)
    report(
        "ABL-1: Get with vs without semisort dedup (hot-key batch)",
        ["variant", "IO time", "PIM balance"],
        [["with dedup", d_with.io_time, d_with.pim_balance_ratio],
         ["without dedup", d_without.io_time, d_without.pim_balance_ratio]],
        notes="without dedup the hot key's module receives the whole"
              " batch: IO ~ 2B.",
    )
    assert d_without.io_time >= 2 * b
    assert d_with.io_time <= 4
    benchmark(lambda: sl.batch_get(hot))


def test_ablation_pivot_density(benchmark):
    """Longer segments (fewer pivots) raise adversarial successor cost.

    Simulated by shrinking the machine's log P (more ops per pivot is
    equivalent to running the stage-2 policy with sparser hints): we
    compare the pivot algorithm against the extreme ablation -- no pivots
    at all (the naive execution) -- and a half-density variant emulated
    by doubling segment length via a monkeypatched log.
    """
    from repro.baselines import naive_batch_successor

    p = 32
    machine, sl, keys = built_skiplist(p, n=1600, seed=2, stride=10**6)
    rng = random.Random(2)
    b = p * log2i(p) ** 2
    batch = same_successor_batch(keys, b, rng)

    d_pivot = measure(machine, lambda: sl.batch_successor(batch))
    d_naive = measure(machine,
                      lambda: naive_batch_successor(sl.struct, batch))
    report(
        "ABL-2: pivot density (full pivots vs none) on adversary (P=32)",
        ["variant", "IO time", "IO/op"],
        [["P log P pivots (paper)", d_pivot.io_time, d_pivot.io_time / b],
         ["no pivots (naive)", d_naive.io_time, d_naive.io_time / b]],
        notes="pivots are the entire ballgame on adversarial batches.",
    )
    assert d_pivot.io_time * 5 < d_naive.io_time
    benchmark(lambda: sl.batch_successor(batch))


def test_ablation_split_height(benchmark):
    """Vary h_low around the paper's log2 P."""
    p = 16
    n = 1600
    rows = []
    rng = random.Random(3)
    items = build_items(n, stride=10**6)
    qs = [rng.randrange(n * 10**6) for _ in range(p * 4)]
    for h in (2, 4, 6, 8):
        machine = PIMMachine(num_modules=p, seed=3)
        sl = PIMSkipList(machine, h_low_override=h)
        sl.build(items)
        words = sum(m.words_used for m in machine.modules)
        d = measure(machine, lambda: sl.batch_successor(qs))
        rows.append([h, words, d.io_time, d.messages / len(qs)])
    report(
        "ABL-3: upper/lower split height h_low (paper: log2 P = 4)",
        ["h_low", "total words", "successor IO", "msgs/query"],
        rows,
        notes="low h_low replicates more (words up), searches go remote"
              " sooner... high h_low shrinks replication but lengthens"
              " the remote lower-part walk.",
    )
    words = {r[0]: r[1] for r in rows}
    msgs = {r[0]: r[3] for r in rows}
    assert words[2] > words[4] > words[8]   # replication cost falls
    assert msgs[8] > msgs[4]                # remote hops rise
    machine = PIMMachine(num_modules=p, seed=4)
    sl = PIMSkipList(machine)
    sl.build(items)
    benchmark(lambda: sl.batch_successor(qs))


def test_ablation_adaptive_adversary(benchmark):
    """Why §2.1's constraint (iii) exists: queries "cannot depend on the
    outcome of random choices made by the algorithm."

    An adversary who *can* see the hash family picks distinct keys that
    all own-hash to one module; deduplication cannot help (the keys are
    distinct) and the Get batch serializes exactly like range
    partitioning did.  The oblivious adversary with the same number of
    distinct keys stays balanced.
    """
    p = 16
    machine, sl, keys = built_skiplist(p, n=50 * p, seed=13)
    rng = random.Random(13)
    b = p * log2i(p)

    # adaptive: search the key space for keys owned by module 0
    adaptive = []
    k = 10 ** 9
    while len(adaptive) < b:
        k += 1
        if sl.struct.leaf_owner(k) == 0:
            adaptive.append(k)
    oblivious = [10 ** 9 + rng.randrange(10 ** 8) for _ in range(b)]

    d_adapt = measure(machine, lambda: sl.batch_get(adaptive))
    d_obliv = measure(machine, lambda: sl.batch_get(oblivious))
    report(
        "ABL-5: adaptive vs oblivious adversary on batched Get (P=16)",
        ["adversary", "IO time", "PIM balance"],
        [["sees the hash (adaptive)", d_adapt.io_time,
          d_adapt.pim_balance_ratio],
         ["oblivious (the model's)", d_obliv.io_time,
          d_obliv.pim_balance_ratio]],
        notes="constraint (iii) of SS2.1 is load-bearing: against an"
              " adaptive adversary no hashing scheme is balanced.",
    )
    assert d_adapt.io_time >= 2 * b          # everything on module 0
    assert d_adapt.pim_balance_ratio > p / 2
    assert d_obliv.io_time < d_adapt.io_time / 3
    assert d_obliv.pim_balance_ratio < 4

    benchmark(lambda: sl.batch_get(oblivious))


def test_ablation_broadcast_vs_tree_crossover_in_p(benchmark):
    """Broadcast pays a 2P-message floor per op; the tree's cost is a
    function of K and log n only.  At fixed small K the crossover is in
    P: broadcast wins small machines, the tree wins large ones -- which
    is why the paper provides both executions."""
    from repro.core.ops_range import range_tree_single

    rows = []
    k_span = 8
    for p in (16, 64, 256):
        machine, sl, keys = built_skiplist(p, n=1500, seed=5)
        lo, hi = keys[700], keys[700 + k_span - 1]
        d_tree = measure(
            machine,
            lambda: range_tree_single(sl.struct, lo, hi, func="count"))
        d_bc = measure(machine,
                       lambda: sl.range_broadcast(lo, hi, func="count"))
        rows.append([p, d_tree.messages, d_bc.messages,
                     "tree" if d_tree.messages < d_bc.messages
                     else "broadcast"])
    report(
        "ABL-4: tree vs broadcast for one K=8 op, crossover in P",
        ["P", "tree msgs", "broadcast msgs (2P)", "winner"],
        rows,
        notes="the paper keeps both executions; pick by K relative to P.",
    )
    assert rows[0][3] == "broadcast"  # small machine: floor is cheap
    assert rows[-1][3] == "tree"      # large machine: floor dominates
    machine2, sl2, keys2 = built_skiplist(8, n=500, seed=6)
    benchmark(lambda: sl2.range_broadcast(keys2[0], keys2[-1],
                                          func="count"))
