"""Experiment WHP: the bounds hold *with high probability* -- envelopes.

The paper's bounds are whp in P: across random placements (the structure
seed draws the hash family and coin flips), the metric must concentrate.
This experiment runs each headline metric over 12 seeds per machine size
via the :class:`repro.analysis.Sweep` runner and reports the
(min, median, max) envelope -- a tight max/median ratio is the empirical
whp statement.
"""

import math
import random

from repro import PIMMachine, PIMSkipList
from repro.analysis import Sweep
from repro.workloads import build_items, same_successor_batch

from conftest import log2i, report

PS = [8, 16, 32]
REPEATS = 12


def run_sweep(op_factory):
    sweep = Sweep("whp", params=PS, repeats=REPEATS, base_seed=100)

    @sweep.point
    def point(p, seed):
        machine = PIMMachine(num_modules=p, seed=seed)
        sl = PIMSkipList(machine)
        items = build_items(40 * p, stride=10 ** 6)
        sl.build(items)
        op = op_factory(p, seed, [k for k, _ in items])
        before = machine.snapshot()
        op(sl)
        return machine.delta_since(before)

    return sweep.run()


def test_successor_io_envelope(benchmark):
    def factory(p, seed, keys):
        rng = random.Random(seed)
        batch = same_successor_batch(keys, p * log2i(p) ** 2, rng)
        return lambda sl: sl.batch_successor(batch)

    table = run_sweep(factory)
    env = table.envelope("io_time")
    rows = [[p, *env[p], env[p][2] / max(1.0, env[p][1])] for p in PS]
    report(
        "WHP-a: adversarial Successor IO envelope (12 seeds per P)",
        ["P", "min IO", "median IO", "max IO", "max/median"],
        rows,
        notes="whp concentration: the worst seed stays within a small"
              " factor of the median.",
    )
    for row in rows:
        assert row[4] < 3.0

    machine = PIMMachine(num_modules=8, seed=0)
    sl = PIMSkipList(machine)
    items = build_items(320, stride=10**6)
    sl.build(items)
    batch = same_successor_batch([k for k, _ in items], 72,
                                 random.Random(0))
    benchmark(lambda: sl.batch_successor(batch))


def test_get_and_balance_envelopes(benchmark):
    def factory(p, seed, keys):
        rng = random.Random(seed)
        batch = [rng.choice(keys) for _ in range(p * log2i(p))]
        return lambda sl: sl.batch_get(batch)

    table = run_sweep(factory)
    rows = []
    for p in PS:
        io = table.envelope("io_time")[p]
        bal = table.envelope("pim_balance_ratio")[p]
        rows.append([p, io[1], io[2] / max(1.0, io[1]), bal[1], bal[2]])
    report(
        "WHP-b: uniform Get IO + balance envelopes (12 seeds per P)",
        ["P", "median IO", "IO max/median", "median balance",
         "max balance"],
        rows,
    )
    for row in rows:
        assert row[2] < 3.0   # IO concentrates
        assert row[4] < 8.0   # even the worst seed stays balanced

    machine = PIMMachine(num_modules=8, seed=1)
    sl = PIMSkipList(machine)
    items = build_items(320, stride=10**6)
    sl.build(items)
    rng = random.Random(1)
    batch = [rng.choice([k for k, _ in items]) for _ in range(24)]
    benchmark(lambda: sl.batch_get(batch))


def test_space_envelope(benchmark):
    """Theorem 3.1's per-module O(n/P) whp across placements."""
    rows = []
    for p in PS:
        ratios = []
        for seed in range(REPEATS):
            machine = PIMMachine(num_modules=p, seed=200 + seed)
            sl = PIMSkipList(machine)
            sl.build(build_items(80 * p, stride=1000))
            words = [m.words_used for m in machine.modules]
            ratios.append(max(words) / (sum(words) / p))
        rows.append([p, min(ratios), sorted(ratios)[len(ratios) // 2],
                     max(ratios)])
    report(
        "WHP-c: per-module space max/mean envelope (12 seeds per P)",
        ["P", "min", "median", "max"],
        rows,
        notes="Thm 3.1: O(n/P) whp per module.",
    )
    for row in rows:
        assert row[3] < 1.6

    benchmark.pedantic(
        lambda: PIMSkipList(PIMMachine(num_modules=8, seed=3)).build(
            build_items(320, stride=1000)),
        rounds=3, iterations=1)
