"""Experiment SKEW: the skew spectrum, uniform -> Zipf -> adversarial.

The paper's guarantees are *distribution-independent*; the baselines'
failure modes grow with skew.  This experiment sweeps batched Get
across the spectrum -- uniform, Zipf(1.2), Zipf(2.0), same-successor,
single-hot-key -- for **every structure in the skew registry**
(:data:`repro.workloads.skew.SKEW_STRUCTURES`: the paper's skip list,
the PIM-tree, and the three partitioning baselines), reporting IO time
at each point.  The punchline is the *flat row*: the skew-resistant
structures read the same at every skew level, and each entry's
registered flatness expectation is asserted -- a new structure joins
this sweep by registering, not by editing this file.
"""

import random

from repro import PIMMachine, PIMSkipList
from repro.workloads import build_items, zipf_batch
from repro.workloads.skew import (
    SKEW_STRUCTURES,
    flatness,
    skew_get_batches,
    sweep_get,
)

from conftest import log2i, measure, report

P = 32
N = 2048


def test_skew_spectrum_get(benchmark):
    items = build_items(N, stride=1000)
    keys = [k for k, _ in items]
    b = P * log2i(P)
    batches = skew_get_batches(keys, b, seed=3)

    ios_by_name = sweep_get(items, batches, num_modules=P, seed=3)
    flat = {name: flatness(ios) for name, ios in ios_by_name.items()}
    rows = [[name] + [ios[s] for s in batches]
            for name, ios in ios_by_name.items()]
    report(
        "SKEW: batched Get IO across the skew spectrum (P=32, B=P log P)",
        ["structure"] + list(batches),
        rows,
        notes="keys are Zipf-ranked over the *stored key order*, so"
              " zipf skew concentrates on a contiguous key region --"
              " poison for range partitioning, invisible to hashing +"
              " dedup.  'flatness' = max/uniform IO across skew levels:"
              + ", ".join(f"{k}={v:.1f}" for k, v in flat.items()),
    )
    # every registered expectation holds: the resistant structures stay
    # flat, the sensitive ones still blow up (the adversary still bites)
    for name, entry in SKEW_STRUCTURES.items():
        if entry.max_flatness is not None:
            assert flat[name] <= entry.max_flatness, (name, flat[name])
        if entry.min_flatness is not None:
            assert flat[name] > entry.min_flatness, (name, flat[name])

    machine = PIMMachine(num_modules=P, seed=3)
    st = SKEW_STRUCTURES["ours"].factory(machine)
    st.build(items)
    batch = batches["zipf-2.0"]
    benchmark(lambda: st.apply_batch("get", batch))


def test_skew_spectrum_successor(benchmark):
    """The same spectrum for ordered queries, where dedup cannot help
    (distinct keys can still share paths): the pivot staging is what
    keeps ours flat."""
    items = build_items(N, stride=1000)
    keys = [k for k, _ in items]
    b = P * log2i(P)
    rng = random.Random(4)
    batches = {
        "uniform": [rng.randrange(N * 1000) for _ in range(b)],
        # zipf over gaps: distinct query keys, skew-concentrated targets
        "zipf-gaps": [k + 1 + rng.randrange(500)
                      for k in zipf_batch(b, keys, alpha=1.5, seed=4)],
        "one-gap": sorted(rng.sample(range(keys[0] + 1, keys[1]), b)),
    }
    machine = PIMMachine(num_modules=P, seed=4)
    sl = PIMSkipList(machine)
    sl.build(items)
    rows = []
    for skew, batch in batches.items():
        d = measure(machine, lambda: sl.batch_successor(batch))
        rows.append([skew, d.io_time, d.pim_time, d.pim_balance_ratio])
    report(
        "SKEW-b: ours, batched Successor across the spectrum (P=32)",
        ["skew", "IO time", "PIM time", "balance"],
        rows,
        notes="adversarial concentration (one-gap) is *cheaper* than"
              " uniform: shared paths collapse into pivot derivations.",
    )
    ios = {r[0]: r[1] for r in rows}
    # concentration only ever makes ours cheaper (derivation shortcuts)
    assert ios["one-gap"] <= ios["uniform"]
    assert ios["zipf-gaps"] <= 1.5 * ios["uniform"]

    batch = batches["zipf-gaps"]
    benchmark(lambda: sl.batch_successor(batch))
