"""Experiment SKEW: the skew spectrum, uniform -> Zipf -> adversarial.

The paper's guarantees are *distribution-independent*; the baselines'
failure modes grow with skew.  This experiment sweeps batched Get across
the spectrum -- uniform, Zipf(1.2), Zipf(2.0), single-hot-key -- for the
paper's structure and the two coarse partitionings, reporting IO time
and PIM balance at each point.  The punchline is the *flat row*: ours
reads the same at every skew level.
"""

import random

from repro import PIMMachine, PIMSkipList
from repro.baselines import HashPartitionedMap, RangePartitionedSkipList
from repro.workloads import build_items, zipf_batch

from conftest import log2i, measure, report

P = 32
N = 2048


def make_batches(keys, b, seed):
    rng = random.Random(seed)
    return {
        "uniform": [rng.choice(keys) for _ in range(b)],
        "zipf-1.2": zipf_batch(b, keys, alpha=1.2, seed=seed),
        "zipf-2.0": zipf_batch(b, keys, alpha=2.0, seed=seed),
        "one-hot": [keys[0]] * b,
    }


def test_skew_spectrum_get(benchmark):
    items = build_items(N, stride=1000)
    keys = [k for k, _ in items]
    b = P * log2i(P)
    batches = make_batches(keys, b, seed=3)

    structs = {}
    for name, cls in (("ours", None),
                      ("range-part", RangePartitionedSkipList),
                      ("hash-part", HashPartitionedMap)):
        machine = PIMMachine(num_modules=P, seed=3)
        st = PIMSkipList(machine) if cls is None else cls(machine)
        st.build(items)
        structs[name] = (machine, st)

    rows = []
    flat = {}
    for name, (machine, st) in structs.items():
        ios = {}
        for skew, batch in batches.items():
            d = measure(machine, lambda: st.batch_get(batch))
            ios[skew] = d.io_time
        rows.append([name] + [ios[s] for s in batches])
        # flatness relative to the easy (uniform) case: does skew COST?
        flat[name] = max(ios.values()) / max(1.0, ios["uniform"])
    report(
        "SKEW: batched Get IO across the skew spectrum (P=32, B=P log P)",
        ["structure"] + list(batches),
        rows,
        notes="keys are Zipf-ranked over the *stored key order*, so"
              " zipf skew concentrates on a contiguous key region --"
              " poison for range partitioning, invisible to hashing +"
              " dedup.  'flatness' = max/min IO across skew levels:"
              + ", ".join(f"{k}={v:.1f}" for k, v in flat.items()),
    )
    # ours and hash-part never pay for skew; range partitioning does
    assert flat["ours"] <= 1.5
    assert flat["hash-part"] <= 1.5
    assert flat["range-part"] > 2.0

    machine, st = structs["ours"]
    batch = batches["zipf-2.0"]
    benchmark(lambda: st.batch_get(batch))


def test_skew_spectrum_successor(benchmark):
    """The same spectrum for ordered queries, where dedup cannot help
    (distinct keys can still share paths): the pivot staging is what
    keeps ours flat."""
    items = build_items(N, stride=1000)
    keys = [k for k, _ in items]
    b = P * log2i(P)
    rng = random.Random(4)
    batches = {
        "uniform": [rng.randrange(N * 1000) for _ in range(b)],
        # zipf over gaps: distinct query keys, skew-concentrated targets
        "zipf-gaps": [k + 1 + rng.randrange(500)
                      for k in zipf_batch(b, keys, alpha=1.5, seed=4)],
        "one-gap": sorted(rng.sample(range(keys[0] + 1, keys[1]), b)),
    }
    machine = PIMMachine(num_modules=P, seed=4)
    sl = PIMSkipList(machine)
    sl.build(items)
    rows = []
    for skew, batch in batches.items():
        d = measure(machine, lambda: sl.batch_successor(batch))
        rows.append([skew, d.io_time, d.pim_time, d.pim_balance_ratio])
    report(
        "SKEW-b: ours, batched Successor across the spectrum (P=32)",
        ["skew", "IO time", "PIM time", "balance"],
        rows,
        notes="adversarial concentration (one-gap) is *cheaper* than"
              " uniform: shared paths collapse into pivot derivations.",
    )
    ios = {r[0]: r[1] for r in rows}
    # concentration only ever makes ours cheaper (derivation shortcuts)
    assert ios["one-gap"] <= ios["uniform"]
    assert ios["zipf-gaps"] <= 1.5 * ios["uniform"]

    batch = batches["zipf-gaps"]
    benchmark(lambda: sl.batch_successor(batch))
