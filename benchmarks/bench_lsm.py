"""Experiment LSM: the log-structured foil vs the paper's skip list.

PIM-LSM (delta skip list + hashed static run blocks + replicated fence
keys) is the *other* plausible ordered-store design on a PIM machine.
It matches the skip list where hashing and dedup do the work (point
Gets), beats it on cold sequential scans (static blocks are contiguous),
and loses exactly where the paper predicts a range-partitioned layout
must lose: adversarial batches of distinct ordered queries that funnel
into one block (§2.2's serialization argument, measured on a second
design).
"""

import random

from repro import PIMMachine, PIMSkipList
from repro.structures import PIMLSMStore
from repro.workloads import build_items

from conftest import log2i, measure, report

P = 16
N = P * 64


def build_pair(seed):
    items = build_items(N, stride=1000)
    m_sl = PIMMachine(num_modules=P, seed=seed)
    sl = PIMSkipList(m_sl)
    sl.build(items)
    m_lsm = PIMMachine(num_modules=P, seed=seed)
    lsm = PIMLSMStore(m_lsm, block_size=64, flush_threshold=10 ** 9)
    lsm.batch_upsert(items)
    lsm.compact()
    return (m_sl, sl), (m_lsm, lsm), [k for k, _ in items]


def test_lsm_vs_skiplist(benchmark):
    (m_sl, sl), (m_lsm, lsm), keys = build_pair(seed=1)
    rng = random.Random(1)
    rows = []

    # uniform point gets
    batch = rng.sample(keys, P * 8)
    d_sl = measure(m_sl, lambda: sl.batch_get(batch))
    d_lsm = measure(m_lsm, lambda: lsm.batch_get(batch))
    rows.append(["get uniform", d_sl.io_time, d_lsm.io_time,
                 d_sl.pim_balance_ratio, d_lsm.pim_balance_ratio])

    # uniform successors
    qs = [rng.randrange(N * 1000) for _ in range(P * 8)]
    d_sl = measure(m_sl, lambda: sl.batch_successor(qs))
    d_lsm = measure(m_lsm, lambda: lsm.batch_successor(qs))
    rows.append(["succ uniform", d_sl.io_time, d_lsm.io_time,
                 d_sl.pim_balance_ratio, d_lsm.pim_balance_ratio])

    # adversarial successors: distinct keys inside one block's range
    adv = sorted(rng.sample(range(keys[0] + 1, keys[0] + 999), P * 8))
    d_sl_a = measure(m_sl, lambda: sl.batch_successor(adv))
    d_lsm_a = measure(m_lsm, lambda: lsm.batch_successor(adv))
    rows.append(["succ one-block adversary", d_sl_a.io_time,
                 d_lsm_a.io_time, d_sl_a.pim_balance_ratio,
                 d_lsm_a.pim_balance_ratio])

    report(
        "LSM: skip list vs PIM-LSM (P=16, n=1024, run block=64)",
        ["workload", "skiplist IO", "LSM IO", "skiplist balance",
         "LSM balance"],
        rows,
        notes="the LSM's run blocks are range partitions: the one-block"
              " adversary serializes its successor path (SS2.2's argument"
              " on a second design); the skip list's pivot machinery"
              " turns the same batch into derivation shortcuts.",
    )
    adv_row = rows[2]
    # the skip list resolves the one-block adversary via derivation
    # shortcuts; the LSM funnels ~2B messages into one module
    assert adv_row[2] > 10 * adv_row[1]
    uni = rows[0]
    assert uni[2] < 4 * uni[1] + 20         # gets comparable on uniform

    m2 = PIMMachine(num_modules=8, seed=9)
    lsm2 = PIMLSMStore(m2, block_size=32, flush_threshold=10 ** 9)
    lsm2.batch_upsert(build_items(256, stride=10))
    lsm2.compact()
    probe = [rng.randrange(2560) for _ in range(64)]
    benchmark(lambda: lsm2.batch_get(probe))


def test_lsm_compaction_costs(benchmark):
    """Compaction is the LSM's periodic tax: ~2 passes over the data."""
    rows = []
    for n in (256, 512, 1024):
        machine = PIMMachine(num_modules=8, seed=n)
        lsm = PIMLSMStore(machine, block_size=32, flush_threshold=10 ** 9)
        lsm.batch_upsert(build_items(n, stride=10))
        d = measure(machine, lambda: lsm.compact())
        rows.append([n, d.io_time, d.io_time / n, d.rounds])
    report(
        "LSM-b: compaction cost vs data size (P=8)",
        ["n", "IO time", "IO/n", "rounds"],
        rows,
        notes="compaction IO is linear in the data (dump + rewrite);"
              " the delta amortizes it over flush_threshold updates.",
    )
    per = [r[2] for r in rows]
    assert max(per) < 2.5 * min(per)  # linear shape

    machine = PIMMachine(num_modules=8, seed=77)
    lsm = PIMLSMStore(machine, block_size=32, flush_threshold=10 ** 9)
    lsm.batch_upsert(build_items(128, stride=10))

    def run():
        lsm.batch_upsert([(i * 10 + 5, i) for i in range(64)])
        lsm.compact()

    benchmark.pedantic(run, rounds=3, iterations=1)
