"""Shared helpers for the benchmark harness.

Every benchmark module reproduces one table/figure/theorem from the paper
(see DESIGN.md's experiment index).  Pattern:

- a module-level *experiment* function runs the parameter sweep on the
  model simulator and renders the paper-style table (printed to stdout
  and archived under ``benchmarks/out/``);
- one or more ``test_*`` functions attach a representative configuration
  to the ``benchmark`` fixture (so ``pytest benchmarks/ --benchmark-only``
  also reports wall-clock timings) and assert the *shape* claims --
  growth exponents, balance ratios, crossovers -- hold.
"""

from __future__ import annotations

import math
import os
import random
from typing import Callable, Dict, List, Optional, Tuple

import pytest

from repro import PIMMachine, PIMSkipList
from repro.analysis import render_table
from repro.workloads import build_items

OUT_DIR = os.path.join(os.path.dirname(__file__), "out")


def log2i(p: int) -> int:
    return max(1, int(round(math.log2(p)))) if p > 1 else 1


def built_skiplist(p: int, n: int, seed: int = 0, stride: int = 1000,
                   trace: bool = False, **kw):
    """A machine + built PIMSkipList + its sorted key list."""
    machine = PIMMachine(num_modules=p, seed=seed, trace_accesses=trace)
    sl = PIMSkipList(machine, **kw)
    items = build_items(n, stride=stride)
    sl.build(items)
    return machine, sl, [k for k, _ in items]


def measure(machine, fn) -> "MetricsDelta":  # noqa: F821
    before = machine.snapshot()
    fn()
    return machine.delta_since(before)


def report(title: str, headers, rows, notes: str = "") -> str:
    """Render, print, and archive one experiment table."""
    table = render_table(headers, rows, title=title)
    if notes:
        table += "\n" + notes
    print("\n" + table)
    os.makedirs(OUT_DIR, exist_ok=True)
    fname = title.strip().lower().replace(" ", "_")[:72]
    fname = "".join(c for c in fname if c.isalnum() or c in "._-")
    with open(os.path.join(OUT_DIR, fname + ".txt"), "w") as f:
        f.write(table + "\n")
    return table


@pytest.fixture
def rng():
    return random.Random(12345)
